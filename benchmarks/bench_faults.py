"""Fault injection: static-plan vs replanned throughput trajectories.

Regenerates the ``faults`` experiment per fault class and asserts the
ISSUE 5 acceptance bar for the drive-failure scenario: the replanned
run recovers at least 80 % of healthy steady-state throughput while the
static plan stays below it.
"""

import pytest

from repro.experiments.faults import run_faults
from repro.faults import FaultSchedule

from conftest import run_once


def test_faults_ssd_failure(benchmark, show, quick):
    """Drive failure mid-epoch: replan recovers >= 80 %, static not."""
    result = show(run_once(benchmark, run_faults, quick=quick))
    assert result.data["replan"] >= 0.8
    assert result.data["static"] < 0.8
    # replanning must beat riding out the fault on the stale placement
    assert result.data["replan"] > result.data["static"]


@pytest.mark.parametrize(
    "spec",
    [
        pytest.param("slow@2:ssd0:0.3", id="ssd-slowdown"),
        pytest.param("link@2:ssd0-plx0:0.25", id="link-degrade"),
        pytest.param("evict@2:gpu0:0.5", id="gpu-evict"),
    ],
)
def test_faults_other_classes(benchmark, show, quick, spec):
    """Slowdown / link / eviction trajectories (no recovery bar: a
    pure eviction cannot be healed by data movement, and partial
    degradations need not cross the replan trigger)."""
    schedule = FaultSchedule.parse(spec)
    result = show(
        run_once(benchmark, run_faults, quick=quick, faults=schedule)
    )
    # faults always cost something; the replan arm never does worse
    # than static at steady state
    assert result.data["static"] <= 1.0 + 1e-9
    assert result.data["replan"] >= result.data["static"] - 1e-9
