"""Benchmark: Figure 6: M-GIDS 2->4 GPU scaling (placement d).

Regenerates the paper element through :mod:`repro.experiments.figures`
and prints the rows next to the paper's reference values.  Run with
``pytest benchmarks/bench_fig06_scaling_mgids.py --benchmark-only -s``; set
``REPRO_FULL=1`` for full-scale datasets.
"""

from repro.experiments.figures import run_fig6_scaling_mgids

from conftest import run_once


def test_fig06_scaling_mgids(benchmark, show, quick):
    result = run_once(benchmark, run_fig6_scaling_mgids, quick=quick)
    show(result)
    # paper shape: little or negative scaling where M-GIDS fits at all
    for per_gpu in result.data.values():
        if per_gpu[2] > 0:
            assert per_gpu[4] <= per_gpu[2] * 1.15
