"""Benchmark: Figure 4: M-Hyperion per placement, Machine B.

Regenerates the paper element through :mod:`repro.experiments.figures`
and prints the rows next to the paper's reference values.  Run with
``pytest benchmarks/bench_fig04_mhyperion_b.py --benchmark-only -s``; set
``REPRO_FULL=1`` for full-scale datasets.
"""

from repro.experiments.figures import run_fig4_mhyperion_b

from conftest import run_once


def test_fig04_mhyperion_b(benchmark, show, quick):
    result = run_once(benchmark, run_fig4_mhyperion_b, quick=quick)
    show(result)
    assert len(result.table) > 0
