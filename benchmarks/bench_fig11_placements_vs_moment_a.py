"""Benchmark: Figure 11: classics vs Moment, Machine A.

Regenerates the paper element through :mod:`repro.experiments.figures`
and prints the rows next to the paper's reference values.  Run with
``pytest benchmarks/bench_fig11_placements_vs_moment_a.py --benchmark-only -s``; set
``REPRO_FULL=1`` for full-scale datasets.
"""

from repro.experiments.figures import run_fig11_placements_vs_moment_a

from conftest import run_once


def test_fig11_placements_vs_moment_a(benchmark, show, quick):
    result = run_once(benchmark, run_fig11_placements_vs_moment_a, quick=quick)
    show(result)
    assert len(result.table) > 0
