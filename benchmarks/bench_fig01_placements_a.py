"""Benchmark: Figure 1: classic layouts on Machine A.

Regenerates the paper element through :mod:`repro.experiments.figures`
and prints the rows next to the paper's reference values.  Run with
``pytest benchmarks/bench_fig01_placements_a.py --benchmark-only -s``; set
``REPRO_FULL=1`` for full-scale datasets.
"""

from repro.experiments.figures import run_fig1_placements_a

from conftest import run_once


def test_fig01_placements_a(benchmark, show, quick):
    result = run_once(benchmark, run_fig1_placements_a, quick=quick)
    show(result)
    # paper shape: (c) best, then (a), then (d), then (b)
    t = result.data
    assert t["c"] <= t["a"] <= t["d"] <= t["b"]
