"""Benchmark: Figure 14: DDAK vs hash, Machine A.

Regenerates the paper element through :mod:`repro.experiments.figures`
and prints the rows next to the paper's reference values.  Run with
``pytest benchmarks/bench_fig14_ddak_a.py --benchmark-only -s``; set
``REPRO_FULL=1`` for full-scale datasets.
"""

from repro.experiments.figures import run_fig14_ddak_a

from conftest import run_once


def test_fig14_ddak_a(benchmark, show, quick):
    result = run_once(benchmark, run_fig14_ddak_a, quick=quick)
    show(result)
    # paper shape: DDAK delivers a double-digit gain on at least one
    # placement and never loses badly
    assert max(result.data.values()) > 0.10
    assert min(result.data.values()) > -0.05
