"""Benchmark: Figure 15: DDAK vs hash, Machine B.

Regenerates the paper element through :mod:`repro.experiments.figures`
and prints the rows next to the paper's reference values.  Run with
``pytest benchmarks/bench_fig15_ddak_b.py --benchmark-only -s``; set
``REPRO_FULL=1`` for full-scale datasets.
"""

from repro.experiments.figures import run_fig15_ddak_b

from conftest import run_once


def test_fig15_ddak_b(benchmark, show, quick):
    result = run_once(benchmark, run_fig15_ddak_b, quick=quick)
    show(result)
    assert max(result.data.values()) > 0.10
    assert min(result.data.values()) > -0.05
