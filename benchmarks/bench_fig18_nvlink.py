"""Benchmark: Figure 18: NVLink on/off.

Regenerates the paper element through :mod:`repro.experiments.figures`
and prints the rows next to the paper's reference values.  Run with
``pytest benchmarks/bench_fig18_nvlink.py --benchmark-only -s``; set
``REPRO_FULL=1`` for full-scale datasets.
"""

from repro.experiments.figures import run_fig18_nvlink

from conftest import run_once


def test_fig18_nvlink(benchmark, show, quick):
    result = run_once(benchmark, run_fig18_nvlink, quick=quick)
    show(result)
    # paper shape: NVLink never hurts and helps where QPI paths congest
    assert all(g >= -0.01 for g in result.data.values())
    assert max(result.data.values()) > 0.03
