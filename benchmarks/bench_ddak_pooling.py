"""Benchmark: Section 3.3: DDAK pooling factor sweep.

Regenerates the paper element through :mod:`repro.experiments.figures`
and prints the rows next to the paper's reference values.  Run with
``pytest benchmarks/bench_ddak_pooling.py --benchmark-only -s``; set
``REPRO_FULL=1`` for full-scale datasets.
"""

from repro.experiments.figures import run_ddak_pooling

from conftest import run_once


def test_ddak_pooling(benchmark, show, quick):
    result = run_once(benchmark, run_ddak_pooling, quick=quick)
    show(result)
    assert len(result.table) > 0
