"""Benchmark: Table 1/3: evaluation platforms.

Regenerates the paper element through :mod:`repro.experiments.figures`
and prints the rows next to the paper's reference values.  Run with
``pytest benchmarks/bench_table1.py --benchmark-only -s``; set
``REPRO_FULL=1`` for full-scale datasets.
"""

from repro.experiments.figures import run_table1_machines

from conftest import run_once


def test_table1(benchmark, show):
    result = run_once(benchmark, run_table1_machines)
    show(result)
    assert len(result.table) > 0
