"""Benchmark: Figure 16: 1->4 GPU scalability.

Regenerates the paper element through :mod:`repro.experiments.figures`
and prints the rows next to the paper's reference values.  Run with
``pytest benchmarks/bench_fig16_scalability.py --benchmark-only -s``; set
``REPRO_FULL=1`` for full-scale datasets.
"""

from repro.experiments.figures import run_fig16_scalability

from conftest import run_once


def test_fig16_scalability(benchmark, show, quick):
    result = run_once(benchmark, run_fig16_scalability, quick=quick)
    show(result)
    # paper shape: Moment scales better than the classic layouts
    for machine in ("machine_a", "machine_b"):
        moment = result.data[(machine, "moment")]
        classic_d = result.data[(machine, "d")]
        top = max(moment)
        assert moment[top] / moment[1] >= classic_d[top] / classic_d[1] * 0.95
