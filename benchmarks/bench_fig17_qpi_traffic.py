"""Benchmark: Figure 17: QPI traffic, hash vs DDAK.

Regenerates the paper element through :mod:`repro.experiments.figures`
and prints the rows next to the paper's reference values.  Run with
``pytest benchmarks/bench_fig17_qpi_traffic.py --benchmark-only -s``; set
``REPRO_FULL=1`` for full-scale datasets.
"""

from repro.experiments.figures import run_fig17_qpi_traffic

from conftest import run_once


def test_fig17_qpi_traffic(benchmark, show, quick):
    result = run_once(benchmark, run_fig17_qpi_traffic, quick=quick)
    show(result)
    # paper shape: DDAK reduces QPI traffic on the asymmetric layouts
    assert max(result.data.values()) > 0.05
