"""Benchmark: Table 2: dataset statistics.

Regenerates the paper element through :mod:`repro.experiments.figures`
and prints the rows next to the paper's reference values.  Run with
``pytest benchmarks/bench_table2.py --benchmark-only -s``; set
``REPRO_FULL=1`` for full-scale datasets.
"""

from repro.experiments.figures import run_table2_datasets

from conftest import run_once


def test_table2(benchmark, show, quick):
    result = run_once(benchmark, run_table2_datasets, quick=quick)
    show(result)
    assert len(result.table) > 0
