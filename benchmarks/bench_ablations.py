"""Ablation benchmarks for the design choices DESIGN.md calls out.

* symmetry pruning — search-space reduction and wall-time effect;
* hotness estimation — pre-sampling vs the degree proxy;
* predictor variants — single-commodity max flow vs multicommodity LP
  against the simulator's measurement.
"""

import numpy as np
import pytest

from repro.core.flowmodel import min_completion_time
from repro.core.mcmf import multicommodity_min_time
from repro.core.optimizer import MomentOptimizer, OptimizerConfig
from repro.core.placement import enumerate_placements
from repro.core.symmetry import dedupe_placements
from repro.experiments.figures import _dataset
from repro.hardware.machines import classic_layouts, machine_a
from repro.runtime.spec import RunSpec
from repro.runtime.system import MomentSystem
from repro.sampling.hotness import degree_proxy_hotness, presample_hotness

from conftest import run_once


@pytest.fixture(scope="module")
def machine():
    return machine_a()


def test_symmetry_pruning(benchmark, machine, show, quick):
    """Orbit pruning shrinks the placement search space."""
    full = enumerate_placements(machine.chassis, 4, 8)
    unique = run_once(benchmark, dedupe_placements, full, machine.chassis)
    print(
        f"\nsymmetry pruning: {len(full)} candidates -> {len(unique)} "
        f"({100 * (1 - len(unique) / len(full)):.0f}% pruned)"
    )
    assert len(unique) < len(full)


def test_hotness_estimators(benchmark, machine, quick):
    """Degree proxy vs pre-sampling: near-identical plans, no sampling."""
    ds = _dataset("IG", quick)
    sampled = presample_hotness(
        ds.graph, ds.train_ids, ds.batch_size, (25, 10), max_batches=32,
        seed=0,
    )
    proxy = run_once(benchmark, degree_proxy_hotness, ds.graph)
    k = ds.graph.num_vertices // 20
    top_s = set(np.argsort(sampled)[-k:].tolist())
    top_p = set(np.argsort(proxy)[-k:].tolist())
    overlap = len(top_s & top_p) / k
    print(f"\nhot-5% overlap between estimators: {overlap:.2f}")
    assert overlap > 0.4


def test_predictor_variants(benchmark, machine, quick, show):
    """Single-commodity max flow is optimistic; the LP tracks the
    simulator more closely (the reason pass 2 exists)."""
    ds = _dataset("IG", quick)
    moment = MomentSystem(machine)
    r = moment.run(RunSpec(dataset=ds, num_gpus=4, sample_batches=3))
    epoch = r.epoch
    io_epoch = epoch.io_seconds * epoch.num_steps
    measured = epoch.external_bytes / io_epoch
    topo = machine.build(r.placement)

    lp = run_once(benchmark, multicommodity_min_time, topo, epoch.demand)
    lp_pred = epoch.demand.total / lp.time
    sc = min_completion_time(topo, epoch.demand)
    sc_pred = epoch.demand.total / sc.time

    err_lp = abs(lp_pred - measured) / measured
    err_sc = abs(sc_pred - measured) / measured
    print(
        f"\nmeasured {measured/1e9:.1f} GB/s | LP {lp_pred/1e9:.1f} "
        f"(err {err_lp*100:.1f}%) | single-commodity {sc_pred/1e9:.1f} "
        f"(err {err_sc*100:.1f}%)"
    )
    assert err_lp <= err_sc + 0.02
