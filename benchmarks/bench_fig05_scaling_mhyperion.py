"""Benchmark: Figure 5: M-Hyperion 2->4 GPU scaling (placement d).

Regenerates the paper element through :mod:`repro.experiments.figures`
and prints the rows next to the paper's reference values.  Run with
``pytest benchmarks/bench_fig05_scaling_mhyperion.py --benchmark-only -s``; set
``REPRO_FULL=1`` for full-scale datasets.
"""

from repro.experiments.figures import run_fig5_scaling_mhyperion

from conftest import run_once


def test_fig05_scaling_mhyperion(benchmark, show, quick):
    result = run_once(benchmark, run_fig5_scaling_mhyperion, quick=quick)
    show(result)
    # paper shape: going 2 -> 4 GPUs yields little or negative scaling
    for per_gpu in result.data.values():
        assert per_gpu[4] <= per_gpu[2] * 1.15
