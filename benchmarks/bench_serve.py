"""Plan-service benchmarks (repro.serve).

Spins up an in-process ``PlanService`` + ``ThreadingHTTPServer`` and
drives it with the closed-loop load generator, recording serving
throughput and tail latency.  Under ``REPRO_JSONL`` each run emits the
load report's scalars as ``bench:data:*`` warehouse metrics —
``bench:data:throughput_rps`` and ``bench:data:latency_p95_s`` are the
pair the CI ``serve-smoke`` gate tracks (direction inference: higher-
and lower-is-better respectively).

Quick profile: 60 requests from 16 clients over a 4-variant mix;
``REPRO_FULL=1`` scales to 100 clients × 400 requests (the acceptance
demo shape).
"""

import os
import threading
from dataclasses import dataclass
from typing import Dict

from repro.serve.http import make_server, server_url
from repro.serve.loadgen import LoadConfig, run_load
from repro.serve.service import PlanService, ServeConfig

from conftest import run_once


@dataclass
class ServeBenchResult:
    """Load-report scalars in the shape ``bench_metrics`` exports."""

    data: Dict[str, float]


def run_serve_load(
    clients: int,
    requests: int,
    mix: int = 4,
    seed: int = 0,
    solver_processes: int = 0,
    cold_concurrency: int = 1,
    vertices: int = 2000,
) -> ServeBenchResult:
    """One spawn → warm → load → teardown cycle; returns the scalars."""
    service = PlanService(
        ServeConfig(
            workers=2,
            queue_size=128,
            cache_size=64,
            solver_processes=solver_processes,
        )
    ).start()
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        report = run_load(
            LoadConfig(
                url=server_url(server),
                clients=clients,
                requests=requests,
                mix=mix,
                seed=seed,
                num_gpus=4,
                num_ssds=8,
                cold_concurrency=cold_concurrency,
                vertices=vertices,
            )
        )
    finally:
        server.shutdown()
        server.server_close()
        service.stop()
    assert report.errors == 0, f"{report.errors} non-200 responses"
    return ServeBenchResult(data=report.data())


def run_cold_scaling(
    mix: int = 8, solver_processes: int = 4, vertices: int = 4000
) -> ServeBenchResult:
    """Cold-solve throughput: N-process pool vs single-process baseline.

    Both sides fire the same ``mix`` of distinct cold requests at the
    same burst concurrency; only the solver-pool size differs, so the
    throughput ratio isolates what ``--solver-processes`` buys.
    Emits ``bench:data:cold_throughput_rps`` (the pooled side),
    ``bench:data:baseline_cold_throughput_rps``, and their ratio
    ``bench:data:cold_scaling_x``.
    """

    def burst(processes: int, seed: int) -> float:
        result = run_serve_load(
            clients=2,
            requests=mix,  # window is a formality; the burst is the point
            mix=mix,
            seed=seed,
            solver_processes=processes,
            cold_concurrency=solver_processes,
            vertices=vertices,
        )
        return result.data["cold_throughput_rps"]

    baseline = burst(1, seed=11)
    pooled = burst(solver_processes, seed=29)
    return ServeBenchResult(
        data={
            "cold_throughput_rps": pooled,
            "baseline_cold_throughput_rps": baseline,
            "cold_scaling_x": pooled / baseline if baseline > 0 else 0.0,
        }
    )


def test_serve_throughput(benchmark, quick):
    """Closed-loop serving throughput + p95 latency on a warmed cache."""
    clients, requests = (16, 60) if quick else (100, 400)
    result = run_once(
        benchmark, run_serve_load, clients=clients, requests=requests, seed=0
    )
    d = result.data
    print(
        f"\nserve: {d['throughput_rps']:.0f} req/s, "
        f"p95 {d['latency_p95_s'] * 1e3:.1f} ms, "
        f"hit speedup {d.get('hit_speedup', float('nan')):.0f}x"
    )
    assert d["throughput_rps"] > 0
    assert d["errors"] == 0


def test_serve_hit_speedup(benchmark, quick):
    """Cache-hit probes must be an order of magnitude under the cold
    solve (the acceptance bar; measured serially on both sides)."""
    result = run_once(
        benchmark, run_serve_load, clients=4, requests=16, mix=2, seed=1
    )
    speedup = result.data.get("hit_speedup", 0.0)
    print(f"\nhit speedup: {speedup:.0f}x")
    assert speedup > 10, f"cache hits only {speedup:.1f}x faster than solves"


def test_serve_cold_scaling(benchmark, quick):
    """Cold-solve throughput must scale with ``--solver-processes``.

    The ≥2x-at-4-processes acceptance bar only means anything on a
    host with ≥4 usable cores; on smaller machines the benchmark still
    runs (proving the pool path works and emitting the scalars for the
    warehouse) but the ratio is informational.
    """
    mix = 8 if quick else 16
    result = run_once(
        benchmark, run_cold_scaling, mix=mix, solver_processes=4
    )
    d = result.data
    print(
        f"\ncold scaling: {d['baseline_cold_throughput_rps']:.2f} -> "
        f"{d['cold_throughput_rps']:.2f} solves/s "
        f"({d['cold_scaling_x']:.2f}x, {os.cpu_count()} cores)"
    )
    assert d["cold_throughput_rps"] > 0
    if (os.cpu_count() or 1) >= 4:
        assert d["cold_scaling_x"] >= 2.0, (
            f"4 solver processes only {d['cold_scaling_x']:.2f}x over one"
        )
