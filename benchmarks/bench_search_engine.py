"""Placement-search engine benchmarks (repro.core.search).

Measures the staged engine on the machine-B reference searches: the
serial exhaustive path (workers=1, pruning off — bit-identical to the
pre-engine optimizer) against the engine with bound pruning on and
``REPRO_SEARCH_WORKERS`` processes.  Machine B has no chassis
symmetries, so its searches are the largest (every enumerated candidate
is scored) and the ones the ≥2× parallel-speedup target is defined on.

Quick profile searches 2 GPUs / 4 SSDs (280 candidates); ``REPRO_FULL=1``
runs the full 4 GPUs / 8 SSDs search (1936 candidates).

``test_search_scaling_a`` adds the candidates/sec scaling curve on
machine A (mirrored chassis, symmetry pruning active) over growing
GPU/SSD pools; its 4-GPU/8-SSD point is the acceptance benchmark for
the vectorized-search speedup and is tracked by the warehouse gate as
``bench:candidates_per_s`` (baseline tables under
``benchmarks/baselines/``).
"""

import dataclasses

import pytest

from repro.core.search import default_workers, run_search
from repro.core.optimizer import MomentOptimizer
from repro.experiments.figures import _dataset
from repro.hardware.machines import machine_a, machine_b

from conftest import run_once

#: (GPUs, SSDs) points of the machine-A scaling curve, smallest first.
SCALING_POOLS = ((1, 2), (2, 4), (3, 6), (4, 8))


@pytest.fixture(scope="module")
def machine():
    return machine_b()


def _request(machine, quick, pool=None):
    gpus, ssds = pool if pool is not None else ((2, 4) if quick else (4, 8))
    opt = MomentOptimizer(machine, num_gpus=gpus, num_ssds=ssds)
    ds = _dataset("IG", quick)
    hotness = opt.estimate_hotness(ds)
    fractions, _ = opt.plan_fractions(ds, hotness)
    return opt.search_request(fractions)


def test_search_serial_reference(benchmark, machine, quick):
    """The exhaustive serial path: every unique candidate through both
    scoring passes (the pre-engine behaviour, the speedup baseline)."""
    request = dataclasses.replace(_request(machine, quick), workers=1,
                                  prune_bounds=False)
    result = run_once(benchmark, run_search, request)
    print(
        f"\nserial: {result.num_unique} unique, {result.num_lp_scored} "
        f"LP-scored, {result.seconds:.2f}s"
    )
    assert result.pruned_by_bound == 0


def test_search_parallel_pruned(benchmark, machine, quick):
    """The engine with pruning on and the env-configured worker count.

    The winner's throughput must match the serial reference to 1e-9
    relative (the engine's pruning contract).
    """
    request = _request(machine, quick)
    serial = run_search(
        dataclasses.replace(request, workers=1, prune_bounds=False)
    )
    tuned = dataclasses.replace(
        request, workers=default_workers(), prune_bounds=True
    )
    result = run_once(benchmark, run_search, tuned)
    rel = abs(result.best.throughput - serial.best.throughput) / (
        serial.best.throughput
    )
    print(
        f"\npruned ({result.workers} workers): {result.num_lp_scored} "
        f"LP-scored, {result.pruned_by_bound} pruned by bound, "
        f"{result.cache_hits} topo-cache hits, {result.seconds:.2f}s "
        f"(serial {serial.seconds:.2f}s); winner rel-diff {rel:.1e}"
    )
    assert rel <= 1e-9
    assert result.pruned_by_bound > 0
    assert result.cache_hits > 0


@pytest.mark.parametrize("gpus,ssds", SCALING_POOLS)
def test_search_scaling_a(benchmark, quick, gpus, ssds):
    """Candidates/sec scaling curve on machine A (serial, exhaustive).

    One point per (GPUs, SSDs) pool; the ``[4-8]`` point is the
    acceptance benchmark for the vectorized-search speedup.  Runs the
    full pool at every profile — the curve is the deliverable, so the
    quick profile must produce the same points as the full one.
    """
    request = dataclasses.replace(
        _request(machine_a(), quick, pool=(gpus, ssds)),
        workers=1,
        prune_bounds=False,
    )
    result = run_once(benchmark, run_search, request)
    rate = result.num_unique / result.seconds if result.seconds else 0.0
    print(
        f"\nscaling A {gpus}g/{ssds}s: {result.num_candidates} candidates, "
        f"{result.num_unique} unique, {result.seconds:.2f}s, "
        f"{rate:.1f} cand/s"
    )
    assert result.num_unique > 0
