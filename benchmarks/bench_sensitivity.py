"""Sensitivity-analysis benchmarks (beyond the paper's figures).

Sweeps the physical parameters the reproduction's conclusions rest on:
GPU cache budget, cross-socket P2P bandwidth, graph skew, and feature
dimension.
"""

from repro.experiments.sensitivity import (
    sweep_feature_dim,
    sweep_gpu_cache,
    sweep_qpi_bandwidth,
    sweep_skew,
)

from conftest import run_once


def test_sens_gpu_cache(benchmark, show, quick):
    result = run_once(benchmark, sweep_gpu_cache, quick=quick)
    show(result)
    times = list(result.data.values())
    # monotone: more cache, never slower (within noise)
    assert times[-1] <= times[0] * 1.02


def test_sens_qpi_bandwidth(benchmark, show, quick):
    result = run_once(benchmark, sweep_qpi_bandwidth, quick=quick)
    show(result)
    gaps = list(result.data.values())
    # the (b)-vs-(c) gap persists even with fast interconnects
    assert min(gaps) > 1.3


def test_sens_skew(benchmark, show, quick):
    result = run_once(benchmark, sweep_skew, quick=quick)
    show(result)
    gains = result.data
    exps = sorted(gains)
    # skew only helps DDAK further
    assert gains[exps[-1]] >= gains[exps[0]] - 0.05


def test_sens_feature_dim(benchmark, show, quick):
    result = run_once(benchmark, sweep_feature_dim, quick=quick)
    show(result)
    times = result.data
    dims = sorted(times)
    # bigger embeddings cost more epoch time
    assert times[dims[-1]] > times[dims[0]]
