"""Micro-benchmarks of the core algorithms.

Unlike the per-figure benches (single-shot simulations), these measure
the hot kernels the automatic module runs many times: max-flow solves,
time-bisection, the multicommodity LP, progressive filling, DDAK
placement, and neighbour sampling.
"""

import numpy as np
import pytest

from repro.core.ddak import ddak_place, hash_place, make_bins
from repro.core.flowmodel import SSD_CLASS, TrafficDemand, min_completion_time
from repro.core.maxflow import FlowNetwork, dinic, edmonds_karp
from repro.core.mcmf import multicommodity_min_time
from repro.core.optimizer import concrete_demand
from repro.graphs.generators import power_law_graph
from repro.hardware.machines import classic_layouts, machine_a
from repro.sampling.neighbor import sample_batch
from repro.simulator.bandwidth import Flow, progressive_fill


@pytest.fixture(scope="module")
def topo():
    m = machine_a()
    return m.build(classic_layouts(m)["c"])


@pytest.fixture(scope="module")
def demand(topo):
    d = TrafficDemand()
    for g in topo.gpus():
        d.add(SSD_CLASS, g, 10e9)
    return d


def _grid_network(n=12):
    net = FlowNetwork()
    for i in range(n):
        for j in range(n):
            if i + 1 < n:
                net.add_edge((i, j), (i + 1, j), 10.0)
            if j + 1 < n:
                net.add_edge((i, j), (i, j + 1), 7.0)
    return net, (0, 0), (n - 1, n - 1)


def test_dinic_grid(benchmark):
    def run():
        net, s, t = _grid_network()
        return dinic(net, s, t)

    assert benchmark(run) > 0


def test_edmonds_karp_grid(benchmark):
    def run():
        net, s, t = _grid_network()
        return edmonds_karp(net, s, t)

    assert benchmark(run) > 0


def test_time_bisection_on_machine(benchmark, topo, demand):
    result = benchmark(min_completion_time, topo, demand)
    assert result.time > 0


def test_multicommodity_lp_on_machine(benchmark, topo):
    d = concrete_demand(topo, (0.0, 0.1, 0.9), {})
    result = benchmark(multicommodity_min_time, topo, d)
    assert result.time > 0


def test_progressive_fill_many_flows(benchmark):
    rng = np.random.default_rng(0)
    resources = {f"r{i}": 10.0 for i in range(16)}
    flows = [
        Flow(
            tuple(rng.choice(16, size=3, replace=False)),
            float(rng.uniform(1, 100)),
        )
        for _ in range(200)
    ]
    flows = [Flow(tuple(f"r{i}" for i in f.path), f.demand) for f in flows]
    result = benchmark(progressive_fill, flows, resources)
    assert result.makespan > 0


def test_ddak_place_100k_vertices(benchmark, topo):
    hot = (np.arange(1, 100_001) ** -0.8).astype(float)
    bins = make_bins(topo, 40e6, 80e6, 1e12)
    placement = benchmark(ddak_place, bins, hot, 4096, 100)
    placement.validate(4096)


def test_hash_place_100k_vertices(benchmark, topo):
    hot = (np.arange(1, 100_001) ** -0.8).astype(float)
    bins = make_bins(topo, 40e6, 80e6, 1e12)
    placement = benchmark(hash_place, bins, hot, 4096)
    placement.validate(4096)


def test_neighbor_sampling(benchmark):
    graph = power_law_graph(100_000, 15, seed=0)
    seeds = np.arange(1000, dtype=np.int64)
    sample = benchmark(sample_batch, graph, seeds, [25, 10], 0)
    assert sample.num_unique > 1000
