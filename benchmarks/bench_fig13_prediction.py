"""Benchmark: Figure 13: prediction accuracy.

Regenerates the paper element through :mod:`repro.experiments.figures`
and prints the rows next to the paper's reference values.  Run with
``pytest benchmarks/bench_fig13_prediction.py --benchmark-only -s``; set
``REPRO_FULL=1`` for full-scale datasets.
"""

from repro.experiments.figures import run_fig13_prediction

from conftest import run_once


def test_fig13_prediction(benchmark, show, quick):
    result = run_once(benchmark, run_fig13_prediction, quick=quick)
    show(result)
    # paper shape: predictions track measurements within ~10%
    errors = [row["error"] for row in result.data.values()]
    assert max(errors) < 0.15
