"""Shared benchmark fixtures.

Every per-figure benchmark regenerates its paper element through
:mod:`repro.experiments` and prints the resulting rows, so
``pytest benchmarks/ --benchmark-only`` reproduces the whole evaluation
section.  Set ``REPRO_FULL=1`` to run at full dataset scale (minutes);
the default is the quick profile (CI-sized, same shapes).
"""

import os

import pytest


@pytest.fixture(scope="session")
def quick() -> bool:
    return os.environ.get("REPRO_FULL", "0") != "1"


@pytest.fixture(scope="session")
def show():
    """Print an ExperimentResult under pytest -s / benchmark output."""

    def _show(result):
        print()
        result.print()
        return result

    return _show


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a runner with a single round (they are minutes-long
    simulations, not microseconds-long kernels)."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )
