"""Shared benchmark fixtures.

Every per-figure benchmark regenerates its paper element through
:mod:`repro.experiments` and prints the resulting rows, so
``pytest benchmarks/ --benchmark-only`` reproduces the whole evaluation
section.  Set ``REPRO_FULL=1`` to run at full dataset scale (minutes);
the default is the quick profile (CI-sized, same shapes).

Set ``REPRO_JSONL=path`` to capture telemetry for every ``run_once``
benchmark and append one structured run record per benchmark to that
file — tagged with host machine spec, dataset/experiment, seed,
repetition index, and git SHA (schema in EXPERIMENTS.md).  Set
``REPRO_REPS=N`` (with ``REPRO_JSONL``) to execute each benchmark N
times and emit one tagged record per repetition — the input the
warehouse's CI-and-noise-band machinery (``python -m repro.warehouse``)
needs; repetition 0 runs under ``benchmark.pedantic`` as before, the
rest are plain re-executions.  Runners that accept a ``seed`` kwarg get
per-repetition derived seeds (:func:`repro.utils.rng.derive_seed`);
seed-stable runners measure wall-time noise, which is the point.

Placement-search knobs pass straight through the engine's env defaults:
``REPRO_SEARCH_WORKERS=N`` scores candidates on N processes and
``REPRO_SEARCH_PRUNE=1`` enables bound pruning (see
:mod:`repro.core.search`); both are recorded in each benchmark's
metadata so JSONL records from different engine settings stay
distinguishable.
"""

import inspect
import os
import platform

import pytest

from repro import obs
from repro.core import search
from repro.utils.rng import derive_seed


@pytest.fixture(scope="session")
def quick() -> bool:
    return os.environ.get("REPRO_FULL", "0") != "1"


@pytest.fixture(scope="session")
def show():
    """Print an ExperimentResult under pytest -s / benchmark output."""

    def _show(result):
        print()
        result.print()
        return result

    return _show


def bench_metadata(**extra) -> dict:
    """Provenance tags for one benchmark record: git SHA, host machine
    spec, dataset scale profile, plus any run-specific ``extra``."""
    return obs.run_metadata(
        machine_spec={
            "processor": platform.processor() or platform.machine(),
            "cpu_count": os.cpu_count(),
            "system": platform.system(),
        },
        scale_profile="full" if os.environ.get("REPRO_FULL") == "1" else "quick",
        search_workers=search.default_workers(),
        prune_bounds=search.default_prune_bounds(),
        **extra,
    )


def bench_metrics(result) -> dict:
    """The benchmark's primary scalars, by result shape.

    ``ExperimentResult`` contributes its wall time and every scalar in
    ``result.data``; ``SearchResult``-shaped objects contribute
    candidate counts and candidates/sec — the throughput the
    regression gate tracks for the search engine.
    """
    out = {}
    if result is None:
        return out
    data = getattr(result, "data", None)
    if isinstance(data, dict):
        for k, v in data.items():
            if isinstance(v, (int, float)) and not isinstance(v, bool):
                out[f"data:{k}"] = float(v)
    elapsed = getattr(result, "elapsed_seconds", None)
    if elapsed is not None:
        out["experiment_elapsed_s"] = float(elapsed)
    if hasattr(result, "num_unique") and hasattr(result, "seconds"):
        out["search_seconds"] = float(result.seconds)
        out["num_unique"] = float(result.num_unique)
        out["num_lp_scored"] = float(result.num_lp_scored)
        out["pruned_by_bound"] = float(result.pruned_by_bound)
        if result.seconds > 0:
            out["candidates_per_s"] = result.num_unique / result.seconds
    return out


def _accepts_seed(fn) -> bool:
    try:
        params = inspect.signature(fn).parameters
    except (TypeError, ValueError):
        return False
    return "seed" in params or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a runner with a single round (they are minutes-long
    simulations, not microseconds-long kernels).

    When ``REPRO_JSONL`` names a sink file, each repetition (see
    ``REPRO_REPS``) executes under its own telemetry capture and emits
    one tagged JSONL run record.
    """
    sink = os.environ.get("REPRO_JSONL")
    if not sink:
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
        )
    reps = max(1, int(os.environ.get("REPRO_REPS", "1")))
    run_id = getattr(benchmark, "name", None) or getattr(
        fn, "__name__", "benchmark"
    )
    base_seed = kwargs.get("seed", 0)
    derive = _accepts_seed(fn) and "seed" in kwargs
    first_result = None
    for rep in range(reps):
        rep_kwargs = dict(kwargs)
        rep_seed = derive_seed(base_seed, rep)
        if derive:
            rep_kwargs["seed"] = rep_seed
        with obs.capture() as tel:
            if rep == 0:
                result = benchmark.pedantic(
                    fn,
                    args=args,
                    kwargs=rep_kwargs,
                    rounds=1,
                    iterations=1,
                    warmup_rounds=0,
                )
                first_result = result
            else:
                result = fn(*args, **rep_kwargs)
        record = obs.build_run_record(
            run_id=run_id,
            config={
                "benchmark": run_id,
                "kwargs": {k: repr(v) for k, v in rep_kwargs.items()},
            },
            telemetry=tel,
            meta=bench_metadata(
                experiment=getattr(result, "experiment_id", None),
                dataset=kwargs.get("datasets") or kwargs.get("dataset"),
                seed=rep_seed if derive else base_seed,
                repetition=rep,
            ),
        )
        metrics = bench_metrics(result)
        if metrics:
            record.setdefault("derived", {})["bench"] = metrics
        obs.append_jsonl(sink, record)
    return first_result
