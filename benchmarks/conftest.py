"""Shared benchmark fixtures.

Every per-figure benchmark regenerates its paper element through
:mod:`repro.experiments` and prints the resulting rows, so
``pytest benchmarks/ --benchmark-only`` reproduces the whole evaluation
section.  Set ``REPRO_FULL=1`` to run at full dataset scale (minutes);
the default is the quick profile (CI-sized, same shapes).

Set ``REPRO_JSONL=path`` to capture telemetry for every ``run_once``
benchmark and append one structured run record per benchmark to that
file — tagged with host machine spec, dataset/experiment, seed, and
git SHA (schema in EXPERIMENTS.md).

Placement-search knobs pass straight through the engine's env defaults:
``REPRO_SEARCH_WORKERS=N`` scores candidates on N processes and
``REPRO_SEARCH_PRUNE=1`` enables bound pruning (see
:mod:`repro.core.search`); both are recorded in each benchmark's
metadata so JSONL records from different engine settings stay
distinguishable.
"""

import os
import platform

import pytest

from repro import obs
from repro.core import search


@pytest.fixture(scope="session")
def quick() -> bool:
    return os.environ.get("REPRO_FULL", "0") != "1"


@pytest.fixture(scope="session")
def show():
    """Print an ExperimentResult under pytest -s / benchmark output."""

    def _show(result):
        print()
        result.print()
        return result

    return _show


def bench_metadata(**extra) -> dict:
    """Provenance tags for one benchmark record: git SHA, host machine
    spec, dataset scale profile, plus any run-specific ``extra``."""
    return obs.run_metadata(
        machine_spec={
            "processor": platform.processor() or platform.machine(),
            "cpu_count": os.cpu_count(),
            "system": platform.system(),
        },
        scale_profile="full" if os.environ.get("REPRO_FULL") == "1" else "quick",
        search_workers=search.default_workers(),
        prune_bounds=search.default_prune_bounds(),
        **extra,
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a runner with a single round (they are minutes-long
    simulations, not microseconds-long kernels).

    When ``REPRO_JSONL`` names a sink file, the run executes under a
    telemetry capture and emits one tagged JSONL run record.
    """
    sink = os.environ.get("REPRO_JSONL")
    if not sink:
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
        )
    with obs.capture() as tel:
        result = benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
        )
    run_id = getattr(benchmark, "name", None) or getattr(
        fn, "__name__", "benchmark"
    )
    record = obs.build_run_record(
        run_id=run_id,
        config={
            "benchmark": run_id,
            "kwargs": {k: repr(v) for k, v in kwargs.items()},
        },
        telemetry=tel,
        meta=bench_metadata(
            experiment=getattr(result, "experiment_id", None),
            dataset=kwargs.get("datasets") or kwargs.get("dataset"),
            seed=kwargs.get("seed", 0),
        ),
    )
    obs.append_jsonl(sink, record)
    return result
