"""Benchmark: Figure 12: classics vs Moment, Machine B.

Regenerates the paper element through :mod:`repro.experiments.figures`
and prints the rows next to the paper's reference values.  Run with
``pytest benchmarks/bench_fig12_placements_vs_moment_b.py --benchmark-only -s``; set
``REPRO_FULL=1`` for full-scale datasets.
"""

from repro.experiments.figures import run_fig12_placements_vs_moment_b

from conftest import run_once


def test_fig12_placements_vs_moment_b(benchmark, show, quick):
    result = run_once(benchmark, run_fig12_placements_vs_moment_b, quick=quick)
    show(result)
    assert len(result.table) > 0
