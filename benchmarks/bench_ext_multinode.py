"""Extension benchmark: multi-node Moment (paper Section 5).

The paper sketches extending the topology/placement co-optimization to
clusters (NICs become topology edges).  This bench scales a fixed
per-node configuration (2 GPUs + 4 SSDs per machine) from 1 to 4 nodes
and reports throughput, network-crossing traffic, and the scaling
efficiency — showing exactly the effect the paper anticipates: the
max-flow model + DDAK "mitigate [network latency and congestion] by
prioritizing local SSD/memory access".
"""

import pytest

from repro.cluster.multinode import MultiNodeMoment
from repro.experiments.figures import _dataset
from repro.hardware.machines import machine_a
from repro.simulator.pipeline import EpochSimulator, SimConfig
from repro.utils.report import Table

from conftest import run_once


def run_multinode_scaling(quick: bool):
    ds = _dataset("IG", quick)
    machine = machine_a()
    table = Table(
        ["nodes", "gpus", "kseeds_per_s", "net_gb_per_epoch", "efficiency"],
        title="Extension: multi-node Moment scaling (2 GPUs + 4 SSDs/node)",
    )
    data = {}
    base = None
    for n_nodes in (1, 2, 4):
        mn = MultiNodeMoment(
            [machine] * n_nodes, num_gpus_per_node=2, num_ssds_per_node=4
        )
        plan = mn.optimize(ds)
        sim = EpochSimulator(
            plan.topology,
            machine,
            ds,
            plan.data_placement,
            SimConfig(sample_batches=3 if quick else 6),
        )
        result = sim.run_epoch()
        net_bytes = sum(
            v
            for k, v in result.traffic.by_resource.items()
            if isinstance(k, tuple) and k[0] == "link" and "net" in k
        )
        if base is None:
            base = result.seeds_per_s
        eff = result.seeds_per_s / (base * n_nodes)
        table.add_row(
            [
                n_nodes,
                2 * n_nodes,
                result.seeds_per_s / 1e3,
                net_bytes / 1e9,
                f"{eff:.0%}",
            ]
        )
        data[n_nodes] = result.seeds_per_s
    return table, data


def test_ext_multinode_scaling(benchmark, quick):
    table, data = run_once(benchmark, run_multinode_scaling, quick)
    print()
    table.print()
    # more nodes must help, but below linear (network is not free)
    assert data[2] > data[1]
    assert data[4] > data[2]
    assert data[4] < 4.2 * data[1]
