"""Benchmark: Figure 10: end-to-end Moment vs M-GIDS vs DistDGL.

Regenerates the paper element through :mod:`repro.experiments.figures`
and prints the rows next to the paper's reference values.  Run with
``pytest benchmarks/bench_fig10_end_to_end.py --benchmark-only -s``; set
``REPRO_FULL=1`` for full-scale datasets.
"""

from repro.experiments.figures import run_fig10_end_to_end

from conftest import run_once


def test_fig10_end_to_end(benchmark, show, quick):
    result = run_once(benchmark, run_fig10_end_to_end, quick=quick)
    show(result)
    # paper shape: Moment always runs and wins; M-GIDS OOMs on UK/CL;
    # DistDGL only fits PA
    for (dataset, model), row in result.data.items():
        assert row["moment"] is not None
        if dataset in ("UK", "CL"):
            assert row["m-gids"] is None
        if dataset != "PA":
            assert row["distdgl"] is None
        for rival in ("m-gids", "distdgl"):
            if row[rival] is not None:
                assert row["moment"] > row[rival]
