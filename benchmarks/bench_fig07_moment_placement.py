"""Benchmark: Figure 7: Moment's optimized placement on Machine B.

Regenerates the paper element through :mod:`repro.experiments.figures`
and prints the rows next to the paper's reference values.  Run with
``pytest benchmarks/bench_fig07_moment_placement.py --benchmark-only -s``; set
``REPRO_FULL=1`` for full-scale datasets.
"""

from repro.experiments.figures import run_fig7_moment_placement

from conftest import run_once


def test_fig07_moment_placement(benchmark, show, quick):
    result = run_once(benchmark, run_fig7_moment_placement, quick=quick)
    show(result)
    assert len(result.table) > 0
