"""Benchmark: Figure 2: classic layouts on Machine B.

Regenerates the paper element through :mod:`repro.experiments.figures`
and prints the rows next to the paper's reference values.  Run with
``pytest benchmarks/bench_fig02_placements_b.py --benchmark-only -s``; set
``REPRO_FULL=1`` for full-scale datasets.
"""

from repro.experiments.figures import run_fig2_placements_b

from conftest import run_once


def test_fig02_placements_b(benchmark, show, quick):
    result = run_once(benchmark, run_fig2_placements_b, quick=quick)
    show(result)
    # paper shape: (c) best; (d) beats (a)/(b); (a) ~ (b)
    t = result.data
    assert t["c"] < t["d"] <= min(t["a"], t["b"]) * 1.05
