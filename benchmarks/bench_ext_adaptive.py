"""Extension benchmark: adaptive placement under workload drift
(paper Section 5, "Limitations").

A community-structured graph's training window slides 4% per epoch;
the static DDAK placement decays as its cached hot set goes cold, while
the adaptive manager (online EWMA profiling + re-placement with charged
migration time) tracks the drift.
"""

import dataclasses

import pytest

from repro.core.ddak import make_bins
from repro.core.optimizer import MomentOptimizer, capacity_plan
from repro.experiments.figures import _dataset
from repro.graphs.generators import community_graph
from repro.hardware.machines import machine_a
from repro.runtime.adaptive import DriftingWorkload, simulate_adaptive
from repro.simulator.pipeline import SimConfig
from repro.utils.report import Table

from conftest import run_once


def run_adaptive_drift(quick: bool):
    base = _dataset("IG", quick)
    graph = community_graph(
        base.graph.num_vertices, avg_degree=14, num_communities=20, seed=0
    )
    ds = dataclasses.replace(base, graph=graph)
    machine = machine_a()
    workload = DriftingWorkload(ds, drift_fraction=0.04, seed=1)
    optimizer = MomentOptimizer(machine, 4, 8)
    hot0 = optimizer.estimate_hotness(workload.dataset_at(0))
    plan = optimizer.optimize(workload.dataset_at(0), hotness=hot0)
    cap = capacity_plan(machine, ds)
    bins = make_bins(
        plan.topology,
        cap.gpu_cache_bytes,
        cap.cpu_cache_bytes,
        cap.ssd_capacity_bytes,
        traffic=plan.prediction.storage_rate,
    )
    result = simulate_adaptive(
        plan.topology,
        machine,
        workload,
        bins,
        hot0,
        num_epochs=8 if quick else 10,
        sim=SimConfig(sample_batches=3 if quick else 5),
    )
    return result


def test_ext_adaptive_placement(benchmark, quick):
    result = run_once(benchmark, run_adaptive_drift, quick)
    table = Table(
        ["epoch", "static_kseeds_s", "adaptive_kseeds_s"],
        title="Extension: adaptive placement under 4%/epoch drift",
    )
    for i, (s, a) in enumerate(
        zip(result.static_seeds_per_s, result.adaptive_seeds_per_s)
    ):
        table.add_row([i, s / 1e3, a / 1e3])
    print()
    table.print()
    print(
        f"  adaptive gain: {result.adaptive_gain * 100:.1f}% "
        f"({len(result.events)} migrations, "
        f"{sum(e.moved_bytes for e in result.events) / 1e9:.1f} GB moved)"
    )
    # adaptive must never lose and should win once drift bites
    assert result.adaptive_mean >= result.static_mean * 0.97
    assert result.events, "drift should trigger at least one re-placement"
