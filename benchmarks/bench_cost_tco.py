"""Benchmark: Section 4.2: monetary cost and TCO.

Regenerates the paper element through :mod:`repro.experiments.figures`
and prints the rows next to the paper's reference values.  Run with
``pytest benchmarks/bench_cost_tco.py --benchmark-only -s``; set
``REPRO_FULL=1`` for full-scale datasets.
"""

from repro.experiments.figures import run_cost_tco

from conftest import run_once


def test_cost_tco(benchmark, show):
    result = run_once(benchmark, run_cost_tco)
    show(result)
    assert result.data["ratio"] == __import__("pytest").approx(0.5, abs=0.05)
