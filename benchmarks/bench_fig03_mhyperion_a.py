"""Benchmark: Figure 3: M-Hyperion per placement, Machine A.

Regenerates the paper element through :mod:`repro.experiments.figures`
and prints the rows next to the paper's reference values.  Run with
``pytest benchmarks/bench_fig03_mhyperion_a.py --benchmark-only -s``; set
``REPRO_FULL=1`` for full-scale datasets.
"""

from repro.experiments.figures import run_fig3_mhyperion_a

from conftest import run_once


def test_fig03_mhyperion_a(benchmark, show, quick):
    result = run_once(benchmark, run_fig3_mhyperion_a, quick=quick)
    show(result)
    assert len(result.table) > 0
