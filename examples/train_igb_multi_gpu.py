"""Out-of-core IGB-HOM training on Machine A: Moment vs classic layouts.

Reproduces the paper's motivating scenario (Section 2.3) end-to-end:
the same GNN workload on the same hardware, under the four classic
hardware layouts and under Moment's searched placement.  Prints the
epoch breakdown and per-link traffic so you can *see* bus 9 congesting.

Run:  python examples/train_igb_multi_gpu.py  [--full]
"""

import sys

from repro import MomentSystem, RunSpec, classic_layouts, machine_a, run
from repro.graphs.datasets import IGB_HOM
from repro.baselines.mhyperion import MHyperionSystem
from repro.utils.report import Table
from repro.utils.units import fmt_rate


def main() -> None:
    full = "--full" in sys.argv
    scale = IGB_HOM.default_scale * (1 if full else 16)
    print(f"building IGB-HOM stand-in at 1/{scale:g} scale ...")
    ds = IGB_HOM.build(scale=scale, seed=0)
    print(f"  {ds!r}\n")

    machine = machine_a()
    table = Table(
        ["layout", "epoch_s", "io_ms", "compute_ms", "fabric", "qpi_gb"],
        title="GraphSAGE on IGB-HOM, Machine A, 4 GPUs + 8 SSDs",
    )

    baseline = MHyperionSystem(machine)
    for key, placement in classic_layouts(machine).items():
        r = baseline.run(RunSpec(dataset=ds, placement=placement,
                                 sample_batches=5))
        e = r.epoch
        table.add_row(
            [
                f"classic ({key})",
                e.paper_epoch_seconds,
                e.io_seconds * 1e3,
                e.compute_seconds * 1e3,
                fmt_rate(e.throughput_bytes_per_s),
                e.traffic.qpi_bytes / 1e9,
            ]
        )

    moment = run(MomentSystem(machine), RunSpec(dataset=ds, sample_batches=5))
    e = moment.epoch
    table.add_row(
        [
            "moment",
            e.paper_epoch_seconds,
            e.io_seconds * 1e3,
            e.compute_seconds * 1e3,
            fmt_rate(e.throughput_bytes_per_s),
            e.traffic.qpi_bytes / 1e9,
        ]
    )
    table.print()

    print(f"\nMoment's placement: {moment.placement!r}")
    print("busiest links under Moment (per epoch):")
    for src, dst, nbytes in e.traffic.busiest_links(5):
        print(f"  {src:>9} -> {dst:<9} {nbytes / 1e9:8.1f} GB")
    plan = moment.plan
    print(
        f"\nsearch space: {plan.num_candidates} candidates, "
        f"{plan.num_unique} after symmetry pruning, "
        f"optimized in {plan.optimize_seconds:.1f} s"
    )


if __name__ == "__main__":
    main()
