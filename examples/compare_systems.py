"""Compare Moment against M-GIDS and DistDGL — with dollar costs.

The paper's headline (Section 4.2): one optimized multi-GPU machine
beats both the out-of-core and the distributed state of the art, at
about half the monetary cost.  This example runs all three systems on
Paper100M and IGB-HOM (the datasets where at least one baseline
survives), reports throughput and OOM outcomes, and amortizes the
5-year TCO into dollars per epoch.

Run:  python examples/compare_systems.py
"""

from repro.baselines.distdgl import DistDglSystem
from repro.baselines.mgids import MGidsSystem
from repro.costs.monetary import (
    CLUSTER_NODE,
    FIVE_YEARS_H,
    MOMENT_MACHINE,
    cost_per_epoch,
    tco_comparison,
)
from repro import MomentSystem, RunSpec, classic_layouts, machine_a, run
from repro.graphs.datasets import IGB_HOM, PAPER100M
from repro.utils.report import Table


def main() -> None:
    machine = machine_a()
    stock_layout = classic_layouts(machine)["a"]  # baselines don't re-rack
    tco = tco_comparison()

    table = Table(
        ["dataset", "system", "epoch_s", "kseeds_per_s", "usd_per_epoch"],
        title="Moment vs baselines (X = out of memory)",
    )
    for spec in (PAPER100M, IGB_HOM):
        ds = spec.build(scale=spec.default_scale * 16, seed=0)

        moment = run(MomentSystem(machine), RunSpec(dataset=ds, sample_batches=5))
        usd = cost_per_epoch(
            tco["machine_a_b_usd"], FIVE_YEARS_H, moment.paper_epoch_seconds
        )
        table.add_row(
            [spec.key, "moment", moment.paper_epoch_seconds,
             moment.seeds_per_s / 1e3, f"${usd:.4f}"]
        )

        mgids = MGidsSystem(machine).run(
            RunSpec(dataset=ds, placement=stock_layout, sample_batches=5)
        )
        if mgids.ok:
            usd = cost_per_epoch(
                tco["machine_a_b_usd"], FIVE_YEARS_H,
                mgids.paper_epoch_seconds,
            )
            table.add_row(
                [spec.key, "m-gids", mgids.paper_epoch_seconds,
                 mgids.seeds_per_s / 1e3, f"${usd:.4f}"]
            )
        else:
            table.add_row([spec.key, "m-gids", "X", "X", "-"])

        dgl = DistDglSystem().run(RunSpec(dataset=ds, sample_batches=5))
        if dgl.ok:
            usd = cost_per_epoch(
                tco["cluster_c_usd"], FIVE_YEARS_H, dgl.epoch_seconds
            )
            table.add_row(
                [spec.key, "distdgl (4 nodes)", dgl.epoch_seconds,
                 dgl.seeds_per_s / 1e3, f"${usd:.4f}"]
            )
        else:
            table.add_row([spec.key, "distdgl (4 nodes)", "X", "X", "-"])

    table.print()
    print(
        f"\nhardware: Moment machine 5y TCO ${tco['machine_a_b_usd']:,.0f} "
        f"vs cluster ${tco['cluster_c_usd']:,.0f} "
        f"({tco['ratio']:.0%} of the cluster's cost)"
    )
    print("OOM causes: M-GIDS = BaM page-cache metadata in HBM; "
          "DistDGL = ~5x dataset expansion in cluster DRAM.")


if __name__ == "__main__":
    main()
