"""Optimize device placement for a custom server description.

Moment's pitch: you describe (or it extracts) your server's PCIe
topology, and the automatic module tells you *which slot every GPU and
SSD should go in* before you rack the machine.  This example:

1. parses a custom cascaded-switch server from the lspci-style text
   format (the stand-in for lspci/dmidecode extraction);
2. profiles its link bandwidths through the simulator;
3. enumerates placements (with symmetry pruning), scores them with the
   max-flow model, and prints the top recommendations;
4. shows the DDAK embedding layout for the winner.

Run:  python examples/optimize_custom_server.py
"""

from repro.core.optimizer import MomentOptimizer, OptimizerConfig
from repro.graphs.datasets import PAPER100M
from repro.hardware.machines import MachineSpec
from repro.hardware.pcie import parse_chassis, render_chassis
from repro.hardware.profiler import HardwareProfiler
from repro.hardware.specs import A100_40GB, P5510, XEON_GOLD_5320
from repro.utils.units import fmt_rate

#: A hypothetical 2-socket server: socket 0 carries a two-deep switch
#: cascade (like Machine B), socket 1 has direct bays and one x16 slot.
SERVER_DESCRIPTION = """
machine custom_cascade
rc rc0
rc rc1
switch sw0
switch sw1
link rc0 rc1 qpi
link rc0 sw0 pcie4 x16 bus11
link sw0 sw1 pcie4 x16 bus16
mem mem0 rc0 384GiB
mem mem1 rc1 384GiB
slots rc1.bays rc1 4 x4 ssd bays
slots rc1.x16 rc1 2 x16 gpu slot7
slots sw0.slots sw0 10 x16 gpu,ssd slot1-3
slots sw1.slots sw1 10 x16 gpu,ssd slot4-6
"""


def main() -> None:
    print("=== 1. parse the server description ===")
    chassis = parse_chassis(SERVER_DESCRIPTION)
    print(render_chassis(chassis))
    machine = MachineSpec(
        chassis.name, chassis, XEON_GOLD_5320, A100_40GB, P5510
    )

    print("=== 2. profile link bandwidths (simulated micro-benchmarks) ===")
    # profile a trivial all-GPU build just to exercise every trunk
    from repro.core.placement import Placement

    probe = machine.build(
        Placement(chassis, {"sw0.slots": {"gpu": 1}, "rc1.bays": {"ssd": 1}})
    )
    profiler = HardwareProfiler(probe, ssd=P5510, noise=0.02, seed=0)
    for (src, dst), bw in sorted(profiler.profile().links.items()):
        if src < dst:
            print(f"  {src:>9} -> {dst:<9} {fmt_rate(bw)}")

    print("\n=== 3. search placements for 3 GPUs + 6 SSDs ===")
    dataset = PAPER100M.build(scale=PAPER100M.default_scale * 16, seed=1)
    optimizer = MomentOptimizer(
        machine, num_gpus=3, num_ssds=6,
        config=OptimizerConfig(report_top_k=5),
    )
    plan = optimizer.optimize(dataset)
    print(plan.summary())
    print("\n  top candidates:")
    for scored in plan.scored[:5]:
        print(
            f"    {fmt_rate(scored.throughput):>12}  {scored.placement!r}"
        )

    print("\n=== 4. DDAK embedding layout for the winner ===")
    occ = plan.data_placement.occupancy(dataset.feature_bytes)
    for name, frac in sorted(occ.items()):
        count = plan.data_placement.vertices_in(name).size
        print(f"  {name:<10} {count:>8,} vertices  ({frac:.0%} full)")


if __name__ == "__main__":
    main()
