"""Quickstart: train a GNN, then co-optimize a server for it.

Three steps:

1. build a small synthetic power-law graph and *actually train* a
   NumPy GraphSAGE on it (node classification, the paper's task);
2. run Moment's automatic module on Machine A — enumerate hardware
   placements, prune symmetries, score with max flow, place data with
   DDAK;
3. simulate one training epoch on the optimized machine and print
   where the time goes.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import MomentSystem, RunSpec, machine_a, run
from repro.core.optimizer import MomentOptimizer
from repro.gnn import Trainer, graphsage, make_planted_labels
from repro.graphs.datasets import tiny_dataset
from repro.utils.units import fmt_rate


def main() -> None:
    # ------------------------------------------------------------------
    # 1. real training on a small graph
    # ------------------------------------------------------------------
    print("=== 1. train GraphSAGE (NumPy, for real) ===")
    ds = tiny_dataset(num_vertices=1500, avg_degree=10, feature_dim=32,
                      batch_size=64, seed=7)
    feats, labels = make_planted_labels(ds.graph, num_classes=4,
                                        feature_dim=32, noise=0.3, seed=7)
    model = graphsage(in_dim=32, num_classes=4, hidden_dim=64, seed=7)
    trainer = Trainer(model, ds.graph, feats, labels, fanouts=(10, 10),
                      lr=5e-3, seed=7)
    for epoch in range(5):
        stats = trainer.train_epoch(ds.train_ids, batch_size=ds.batch_size)
        print(f"  epoch {epoch}: loss={stats.mean_loss:.3f} "
              f"acc={stats.mean_accuracy:.2f}")

    # ------------------------------------------------------------------
    # 2. co-optimize hardware + data placement for an out-of-core run
    #    (a 1/6400-scale IGB-HOM stand-in: big enough that caches no
    #    longer hold everything, so tiering decisions matter)
    # ------------------------------------------------------------------
    print("\n=== 2. Moment's automatic module on Machine A ===")
    from repro.graphs.datasets import IGB_HOM

    ds = IGB_HOM.build(scale=IGB_HOM.default_scale * 16, seed=7)
    machine = machine_a()
    optimizer = MomentOptimizer(machine, num_gpus=4, num_ssds=8)
    plan = optimizer.optimize(ds)
    print(plan.summary())
    occupancy = plan.data_placement.occupancy(ds.feature_bytes)
    hottest = sorted(occupancy.items(), key=lambda kv: -kv[1])[:4]
    print("  fullest bins:",
          ", ".join(f"{name}={frac:.0%}" for name, frac in hottest))

    # ------------------------------------------------------------------
    # 3. simulate an epoch on the optimized machine
    # ------------------------------------------------------------------
    print("\n=== 3. simulated epoch on the chosen placement ===")
    result = run(MomentSystem(machine), RunSpec(dataset=ds, sample_batches=5))
    epoch = result.epoch
    print(f"  epoch time:        {epoch.paper_epoch_seconds * 1e3:.1f} ms "
          f"({epoch.num_steps} steps)")
    print(f"  stage (worst GPU): io={epoch.io_seconds * 1e3:.2f} ms, "
          f"sample={epoch.sample_seconds * 1e3:.2f} ms, "
          f"compute={epoch.compute_seconds * 1e3:.2f} ms")
    print(f"  fabric throughput: {fmt_rate(epoch.throughput_bytes_per_s)}")
    print(f"  cache hits (local bytes): "
          f"{epoch.local_bytes / max(epoch.local_bytes + epoch.external_bytes, 1):.0%}")


if __name__ == "__main__":
    main()
