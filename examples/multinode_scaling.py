"""Scale Moment beyond one machine (the paper's Section-5 extension).

Builds clusters of 1, 2, and 4 Machine-A boxes (2 GPUs + 4 SSDs each),
runs the cluster-level co-optimizer — per-node hardware placement via
the single-machine module, then one *global* DDAK across every node's
bins — and simulates epochs on the merged topology, where remote reads
really traverse PCIe -> NIC -> network core -> NIC -> PCIe.

Run:  python examples/multinode_scaling.py
"""

from repro.cluster.multinode import MultiNodeMoment, node_local_bins
from repro.graphs.datasets import IGB_HOM
from repro.hardware.machines import machine_a
from repro.simulator.pipeline import EpochSimulator, SimConfig
from repro.utils.report import Table


def main() -> None:
    ds = IGB_HOM.build(scale=IGB_HOM.default_scale * 16, seed=0)
    machine = machine_a()
    print(f"dataset: {ds!r}\n")

    table = Table(
        ["nodes", "gpus", "epoch_s", "kseeds_per_s", "net_gb", "speedup"],
        title="Multi-node Moment: 2 GPUs + 4 SSDs per node, 100 Gb/s NICs",
    )
    base = None
    for n_nodes in (1, 2, 4):
        optimizer = MultiNodeMoment(
            [machine] * n_nodes, num_gpus_per_node=2, num_ssds_per_node=4
        )
        plan = optimizer.optimize(ds)
        sim = EpochSimulator(
            plan.topology, machine, ds, plan.data_placement,
            SimConfig(sample_batches=4),
        )
        result = sim.run_epoch()
        net_bytes = sum(
            v
            for key, v in result.traffic.by_resource.items()
            if isinstance(key, tuple) and key[0] == "link" and "net" in key
        )
        if base is None:
            base = result.seeds_per_s
        table.add_row(
            [
                n_nodes,
                2 * n_nodes,
                result.paper_epoch_seconds,
                result.seeds_per_s / 1e3,
                net_bytes / 1e9,
                f"{result.seeds_per_s / base:.2f}x",
            ]
        )
        if n_nodes == 2:
            n0 = node_local_bins(plan.data_placement, "n0")
            counts = {
                b: plan.data_placement.vertices_in(b).size for b in n0[:4]
            }
            print(f"  sample of n0's bins: {counts}")
    table.print()
    print(
        "\nscaling is sublinear on purpose: the dataset is shared, so a "
        "growing share of reads crosses the 100 Gb/s network — exactly "
        "the congestion the paper says local-first placement mitigates."
    )


if __name__ == "__main__":
    main()
