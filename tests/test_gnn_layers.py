"""Gradient-checked tests for the NumPy GNN layers."""

import numpy as np
import pytest

from repro.gnn.layers import Block, GATConv, SAGEConv, _segment_softmax, mean_aggregate


def rand_block(n=8, e=20, seed=0):
    rng = np.random.default_rng(seed)
    return Block(rng.integers(0, n, e), rng.integers(0, n, e), n)


def numerical_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar f at array x."""
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        fp = f()
        x[idx] = orig - eps
        fm = f()
        x[idx] = orig
        g[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return g


class TestBlock:
    def test_valid(self):
        b = Block([0, 1], [1, 2], 3)
        assert b.num_edges == 2

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            Block([0], [5], 3)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            Block([0, 1], [1], 3)


class TestMeanAggregate:
    def test_simple_mean(self):
        # vertex 0 aggregates from 1 and 2
        b = Block([0, 0], [1, 2], 3)
        h = np.array([[0.0], [2.0], [4.0]])
        agg, counts = mean_aggregate(b, h)
        assert agg[0, 0] == pytest.approx(3.0)
        assert agg[1, 0] == 0.0 and agg[2, 0] == 0.0
        assert counts[0] == 2

    def test_isolated_gets_zero(self):
        b = Block([], [], 2)
        h = np.ones((2, 3))
        agg, counts = mean_aggregate(b, h)
        assert np.all(agg == 0)


class TestSegmentSoftmax:
    def test_sums_to_one_per_segment(self):
        rng = np.random.default_rng(0)
        seg = rng.integers(0, 5, 40)
        scores = rng.standard_normal((40, 3))
        sm = _segment_softmax(scores, seg, 5)
        sums = np.zeros((5, 3))
        np.add.at(sums, seg, sm)
        present = np.unique(seg)
        assert np.allclose(sums[present], 1.0)

    def test_stability_large_scores(self):
        seg = np.array([0, 0])
        sm = _segment_softmax(np.array([1000.0, 999.0]), seg, 1)
        assert np.isfinite(sm).all()
        assert sm[:, 0].sum() == pytest.approx(1.0)


class TestSAGEConv:
    def test_forward_shape(self):
        layer = SAGEConv(4, 6, seed=0)
        b = rand_block()
        out = layer.forward(b, np.random.default_rng(1).standard_normal((8, 4)))
        assert out.shape == (8, 6)

    def test_forward_rejects_bad_shape(self):
        layer = SAGEConv(4, 6, seed=0)
        with pytest.raises(ValueError):
            layer.forward(rand_block(), np.zeros((8, 5)))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            SAGEConv(2, 2, seed=0).backward(np.zeros((3, 2)))

    @pytest.mark.parametrize("pname", ["w_self", "w_neigh", "bias"])
    def test_parameter_gradients(self, pname):
        rng = np.random.default_rng(2)
        layer = SAGEConv(3, 4, activation=True, seed=0)
        b = rand_block(n=6, e=12, seed=3)
        h = rng.standard_normal((6, 3))
        w_out = rng.standard_normal((6, 4))  # random linear loss

        def loss():
            return float((layer.forward(b, h) * w_out).sum())

        loss()
        layer.backward(w_out)
        got = layer.grads[pname]
        want = numerical_grad(loss, layer.params[pname])
        assert np.allclose(got, want, atol=1e-5)

    def test_input_gradient(self):
        rng = np.random.default_rng(4)
        layer = SAGEConv(3, 4, seed=1)
        b = rand_block(n=6, e=12, seed=5)
        h = rng.standard_normal((6, 3))
        w_out = rng.standard_normal((6, 4))

        def loss():
            return float((layer.forward(b, h) * w_out).sum())

        loss()
        got = layer.backward(w_out)
        want = numerical_grad(loss, h)
        assert np.allclose(got, want, atol=1e-5)


class TestGATConv:
    def test_forward_shape(self):
        layer = GATConv(4, 8, num_heads=2, seed=0)
        b = rand_block()
        out = layer.forward(b, np.random.default_rng(1).standard_normal((8, 4)))
        assert out.shape == (8, 8)

    def test_heads_must_divide(self):
        with pytest.raises(ValueError):
            GATConv(4, 7, num_heads=2)

    def test_isolated_vertex_self_fallback(self):
        layer = GATConv(3, 6, num_heads=2, activation=False, seed=0)
        b = Block([0], [1], 3)  # vertex 2 has no in-edges
        h = np.random.default_rng(0).standard_normal((3, 3))
        out = layer.forward(b, h)
        hw = (h @ layer.params["w"]) + layer.params["bias"]
        assert np.allclose(out[2], hw[2])

    @pytest.mark.parametrize("pname", ["w", "attn_src", "attn_dst", "bias"])
    def test_parameter_gradients(self, pname):
        rng = np.random.default_rng(7)
        layer = GATConv(3, 4, num_heads=2, activation=True, seed=2)
        b = rand_block(n=5, e=10, seed=8)
        h = rng.standard_normal((5, 3))
        w_out = rng.standard_normal((5, 4))

        def loss():
            return float((layer.forward(b, h) * w_out).sum())

        loss()
        layer.backward(w_out)
        got = layer.grads[pname]
        want = numerical_grad(loss, layer.params[pname])
        assert np.allclose(got, want, atol=1e-5), pname

    def test_input_gradient(self):
        rng = np.random.default_rng(9)
        layer = GATConv(3, 4, num_heads=1, activation=False, seed=3)
        b = rand_block(n=5, e=10, seed=10)
        h = rng.standard_normal((5, 3))
        w_out = rng.standard_normal((5, 4))

        def loss():
            return float((layer.forward(b, h) * w_out).sum())

        loss()
        got = layer.backward(w_out)
        want = numerical_grad(loss, h)
        assert np.allclose(got, want, atol=1e-5)


class TestGCNConv:
    def test_forward_shape(self):
        from repro.gnn.layers import GCNConv
        layer = GCNConv(4, 6, seed=0)
        b = rand_block()
        out = layer.forward(b, np.random.default_rng(1).standard_normal((8, 4)))
        assert out.shape == (8, 6)

    @pytest.mark.parametrize("pname", ["w", "bias"])
    def test_parameter_gradients(self, pname):
        from repro.gnn.layers import GCNConv
        rng = np.random.default_rng(11)
        layer = GCNConv(3, 4, activation=True, seed=4)
        b = rand_block(n=6, e=12, seed=12)
        h = rng.standard_normal((6, 3))
        w_out = rng.standard_normal((6, 4))

        def loss():
            return float((layer.forward(b, h) * w_out).sum())

        loss()
        layer.backward(w_out)
        got = layer.grads[pname]
        want = numerical_grad(loss, layer.params[pname])
        assert np.allclose(got, want, atol=1e-5)

    def test_input_gradient(self):
        from repro.gnn.layers import GCNConv
        rng = np.random.default_rng(13)
        layer = GCNConv(3, 4, seed=5)
        b = rand_block(n=6, e=12, seed=14)
        h = rng.standard_normal((6, 3))
        w_out = rng.standard_normal((6, 4))

        def loss():
            return float((layer.forward(b, h) * w_out).sum())

        loss()
        got = layer.backward(w_out)
        want = numerical_grad(loss, h)
        assert np.allclose(got, want, atol=1e-5)

    def test_isolated_vertex_keeps_self(self):
        from repro.gnn.layers import Block, GCNConv
        layer = GCNConv(3, 3, activation=False, seed=0)
        b = Block([], [], 2)
        h = np.random.default_rng(0).standard_normal((2, 3))
        out = layer.forward(b, h)
        want = h @ layer.params["w"] + layer.params["bias"]
        assert np.allclose(out, want)
