"""Tests for the automatic module (MomentOptimizer) and the
multicommodity predictor."""

import numpy as np
import pytest

from repro.core.ddak import GPU_REPLICATED
from repro.core.flowmodel import TrafficDemand, min_completion_time
from repro.core.mcmf import multicommodity_min_time
from repro.core.optimizer import (
    MomentOptimizer,
    OptimizerConfig,
    capacity_plan,
    concrete_demand,
    scoring_demand,
    tier_fractions,
)
from repro.core.placement import GPU, Placement, SSD
from repro.graphs.datasets import IGB_HOM, tiny_dataset
from repro.hardware.machines import classic_layouts, machine_a, machine_b
from repro.utils.units import GB


@pytest.fixture(scope="module")
def dataset():
    # small IG stand-in so capacity maths uses paper specs
    return IGB_HOM.build(scale=IGB_HOM.default_scale * 40, seed=0)


@pytest.fixture(scope="module")
def machine():
    return machine_a()


@pytest.fixture(scope="module")
def optimizer(machine):
    return MomentOptimizer(machine, num_gpus=2, num_ssds=4)


@pytest.fixture(scope="module")
def plan(optimizer, dataset):
    return optimizer.optimize(dataset)


class TestCapacityPlan:
    def test_budgets_positive_and_scaled(self, machine, dataset):
        plan = capacity_plan(machine, dataset)
        assert plan.gpu_cache_bytes > 0
        assert plan.cpu_cache_bytes > 0
        assert plan.ssd_capacity_bytes > 0
        # scaled: far below the physical sizes
        assert plan.gpu_cache_bytes < machine.gpu.hbm_bytes

    def test_cpu_cache_is_one_percent_rule(self, machine, dataset):
        plan = capacity_plan(machine, dataset)
        spec = dataset.spec
        target = 0.01 * spec.num_vertices * spec.feature_bytes / 2
        assert plan.cpu_cache_bytes == pytest.approx(
            dataset.scaled_capacity(target), rel=1e-6
        )

    def test_fraction_validation(self, machine, dataset):
        with pytest.raises(ValueError):
            capacity_plan(machine, dataset, gpu_cache_fraction=1.5)


class TestTierFractions:
    def test_sum_to_one(self, machine, dataset):
        plan = capacity_plan(machine, dataset)
        h = np.random.default_rng(0).random(dataset.graph.num_vertices)
        f = tier_fractions(h, dataset.feature_bytes, plan, 4)
        assert sum(f) == pytest.approx(1.0)
        assert all(x >= 0 for x in f)

    def test_skew_raises_gpu_fraction(self, machine, dataset):
        plan = capacity_plan(machine, dataset)
        n = dataset.graph.num_vertices
        uniform = np.ones(n)
        skewed = (np.arange(1, n + 1)) ** -1.0
        f_u = tier_fractions(uniform, dataset.feature_bytes, plan, 4)
        f_s = tier_fractions(skewed, dataset.feature_bytes, plan, 4)
        assert f_s[0] > f_u[0]

    def test_partitioned_policy_caches_more(self, machine, dataset):
        plan = capacity_plan(machine, dataset)
        h = (np.arange(1, dataset.graph.num_vertices + 1)) ** -0.8
        f_rep = tier_fractions(h, dataset.feature_bytes, plan, 4)
        f_part = tier_fractions(
            h, dataset.feature_bytes, plan, 4, gpu_cache_policy="partitioned"
        )
        assert f_part[0] > f_rep[0]

    def test_zero_hotness(self, machine, dataset):
        plan = capacity_plan(machine, dataset)
        f = tier_fractions(
            np.zeros(dataset.graph.num_vertices), dataset.feature_bytes, plan, 4
        )
        assert f == (0.0, 0.0, 1.0)


class TestScoringDemands:
    def test_replicated_has_no_peer_entries(self, machine):
        topo = machine.build(classic_layouts(machine)["c"])
        d = scoring_demand(topo, (0.5, 0.2, 0.3))
        assert not any(":mem" in b for (b, _) in d.entries)

    def test_partitioned_has_peer_entries(self, machine):
        topo = machine.build(classic_layouts(machine)["c"])
        d = scoring_demand(
            topo, (0.5, 0.2, 0.3), gpu_cache_policy="partitioned"
        )
        assert any(":mem" in b for (b, _) in d.entries)

    def test_concrete_fans_out_to_all_gpus(self, machine):
        topo = machine.build(classic_layouts(machine)["c"])
        d = concrete_demand(topo, (0.0, 0.0, 1.0), {})
        gpus = set(topo.gpus())
        for ssd in topo.ssds():
            assert {g for (b, g) in d.entries if b == ssd} == gpus


class TestMulticommodity:
    def test_matches_capacity_on_line(self):
        from repro.core.topology import NodeKind, Topology

        t = Topology()
        t.add("rc", NodeKind.ROOT_COMPLEX)
        t.add("gpu0", NodeKind.GPU)
        t.add("ssd0", NodeKind.SSD, egress_bw=6 * GB)
        t.add_link("ssd0", "rc", 6 * GB)
        t.add_link("gpu0", "rc", 24 * GB)
        d = TrafficDemand()
        d.add("ssd0", "gpu0", 6 * GB)
        pred = multicommodity_min_time(t, d)
        assert pred.time == pytest.approx(1.0, rel=1e-3)
        assert pred.throughput == pytest.approx(6 * GB, rel=1e-3)

    def test_never_exceeds_single_commodity(self, machine):
        """The LP (exact) can't beat the single-commodity relaxation."""
        topo = machine.build(classic_layouts(machine)["c"])
        d = concrete_demand(topo, (0.0, 0.1, 0.9), {})
        lp = multicommodity_min_time(topo, d)
        sc = min_completion_time(topo, d)
        assert lp.time >= sc.time * 0.999

    def test_rejects_class_demand(self, machine):
        from repro.core.flowmodel import SSD_CLASS

        topo = machine.build(classic_layouts(machine)["c"])
        d = TrafficDemand()
        d.add(SSD_CLASS, "gpu0", 1e9)
        with pytest.raises(ValueError):
            multicommodity_min_time(topo, d)

    def test_zero_demand(self, machine):
        topo = machine.build(classic_layouts(machine)["c"])
        pred = multicommodity_min_time(topo, TrafficDemand())
        assert pred.time == 0.0

    def test_utilisation_bounded(self, machine):
        topo = machine.build(classic_layouts(machine)["b"])
        d = concrete_demand(topo, (0.0, 0.0, 1.0), {})
        pred = multicommodity_min_time(topo, d)
        assert pred.utilisation
        assert all(0 <= u <= 1.0 for u in pred.utilisation.values())
        assert pred.bottlenecks()  # something saturates at the optimum


class TestOptimizer:
    def test_plan_structure(self, plan, optimizer):
        assert plan.placement.num_gpus == 2
        assert plan.placement.num_ssds == 4
        assert plan.num_candidates >= plan.num_unique >= 1
        assert plan.predicted_throughput > 0
        assert plan.data_placement is not None
        plan.data_placement.validate(4096)
        assert GPU_REPLICATED in [b.name for b in plan.data_placement.bins]

    def test_scored_sorted_desc(self, plan):
        scores = [s.throughput for s in plan.scored]
        assert scores == sorted(scores, reverse=True)

    def test_winner_at_least_matches_classics(self, optimizer, plan, dataset):
        for key, p in classic_layouts(
            optimizer.machine, num_gpus=2, num_ssds=4
        ).items():
            sc = optimizer.score_placement(p, plan.fractions)
            assert plan.predicted_throughput >= sc.throughput * 0.999, key

    def test_fixed_candidate_restricts_search(self, optimizer, dataset):
        p = classic_layouts(optimizer.machine, num_gpus=2, num_ssds=4)["c"]
        plan = optimizer.optimize(dataset, candidates=[p])
        assert plan.placement == p
        assert plan.num_unique == 1

    def test_summary_renders(self, plan):
        text = plan.summary()
        assert "predicted throughput" in text
        assert "search space" in text

    def test_invalid_pool(self, machine):
        with pytest.raises(ValueError):
            MomentOptimizer(machine, num_gpus=0, num_ssds=4)

    def test_infeasible_pool_raises(self, dataset):
        m = machine_a()
        opt = MomentOptimizer(m, num_gpus=4, num_ssds=8)
        with pytest.raises(ValueError):
            # 30 GPUs never fit
            MomentOptimizer(m, num_gpus=30, num_ssds=1).optimize(dataset)

    def test_hotness_smoothing_covers_all_vertices(self, optimizer, dataset):
        h = optimizer.estimate_hotness(dataset)
        assert h.shape == (dataset.graph.num_vertices,)
        assert (h > 0).all()  # degree-proxy smoothing: no zero ties
