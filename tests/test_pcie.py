"""Tests for the lspci-style chassis description parser."""

import pytest

from repro.core.topology import LinkKind, NodeKind
from repro.hardware.machines import machine_a
from repro.hardware.pcie import PcieParseError, parse_chassis, render_chassis
from repro.hardware.specs import QPI_BW, pcie_bw

GOOD = """
machine test_box
rc rc0
rc rc1
switch sw0
link rc0 rc1 qpi
link rc0 sw0 pcie4 x16 bus9
mem mem0 rc0 384GiB
slots rc0.bays rc0 4 x4 ssd bus1-4
slots sw0.slots sw0 12 x16 gpu,ssd
"""


class TestParse:
    def test_parses_structure(self):
        ch = parse_chassis(GOOD)
        assert ch.name == "test_box"
        assert ch.interconnects["rc0"] is NodeKind.ROOT_COMPLEX
        assert ch.interconnects["sw0"] is NodeKind.SWITCH
        assert len(ch.trunks) == 2
        assert len(ch.memories) == 1
        assert [g.name for g in ch.slot_groups] == ["rc0.bays", "sw0.slots"]

    def test_link_kinds_and_bandwidths(self):
        ch = parse_chassis(GOOD)
        qpi = next(t for t in ch.trunks if t.kind is LinkKind.QPI)
        assert qpi.capacity == QPI_BW
        pcie = next(t for t in ch.trunks if t.kind is LinkKind.PCIE)
        assert pcie.capacity == pcie_bw(4, 16)
        assert pcie.label == "bus9"

    def test_slot_group_details(self):
        ch = parse_chassis(GOOD)
        bays = ch.group("rc0.bays")
        assert bays.units == 4
        assert bays.allowed == frozenset({"ssd"})
        slots = ch.group("sw0.slots")
        assert slots.allowed == frozenset({"gpu", "ssd"})

    def test_comments_and_blank_lines(self):
        ch = parse_chassis("machine x\n# a comment\n\nrc rc0\n")
        assert ch.name == "x"

    def test_memory_size_units(self):
        ch = parse_chassis("machine x\nrc rc0\nmem m rc0 1TiB\n")
        assert ch.memories[0].capacity_bytes == pytest.approx(1024**4)

    def test_nvlink_trunk(self):
        ch = parse_chassis("machine x\nrc rc0\nrc rc1\nlink rc0 rc1 nvlink\n")
        assert ch.trunks[0].kind is LinkKind.NVLINK


class TestParseErrors:
    @pytest.mark.parametrize(
        "text, fragment",
        [
            ("rc rc0\n", "first line must be 'machine'"),
            ("machine a\nmachine b\n", "duplicate machine"),
            ("machine a\nbogus x\n", "unknown keyword"),
            ("machine a\nrc rc0\nlink rc0 rc0 warp\n", "unknown link kind"),
            ("machine a\nrc rc0\nmem m rc0 12parsecs\n", "bad size"),
            ("machine a\nrc rc0\nslots s rc0 4 wide ssd\n", "bad lane width"),
            ("machine a\nrc rc0\nlink rc0 sw pcie4\n", "lane width"),
            ("", "empty description"),
        ],
    )
    def test_bad_inputs(self, text, fragment):
        with pytest.raises(PcieParseError, match=fragment):
            parse_chassis(text)

    def test_error_carries_line_number(self):
        try:
            parse_chassis("machine a\nbogus\n")
        except PcieParseError as err:
            assert err.lineno == 2


class TestRoundTrip:
    def test_render_parse_roundtrip(self):
        ch = parse_chassis(GOOD)
        text = render_chassis(ch)
        again = parse_chassis(text)
        assert again.name == ch.name
        assert set(again.interconnects) == set(ch.interconnects)
        assert [g.name for g in again.slot_groups] == [
            g.name for g in ch.slot_groups
        ]

    def test_machine_a_roundtrips(self):
        ch = machine_a().chassis
        again = parse_chassis(render_chassis(ch))
        assert set(again.interconnects) == set(ch.interconnects)
        assert len(again.trunks) == len(ch.trunks)
        for g in ch.slot_groups:
            g2 = again.group(g.name)
            assert g2.units == g.units
            assert g2.allowed == g.allowed
