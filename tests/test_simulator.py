"""Tests for routing, I/O stack, memory ledger, traffic accounting, and
the epoch simulator."""

import numpy as np
import pytest

from repro.core.ddak import GPU_REPLICATED, ddak_place, hash_place, make_bins
from repro.graphs.datasets import tiny_dataset
from repro.hardware.machines import classic_layouts, machine_a, machine_b
from repro.hardware.specs import P5510
from repro.sampling.hotness import degree_proxy_hotness
from repro.simulator.binding import static_ssd_binding
from repro.simulator.iostack import (
    GpuIoQueues,
    IoStackConfig,
    effective_read_bw,
    pages_for_bytes,
)
from repro.simulator.memory import (
    MemoryLedger,
    OutOfMemoryError,
    activation_bytes,
    bam_page_cache_metadata_bytes,
    distdgl_partition_bytes,
    io_buffer_bytes,
)
from repro.simulator.pipeline import EpochSimulator, SimConfig
from repro.simulator.routing import Router, egress_key, link_key, p2p_key
from repro.simulator.traffic import TrafficAccount
from repro.utils.units import GB


@pytest.fixture(scope="module")
def machine():
    return machine_a()


@pytest.fixture(scope="module")
def topo_c(machine):
    return machine.build(classic_layouts(machine)["c"])


@pytest.fixture(scope="module")
def dataset():
    return tiny_dataset(num_vertices=3000, avg_degree=8, batch_size=64, seed=0)


def make_placement(topo, dataset, method="ddak"):
    bins = make_bins(
        topo,
        gpu_cache_bytes=200 * dataset.feature_bytes,
        cpu_cache_bytes=100 * dataset.feature_bytes,
        ssd_capacity_bytes=1e12,
    )
    hot = degree_proxy_hotness(dataset.graph)
    if method == "ddak":
        return ddak_place(bins, hot, dataset.feature_bytes)
    return hash_place(bins, hot, dataset.feature_bytes)


class TestRouter:
    def test_local_cache_path_empty(self, topo_c):
        r = Router(topo_c)
        assert r.path("gpu0:mem", "gpu0") == ()

    def test_peer_cache_path_nonempty(self, topo_c):
        r = Router(topo_c)
        path = r.path("gpu0:mem", "gpu1")
        assert path  # crosses the switch
        assert any(k[0] == "link" for k in path)

    def test_ssd_path_has_egress(self, topo_c):
        r = Router(topo_c)
        path = r.path("ssd0", "gpu0")
        assert path[0] == egress_key("ssd0")

    def test_local_switch_p2p_avoids_root(self, topo_c):
        # (c): ssd0 and gpu0 share plx0 — route must not touch rc0
        r = Router(topo_c)
        path = r.path("ssd0", "gpu0")
        assert not any(k[0] == "link" and "rc0" in k for k in path)

    def test_cross_socket_path_gets_p2p_pool(self, topo_c):
        r = Router(topo_c)
        # ssd4 lives on plx1 (rc1 side); gpu0 on plx0
        path = r.path("ssd4", "gpu0")
        assert any(k[0] == "qpi_p2p" for k in path)
        assert r.crosses_qpi("ssd4", "gpu0")
        assert not r.crosses_qpi("ssd0", "gpu0")

    def test_capacities_include_p2p_pool(self, topo_c):
        caps = Router(topo_c).capacities
        assert p2p_key("rc0", "rc1") in caps
        assert caps[p2p_key("rc0", "rc1")] < caps[link_key("rc0", "rc1")]

    def test_unknown_route(self, topo_c):
        with pytest.raises(KeyError):
            Router(topo_c).path("nope", "gpu0")

    def test_qpi_link_keys(self, topo_c):
        keys = Router(topo_c).qpi_link_keys()
        assert link_key("rc0", "rc1") in keys
        assert link_key("rc1", "rc0") in keys


class TestIoStack:
    def test_effective_bw_iops_bound_small_pages(self):
        small = effective_read_bw(P5510, page_bytes=512)
        big = effective_read_bw(P5510, page_bytes=4096)
        assert small < big <= P5510.read_bw

    def test_effective_bw_saturates_with_depth(self):
        shallow = effective_read_bw(P5510, 4096, queue_depth=1)
        deep = effective_read_bw(P5510, 4096, queue_depth=1024)
        assert deep > 5 * shallow

    def test_pages_for_bytes(self):
        assert pages_for_bytes(0, 4096) == 0
        assert pages_for_bytes(1, 4096) == 1
        assert pages_for_bytes(4096, 4096) == 1
        assert pages_for_bytes(4097, 4096) == 2
        with pytest.raises(ValueError):
            pages_for_bytes(-1, 4096)

    def test_queue_occupancy(self):
        q = GpuIoQueues(IoStackConfig(num_queue_pairs=2, queue_depth=4), [P5510])
        assert q.submit(8) == 0.0  # fits exactly
        stall = q.submit(4)  # overflow
        assert stall > 0
        q.complete(8)
        assert q.outstanding == 0
        q.drain()

    def test_submit_cost(self):
        q = GpuIoQueues(IoStackConfig(), [P5510])
        assert q.submit_cost_s(1000) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            GpuIoQueues(IoStackConfig(), [])
        q = GpuIoQueues(IoStackConfig(), [P5510])
        with pytest.raises(ValueError):
            q.submit(-1)


class TestMemoryLedger:
    def test_reserve_and_overflow(self):
        led = MemoryLedger("gpu", 100.0)
        led.reserve("a", 60)
        assert led.free_bytes == 40
        with pytest.raises(OutOfMemoryError):
            led.reserve("b", 50)
        assert led.try_reserve("c", 40)
        assert not led.try_reserve("d", 1)

    def test_duplicate_label(self):
        led = MemoryLedger("gpu", 100.0)
        led.reserve("a", 10)
        with pytest.raises(ValueError):
            led.reserve("a", 10)

    def test_release(self):
        led = MemoryLedger("gpu", 100.0)
        led.reserve("a", 60)
        led.release("a")
        assert led.free_bytes == 100

    def test_report(self):
        led = MemoryLedger("gpu", 1e9)
        led.reserve("cache", 5e8)
        assert "cache" in led.report()

    def test_footprint_formulas(self):
        assert activation_bytes(1000, 256, 2) > 0
        assert io_buffer_bytes(128, 1024, 4096) == 128 * 1024 * 4096
        # BaM metadata: UK's 3.2 TB features exceed a 40 GB budget
        meta = bam_page_cache_metadata_bytes(3.2e12)
        assert meta > 40e9
        assert distdgl_partition_bytes(4e12, 4) == pytest.approx(5e12)


class TestBinding:
    def test_local_binding_on_c(self, machine):
        topo = machine.build(classic_layouts(machine)["c"])
        binding = static_ssd_binding(topo)
        # (c): every GPU gets 2 switch-local drives
        for gpu, drives in binding.items():
            assert len(drives) == 2
        all_drives = [d for ds_ in binding.values() for d in ds_]
        assert len(all_drives) == len(set(all_drives))  # disjoint

    def test_local_only_on_d(self, machine):
        # (d): 4 GPUs + 4 SSDs on plx0 -> one local drive each, the
        # remote drives are NOT topped up (paper Section 4.6)
        topo = machine.build(classic_layouts(machine)["d"])
        binding = static_ssd_binding(topo)
        for gpu, drives in binding.items():
            assert len(drives) == 1

    def test_no_qpi_tier_on_b(self, machine):
        # (b): SSDs on bays; GPUs on plx0 bind rc0's bays (no QPI)
        topo = machine.build(classic_layouts(machine)["b"])
        binding = static_ssd_binding(topo)
        router = Router(topo)
        for gpu, drives in binding.items():
            for d in drives:
                assert not router.crosses_qpi(d, gpu)

    def test_explicit_count(self, machine):
        topo = machine.build(classic_layouts(machine)["c"])
        binding = static_ssd_binding(topo, drives_per_gpu=1)
        assert all(len(d) == 1 for d in binding.values())

    def test_validation(self, machine):
        topo = machine.build(classic_layouts(machine)["c"])
        with pytest.raises(ValueError):
            static_ssd_binding(topo, drives_per_gpu=0)


class TestTrafficAccount:
    def test_accumulate_and_kinds(self, topo_c):
        acc = TrafficAccount(topo_c)
        acc.add({link_key("rc0", "rc1"): 100.0, link_key("rc1", "rc0"): 50.0})
        acc.add({link_key("rc0", "plx0"): 10.0})
        assert acc.qpi_bytes == 150.0
        assert acc.link_bytes("rc0", "rc1") == 150.0
        assert acc.link_bytes("rc0", "rc1", both_directions=False) == 100.0
        kinds = acc.bytes_by_kind()
        assert kinds["qpi"] == 150.0
        assert kinds["pcie"] == 10.0

    def test_scaled(self, topo_c):
        acc = TrafficAccount(topo_c)
        acc.add({link_key("rc0", "rc1"): 100.0})
        assert acc.scaled(2.0).qpi_bytes == 200.0

    def test_busiest(self, topo_c):
        acc = TrafficAccount(topo_c)
        acc.add({link_key("rc0", "rc1"): 5.0, link_key("rc0", "plx0"): 9.0})
        top = acc.busiest_links(1)
        assert top[0][:2] == ("rc0", "plx0")


class TestEpochSimulator:
    def test_runs_and_reports(self, machine, topo_c, dataset):
        placement = make_placement(topo_c, dataset)
        sim = EpochSimulator(
            topo_c, machine, dataset, placement, SimConfig(sample_batches=3)
        )
        result = sim.run_epoch()
        assert result.epoch_seconds > 0
        assert result.num_steps >= 1
        assert result.external_bytes > 0
        assert result.local_bytes >= 0
        assert set(result.per_gpu_inlet) == set(topo_c.gpus())
        assert result.seeds_per_s > 0

    def test_replicated_cache_is_local(self, machine, topo_c, dataset):
        placement = make_placement(topo_c, dataset)
        sim = EpochSimulator(
            topo_c, machine, dataset, placement, SimConfig(sample_batches=2)
        )
        result = sim.run_epoch()
        # no demand entry may reference the replicated bin
        assert not any(
            b == GPU_REPLICATED for (b, _) in result.demand.entries
        )

    def test_contended_layout_slower(self, machine, dataset):
        lay = classic_layouts(machine)
        results = {}
        for key in ("b", "c"):
            topo = machine.build(lay[key])
            placement = make_placement(topo, dataset)
            sim = EpochSimulator(
                topo, machine, dataset, placement, SimConfig(sample_batches=3)
            )
            results[key] = sim.run_epoch()
        # tiny test batches are compute-bound, so compare the I/O stage:
        # layout (b) funnels everything through bus9
        assert results["b"].io_seconds > 1.3 * results["c"].io_seconds

    def test_binding_restricts_drives(self, machine, topo_c, dataset):
        placement = make_placement(topo_c, dataset)
        binding = static_ssd_binding(topo_c)
        sim = EpochSimulator(
            topo_c,
            machine,
            dataset,
            placement,
            SimConfig(sample_batches=2),
            ssd_binding=binding,
        )
        result = sim.run_epoch()
        for (bin_name, gpu), _ in result.demand.entries.items():
            if bin_name.startswith("ssd"):
                assert bin_name in binding[gpu]

    def test_deterministic(self, machine, topo_c, dataset):
        placement = make_placement(topo_c, dataset)
        r1 = EpochSimulator(
            topo_c, machine, dataset, placement, SimConfig(sample_batches=2, seed=5)
        ).run_epoch()
        r2 = EpochSimulator(
            topo_c, machine, dataset, placement, SimConfig(sample_batches=2, seed=5)
        ).run_epoch()
        assert r1.epoch_seconds == pytest.approx(r2.epoch_seconds)
        assert r1.external_bytes == pytest.approx(r2.external_bytes)

    def test_gat_slower_than_sage(self, machine, topo_c, dataset):
        placement = make_placement(topo_c, dataset)
        times = {}
        for model in ("graphsage", "gat"):
            sim = EpochSimulator(
                topo_c,
                machine,
                dataset,
                placement,
                SimConfig(sample_batches=2, model_name=model),
            )
            times[model] = sim.run_epoch().compute_seconds
        assert times["gat"] > times["graphsage"]

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SimConfig(model_name="transformer")
        with pytest.raises(ValueError):
            SimConfig(sample_batches=0)
        with pytest.raises(ValueError):
            SimConfig(fanouts=())

    def test_placement_coverage_checked(self, machine, topo_c, dataset):
        placement = make_placement(topo_c, dataset)
        import dataclasses

        bad = dataclasses.replace(placement, bin_of=placement.bin_of[:-5])
        with pytest.raises(ValueError):
            EpochSimulator(topo_c, machine, dataset, bad)
