"""Cross-module integration and property tests.

These run the system end-to-end the way the paper's narrative does and
check the invariants that tie the subsystems together: symmetry
invariance of scores, conservation of bytes from placement to traffic,
predictor-vs-simulator consistency, and CLI entry points.
"""

import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.flowmodel import TrafficDemand, min_completion_time
from repro.core.optimizer import MomentOptimizer, capacity_plan, tier_fractions
from repro.core.placement import GPU, Placement, SSD
from repro.core.symmetry import slot_group_symmetries
from repro.graphs.datasets import IGB_HOM
from repro.hardware.machines import classic_layouts, machine_a
from repro.runtime.system import MomentSystem


@pytest.fixture(scope="module")
def machine():
    return machine_a()


@pytest.fixture(scope="module")
def dataset():
    return IGB_HOM.build(scale=IGB_HOM.default_scale * 40, seed=0)


@pytest.fixture(scope="module")
def moment_result(machine, dataset):
    return MomentSystem(machine).run(
        dataset, num_gpus=2, num_ssds=4, sample_batches=3
    )


class TestSymmetryInvariance:
    """Mirrored placements on Machine A must score identically."""

    def test_mirror_scores_equal(self, machine, dataset):
        opt = MomentOptimizer(machine, 2, 4)
        hot = opt.estimate_hotness(dataset)
        plan = capacity_plan(machine, dataset)
        fractions = tier_fractions(hot, dataset.feature_bytes, plan, 2)
        left = Placement(
            machine.chassis, {"plx0.slots": {GPU: 2, SSD: 4}}
        )
        right = Placement(
            machine.chassis, {"plx1.slots": {GPU: 2, SSD: 4}}
        )
        s_left = opt.score_placement(left, fractions).throughput
        s_right = opt.score_placement(right, fractions).throughput
        assert s_left == pytest.approx(s_right, rel=1e-3)

    def test_mirror_is_one_orbit(self, machine):
        syms = slot_group_symmetries(machine.chassis)
        assert len(syms) == 2  # identity + mirror


class TestByteConservation:
    """Every demanded byte must show up on the storage device's egress."""

    def test_demand_matches_ssd_egress_traffic(self, moment_result):
        epoch = moment_result.epoch
        per_bin = epoch.demand.per_bin()
        for ssd, nbytes in per_bin.items():
            if not ssd.startswith("ssd"):
                continue
            egress = epoch.traffic.by_resource.get(("egress", ssd), 0.0)
            assert egress == pytest.approx(nbytes, rel=1e-6)

    def test_local_plus_external_covers_all_fetches(self, moment_result):
        epoch = moment_result.epoch
        total = epoch.local_bytes + epoch.external_bytes
        assert total > 0
        assert epoch.external_bytes == pytest.approx(
            epoch.demand.total, rel=1e-9
        )


class TestPredictorConsistency:
    """The optimistic predictor should rarely be slower than measurement."""

    def test_lp_prediction_within_envelope(self, machine, moment_result):
        from repro.core.mcmf import multicommodity_min_time

        epoch = moment_result.epoch
        topo = machine.build(moment_result.placement)
        pred = multicommodity_min_time(topo, epoch.demand)
        measured_io = epoch.io_seconds * epoch.num_steps
        # optimal routing can beat fair-share by a bit, never by 2x;
        # and it must not be wildly slower either
        assert pred.time < measured_io * 1.5
        assert pred.time > measured_io * 0.4


class TestEndToEndStory:
    """The paper's pitch as one test: optimize, then beat the baseline."""

    def test_moment_pipeline(self, machine, dataset, moment_result):
        assert moment_result.ok
        plan = moment_result.plan
        # the automatic module searched a pruned space
        assert plan.num_unique <= plan.num_candidates
        # DDAK filled the caches with the hottest vertices
        occ = moment_result.data_placement.occupancy(dataset.feature_bytes)
        assert occ["gpu:all"] > 0.9
        # throughput is positive and the fabric moved real bytes
        assert moment_result.epoch.throughput_bytes_per_s > 1e9

    def test_moment_vs_contended_layout(self, machine, dataset, moment_result):
        contended = MomentSystem(machine).run(
            dataset,
            placement=classic_layouts(machine, num_gpus=2, num_ssds=4)["b"],
            num_gpus=2,
            num_ssds=4,
            sample_batches=3,
        )
        assert moment_result.seeds_per_s > contended.seeds_per_s


class TestProperties:
    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_enumeration_counts_consistent(self, n_gpu, n_ssd):
        """Enumerated placements always carry the requested device pool."""
        from repro.core.placement import enumerate_placements

        chassis = machine_a().chassis
        for p in enumerate_placements(chassis, n_gpu, n_ssd):
            assert p.num_gpus == n_gpu
            assert p.num_ssds == n_ssd

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
            min_size=2,
            max_size=6,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_min_completion_time_monotone_in_demand(self, demands):
        """More bytes can never finish faster."""
        machine = machine_a()
        topo = machine.build(classic_layouts(machine)["c"])
        gpus = topo.gpus()
        d1, d2 = TrafficDemand(), TrafficDemand()
        for i, nbytes in enumerate(demands):
            gpu = gpus[i % len(gpus)]
            d1.add("ssd0", gpu, nbytes)
            d2.add("ssd0", gpu, nbytes * 2)
        t1 = min_completion_time(topo, d1).time
        t2 = min_completion_time(topo, d2).time
        assert t2 >= t1 * 0.999


class TestClis:
    def test_hardware_cli(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro.hardware", "a"],
            capture_output=True,
            text=True,
            check=True,
        )
        assert "machine machine_a" in out.stdout

    def test_experiments_cli_lists(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro.experiments"],
            capture_output=True,
            text=True,
            check=True,
        )
        assert "fig10" in out.stdout
