"""Tests for the multi-node extension (paper Section 5)."""

import numpy as np
import pytest

from repro.cluster.multinode import (
    ClusterBuilder,
    MultiNodeMoment,
    namespace_topology,
    node_local_bins,
)
from repro.core.ddak import GPU_REPLICATED
from repro.core.placement import GPU, Placement, SSD
from repro.core.topology import LinkKind, NodeKind
from repro.graphs.datasets import IGB_HOM
from repro.hardware.machines import classic_layouts, machine_a
from repro.simulator.pipeline import EpochSimulator, SimConfig


@pytest.fixture(scope="module")
def machine():
    return machine_a()


@pytest.fixture(scope="module")
def dataset():
    return IGB_HOM.build(scale=IGB_HOM.default_scale * 40, seed=0)


@pytest.fixture(scope="module")
def placement(machine):
    return classic_layouts(machine, num_gpus=2, num_ssds=4)["c"]


class TestNamespace:
    def test_renames_everything(self, machine, placement):
        topo = machine.build(placement)
        ns = namespace_topology(topo, "n0")
        assert set(ns.gpus()) == {"n0/gpu0", "n0/gpu1"}
        assert "n0/rc0" in ns
        assert "rc0" not in ns
        assert len(ns.links) == len(topo.links)

    def test_preserves_capacities(self, machine, placement):
        topo = machine.build(placement)
        ns = namespace_topology(topo, "n0")
        assert ns.link("n0/rc0", "n0/plx0").capacity == topo.link(
            "rc0", "plx0"
        ).capacity

    def test_bad_prefix(self, machine, placement):
        topo = machine.build(placement)
        with pytest.raises(ValueError):
            namespace_topology(topo, "a/b")
        with pytest.raises(ValueError):
            namespace_topology(topo, "")


class TestClusterBuilder:
    def test_two_node_structure(self, machine, placement):
        cluster = (
            ClusterBuilder()
            .add_node(machine, placement)
            .add_node(machine, placement)
            .build()
        )
        assert len(cluster.gpus()) == 4
        assert "net" in cluster
        assert "n0/nic" in cluster and "n1/nic" in cluster
        net_links = [
            l for l in cluster.links if l.kind is LinkKind.NETWORK
        ]
        assert len(net_links) == 4  # two NICs x two directions

    def test_single_node_has_no_network(self, machine, placement):
        cluster = ClusterBuilder().add_node(machine, placement).build()
        assert "net" not in cluster
        assert not any(
            l.kind is LinkKind.NETWORK for l in cluster.links
        )

    def test_cross_node_routable(self, machine, placement):
        cluster = (
            ClusterBuilder()
            .add_node(machine, placement)
            .add_node(machine, placement)
            .build()
        )
        path = cluster.shortest_path("n0/ssd0", "n1/gpu0")
        assert path is not None
        assert "net" in path

    def test_duplicate_names_rejected(self, machine, placement):
        b = ClusterBuilder()
        b.add_node(machine, placement, name="x")
        b.add_node(machine, placement, name="x")
        with pytest.raises(ValueError):
            b.build()

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            ClusterBuilder().build()


class TestMultiNodeMoment:
    @pytest.fixture(scope="class")
    def plan(self, machine, dataset):
        mn = MultiNodeMoment(
            [machine, machine], num_gpus_per_node=2, num_ssds_per_node=4
        )
        return mn.optimize(dataset)

    def test_plan_structure(self, plan, dataset):
        assert plan.num_gpus == 4
        assert set(plan.node_throughput) == {"n0", "n1"}
        plan.data_placement.validate(dataset.feature_bytes)
        names = [b.name for b in plan.data_placement.bins]
        assert f"n0/{GPU_REPLICATED}" in names
        assert f"n1/{GPU_REPLICATED}" in names

    def test_node_local_bins(self, plan):
        n0 = node_local_bins(plan.data_placement, "n0")
        assert all(b.startswith("n0/") for b in n0)
        assert len(n0) >= 3

    def test_cluster_epoch_simulates(self, plan, machine, dataset):
        sim = EpochSimulator(
            plan.topology,
            machine,
            dataset,
            plan.data_placement,
            SimConfig(sample_batches=2),
        )
        result = sim.run_epoch()
        assert result.epoch_seconds > 0
        # gradient sync crosses the network: slower than single machine
        assert result.sync_seconds > 0
        # some feature traffic crosses the network core
        net_bytes = sum(
            v
            for k, v in result.traffic.by_resource.items()
            if isinstance(k, tuple) and k[0] == "link" and "net" in k
        )
        assert net_bytes > 0

    def test_more_nodes_more_throughput(self, machine, dataset, plan):
        """Two nodes (4 GPUs, 8 SSDs) beat one node (2 GPUs, 4 SSDs)."""
        from repro.runtime.system import MomentSystem

        single = MomentSystem(machine).run(
            dataset, num_gpus=2, num_ssds=4, sample_batches=2
        )
        sim = EpochSimulator(
            plan.topology,
            machine,
            dataset,
            plan.data_placement,
            SimConfig(sample_batches=2),
        )
        double = sim.run_epoch()
        assert double.seeds_per_s > single.seeds_per_s

    def test_requires_machines(self):
        with pytest.raises(ValueError):
            MultiNodeMoment([])
