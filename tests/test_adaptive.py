"""Tests for online profiling and adaptive data placement."""

import dataclasses

import numpy as np
import pytest

from repro.core.ddak import Bin, TIER_CPU, TIER_GPU, TIER_SSD, ddak_place, make_bins
from repro.core.optimizer import MomentOptimizer, capacity_plan
from repro.graphs.datasets import IGB_HOM, tiny_dataset
from repro.graphs.generators import community_graph, degree_gini
from repro.hardware.machines import machine_a
from repro.runtime.adaptive import (
    AdaptivePlacementManager,
    DriftingWorkload,
    OnlineHotnessTracker,
    simulate_adaptive,
)
from repro.simulator.pipeline import SimConfig


class TestTracker:
    def test_observe_and_decay(self):
        t = OnlineHotnessTracker(10, decay=0.5)
        t.observe_batch(np.array([1, 2, 3]))
        t.observe_batch(np.array([1]))
        assert t.counts[1] == 2.0
        t.end_epoch()
        assert t.counts[1] == 1.0
        assert t.hotness[0] > 0  # floor keeps cold vertices ranked

    def test_weighted_observation(self):
        t = OnlineHotnessTracker(4, decay=1.0)
        t.observe_batch(np.array([0]), weight=8.0)
        assert t.counts[0] == 8.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineHotnessTracker(0)
        with pytest.raises(ValueError):
            OnlineHotnessTracker(4, decay=1.5)


class TestManager:
    def bins(self):
        return [
            Bin("gpu:all", TIER_GPU, 50 * 100, 1e12),
            Bin("mem0", TIER_CPU, 50 * 100, 50e9),
            Bin("ssd0", TIER_SSD, 10_000 * 100, 6e9),
        ]

    def test_trigger_logic(self):
        m = AdaptivePlacementManager(self.bins(), feature_bytes=100)
        assert not m.should_replace(0.6)  # establishes watermark
        assert not m.should_replace(0.55)  # within tolerance
        assert m.should_replace(0.4)  # decayed

    def test_replace_moves_data_and_charges_cost(self):
        # pool must fit the cache bins (50 slots), else DDAK's hard
        # tier ordering skips them — use a fine pool here
        m = AdaptivePlacementManager(self.bins(), feature_bytes=100,
                                     pool_size=10)
        rng = np.random.default_rng(0)
        h1 = rng.random(500)
        p1 = ddak_place(self.bins(), h1, 100, pool_size=10)
        h2 = np.roll(h1, 250)  # the hot set moved
        p2, event = m.replace(1, p1, h2)
        p2.validate(100)
        assert event.moved_vertices > 0
        assert event.seconds > 0
        assert m.events == [event]

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptivePlacementManager(self.bins(), 100, trigger_ratio=2.0)
        with pytest.raises(ValueError):
            AdaptivePlacementManager(self.bins(), 100, migration_bw=0)


class TestDriftingWorkload:
    def test_windows_move(self):
        ds = tiny_dataset(num_vertices=1000, batch_size=32, seed=0)
        wl = DriftingWorkload(ds, drift_fraction=0.3, seed=0)
        ids0 = wl.train_ids(0)
        ids1 = wl.train_ids(1)
        assert not np.array_equal(ids0, ids1)
        assert wl.dataset_at(2).train_ids.size == ids0.size

    def test_zero_drift_is_static(self):
        ds = tiny_dataset(num_vertices=1000, batch_size=32, seed=0)
        wl = DriftingWorkload(ds, drift_fraction=0.0, seed=0)
        assert np.array_equal(wl.train_ids(0), wl.train_ids(5))


class TestCommunityGraph:
    def test_structure(self):
        g = community_graph(1000, avg_degree=8, num_communities=4, seed=0)
        assert g.num_vertices == 1000
        assert g.num_edges > 0

    def test_edges_mostly_within_communities(self):
        g = community_graph(
            1000, avg_degree=8, num_communities=4, cross_fraction=0.05, seed=0
        )
        src = np.repeat(np.arange(1000), np.diff(g.indptr))
        same = (src // 250) == (g.indices // 250)
        assert same.mean() > 0.8

    def test_skewed_within_community(self):
        g = community_graph(2000, avg_degree=10, num_communities=4, seed=0)
        assert degree_gini(g) > 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            community_graph(100, 5, num_communities=0)
        with pytest.raises(ValueError):
            community_graph(100, 5, cross_fraction=2.0)


class TestSimulateAdaptive:
    @pytest.fixture(scope="class")
    def setup(self):
        base = IGB_HOM.build(scale=IGB_HOM.default_scale * 60, seed=0)
        g = community_graph(
            base.graph.num_vertices, avg_degree=12, num_communities=10, seed=0
        )
        ds = dataclasses.replace(base, graph=g)
        machine = machine_a()
        opt = MomentOptimizer(machine, 4, 8)
        wl = DriftingWorkload(ds, drift_fraction=0.05, seed=1)
        hot0 = opt.estimate_hotness(wl.dataset_at(0))
        plan = opt.optimize(wl.dataset_at(0), hotness=hot0)
        cap = capacity_plan(machine, ds)
        bins = make_bins(
            plan.topology, cap.gpu_cache_bytes, cap.cpu_cache_bytes,
            cap.ssd_capacity_bytes, traffic=plan.prediction.storage_rate,
        )
        return machine, plan.topology, wl, bins, hot0

    def test_adaptive_not_worse_than_static(self, setup):
        machine, topo, wl, bins, hot0 = setup
        res = simulate_adaptive(
            topo, machine, wl, bins, hot0, num_epochs=5,
            sim=SimConfig(sample_batches=2),
        )
        assert len(res.static_seeds_per_s) == 5
        assert len(res.adaptive_seeds_per_s) == 5
        assert res.adaptive_mean >= res.static_mean * 0.97

    def test_drift_degrades_static(self, setup):
        machine, topo, wl, bins, hot0 = setup
        res = simulate_adaptive(
            topo, machine, wl, bins, hot0, num_epochs=5,
            sim=SimConfig(sample_batches=2),
        )
        # the first (matched) epoch should be the static run's best
        assert res.static_seeds_per_s[0] >= max(res.static_seeds_per_s[2:])
