"""Tests for slot groups, placements, enumeration, and topology builds."""

import pytest

from repro.core.placement import (
    Chassis,
    GPU,
    Placement,
    SSD,
    SlotGroup,
    build_topology,
    enumerate_placements,
)
from repro.core.topology import NodeKind
from repro.hardware.specs import A100_40GB, P5510, PCIE4_X16, PCIE4_X4, QPI_BW
from repro.core.topology import LinkKind


def mini_chassis() -> Chassis:
    """One RC with 2 bays, one switch with 4 units."""
    ch = Chassis("mini")
    ch.add_interconnect("rc0", NodeKind.ROOT_COMPLEX)
    ch.add_interconnect("sw0", NodeKind.SWITCH)
    ch.add_trunk("rc0", "sw0", PCIE4_X16, label="up")
    ch.add_memory("mem0", "rc0", 64e9, 60e9)
    ch.add_slot_group(SlotGroup("rc0.bays", "rc0", 2, PCIE4_X4, frozenset({SSD})))
    ch.add_slot_group(SlotGroup("sw0.slots", "sw0", 4, PCIE4_X16))
    return ch


class TestSlotGroup:
    def test_capacity_for_respects_units_and_widths(self):
        g = SlotGroup("g", "rc0", 4, PCIE4_X16)
        assert g.capacity_for(GPU) == 2  # dual-width
        assert g.capacity_for(SSD) == 4

    def test_capacity_for_disallowed_kind(self):
        g = SlotGroup("g", "rc0", 4, PCIE4_X4, frozenset({SSD}))
        assert g.capacity_for(GPU) == 0

    def test_bad_units(self):
        with pytest.raises(ValueError):
            SlotGroup("g", "rc0", 0, PCIE4_X4)

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            SlotGroup("g", "rc0", 2, PCIE4_X4, frozenset({"tpu"}))


class TestChassis:
    def test_duplicate_group_rejected(self):
        ch = mini_chassis()
        with pytest.raises(ValueError):
            ch.add_slot_group(SlotGroup("sw0.slots", "sw0", 2, PCIE4_X4))

    def test_group_on_unknown_interconnect_rejected(self):
        ch = mini_chassis()
        with pytest.raises(ValueError):
            ch.add_slot_group(SlotGroup("x", "nowhere", 2, PCIE4_X4))

    def test_group_lookup(self):
        ch = mini_chassis()
        assert ch.group("rc0.bays").units == 2
        with pytest.raises(KeyError):
            ch.group("nope")


class TestPlacement:
    def test_counts_and_totals(self):
        ch = mini_chassis()
        p = Placement(ch, {"rc0.bays": {SSD: 2}, "sw0.slots": {GPU: 1, SSD: 2}})
        assert p.num_gpus == 1
        assert p.num_ssds == 4
        assert p.count("sw0.slots", GPU) == 1
        assert p.count("rc0.bays", GPU) == 0

    def test_overflow_rejected(self):
        ch = mini_chassis()
        with pytest.raises(ValueError, match="overflows"):
            Placement(ch, {"sw0.slots": {GPU: 2, SSD: 1}})  # 5 units > 4

    def test_disallowed_kind_rejected(self):
        ch = mini_chassis()
        with pytest.raises(ValueError):
            Placement(ch, {"rc0.bays": {GPU: 1}})

    def test_unknown_group_rejected(self):
        ch = mini_chassis()
        with pytest.raises(KeyError):
            Placement(ch, {"nope": {SSD: 1}})

    def test_negative_count_rejected(self):
        ch = mini_chassis()
        with pytest.raises(ValueError):
            Placement(ch, {"rc0.bays": {SSD: -1}})

    def test_equality_and_hash(self):
        ch = mini_chassis()
        p1 = Placement(ch, {"rc0.bays": {SSD: 1}})
        p2 = Placement(ch, {"rc0.bays": {SSD: 1}})
        p3 = Placement(ch, {"rc0.bays": {SSD: 2}})
        assert p1 == p2 and hash(p1) == hash(p2)
        assert p1 != p3

    def test_repr_mentions_devices(self):
        ch = mini_chassis()
        p = Placement(ch, {"sw0.slots": {GPU: 1}}, name="demo")
        assert "1gpu" in repr(p) and "demo" in repr(p)


class TestBuildTopology:
    def test_builds_all_devices(self):
        ch = mini_chassis()
        p = Placement(ch, {"rc0.bays": {SSD: 2}, "sw0.slots": {GPU: 2}})
        topo = build_topology(p, A100_40GB, P5510)
        assert topo.gpus() == ["gpu0", "gpu1"]
        assert topo.ssds() == ["ssd0", "ssd1"]
        assert "gpu0:mem" in topo
        assert "mem0" in topo

    def test_ssd_link_capped_by_device_width(self):
        ch = mini_chassis()
        # SSD in a x16 slot still links at its own x4 width
        p = Placement(ch, {"sw0.slots": {GPU: 1, SSD: 1}})
        topo = build_topology(p, A100_40GB, P5510)
        assert topo.link("ssd0", "sw0").capacity == pytest.approx(P5510.link_bw)

    def test_gpu_mem_node_attached(self):
        ch = mini_chassis()
        p = Placement(ch, {"sw0.slots": {GPU: 1}})
        topo = build_topology(p, A100_40GB, P5510)
        assert topo.node("gpu0:mem").kind is NodeKind.GPU_MEM
        assert topo.has_link("gpu0:mem", "gpu0")

    def test_nvlink_pairs(self):
        ch = mini_chassis()
        p = Placement(ch, {"sw0.slots": {GPU: 2}})
        topo = build_topology(p, A100_40GB, P5510, nvlink_pairs=[(0, 1)])
        link = topo.link("gpu0", "gpu1")
        assert link.kind is LinkKind.NVLINK

    def test_nvlink_missing_gpu_rejected(self):
        ch = mini_chassis()
        p = Placement(ch, {"sw0.slots": {GPU: 1}})
        with pytest.raises(ValueError):
            build_topology(p, A100_40GB, P5510, nvlink_pairs=[(0, 3)])


class TestEnumeration:
    def test_counts_preserved(self):
        ch = mini_chassis()
        for p in enumerate_placements(ch, num_gpus=1, num_ssds=2):
            assert p.num_gpus == 1
            assert p.num_ssds == 2

    def test_enumeration_exhaustive_small(self):
        ch = mini_chassis()
        # GPUs only fit in sw0.slots (max 2); SSDs in bays (2) or slots.
        got = enumerate_placements(ch, num_gpus=1, num_ssds=2)
        # gpu in sw0 leaves 2 units there: ssd splits (0..2 in bays):
        # (bays=2, sw=0), (bays=1, sw=1), (bays=0, sw=2) -> 3 placements
        assert len(got) == 3

    def test_infeasible_pool_yields_nothing(self):
        ch = mini_chassis()
        assert enumerate_placements(ch, num_gpus=3, num_ssds=0) == []

    def test_zero_devices(self):
        ch = mini_chassis()
        got = enumerate_placements(ch, num_gpus=0, num_ssds=0)
        assert len(got) == 1
        assert got[0].num_gpus == 0
