"""Unit + property tests for the from-scratch max-flow solvers."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.maxflow import (
    FlowNetwork,
    bisect_min_time,
    dinic,
    edmonds_karp,
    feasible_time,
    max_flow,
    min_cut,
)


def diamond() -> FlowNetwork:
    """Classic 4-node diamond: max flow s->t is 18."""
    net = FlowNetwork()
    net.add_edge("s", "a", 10)
    net.add_edge("s", "b", 10)
    net.add_edge("a", "b", 2)
    net.add_edge("a", "t", 8)
    net.add_edge("b", "t", 10)
    return net


class TestBasics:
    def test_dinic_diamond(self):
        assert dinic(diamond(), "s", "t") == pytest.approx(18.0)

    def test_edmonds_karp_diamond(self):
        assert edmonds_karp(diamond(), "s", "t") == pytest.approx(18.0)

    def test_single_edge(self):
        net = FlowNetwork()
        net.add_edge("s", "t", 7.5)
        assert dinic(net, "s", "t") == pytest.approx(7.5)

    def test_disconnected(self):
        net = FlowNetwork()
        net.add_edge("s", "a", 5)
        net.add_edge("b", "t", 5)
        assert dinic(net, "s", "t") == 0.0

    def test_infinite_capacity_path(self):
        net = FlowNetwork()
        net.add_edge("s", "a", float("inf"))
        net.add_edge("a", "t", 3)
        assert dinic(net, "s", "t") == pytest.approx(3.0)

    def test_parallel_edges(self):
        net = FlowNetwork()
        net.add_edge("s", "t", 3)
        net.add_edge("s", "t", 4)
        assert dinic(net, "s", "t") == pytest.approx(7.0)

    def test_negative_capacity_rejected(self):
        net = FlowNetwork()
        with pytest.raises(ValueError):
            net.add_edge("s", "t", -1)

    def test_method_dispatch(self):
        assert max_flow(diamond(), "s", "t", "dinic") == pytest.approx(18.0)
        assert max_flow(diamond(), "s", "t", "edmonds_karp") == pytest.approx(18.0)
        with pytest.raises(ValueError):
            max_flow(diamond(), "s", "t", "nope")

    def test_reset_restores_capacity(self):
        net = diamond()
        assert dinic(net, "s", "t") == pytest.approx(18.0)
        assert dinic(net, "s", "t") == pytest.approx(0.0)  # saturated
        net.reset()
        assert dinic(net, "s", "t") == pytest.approx(18.0)

    def test_flow_on_reports_routed_flow(self):
        net = FlowNetwork()
        e = net.add_edge("s", "t", 5)
        dinic(net, "s", "t")
        assert net.flow_on(e) == pytest.approx(5.0)
        assert net.residual(e) == pytest.approx(0.0)
        assert net.capacity_of(e) == pytest.approx(5.0)

    def test_edge_endpoints(self):
        net = FlowNetwork()
        e = net.add_edge("u", "v", 1)
        assert net.edge_endpoints(e) == ("u", "v")


class TestMinCut:
    def test_cut_value_equals_flow(self):
        net = diamond()
        flow = dinic(net, "s", "t")
        cut = min_cut(net, "s")
        cut_cap = sum(net.capacity_of(e) for e in cut)
        assert cut_cap == pytest.approx(flow)

    def test_cut_identifies_bottleneck(self):
        net = FlowNetwork()
        net.add_edge("s", "m", 100)
        e = net.add_edge("m", "n", 5)
        net.add_edge("n", "t", 100)
        dinic(net, "s", "t")
        assert min_cut(net, "s") == [e]


class TestTimeBisection:
    @staticmethod
    def _builder(cap_per_s):
        def build(t):
            net = FlowNetwork()
            net.add_edge("__source__", "x", 100.0)  # 100 bytes demanded
            net.add_edge("x", "g", cap_per_s * t)
            net.add_edge("g", "__sink__", 100.0)
            return net

        return build

    def test_min_time_is_demand_over_bandwidth(self):
        t = bisect_min_time(self._builder(10.0), {"g": 100.0})
        assert t == pytest.approx(10.0, rel=1e-3)

    def test_zero_demand(self):
        assert bisect_min_time(self._builder(10.0), {}) == 0.0

    def test_feasibility_monotone(self):
        build = self._builder(10.0)
        assert not feasible_time(build, {"g": 100.0}, 5.0)
        assert feasible_time(build, {"g": 100.0}, 20.0)

    def test_infeasible_raises(self):
        def build(t):
            net = FlowNetwork()
            net.add_edge("__source__", "x", 100.0)
            net.add_edge("g", "__sink__", 100.0)  # x disconnected from g
            return net

        with pytest.raises(RuntimeError):
            bisect_min_time(build, {"g": 100.0})


@st.composite
def random_networks(draw):
    """Random small DAG-ish networks with integer capacities."""
    n = draw(st.integers(min_value=2, max_value=8))
    edges = []
    for u in range(n):
        for v in range(n):
            if u != v and draw(st.booleans()):
                cap = draw(st.integers(min_value=0, max_value=20))
                edges.append((u, v, cap))
    return n, edges


class TestProperties:
    @given(random_networks())
    @settings(max_examples=60, deadline=None)
    def test_dinic_matches_edmonds_karp(self, net_spec):
        n, edges = net_spec
        a, b = FlowNetwork(), FlowNetwork()
        for u, v, cap in edges:
            if cap > 0:
                a.add_edge(u, v, cap)
                b.add_edge(u, v, cap)
        a.node_id(0), a.node_id(n - 1)
        b.node_id(0), b.node_id(n - 1)
        assert dinic(a, 0, n - 1) == pytest.approx(edmonds_karp(b, 0, n - 1))

    @given(random_networks())
    @settings(max_examples=60, deadline=None)
    def test_maxflow_mincut_duality(self, net_spec):
        n, edges = net_spec
        net = FlowNetwork()
        for u, v, cap in edges:
            if cap > 0:
                net.add_edge(u, v, cap)
        net.node_id(0), net.node_id(n - 1)
        flow = dinic(net, 0, n - 1)
        cut_cap = sum(net.capacity_of(e) for e in min_cut(net, 0))
        assert cut_cap == pytest.approx(flow, abs=1e-6)

    @given(random_networks())
    @settings(max_examples=40, deadline=None)
    def test_flow_conservation(self, net_spec):
        n, edges = net_spec
        net = FlowNetwork()
        for u, v, cap in edges:
            if cap > 0:
                net.add_edge(u, v, cap)
        s_id, t_id = net.node_id(0), net.node_id(n - 1)
        total = dinic(net, 0, n - 1)
        # net flow out of every internal node must be zero
        balance = [0.0] * net.num_nodes
        for eid in range(0, net.num_edges * 2, 2):
            u, v = net.edge_endpoints(eid)
            f = net.flow_on(eid)
            balance[net.node_id(u)] -= f
            balance[net.node_id(v)] += f
        for node in range(net.num_nodes):
            if node == s_id:
                assert balance[node] == pytest.approx(-total, abs=1e-6)
            elif node == t_id:
                assert balance[node] == pytest.approx(total, abs=1e-6)
            else:
                assert balance[node] == pytest.approx(0.0, abs=1e-6)
