"""Tests for shared utilities: units, rng, validation, tables."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.report import Table
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.units import GB, GiB, fmt_bytes, fmt_rate, fmt_time
from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_nonnegative,
    check_positive,
)


class TestUnits:
    def test_constants(self):
        assert GiB == 1024**3
        assert GB == 1000**3

    def test_fmt_bytes(self):
        assert fmt_bytes(0) == "0 B"
        assert fmt_bytes(2 * GiB) == "2.00 GiB"
        assert fmt_bytes(-GiB) == "-1.00 GiB"
        assert "KiB" in fmt_bytes(2048)

    def test_fmt_rate(self):
        assert fmt_rate(6 * GB) == "6.00 GB/s"

    def test_fmt_time(self):
        assert fmt_time(2.5) == "2.50 s"
        assert fmt_time(0.002) == "2.00 ms"
        assert fmt_time(2e-6) == "2.00 us"
        assert fmt_time(-1.0) == "-1.00 s"


class TestRng:
    def test_ensure_rng_from_int(self):
        a, b = ensure_rng(7), ensure_rng(7)
        assert a.integers(100) == b.integers(100)

    def test_ensure_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_spawn_rngs_independent_and_stable(self):
        kids1 = spawn_rngs(3, 4)
        kids2 = spawn_rngs(3, 4)
        vals1 = [k.integers(1000) for k in kids1]
        vals2 = [k.integers(1000) for k in kids2]
        assert vals1 == vals2
        assert len(set(vals1)) > 1


class TestValidation:
    def test_positive(self):
        assert check_positive("x", 1.5) == 1.5
        for bad in (0, -1, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                check_positive("x", bad)

    def test_nonnegative(self):
        assert check_nonnegative("x", 0) == 0
        with pytest.raises(ValueError):
            check_nonnegative("x", -0.1)

    def test_range_and_fraction(self):
        assert check_in_range("x", 5, 0, 10) == 5
        with pytest.raises(ValueError):
            check_in_range("x", 11, 0, 10)
        assert check_fraction("x", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_fraction("x", 1.2)


class TestTable:
    def test_render_aligns(self):
        t = Table(["name", "value"], title="demo")
        t.add_row(["alpha", 1.0])
        t.add_row(["b", 123456.0])
        text = t.render()
        assert "demo" in text
        lines = text.splitlines()
        assert len(lines) == 5  # title, header, rule, 2 rows
        assert len(t) == 2

    def test_row_width_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            Table([])

    def test_float_formatting(self):
        t = Table(["v"])
        t.add_row([0.000123])
        t.add_row([3.14159])
        t.add_row([12345.6])
        text = t.render()
        assert "0.000123" in text
        assert "3.142" in text

    @given(
        st.lists(
            st.lists(
                st.one_of(st.integers(-1000, 1000), st.text(max_size=8)),
                min_size=2,
                max_size=2,
            ),
            max_size=10,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_render_never_crashes(self, rows):
        t = Table(["x", "y"])
        for row in rows:
            t.add_row(row)
        assert isinstance(t.render(), str)
