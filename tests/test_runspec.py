"""Tests for the unified RunSpec API, the deprecation shim, and
serializable run records."""

import json

import pytest

from repro import RunSpec, run
from repro.api import run as api_run
from repro.faults import FaultSchedule
from repro.baselines.mgids import MGidsSystem
from repro.graphs.datasets import IGB_HOM, UK_2014
from repro.hardware.machines import classic_layouts, machine_a
from repro.runtime.replan import ReplanConfig
from repro.runtime.system import (
    RUN_RECORD_SCHEMA,
    MomentSystem,
    SystemResult,
)

QUICK = 40


@pytest.fixture(scope="module")
def machine():
    return machine_a()


@pytest.fixture(scope="module")
def ig():
    return IGB_HOM.build(scale=IGB_HOM.default_scale * QUICK, seed=0)


@pytest.fixture(scope="module")
def placement_c(machine):
    return classic_layouts(machine)["c"]


@pytest.fixture(scope="module")
def spec(ig, placement_c):
    return RunSpec(dataset=ig, placement=placement_c, sample_batches=3)


@pytest.fixture(scope="module")
def result(machine, spec):
    return MomentSystem(machine).run(spec)


class TestRunSpec:
    def test_replace_returns_new_spec(self, spec):
        other = spec.replace(sample_batches=5)
        assert other.sample_batches == 5
        assert spec.sample_batches == 3

    def test_fanouts_coerced_to_tuple(self, ig):
        assert RunSpec(dataset=ig, fanouts=[10, 5]).fanouts == (10, 5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_gpus": 0},
            {"num_ssds": 0},
            {"sample_batches": 0},
            {"faults": "fail@2:ssd0"},  # must be parsed, not a string
            {"replan": True},  # replan needs faults
            {"replan": "yes", "faults": FaultSchedule.parse("fail@2:ssd0")},
        ],
    )
    def test_validation(self, ig, kwargs):
        with pytest.raises((ValueError, TypeError)):
            spec = RunSpec(dataset=ig, **kwargs)
            spec.replan_config  # noqa: B018 — replan type errors raise here

    def test_replan_config_forms(self, ig):
        sched = FaultSchedule.parse("fail@2:ssd0")
        assert RunSpec(dataset=ig).replan_config is None
        assert (
            RunSpec(dataset=ig, faults=sched, replan=False).replan_config
            is None
        )
        assert isinstance(
            RunSpec(dataset=ig, faults=sched, replan=True).replan_config,
            ReplanConfig,
        )
        custom = ReplanConfig(max_replans=1)
        assert (
            RunSpec(dataset=ig, faults=sched, replan=custom).replan_config
            is custom
        )


class TestShim:
    def test_deprecated_kwargs_warn_and_match(self, machine, spec, result):
        with pytest.warns(DeprecationWarning):
            legacy = MomentSystem(machine).run(
                spec.dataset, placement=spec.placement, sample_batches=3
            )
        assert legacy.epoch.epoch_seconds == result.epoch.epoch_seconds
        assert legacy.epoch.seeds_per_s == result.epoch.seeds_per_s
        assert legacy.epoch.step_seconds == result.epoch.step_seconds

    def test_spec_plus_kwargs_rejected(self, machine, spec):
        with pytest.raises(TypeError):
            MomentSystem(machine).run(spec, sample_batches=5)

    def test_api_run(self, machine, spec, result):
        r = run(MomentSystem(machine), spec)
        assert r.epoch.epoch_seconds == result.epoch.epoch_seconds
        assert api_run is run or api_run(
            MomentSystem(machine), spec
        ).ok  # same facade re-exported at top level

    def test_api_run_rejects_loose_dataset(self, machine, ig):
        with pytest.raises(TypeError):
            run(MomentSystem(machine), ig)


class TestRunRecord:
    def test_round_trip_is_json_safe(self, result):
        record = result.to_dict()
        assert record["schema"] == RUN_RECORD_SCHEMA
        text = json.dumps(record)  # must not raise on numpy scalars
        back = SystemResult.from_dict(json.loads(text))
        assert back.system == result.system
        assert back.ok and not result.oom
        assert back.epoch.epoch_seconds == pytest.approx(
            result.epoch.epoch_seconds
        )
        assert back.epoch.step_seconds == pytest.approx(
            result.epoch.step_seconds
        )
        assert back.epoch.seeds_per_s == pytest.approx(
            result.epoch.seeds_per_s
        )

    def test_replan_report_serialized(self, machine, spec):
        small = spec.replace(
            dataset=IGB_HOM.build(
                scale=IGB_HOM.default_scale * 16, seed=0
            ),
            sample_batches=6,
            faults=FaultSchedule.parse("fail@2:ssd0"),
            replan=True,
        )
        r = MomentSystem(machine).run(small)
        record = r.to_dict()
        assert record["replan"]["recovered"] is True
        assert record["replan"]["migrated_bytes"] > 0
        assert len(record["replan"]["events"]) == 1
        back = SystemResult.from_dict(json.loads(json.dumps(record)))
        assert back.replan["recovered"] is True

    def test_bad_schema_rejected(self, result):
        record = result.to_dict()
        record["schema"] = "repro.run/v999"
        with pytest.raises(ValueError):
            SystemResult.from_dict(record)

    def test_oom_round_trip(self, machine, placement_c):
        # UK-2014's terabyte-scale features blow the page-cache metadata
        # budget on MGids (same trigger as tests/test_systems.py)
        huge = UK_2014.build(scale=UK_2014.default_scale * QUICK, seed=0)
        r = MGidsSystem(machine).run(
            RunSpec(dataset=huge, placement=placement_c, sample_batches=2)
        )
        assert not r.ok
        assert "page_cache_metadata" in (r.oom or "")
        back = SystemResult.from_dict(r.to_dict())
        assert not back.ok and back.oom == r.oom


class TestSeedsAndRepetitions:
    def test_spec_validation(self, ig):
        with pytest.raises(ValueError, match="repetition"):
            RunSpec(dataset=ig, repetition=-1)
        with pytest.raises(TypeError, match="seed"):
            RunSpec(dataset=ig, seed="zero")

    def test_with_repetition_derives_seeds(self, spec):
        from repro.utils.rng import derive_seed

        s0 = spec.replace(seed=7)
        r0 = s0.with_repetition(0)
        r2 = s0.with_repetition(2)
        assert (r0.seed, r0.repetition) == (7, 0)
        assert (r2.seed, r2.repetition) == (derive_seed(7, 2), 2)
        assert r2.seed != 7
        # rep 0 of an unseeded spec stays unseeded (canonical run)
        assert spec.with_repetition(0).seed is None
        assert spec.with_repetition(1).seed == derive_seed(None, 1)

    def test_spec_seed_overrides_system_and_restores(self, machine, spec):
        system = MomentSystem(machine, seed=1)
        result = system.run(spec.replace(seed=42, repetition=3))
        assert system.seed == 1  # restored after the run
        assert result.seed == 42 and result.repetition == 3
        d = result.to_dict()
        assert d["seed"] == 42 and d["repetition"] == 3

    def test_result_defaults_to_system_seed(self, machine, spec, result):
        assert result.seed == MomentSystem(machine).seed
        assert result.repetition == 0


class TestTelemetryRoundTrip:
    def test_to_dict_from_dict_preserves_telemetry(self, machine, spec):
        from repro import obs

        with obs.capture():
            result = MomentSystem(machine).run(spec)
        assert result.telemetry is not None
        wire = json.dumps(result.to_dict())
        back = SystemResult.from_dict(json.loads(wire))
        assert back.telemetry == result.telemetry
        span_names = {s["name"] for s in back.telemetry["spans"]}
        assert "system.run" in span_names
        assert back.seed == result.seed
        assert back.repetition == result.repetition

    def test_from_dict_tolerates_pre_telemetry_records(self, result):
        d = result.to_dict()
        for legacy_missing in ("telemetry", "seed", "repetition"):
            d.pop(legacy_missing, None)
        back = SystemResult.from_dict(d)
        assert back.telemetry is None
        assert back.seed is None and back.repetition == 0
