"""Repo hygiene: package layout invariants.

Guards against the stale-``faults``-package failure mode: a directory
under ``src/repro`` that contains (or once contained) Python modules but
no ``__init__.py``.  Such a directory still imports on machines where an
old ``__pycache__`` survives, then breaks everywhere else.
"""

from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def _package_dirs():
    """Every directory under src/repro that holds .py files."""
    dirs = set()
    for py in SRC.rglob("*.py"):
        if "__pycache__" in py.parts:
            continue
        dirs.add(py.parent)
    return sorted(dirs)


def test_every_package_dir_has_init():
    missing = [
        str(d.relative_to(SRC.parent))
        for d in _package_dirs()
        if not (d / "__init__.py").is_file()
    ]
    assert not missing, f"package dirs missing __init__.py: {missing}"


def test_no_pycache_only_package_dirs():
    """A dir whose only Python artifacts live in __pycache__ is a stale
    package: imports succeed locally off cached bytecode and fail on a
    fresh checkout."""
    stale = []
    for d in SRC.rglob("__pycache__"):
        parent = d.parent
        has_sources = any(
            p.suffix == ".py" for p in parent.iterdir() if p.is_file()
        )
        if not has_sources:
            stale.append(str(parent.relative_to(SRC.parent)))
    assert not stale, f"__pycache__-only dirs (stale packages): {stale}"


def test_faults_is_a_real_package():
    pkg = SRC / "faults"
    assert (pkg / "__init__.py").is_file()
    sources = [p.name for p in pkg.glob("*.py")]
    assert "schedule.py" in sources and "injector.py" in sources
