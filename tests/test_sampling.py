"""Tests for neighbour sampling, batching, and hotness estimation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.datasets import tiny_dataset
from repro.graphs.generators import erdos_renyi_graph, power_law_graph
from repro.graphs.csr import CSRGraph
from repro.sampling.batching import iter_seed_batches, num_batches, take_batches
from repro.sampling.hotness import (
    degree_proxy_hotness,
    hotness_coverage,
    presample_hotness,
)
from repro.sampling.neighbor import sample_batch, sample_neighbors


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(1000, 10, exponent=0.8, seed=0)


class TestSampleNeighbors:
    def test_fanout_respected(self, graph):
        rng = np.random.default_rng(0)
        frontier = np.arange(50)
        layer = sample_neighbors(graph, frontier, 5, rng)
        nonzero = (graph.out_degree(frontier) > 0).sum()
        assert layer.num_edges == nonzero * 5

    def test_sampled_edges_exist(self, graph):
        rng = np.random.default_rng(1)
        layer = sample_neighbors(graph, np.arange(100), 3, rng)
        for s, d in zip(layer.src[:100], layer.dst[:100]):
            assert d in graph.neighbors(s)

    def test_zero_degree_frontier(self):
        g = CSRGraph.from_edges(3, [0], [1])  # vertex 2 has no neighbours
        rng = np.random.default_rng(0)
        layer = sample_neighbors(g, np.array([2]), 4, rng)
        assert layer.num_edges == 0

    def test_invalid_fanout(self, graph):
        with pytest.raises(ValueError):
            sample_neighbors(graph, np.arange(3), 0, np.random.default_rng(0))


class TestSampleBatch:
    def test_two_hop_structure(self, graph):
        seeds = np.arange(20)
        s = sample_batch(graph, seeds, [25, 10], seed=0)
        assert len(s.layers) == 2
        assert s.num_unique >= seeds.size
        # all seeds must be in the unique set
        assert np.isin(seeds, s.unique_vertices).all()

    def test_unique_vertices_sorted_unique(self, graph):
        s = sample_batch(graph, np.arange(10), [5, 5], seed=0)
        u = s.unique_vertices
        assert np.all(np.diff(u) > 0)

    def test_deterministic(self, graph):
        s1 = sample_batch(graph, np.arange(10), [5], seed=9)
        s2 = sample_batch(graph, np.arange(10), [5], seed=9)
        assert np.array_equal(s1.layers[0].dst, s2.layers[0].dst)

    def test_feature_bytes(self, graph):
        s = sample_batch(graph, np.arange(10), [5], seed=0)
        assert s.feature_bytes(4096) == s.num_unique * 4096

    def test_bad_seeds_shape(self, graph):
        with pytest.raises(ValueError):
            sample_batch(graph, np.zeros((2, 2), dtype=np.int64), [5])

    def test_larger_fanout_more_unique(self, graph):
        small = sample_batch(graph, np.arange(30), [2, 2], seed=0)
        big = sample_batch(graph, np.arange(30), [25, 10], seed=0)
        assert big.num_unique > small.num_unique

    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_all_sampled_vertices_valid(self, n_seeds, fanout):
        g = power_law_graph(200, 6, seed=1)
        s = sample_batch(g, np.arange(n_seeds), [fanout], seed=2)
        assert s.unique_vertices.max(initial=0) < g.num_vertices
        assert s.unique_vertices.min(initial=0) >= 0


class TestBatching:
    def test_batches_cover_all(self):
        ids = np.arange(103)
        seen = np.concatenate(list(iter_seed_batches(ids, 10, seed=0)))
        assert sorted(seen.tolist()) == list(range(103))

    def test_drop_last(self):
        ids = np.arange(103)
        batches = list(iter_seed_batches(ids, 10, drop_last=True, seed=0))
        assert len(batches) == 10
        assert all(b.size == 10 for b in batches)

    def test_no_shuffle_preserves_order(self):
        ids = np.arange(10)
        batches = list(iter_seed_batches(ids, 4, shuffle=False))
        assert np.array_equal(batches[0], np.arange(4))

    def test_num_batches(self):
        assert num_batches(103, 10) == 11
        assert num_batches(103, 10, drop_last=True) == 10
        with pytest.raises(ValueError):
            num_batches(10, 0)

    def test_take_batches_caps(self):
        ids = np.arange(100)
        assert len(take_batches(ids, 10, 3, seed=0)) == 3
        assert len(take_batches(ids, 10, 99, seed=0)) == 10


class TestHotness:
    def test_presample_counts_positive(self, graph):
        ds_train = np.arange(100)
        h = presample_hotness(graph, ds_train, 20, [5, 5], seed=0)
        assert h.shape == (graph.num_vertices,)
        assert h.sum() > 0
        # every seed vertex is fetched at least once per epoch
        assert (h[ds_train] > 0).all()

    def test_extrapolation_preserves_scale(self, graph):
        train = np.arange(200)
        full = presample_hotness(graph, train, 20, [5], seed=0)
        capped = presample_hotness(graph, train, 20, [5], max_batches=3, seed=0)
        # extrapolated totals should be within ~3x (noisy but same order)
        assert capped.sum() == pytest.approx(full.sum(), rel=1.0)

    def test_degree_proxy_ranks_hubs_first(self, graph):
        proxy = degree_proxy_hotness(graph)
        sampled = presample_hotness(graph, np.arange(300), 50, [10, 10], seed=0)
        # Spearman-ish: top-decile overlap between the two rankings
        k = graph.num_vertices // 10
        top_proxy = set(np.argsort(proxy)[-k:].tolist())
        top_sample = set(np.argsort(sampled)[-k:].tolist())
        overlap = len(top_proxy & top_sample) / k
        assert overlap > 0.5

    def test_coverage_skewed_graph(self, graph):
        h = presample_hotness(graph, np.arange(300), 50, [10, 10], seed=0)
        c10 = hotness_coverage(h, 0.10)
        assert 0.1 < c10 <= 1.0
        # skew: the hot decile covers clearly more than a uniform share
        # (per-batch dedup flattens tiny graphs, so compare to uniform)
        uniform = erdos_renyi_graph(1000, 10, seed=0)
        hu = presample_hotness(uniform, np.arange(300), 50, [10, 10], seed=0)
        assert c10 > hotness_coverage(hu, 0.10) * 1.2

    def test_coverage_bounds(self):
        h = np.ones(100)
        assert hotness_coverage(h, 0.0) == 0.0
        assert hotness_coverage(h, 1.0) == pytest.approx(1.0)
        assert hotness_coverage(h, 0.3) == pytest.approx(0.3)
        with pytest.raises(ValueError):
            hotness_coverage(h, 1.5)

    def test_zero_hotness(self):
        assert hotness_coverage(np.zeros(10), 0.5) == 0.0

    def test_invalid_epochs(self, graph):
        with pytest.raises(ValueError):
            presample_hotness(graph, np.arange(10), 5, [2], epochs=0)
