"""Tests for DDAK and hash data placement."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ddak import (
    Bin,
    DataPlacement,
    TIER_CPU,
    TIER_GPU,
    TIER_SSD,
    ddak_place,
    hash_place,
    make_bins,
)
from repro.hardware.machines import classic_layouts, machine_a

FB = 100  # feature bytes per vertex in these tests


def simple_bins(gpu_cap=10 * FB, cpu_cap=20 * FB, ssd_cap=10_000 * FB):
    return [
        Bin("gpu0:mem", TIER_GPU, gpu_cap, traffic=1e12),
        Bin("gpu1:mem", TIER_GPU, gpu_cap, traffic=1e12),
        Bin("mem0", TIER_CPU, cpu_cap, traffic=50e9),
        Bin("ssd0", TIER_SSD, ssd_cap, traffic=6e9),
        Bin("ssd1", TIER_SSD, ssd_cap, traffic=3e9),
    ]


def zipf_hotness(n=500, seed=0):
    rng = np.random.default_rng(seed)
    h = (np.arange(1, n + 1) ** -0.9).astype(np.float64)
    rng.shuffle(h)
    return h


class TestBin:
    def test_invalid_tier(self):
        with pytest.raises(ValueError):
            Bin("x", 7, 10, 1)

    def test_negative_capacity(self):
        with pytest.raises(ValueError):
            Bin("x", TIER_SSD, -1, 1)


class TestDdakPlace:
    def test_all_placed_and_capacities_respected(self):
        bins = simple_bins()
        h = zipf_hotness()
        p = ddak_place(bins, h, FB, pool_size=10)
        p.validate(FB)
        assert p.method.startswith("ddak")

    def test_hottest_vertices_land_in_gpu(self):
        bins = simple_bins()
        h = zipf_hotness()
        p = ddak_place(bins, h, FB, pool_size=5)
        hot = np.argsort(-h)[:20]  # 20 hottest; GPU tier holds 20 slots
        gpu_ids = {p.bin_index("gpu0:mem"), p.bin_index("gpu1:mem")}
        assert all(int(p.bin_of[v]) in gpu_ids for v in hot)

    def test_hierarchy_gpu_then_cpu_then_ssd(self):
        bins = simple_bins()
        h = zipf_hotness()
        p = ddak_place(bins, h, FB, pool_size=5)
        order = np.argsort(-h)
        tiers = np.array([bins[b].tier for b in p.bin_of[order]])
        # mean tier must be non-decreasing along hotness deciles
        chunks = np.array_split(tiers, 10)
        means = [c.mean() for c in chunks]
        assert all(a <= b + 0.5 for a, b in zip(means, means[1:]))

    def test_ssd_traffic_matching(self):
        """SSD with 2x traffic target absorbs hotter vertices."""
        bins = simple_bins()
        h = zipf_hotness()
        p = ddak_place(bins, h, FB, pool_size=5)
        hot0 = h[p.vertices_in("ssd0")].sum()  # 6 GB/s target
        hot1 = h[p.vertices_in("ssd1")].sum()  # 3 GB/s target
        assert hot0 > hot1
        # ratio should approximate the traffic ratio
        assert hot0 / max(hot1, 1e-12) == pytest.approx(2.0, rel=0.5)

    def test_insufficient_capacity_raises(self):
        bins = [Bin("ssd0", TIER_SSD, 10 * FB, 1e9)]
        with pytest.raises(ValueError, match="dataset needs"):
            ddak_place(bins, zipf_hotness(100), FB)

    def test_pool_size_one_equals_fine_grained(self):
        bins = simple_bins()
        h = zipf_hotness(200)
        p1 = ddak_place(bins, h, FB, pool_size=1)
        p1.validate(FB)

    def test_invalid_pool_size(self):
        with pytest.raises(ValueError):
            ddak_place(simple_bins(), zipf_hotness(), FB, pool_size=0)

    def test_deterministic(self):
        bins = simple_bins()
        h = zipf_hotness()
        p1 = ddak_place(bins, h, FB, pool_size=10)
        p2 = ddak_place(bins, h, FB, pool_size=10)
        assert np.array_equal(p1.bin_of, p2.bin_of)

    def test_tail_fill_when_pool_does_not_fit(self):
        # capacities not multiples of the pool: tail fill must kick in
        bins = [
            Bin("gpu0:mem", TIER_GPU, 7 * FB, 1e12),
            Bin("ssd0", TIER_SSD, 1000 * FB, 1e9),
        ]
        p = ddak_place(bins, zipf_hotness(50), FB, pool_size=10)
        p.validate(FB)

    @given(st.integers(min_value=1, max_value=50), st.integers(min_value=1, max_value=300))
    @settings(max_examples=25, deadline=None)
    def test_property_valid_placements(self, pool, n):
        bins = simple_bins()
        h = zipf_hotness(n)
        p = ddak_place(bins, h, FB, pool_size=pool)
        p.validate(FB)
        assert p.bin_of.size == n


class TestHashPlace:
    def test_hash_ssd_balance(self):
        bins = simple_bins()
        h = zipf_hotness(500)
        p = hash_place(bins, h, FB)
        n0 = p.vertices_in("ssd0").size
        n1 = p.vertices_in("ssd1").size
        # hashed by id: near-uniform regardless of traffic targets
        assert abs(n0 - n1) <= 0.1 * (n0 + n1)

    def test_caches_hold_hottest(self):
        bins = simple_bins()
        h = zipf_hotness(500)
        p = hash_place(bins, h, FB)
        hot = np.argsort(-h)[:40]  # GPU (20) + CPU (20) capacity
        cached = {
            p.bin_index("gpu0:mem"),
            p.bin_index("gpu1:mem"),
            p.bin_index("mem0"),
        }
        assert all(int(p.bin_of[v]) in cached for v in hot)

    def test_no_cache_mode(self):
        bins = simple_bins()
        p = hash_place(bins, zipf_hotness(500), FB, cache_hot=False)
        ssd_ids = {p.bin_index("ssd0"), p.bin_index("ssd1")}
        assert set(np.unique(p.bin_of).tolist()) <= ssd_ids

    def test_requires_ssd(self):
        bins = [Bin("gpu0:mem", TIER_GPU, 1e9, 1e12)]
        with pytest.raises(ValueError):
            hash_place(bins, zipf_hotness(10), FB)

    def test_validates(self):
        p = hash_place(simple_bins(), zipf_hotness(300), FB)
        p.validate(FB)


class TestDataPlacement:
    def test_queries(self):
        bins = simple_bins()
        p = hash_place(bins, zipf_hotness(100), FB)
        assert p.bin_index("ssd1") == 4
        with pytest.raises(KeyError):
            p.bin_index("nope")
        occ = p.occupancy(FB)
        assert 0 <= occ["gpu0:mem"] <= 1.0
        assert p.bytes_in("ssd0", FB) == p.vertices_in("ssd0").size * FB

    def test_validate_rejects_unplaced(self):
        bins = simple_bins()
        p = DataPlacement(bins, np.full(10, -1, dtype=np.int32))
        with pytest.raises(ValueError):
            p.validate(FB)


class TestMakeBins:
    def test_replicated_policy_default(self):
        m = machine_a()
        topo = m.build(classic_layouts(m)["c"])
        bins = make_bins(
            topo,
            gpu_cache_bytes=1e6,
            cpu_cache_bytes=2e6,
            ssd_capacity_bytes=1e9,
            traffic={"ssd0": 6e9},
        )
        names = {b.name for b in bins}
        # one logical replicated GPU bin, no per-GPU bins
        from repro.core.ddak import GPU_REPLICATED

        assert GPU_REPLICATED in names
        assert "gpu0:mem" not in names
        assert "mem0" in names and "ssd7" in names
        ssd0 = next(b for b in bins if b.name == "ssd0")
        assert ssd0.traffic == 6e9
        gpu_bin = next(b for b in bins if b.name == GPU_REPLICATED)
        assert gpu_bin.tier == TIER_GPU

    def test_partitioned_policy(self):
        m = machine_a()
        topo = m.build(classic_layouts(m)["c"])
        bins = make_bins(
            topo, 1e6, 2e6, 1e9, gpu_cache_policy="partitioned"
        )
        names = {b.name for b in bins}
        assert "gpu0:mem" in names and "gpu3:mem" in names

    def test_bad_policy(self):
        m = machine_a()
        topo = m.build(classic_layouts(m)["c"])
        with pytest.raises(ValueError):
            make_bins(topo, 1e6, 2e6, 1e9, gpu_cache_policy="magic")

    def test_validation(self):
        m = machine_a()
        topo = m.build(classic_layouts(m)["c"])
        with pytest.raises(ValueError):
            make_bins(topo, -1, 0, 0)
