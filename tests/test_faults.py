"""Tests for fault injection (`repro.faults`) and degradation-aware
replanning."""

import numpy as np
import pytest

from repro import obs
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    GpuEvict,
    LinkDegrade,
    SsdFailure,
    SsdSlowdown,
    random_schedule,
    recovery_key,
)
from repro.graphs.datasets import IGB_HOM
from repro.hardware.machines import classic_layouts, machine_a
from repro.runtime.spec import RunSpec
from repro.runtime.system import MomentSystem

#: extra scale factor; x16 keeps 6 simulated steps so mid-epoch faults
#: (step 2) leave post-fault steps to observe recovery on
QUICK = 16


@pytest.fixture(scope="module")
def machine():
    return machine_a()


@pytest.fixture(scope="module")
def ig():
    return IGB_HOM.build(scale=IGB_HOM.default_scale * QUICK, seed=0)


@pytest.fixture(scope="module")
def placement_c(machine):
    return classic_layouts(machine)["c"]


@pytest.fixture(scope="module")
def base_spec(ig, placement_c):
    return RunSpec(dataset=ig, placement=placement_c, sample_batches=6)


def _epoch_fingerprint(result):
    e = result.epoch
    return (
        e.epoch_seconds,
        tuple(e.step_seconds),
        e.io_seconds,
        e.sample_seconds,
        e.compute_seconds,
        e.local_bytes,
        e.external_bytes,
    )


class TestScheduleParse:
    def test_parse_all_kinds(self):
        s = FaultSchedule.parse(
            "fail@4:ssd2;slow@2+3:ssd0:0.5;"
            "link@6:rc0-plx0:0.25;evict@3:gpu1:0.5"
        )
        kinds = [type(f) for f in s]
        assert kinds == [SsdFailure, SsdSlowdown, LinkDegrade, GpuEvict]
        slow = s.faults[1]
        assert (slow.step, slow.duration, slow.factor) == (2, 3, 0.5)
        link = s.faults[2]
        assert (link.src, link.dst) == ("rc0", "plx0")

    def test_long_aliases(self):
        s = FaultSchedule.parse("ssd_failure@1:ssd0;gpu_evict@2:gpu0:0.3")
        assert len(s) == 2

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "fail@:ssd0",
            "fail@2",
            "fail@2:ssd0:0.5",  # failure takes no parameter
            "warp@2:ssd0",  # unknown kind
            "slow@2:ssd0:1.5",  # factor out of (0, 1]
        ],
    )
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError):
            FaultSchedule.parse(bad)

    def test_active_and_activated(self):
        s = FaultSchedule.parse("slow@2+3:ssd0:0.5")
        assert [f.step for f in s.activated_at(2)] == [2]
        assert s.activated_at(3) == ()
        assert len(s.active_at(4)) == 1  # steps 2, 3, 4
        assert s.active_at(5) == ()

    def test_random_schedule_deterministic(self):
        a = random_schedule(["ssd0", "ssd1"], ["gpu0"], seed=7)
        b = random_schedule(["ssd0", "ssd1"], ["gpu0"], seed=7)
        assert a.describe() == b.describe()


class TestInjector:
    @pytest.fixture(scope="class")
    def topo(self, machine, placement_c):
        return machine.build(placement_c)

    def _capacities(self, topo):
        caps = {("egress", s): 6e9 for s in topo.ssds()}
        caps.update(
            {("link", link.src, link.dst): link.capacity
             for link in topo.links}
        )
        return caps

    def test_failed_drive_dropped_and_recovery_added(self, topo):
        caps = self._capacities(topo)
        inj = FaultInjector(
            topo, FaultSchedule.parse("fail@2:ssd0"), caps
        )
        healthy = inj.view(0)
        assert healthy.capacities == caps and not healthy.is_degraded
        view = inj.view(3)
        assert ("egress", "ssd0") not in view.capacities
        assert view.capacities[recovery_key("ssd0")] > 0
        assert "ssd0" in view.failed_ssds
        # max-min sharing requires strictly positive capacities
        assert all(v > 0 for v in view.capacities.values())

    def test_slowdown_scales_egress(self, topo):
        caps = self._capacities(topo)
        inj = FaultInjector(
            topo, FaultSchedule.parse("slow@1:ssd1:0.5"), caps
        )
        assert inj.view(1).capacities[("egress", "ssd1")] == pytest.approx(
            caps[("egress", "ssd1")] * 0.5
        )

    def test_link_degrade_scales_both_directions(self, topo):
        caps = self._capacities(topo)
        inj = FaultInjector(
            topo, FaultSchedule.parse("link@1:ssd0-plx0:0.25"), caps
        )
        view = inj.view(1)
        for key in (("link", "ssd0", "plx0"), ("link", "plx0", "ssd0")):
            assert view.capacities[key] == pytest.approx(caps[key] * 0.25)

    def test_unknown_target_rejected(self, topo):
        caps = self._capacities(topo)
        for spec in ("fail@1:ssd99", "link@1:ssd0-gpu99:0.5",
                     "evict@1:gpu99:0.5"):
            with pytest.raises(ValueError):
                FaultInjector(topo, FaultSchedule.parse(spec), caps)

    def test_mask_tracks_failures(self, topo):
        caps = self._capacities(topo)
        inj = FaultInjector(
            topo, FaultSchedule.parse("fail@2:ssd0"), caps
        )
        assert not inj.mask_at(0)
        mask = inj.mask_at(2)
        assert "ssd0" in mask.drop_nodes
        masked = mask.apply(topo)
        assert "ssd0" not in masked.ssds()


class TestEpochUnderFaults:
    def test_empty_schedule_reproduces_seed_path(self, machine, base_spec):
        """No faults (None) and an empty schedule are bit-identical."""
        plain = MomentSystem(machine).run(base_spec)
        empty = MomentSystem(machine).run(
            base_spec.replace(faults=FaultSchedule.empty())
        )
        assert _epoch_fingerprint(plain) == _epoch_fingerprint(empty)

    def test_same_schedule_is_deterministic(self, machine, base_spec):
        sched = FaultSchedule.parse("fail@2:ssd0;slow@3:ssd1:0.5")
        a = MomentSystem(machine).run(base_spec.replace(faults=sched))
        b = MomentSystem(machine).run(base_spec.replace(faults=sched))
        assert _epoch_fingerprint(a) == _epoch_fingerprint(b)

    @pytest.mark.parametrize(
        "spec",
        [
            "fail@2:ssd0",
            "slow@2:ssd0:0.3",
            "link@2:ssd0-plx0:0.25",
        ],
    )
    def test_each_class_degrades_throughput(self, machine, base_spec, spec):
        healthy = MomentSystem(machine).run(base_spec)
        faulty = MomentSystem(machine).run(
            base_spec.replace(faults=FaultSchedule.parse(spec))
        )
        assert faulty.epoch.epoch_seconds > healthy.epoch.epoch_seconds
        # pre-fault steps are untouched
        assert faulty.epoch.step_seconds[0] == healthy.epoch.step_seconds[0]

    def test_evict_moves_traffic_off_cache(self, machine, base_spec):
        """Eviction re-routes local cache hits over the fabric.

        On this configuration the extra CPU-bank reads never cross the
        binding min cut (the SSD tier gates I/O with wide slack on the
        memory side), so epoch time is unchanged — the observable effect
        of the fault is the traffic shift, and throughput must not
        *improve* beyond float noise.
        """
        healthy = MomentSystem(machine).run(base_spec)
        faulty = MomentSystem(machine).run(
            base_spec.replace(faults=FaultSchedule.parse("evict@2:gpu0:0.5"))
        )
        assert faulty.epoch.local_bytes < healthy.epoch.local_bytes
        assert faulty.epoch.external_bytes > healthy.epoch.external_bytes
        assert faulty.epoch.epoch_seconds >= healthy.epoch.epoch_seconds * (
            1.0 - 1e-12
        )
        # pre-fault steps are untouched
        assert faulty.epoch.step_seconds[0] == healthy.epoch.step_seconds[0]

    def test_transient_fault_clears(self, machine, base_spec):
        faulty = MomentSystem(machine).run(
            base_spec.replace(faults=FaultSchedule.parse("slow@1+2:ssd0:0.3"))
        )
        steps = faulty.epoch.step_seconds
        assert steps[1] > steps[0]  # degraded
        assert steps[4] == pytest.approx(steps[0], rel=0.2)  # recovered

    def test_counters_exported(self, machine, base_spec):
        with obs.capture() as tel:
            MomentSystem(machine).run(
                base_spec.replace(faults=FaultSchedule.parse("fail@2:ssd0"))
            )
        counters = tel.snapshot()["metrics"]["counters"]
        assert any(k.startswith("faults.injected") for k in counters)
        assert any(k.startswith("io.retries") for k in counters)


class TestReplan:
    def test_replan_recovers_throughput(self, machine, base_spec):
        sched = FaultSchedule.parse("fail@2:ssd0")
        healthy = MomentSystem(machine).run(base_spec)
        static = MomentSystem(machine).run(base_spec.replace(faults=sched))
        replan = MomentSystem(machine).run(
            base_spec.replace(faults=sched, replan=True)
        )
        h = healthy.epoch.step_seconds[-1]
        assert static.replan is None
        rep = replan.replan
        assert rep is not None and rep.recovered
        assert rep.time_to_recover_s is not None
        assert len(rep.events) == 1
        assert rep.migrated_bytes > 0
        # acceptance bar: replan >= 80% of healthy steady state,
        # static below it
        assert h / replan.epoch.step_seconds[-1] >= 0.8
        assert h / static.epoch.step_seconds[-1] < 0.8

    def test_replanned_placement_avoids_failed_drive(self, machine, base_spec):
        sched = FaultSchedule.parse("fail@2:ssd0")
        replan = MomentSystem(machine).run(
            base_spec.replace(faults=sched, replan=True)
        )
        names = [b.name for b in replan.data_placement.bins]
        # the *initial* placement still names ssd0 (it was healthy at
        # planning time); the migrated placement must not
        assert "ssd0" in names
        counts = np.bincount(
            replan.data_placement.bin_of,
            minlength=len(names),
        )
        # SystemResult keeps the original placement; the swap happened
        # inside the simulator — verify via the replan event instead
        assert replan.replan.events[0].moved_vertices > 0
        assert counts.sum() == replan.data_placement.bin_of.size

    def test_replan_requires_faults(self, ig, placement_c):
        with pytest.raises(ValueError):
            RunSpec(
                dataset=ig,
                placement=placement_c,
                replan=True,
            )
