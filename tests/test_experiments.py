"""Smoke tests for the experiment registry and fast runners.

The heavy per-figure runners are exercised by ``benchmarks/``; here we
check the registry wiring and run the cheap ones end-to-end.
"""

import json

import pytest

from repro.experiments.figures import (
    run_cost_tco,
    run_fig1_placements_a,
    run_table1_machines,
    run_table2_datasets,
)
from repro.experiments.registry import (
    get_runner,
    list_experiments,
    run_experiment,
)


class TestRegistry:
    def test_lists_all_paper_elements(self):
        ids = list_experiments()
        for fig in ("fig1", "fig2", "fig7", "fig10", "fig13", "fig16",
                    "fig17", "fig18", "table1", "table2", "cost"):
            assert fig in ids

    def test_get_runner(self):
        assert callable(get_runner("fig10"))
        with pytest.raises(KeyError, match="available"):
            get_runner("fig99")

    def test_run_experiment_dispatch(self):
        result = run_experiment("table1")
        assert result.experiment_id == "table1"


class TestRunners:
    def test_table1(self):
        result = run_table1_machines()
        assert len(result.table) == 3
        assert "machine_a" in result.table.render()

    def test_table2_quick(self):
        result = run_table2_datasets(quick=True)
        assert len(result.table) == 4

    def test_cost(self):
        result = run_cost_tco()
        assert result.data["ratio"] == pytest.approx(0.5, abs=0.05)

    def test_fig1_quick_order_matches_paper(self):
        result = run_fig1_placements_a(quick=True)
        t = result.data
        # the paper's ordering: c < a < d < b
        assert t["c"] <= t["a"] <= t["d"] <= t["b"]
        assert result.elapsed_seconds >= 0

    def test_result_render(self):
        result = run_table1_machines()
        text = result.render()
        assert "table1" in text and "regenerated" in text


class TestCliJsonOut:
    def _run(self, argv):
        import repro.experiments.__main__ as cli

        return cli.main(argv)

    def test_json_out_appends_by_default(self, tmp_path):
        out = tmp_path / "runs.jsonl"
        out.write_text('{"earlier": true}\n')
        assert self._run(
            ["table1", "--quick", "--json-out", str(out)]
        ) == 0
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 2  # prior record kept
        record = json.loads(lines[1])
        assert record["schema"] == "repro.obs/v1"
        assert record["run_id"] == "table1"
        assert "error" not in record

    def test_json_out_overwrite_truncates_once(self, tmp_path):
        out = tmp_path / "runs.jsonl"
        out.write_text('{"stale": true}\n')
        assert self._run(
            [
                "table1",
                "--quick",
                "--json-out",
                str(out),
                "--json-out-mode",
                "overwrite",
            ]
        ) == 0
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["run_id"] == "table1"

    def test_crashed_run_still_flushes_partial_record(
        self, tmp_path, monkeypatch
    ):
        import repro.experiments.__main__ as cli
        from repro import obs

        def boom(exp, quick=False, faults=None, machine=None):
            with obs.span("epoch.partial"):
                obs.add("partial.bytes", 123.0)
            raise RuntimeError("mid-epoch OOM")

        monkeypatch.setattr(cli, "run_experiment", boom)
        out = tmp_path / "runs.jsonl"
        with pytest.raises(RuntimeError, match="mid-epoch OOM"):
            self._run(["fig10", "--quick", "--json-out", str(out)])
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["error"] == {
            "type": "RuntimeError",
            "message": "mid-epoch OOM",
        }
        # the partial span tree and metrics made it to disk
        assert [s["name"] for s in record["spans"]] == ["epoch.partial"]
        assert record["metrics"]["counters"]["partial.bytes"] == 123.0
