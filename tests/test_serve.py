"""Tests for the plan-serving layer (repro.serve).

The service core is exercised in-process with injected stub planners
(deterministic, slow, or blocking — each HTTP status path on demand);
the HTTP layer with a real ThreadingHTTPServer on an ephemeral port,
including the acceptance demo: 100 concurrent clients, zero errors,
cache hits an order of magnitude under the cold solve.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.serve import (
    PlanCache,
    PlanService,
    PlanStore,
    RequestError,
    ServeConfig,
    cache_key,
    make_server,
    parse_request,
    server_url,
)
from repro.serve.loadgen import LoadConfig, report_record, run_load
from repro.serve.planner import resolve_machine


# ----------------------------------------------------------------------
# schema: parsing + cache-key normalization
# ----------------------------------------------------------------------
TINY_REQUEST = {
    "schema": "repro.serve/v1",
    "dataset": {"key": "TINY", "num_vertices": 1000},
    "machine": "machine_a",
    "num_gpus": 2,
    "num_ssds": 3,
    "sample_batches": 2,
}


class TestParseRequest:
    def test_defaults(self):
        req = parse_request({"dataset": {"key": "TINY"}})
        assert req.machine == "machine_a"
        assert req.num_gpus == 4 and req.num_ssds == 8
        assert req.fanouts == (25, 10)
        assert req.simulate is True
        assert req.gpu_cache_fraction == 0.6

    @pytest.mark.parametrize(
        "payload, field",
        [
            ({}, "dataset"),
            ({"dataset": {"key": "NOPE"}}, "dataset.key"),
            ({"dataset": {"key": "TINY", "scale": 2}}, "dataset"),
            ({"dataset": {"key": "TINY"}, "num_gpus": 0}, "num_gpus"),
            ({"dataset": {"key": "TINY"}, "num_gpus": True}, "num_gpus"),
            ({"dataset": {"key": "TINY"}, "fanouts": []}, "fanouts"),
            ({"dataset": {"key": "TINY"}, "fanouts": [25, 0]}, "fanouts"),
            ({"dataset": {"key": "TINY"}, "model": "mlp"}, "model"),
            ({"dataset": {"key": "TINY"}, "simulate": 1}, "simulate"),
            ({"dataset": {"key": "TINY"}, "timeout_s": -1}, "timeout_s"),
            ({"dataset": {"key": "TINY"}, "schema": "v0"}, "schema"),
            (
                {"dataset": {"key": "TINY"}, "machine": "a", "fabric": {}},
                "machine",
            ),
            (
                {"dataset": {"key": "TINY"}, "optimizer": {"lp_top_k": 2}},
                "optimizer",
            ),
        ],
    )
    def test_rejections_carry_field(self, payload, field):
        with pytest.raises(RequestError) as exc:
            parse_request(payload)
        assert exc.value.field == field
        body = exc.value.to_body()
        assert body["schema"] == "repro.serve/v1.1"
        assert body["error"]["code"] == "bad_request"
        assert body["error"]["detail"]["field"] == field

    def test_v1_schema_still_accepted(self):
        req = parse_request(
            {"schema": "repro.serve/v1", "dataset": {"key": "TINY"}}
        )
        assert req.machine == "machine_a"

    def test_unknown_top_level_field(self):
        with pytest.raises(RequestError, match="unknown field"):
            parse_request({"dataset": {"key": "TINY"}, "spice": 1})

    def test_non_object_body(self):
        with pytest.raises(RequestError, match="JSON object"):
            parse_request([1, 2, 3])

    def test_path_shaped_machine_rejected(self):
        req = parse_request(
            {"dataset": {"key": "TINY"}, "machine": "specs/machine_a.json"}
        )
        with pytest.raises(RequestError, match="file path"):
            resolve_machine(req)

    def test_unknown_machine_rejected(self):
        req = parse_request(
            {"dataset": {"key": "TINY"}, "machine": "machine_zzz"}
        )
        with pytest.raises(RequestError, match="unknown machine"):
            resolve_machine(req)


class TestCacheKey:
    def test_defaults_key_like_explicit_defaults(self):
        a = parse_request({"dataset": {"key": "TINY"}})
        b = parse_request(
            {
                "dataset": {"key": "TINY", "num_vertices": 2000, "seed": 0},
                "machine": "machine_a",
                "num_gpus": 4,
                "num_ssds": 8,
                "model": "GraphSAGE",
                "fanouts": [25, 10],
                "optimizer": {"gpu_cache_fraction": 0.6},
            }
        )
        ma = resolve_machine(a)
        assert cache_key(a, ma) == cache_key(b, resolve_machine(b))

    def test_machine_name_and_inline_fabric_share_keys(self):
        from repro.hardware.fabric import machine_a_spec

        named = parse_request({"dataset": {"key": "TINY"}})
        inline = parse_request(
            {
                "dataset": {"key": "TINY"},
                "fabric": machine_a_spec().to_dict(),
            }
        )
        assert cache_key(named, resolve_machine(named)) == cache_key(
            inline, resolve_machine(inline)
        )

    def test_distinct_solves_get_distinct_keys(self):
        base = parse_request({"dataset": {"key": "TINY"}})
        machine = resolve_machine(base)
        for variant in (
            {"dataset": {"key": "TINY"}, "seed": 1},
            {"dataset": {"key": "TINY", "num_vertices": 3000}},
            {"dataset": {"key": "TINY"}, "num_gpus": 2},
            {"dataset": {"key": "TINY"}, "fanouts": [10, 5]},
            {"dataset": {"key": "TINY"}, "simulate": False},
            {"dataset": {"key": "TINY"}, "machine": "machine_b"},
            {
                "dataset": {"key": "TINY"},
                "optimizer": {"gpu_cache_fraction": 0.5},
            },
        ):
            req = parse_request(variant)
            assert cache_key(req, resolve_machine(req)) != cache_key(
                base, machine
            )


class TestPlanCache:
    def test_lru_eviction_order(self):
        cache = PlanCache(2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1  # refresh: b is now least-recent
        cache.put(("c",), 3)
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == 1 and cache.get(("c",)) == 3
        assert len(cache) == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PlanCache(0)


# ----------------------------------------------------------------------
# service core with stub planners
# ----------------------------------------------------------------------
def make_service(planner, **cfg):
    service = PlanService(
        ServeConfig(**{"workers": 2, "queue_size": 8, **cfg}),
        planner=planner,
    )
    return service.start()


class TestServiceCore:
    def test_miss_then_hit_counters(self):
        calls = []

        def planner(request, machine):
            calls.append(request.seed)
            return {"plan": {"seed": request.seed}, "verdict": {"ok": True}}

        with make_service(planner) as svc:
            first = svc.handle(TINY_REQUEST)
            second = svc.handle(TINY_REQUEST)
        assert first.status == second.status == 200
        assert first.body["cache"] == "miss"
        assert second.body["cache"] == "hit"
        assert first.body["plan"] == second.body["plan"]
        assert first.body["timing"]["solve_s"] is not None
        assert calls == [0]
        assert svc.stats["cache_misses"] == 1
        assert svc.stats["cache_hits"] == 1

    def test_single_flight_runs_one_solve(self):
        release = threading.Event()
        calls = []

        def planner(request, machine):
            calls.append(1)
            release.wait(timeout=5)
            return {"plan": {"n": len(calls)}, "verdict": {"ok": True}}

        with make_service(planner, workers=2) as svc:
            results = []

            def client():
                results.append(svc.handle(TINY_REQUEST))

            threads = [
                threading.Thread(target=client) for _ in range(6)
            ]
            for t in threads:
                t.start()
            # wait until the leader's solve is actually in flight
            deadline = time.time() + 5
            while not calls and time.time() < deadline:
                time.sleep(0.005)
            time.sleep(0.05)  # let followers pile onto the same job
            release.set()
            for t in threads:
                t.join(timeout=5)

        assert len(calls) == 1, "identical concurrent requests must share one solve"
        assert len(results) == 6
        assert all(r.status == 200 for r in results)
        assert all(r.body["plan"] == {"n": 1} for r in results)
        outcomes = sorted(r.body["cache"] for r in results)
        assert outcomes.count("miss") == 1
        assert outcomes.count("single_flight") == 5
        assert svc.stats["single_flight"] == 5

    def test_queue_full_returns_429_with_retry_after(self):
        release = threading.Event()

        def planner(request, machine):
            release.wait(timeout=10)
            return {"plan": {}, "verdict": {"ok": True}}

        svc = make_service(planner, workers=1, queue_size=1)
        try:
            distinct = [
                dict(TINY_REQUEST, seed=i) for i in range(3)
            ]
            threads = [
                threading.Thread(target=svc.handle, args=(distinct[i],))
                for i in range(2)
            ]
            threads[0].start()
            # worker must have dequeued request 0 before 1 can queue
            deadline = time.time() + 5
            while (
                svc._queue.qsize() > 0 or not svc._inflight
            ) and time.time() < deadline:
                time.sleep(0.005)
            threads[1].start()
            deadline = time.time() + 5
            while svc._queue.qsize() < 1 and time.time() < deadline:
                time.sleep(0.005)

            rejected = svc.handle(distinct[2])
            assert rejected.status == 429
            assert rejected.body["error"]["code"] == "queue_full"
            assert int(rejected.headers["Retry-After"]) >= 1
            assert svc.stats["rejected"] == 1
        finally:
            release.set()
            for t in threads:
                t.join(timeout=5)
            svc.stop()

    def test_timeout_returns_504_and_late_result_seeds_cache(self):
        started = threading.Event()

        def planner(request, machine):
            started.set()
            time.sleep(0.4)
            return {"plan": {"late": True}, "verdict": {"ok": True}}

        with make_service(planner) as svc:
            slow = dict(TINY_REQUEST, timeout_s=0.05)
            t0 = time.perf_counter()
            response = svc.handle(slow)
            waited = time.perf_counter() - t0
            assert response.status == 504
            assert response.body["error"]["code"] == "timeout"
            # the 504 hands the client the job id to poll instead
            job_id = response.body["error"]["detail"]["job_id"]
            assert svc.get_job(job_id).status == 200
            assert waited < 0.3, "504 must fire at the deadline, not the solve"
            assert svc.stats["timeouts"] == 1

            # the solve was not killed: once it lands, the cache serves it
            deadline = time.time() + 5
            while svc._inflight and time.time() < deadline:
                time.sleep(0.02)
            again = svc.handle(slow)
            assert again.status == 200
            assert again.body["cache"] == "hit"
            assert again.body["plan"] == {"late": True}

    def test_expired_queued_job_is_cancelled_not_solved(self):
        release = threading.Event()
        solved = []

        def planner(request, machine):
            if request.seed == 0:
                release.wait(timeout=10)
            solved.append(request.seed)
            return {"plan": {}, "verdict": {"ok": True}}

        svc = make_service(planner, workers=1, queue_size=4)
        try:
            blocker = threading.Thread(
                target=svc.handle, args=(dict(TINY_REQUEST, seed=0),)
            )
            blocker.start()
            deadline = time.time() + 5
            while not svc._inflight and time.time() < deadline:
                time.sleep(0.005)
            # queued behind the blocker with a deadline it cannot make
            doomed = svc.handle(
                dict(TINY_REQUEST, seed=1, timeout_s=0.05)
            )
            assert doomed.status == 504
            release.set()
            blocker.join(timeout=5)
            deadline = time.time() + 5
            while svc.stats["cancelled"] < 1 and time.time() < deadline:
                time.sleep(0.01)
            assert svc.stats["cancelled"] == 1
            assert solved == [0], "the expired job must never start its solve"
        finally:
            release.set()
            svc.stop()

    def test_planner_crash_returns_500(self):
        def planner(request, machine):
            raise RuntimeError("boom")

        with make_service(planner) as svc:
            response = svc.handle(TINY_REQUEST)
        assert response.status == 500
        assert response.body["error"]["code"] == "internal"
        assert "boom" in response.body["error"]["message"]

    def test_malformed_spec_rejected_before_queueing(self):
        def planner(request, machine):  # pragma: no cover - must not run
            raise AssertionError("planner must not see bad requests")

        with make_service(planner) as svc:
            response = svc.handle({"dataset": {"key": "NOPE"}})
        assert response.status == 400
        assert response.body["error"]["code"] == "bad_request"
        assert response.body["error"]["detail"]["field"] == "dataset.key"
        assert svc.stats["bad_requests"] == 1

    def test_serve_metrics_recorded(self):
        def planner(request, machine):
            return {"plan": {}, "verdict": {"ok": True}}

        with obs.capture() as tel:
            with make_service(planner) as svc:
                svc.handle(TINY_REQUEST)
                svc.handle(TINY_REQUEST)
                svc.handle({"dataset": {"key": "NOPE"}})
        counters = tel.registry.snapshot()["counters"]
        assert counters["serve.requests"] == 3
        assert counters["serve.cache.miss"] == 1
        assert counters["serve.cache.hit"] == 1
        assert counters["serve.bad_requests"] == 1
        spans = [s.name for s in tel.tracer.spans]
        assert spans.count("serve.request") == 3
        hist = tel.registry.snapshot()["histograms"]
        assert any(k.startswith("serve.latency") for k in hist)


# ----------------------------------------------------------------------
# jobs API: submit / poll / long-poll / terminal states
# ----------------------------------------------------------------------
class TestJobsApi:
    def test_submit_then_poll_lifecycle(self):
        release = threading.Event()

        def planner(request, machine):
            release.wait(timeout=10)
            return {"plan": {"seed": request.seed}, "verdict": {"ok": True}}

        with make_service(planner) as svc:
            submitted = svc.submit_job(TINY_REQUEST)
            assert submitted.status == 202
            job = submitted.body["job"]
            assert job["status"] in ("queued", "running")
            assert submitted.headers["Location"] == f"/v1/jobs/{job['id']}"
            assert "plan" not in submitted.body

            pending = svc.get_job(job["id"])
            assert pending.status == 200
            assert pending.body["job"]["status"] in ("queued", "running")

            release.set()
            done = svc.get_job(job["id"], wait_s=10.0)
            assert done.status == 200
            assert done.body["job"]["status"] == "done"
            assert done.body["plan"] == {"seed": 0}
            assert done.body["cache"] == "miss"
            assert done.body["job"]["solve_s"] is not None

    def test_job_outlives_sync_plan_timeout(self):
        """The acceptance path: a solve longer than the plan timeout
        still completes via the jobs API."""

        def planner(request, machine):
            time.sleep(0.3)
            return {"plan": {"slow": True}, "verdict": {"ok": True}}

        with make_service(planner) as svc:
            sync = svc.handle(dict(TINY_REQUEST, timeout_s=0.05))
            assert sync.status == 504
            job_id = sync.body["error"]["detail"]["job_id"]
            done = svc.get_job(job_id, wait_s=10.0)
            assert done.status == 200
            assert done.body["job"]["status"] == "done"
            assert done.body["plan"] == {"slow": True}

    def test_submit_on_warm_cache_returns_done_job(self):
        def planner(request, machine):
            return {"plan": {}, "verdict": {"ok": True}}

        with make_service(planner) as svc:
            assert svc.handle(TINY_REQUEST).status == 200
            submitted = svc.submit_job(TINY_REQUEST)
            assert submitted.status == 202
            assert submitted.body["job"]["status"] == "done"
            assert submitted.body["cache"] == "hit"

    def test_concurrent_submits_share_one_job(self):
        release = threading.Event()
        calls = []

        def planner(request, machine):
            calls.append(1)
            release.wait(timeout=10)
            return {"plan": {}, "verdict": {"ok": True}}

        with make_service(planner) as svc:
            first = svc.submit_job(TINY_REQUEST)
            second = svc.submit_job(TINY_REQUEST)
            assert first.body["job"]["id"] == second.body["job"]["id"]
            release.set()
            done = svc.get_job(first.body["job"]["id"], wait_s=10.0)
            assert done.body["job"]["status"] == "done"
        assert len(calls) == 1

    def test_failed_job_carries_error_code(self):
        def planner(request, machine):
            raise RuntimeError("boom")

        with make_service(planner) as svc:
            submitted = svc.submit_job(TINY_REQUEST)
            failed = svc.get_job(submitted.body["job"]["id"], wait_s=10.0)
            assert failed.status == 200
            assert failed.body["job"]["status"] == "failed"
            assert failed.body["job"]["error"]["code"] == "internal"
            assert "boom" in failed.body["job"]["error"]["message"]
            assert "plan" not in failed.body

    def test_unknown_job_is_404(self):
        def planner(request, machine):
            return {"plan": {}, "verdict": {"ok": True}}

        with make_service(planner) as svc:
            missing = svc.get_job("j-nope")
            assert missing.status == 404
            assert missing.body["error"]["code"] == "job_not_found"
            assert missing.body["error"]["detail"]["job_id"] == "j-nope"

    def test_terminal_jobs_reaped_after_ttl(self):
        def planner(request, machine):
            return {"plan": {}, "verdict": {"ok": True}}

        with make_service(planner, job_ttl_s=0.05) as svc:
            submitted = svc.submit_job(TINY_REQUEST)
            job_id = submitted.body["job"]["id"]
            assert svc.get_job(job_id, wait_s=5.0).body["job"]["status"] == "done"
            time.sleep(0.1)
            reaped = svc.get_job(job_id)
            assert reaped.status == 404
            assert reaped.body["error"]["code"] == "job_not_found"

    def test_expired_queued_job_reports_expired_state(self):
        release = threading.Event()

        def planner(request, machine):
            if request.seed == 0:
                release.wait(timeout=10)
            return {"plan": {}, "verdict": {"ok": True}}

        svc = make_service(planner, workers=1, queue_size=4)
        try:
            blocker = threading.Thread(
                target=svc.handle, args=(dict(TINY_REQUEST, seed=0),)
            )
            blocker.start()
            deadline = time.time() + 5
            while not svc._inflight and time.time() < deadline:
                time.sleep(0.005)
            doomed = svc.handle(dict(TINY_REQUEST, seed=1, timeout_s=0.05))
            assert doomed.status == 504
            job_id = doomed.body["error"]["detail"]["job_id"]
            release.set()
            blocker.join(timeout=5)
            expired = svc.get_job(job_id, wait_s=5.0)
            assert expired.body["job"]["status"] == "expired"
            assert expired.body["job"]["error"]["code"] == "timeout"
        finally:
            release.set()
            svc.stop()


# ----------------------------------------------------------------------
# Retry-After calibration: drain estimate uses solver parallelism
# ----------------------------------------------------------------------
class TestRetryAfterCalibration:
    @staticmethod
    def _seeded(svc, ewma):
        svc._ewma_solve_s = ewma
        return svc

    def test_process_pool_divides_by_solver_processes(self):
        def planner(request, machine):
            return {"plan": {}, "verdict": {"ok": True}}

        svc = PlanService(
            ServeConfig(workers=2, solver_processes=8), planner=planner
        )
        assert svc.solver_parallelism == 8
        self._seeded(svc, ewma=8.0)
        # empty queue → depth 1 → ceil(1 * 8 / 8) = 1
        assert svc.retry_after_s() == 1

    def test_thread_mode_divides_by_workers(self):
        def planner(request, machine):
            return {"plan": {}, "verdict": {"ok": True}}

        svc = PlanService(ServeConfig(workers=2), planner=planner)
        assert svc.solver_parallelism == 2
        self._seeded(svc, ewma=8.0)
        assert svc.retry_after_s() == 4

    def test_extra_dispatch_threads_spawned_for_pool(self):
        def planner(request, machine):
            return {"plan": {}, "verdict": {"ok": True}}

        svc = PlanService(
            ServeConfig(workers=2, solver_processes=5), planner=planner
        )
        assert svc._thread_count() == 5


# ----------------------------------------------------------------------
# persistent plan store: crash recovery + invalidation
# ----------------------------------------------------------------------
class TestPlanStore:
    KEY_A = ("fp-a", "dataset-a", 0)
    KEY_B = ("fp-b", "dataset-b", 1)

    def test_put_survives_reopen(self, tmp_path):
        path = str(tmp_path / "plans.jsonl")
        store = PlanStore(path)
        store.put(self.KEY_A, {"plan": 1}, machine="machine_a")
        store.put(self.KEY_B, {"plan": 2})

        reopened = PlanStore(path)
        assert reopened.get(self.KEY_A) == {"plan": 1}
        assert reopened.get(self.KEY_B) == {"plan": 2}
        assert len(reopened) == 2
        assert reopened.load_report.quarantined == 0

    def test_truncated_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "plans.jsonl")
        store = PlanStore(path)
        store.put(self.KEY_A, {"plan": 1})
        store.put(self.KEY_B, {"plan": 2})
        # simulate a crash mid-append: chop the final record in half
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[: len(raw) - len(raw) // 4])

        survivor = PlanStore(path)
        assert survivor.get(self.KEY_A) == {"plan": 1}
        assert survivor.get(self.KEY_B) is None
        assert survivor.load_report.truncated_tail is True
        assert survivor.load_report.quarantined == 0
        # and the store still accepts writes after recovery
        survivor.put(self.KEY_B, {"plan": 3})
        assert PlanStore(path).get(self.KEY_B) == {"plan": 3}

    def test_corrupt_interior_line_quarantined_not_fatal(self, tmp_path):
        path = str(tmp_path / "plans.jsonl")
        store = PlanStore(path)
        store.put(self.KEY_A, {"plan": 1})
        with open(path, "ab") as fh:
            fh.write(b'{"schema": "wrong/v9", "op": "put"}\n')
            fh.write(b"not json at all\n")
        store.put(self.KEY_B, {"plan": 2})

        survivor = PlanStore(path)
        assert survivor.get(self.KEY_A) == {"plan": 1}
        assert survivor.get(self.KEY_B) == {"plan": 2}
        assert survivor.load_report.quarantined == 2
        quarantine = open(path + ".quarantine", "rb").read()
        assert b"not json at all" in quarantine
        # quarantined lines are compacted out of the live segment
        assert survivor.load_report.compacted is True
        assert b"not json" not in open(path, "rb").read()

    def test_tombstone_drops_entry_across_reopen(self, tmp_path):
        path = str(tmp_path / "plans.jsonl")
        store = PlanStore(path)
        store.put(self.KEY_A, {"plan": 1})
        store.put(self.KEY_B, {"plan": 2})
        assert store.drop(self.KEY_A) is True
        assert store.drop(self.KEY_A) is False

        reopened = PlanStore(path)
        assert reopened.get(self.KEY_A) is None
        assert reopened.get(self.KEY_B) == {"plan": 2}
        # replaying put+drop compacts down to the single live record
        assert reopened.load_report.compacted is True
        assert len(obs.read_jsonl(path)) == 1

    def test_newest_wins_and_eviction_bound(self, tmp_path):
        path = str(tmp_path / "plans.jsonl")
        store = PlanStore(path, max_entries=2)
        store.put(self.KEY_A, {"plan": 1})
        store.put(self.KEY_A, {"plan": 99})
        store.put(self.KEY_B, {"plan": 2})
        store.put(("fp-c", "c", 2), {"plan": 3})
        assert store.get(self.KEY_A) is None, "oldest evicted at the bound"
        reopened = PlanStore(path, max_entries=2)
        assert reopened.get(self.KEY_B) == {"plan": 2}
        assert reopened.get(("fp-c", "c", 2)) == {"plan": 3}

    def test_sync_registry_drops_stale_named_entries(self, tmp_path):
        path = str(tmp_path / "plans.jsonl")
        store = PlanStore(path)
        store.put(self.KEY_A, {"plan": 1}, machine="machine_gone")
        store.put(self.KEY_B, {"plan": 2}, machine="machine_ok")
        store.put(("fp-inline", "x", 0), {"plan": 3})  # inline fabric

        fingerprints = {"machine_ok": "fp-b"}  # gone resolves to None
        dropped = store.sync_registry(fingerprints.get)
        assert dropped == 1
        assert store.get(self.KEY_A) is None
        assert store.get(self.KEY_B) == {"plan": 2}
        assert store.get(("fp-inline", "x", 0)) == {"plan": 3}

    def test_sync_registry_drops_refingerprinted_entries(self, tmp_path):
        """A name that now compiles to a *different* chassis is stale."""
        path = str(tmp_path / "plans.jsonl")
        store = PlanStore(path)
        store.put(self.KEY_A, {"plan": 1}, machine="machine_a")
        dropped = store.sync_registry(lambda name: "fp-rewired")
        assert dropped == 1
        assert len(store) == 0


class TestServicePersistence:
    def test_restart_answers_from_disk_without_resolving(self, tmp_path):
        path = str(tmp_path / "plans.jsonl")
        calls = []

        def planner(request, machine):
            calls.append(request.seed)
            return {"plan": {"seed": request.seed}, "verdict": {"ok": True}}

        with make_service(planner, cache_path=path) as svc:
            assert svc.handle(TINY_REQUEST).body["cache"] == "miss"
            assert svc.stats["persisted"] == 1

        # new process ⇒ new service over the same segment file
        with make_service(planner, cache_path=path) as svc2:
            warm = svc2.handle(TINY_REQUEST)
            assert warm.status == 200
            # served from the store-warmed LRU — no second solve
            assert warm.body["cache"] == "hit"
            assert warm.body["plan"] == {"seed": 0}
            # cold LRU but warm store ⇒ explicit disk outcome
            svc2.cache.clear()
            disk = svc2.handle(TINY_REQUEST)
            assert disk.body["cache"] == "disk"
            assert svc2.stats["disk_hits"] == 1
        assert calls == [0], "the restarted server must not re-solve"

    def test_kill_mid_append_recovers_prior_plans(self, tmp_path):
        path = str(tmp_path / "plans.jsonl")

        def planner(request, machine):
            return {"plan": {"seed": request.seed}, "verdict": {"ok": True}}

        with make_service(planner, cache_path=path) as svc:
            svc.handle(TINY_REQUEST)
            svc.handle(dict(TINY_REQUEST, seed=1))
        # crash mid-append of a third record: torn partial line
        with open(path, "ab") as fh:
            fh.write(b'{"schema": "repro.servecache/v1", "op": "pu')

        calls = []

        def counting(request, machine):
            calls.append(request.seed)
            return {"plan": {"seed": request.seed}, "verdict": {"ok": True}}

        with make_service(counting, cache_path=path) as svc2:
            assert svc2.store.load_report.truncated_tail is True
            assert svc2.handle(TINY_REQUEST).body["cache"] == "hit"
            assert (
                svc2.handle(dict(TINY_REQUEST, seed=1)).body["cache"]
                == "hit"
            )
        assert calls == []

    def test_invalidate_fingerprint_drops_both_layers(self, tmp_path):
        path = str(tmp_path / "plans.jsonl")

        def planner(request, machine):
            return {"plan": {}, "verdict": {"ok": True}}

        with make_service(planner, cache_path=path) as svc:
            svc.handle(TINY_REQUEST)
            request = parse_request(TINY_REQUEST)
            key = cache_key(request, resolve_machine(request))
            dropped = svc.invalidate_fingerprint(key[0])
            assert dropped == 2  # LRU entry + store entry
            assert svc.stats["invalidated"] == 2
            # next identical request is a fresh miss
            assert svc.handle(TINY_REQUEST).body["cache"] == "miss"

    def test_registry_invalidated_entries_not_served(self, tmp_path):
        """A persisted record whose machine name no longer resolves (or
        resolves to different hardware) must not come back after
        restart."""
        path = str(tmp_path / "plans.jsonl")
        store = PlanStore(path)
        request = parse_request(TINY_REQUEST)
        key = cache_key(request, resolve_machine(request))
        # same key, but recorded against a machine name that is not in
        # the registry any more
        store.put(key, {"plan": {"stale": True}}, machine="machine_gone")

        calls = []

        def planner(req, machine):
            calls.append(req.seed)
            return {"plan": {"fresh": True}, "verdict": {"ok": True}}

        with make_service(planner, cache_path=path) as svc:
            assert svc.stats["invalidated"] == 1
            response = svc.handle(TINY_REQUEST)
            assert response.body["cache"] == "miss"
            assert response.body["plan"] == {"fresh": True}
        assert calls == [0]


# ----------------------------------------------------------------------
# process-pool solvers
# ----------------------------------------------------------------------
class TestProcessPoolSolvers:
    PAYLOAD = {
        "dataset": {"key": "TINY", "num_vertices": 800, "seed": 2},
        "machine": "machine_a",
        "num_gpus": 2,
        "num_ssds": 3,
        "sample_batches": 2,
    }

    @staticmethod
    def _strip_volatile(body):
        body = dict(body)
        for field in ("timing", "job", "solver", "cache"):
            body.pop(field, None)
        plan = body.get("plan")
        if isinstance(plan, dict):
            plan = dict(plan)
            plan.pop("optimize_seconds", None)
            body["plan"] = plan
        return body

    def test_pool_solve_runs_in_child_and_matches_thread_solve(self):
        import os

        with PlanService(ServeConfig(workers=1)) as threaded:
            thread_body = threaded.handle(dict(self.PAYLOAD)).body
        assert thread_body["solver"]["pid"] == os.getpid()

        with PlanService(
            ServeConfig(workers=1, solver_processes=1)
        ) as pooled:
            pool_body = pooled.handle(dict(self.PAYLOAD)).body
        assert pool_body["solver"]["pid"] != os.getpid(), (
            "with --solver-processes the solve must run in a child"
        )
        assert self._strip_volatile(pool_body) == self._strip_volatile(
            thread_body
        ), "process-pool solves must be bit-identical to in-thread solves"

    def test_pool_results_persist_and_hit_after_restart(self, tmp_path):
        path = str(tmp_path / "plans.jsonl")
        with PlanService(
            ServeConfig(workers=1, solver_processes=1, cache_path=path)
        ) as svc:
            assert svc.handle(dict(self.PAYLOAD)).body["cache"] == "miss"
        with PlanService(ServeConfig(workers=1, cache_path=path)) as svc2:
            assert svc2.handle(dict(self.PAYLOAD)).body["cache"] == "hit"

    def test_metrics_report_solver_mode(self):
        with obs.capture() as tel:
            with PlanService(
                ServeConfig(workers=1, solver_processes=1)
            ) as svc:
                svc.handle(dict(self.PAYLOAD))
                snapshot = svc.metrics_snapshot()
        assert snapshot["solver_processes"] == 1
        assert snapshot["solver_parallelism"] == 1
        counters = tel.registry.snapshot()["counters"]
        assert counters.get("serve.solver.solves{mode=process}") == 1
        gauges = tel.registry.snapshot()["gauges"]
        assert gauges.get("serve.solver.processes") == 1


# ----------------------------------------------------------------------
# HTTP layer + end-to-end acceptance
# ----------------------------------------------------------------------
@pytest.fixture()
def live_server():
    service = PlanService(
        ServeConfig(workers=2, queue_size=64, cache_size=64)
    ).start()
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server_url(server), service
    finally:
        server.shutdown()
        server.server_close()
        service.stop()


def http_post(url, payload, timeout=60.0):
    req = urllib.request.Request(
        url + "/v1/plan",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read().decode("utf-8"))


class TestHttpServer:
    def test_plan_roundtrip_and_health(self, live_server):
        url, service = live_server
        status, body = http_post(url, TINY_REQUEST)
        assert status == 200
        assert body["schema"] == "repro.serve/v1.1"
        assert body["cache"] == "miss"
        assert body["verdict"]["ok"] is True
        assert body["plan"]["placement"]
        assert body["result"]["schema"] == "repro.run/v1"

        with urllib.request.urlopen(url + "/v1/health", timeout=10) as resp:
            health = json.loads(resp.read())
        assert health["status"] == "ok"
        with urllib.request.urlopen(url + "/v1/metrics", timeout=10) as resp:
            metrics = json.loads(resp.read())
        assert metrics["requests"] == 1  # only POST /v1/plan counts
        assert metrics["cache_misses"] == 1

    def test_invalid_json_is_400(self, live_server):
        url, _ = live_server
        req = urllib.request.Request(
            url + "/v1/plan",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=10)
        assert exc.value.code == 400
        body = json.loads(exc.value.read())
        assert body["error"]["code"] == "invalid_json"

    def test_unknown_route_is_404(self, live_server):
        url, _ = live_server
        status, body = http_post(url + "/nope", TINY_REQUEST)
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_served_plan_bit_identical_to_direct_api_run(self, live_server):
        url, _ = live_server
        payload = {
            "dataset": {"key": "TINY", "num_vertices": 1500, "seed": 3},
            "machine": "machine_a",
            "num_gpus": 2,
            "num_ssds": 3,
            "sample_batches": 2,
            "seed": 5,
        }
        status, body = http_post(url, payload)
        assert status == 200

        from repro.api import run
        from repro.graphs.datasets import tiny_dataset
        from repro.hardware.registry import get_machine
        from repro.runtime.spec import RunSpec
        from repro.runtime.system import MomentSystem

        dataset = tiny_dataset(num_vertices=1500, seed=3)
        system = MomentSystem(get_machine("machine_a"))
        direct = run(
            system,
            RunSpec(
                dataset=dataset,
                num_gpus=2,
                num_ssds=3,
                sample_batches=2,
                seed=5,
            ),
        )
        assert body["plan"]["placement"] == [
            list(slot) for slot in direct.placement.as_tuple()
        ]
        assert body["verdict"]["paper_epoch_seconds"] == pytest.approx(
            direct.paper_epoch_seconds, rel=0, abs=0
        )
        assert body["result"]["epoch"]["epoch_seconds"] == pytest.approx(
            direct.epoch.epoch_seconds, rel=0, abs=0
        )
        assert body["plan"]["predicted_throughput"] == pytest.approx(
            direct.plan.predicted_throughput, rel=0, abs=0
        )

    def test_hundred_concurrent_clients_no_errors_fast_hits(
        self, live_server
    ):
        url, service = live_server
        # one expensive-enough variant so the cold/hit gap is measurable
        payload = dict(TINY_REQUEST, num_gpus=4, num_ssds=8)
        t0 = time.perf_counter()
        status, body = http_post(url, payload)
        cold_wall = time.perf_counter() - t0
        assert status == 200 and body["cache"] == "miss"
        cold_solve = body["timing"]["solve_s"]

        statuses = []
        lock = threading.Lock()

        def client():
            s, b = http_post(url, payload)
            with lock:
                statuses.append((s, b.get("cache")))

        threads = [threading.Thread(target=client) for _ in range(100)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert len(statuses) == 100
        assert all(s == 200 for s, _ in statuses)
        assert all(c == "hit" for _, c in statuses)

        # serial probes isolate the hit path's service time
        probes = []
        for _ in range(10):
            t0 = time.perf_counter()
            s, b = http_post(url, payload)
            probes.append(time.perf_counter() - t0)
            assert s == 200 and b["cache"] == "hit"
        probes.sort()
        hit_median = probes[len(probes) // 2]
        cold = max(cold_solve or 0.0, cold_wall)
        assert hit_median < cold / 10, (
            f"hit median {hit_median * 1e3:.2f}ms vs cold "
            f"{cold * 1e3:.1f}ms — cache hits must be >10x faster"
        )


class TestHttpJobs:
    def test_jobs_roundtrip_over_http(self, live_server):
        url, _ = live_server
        req = urllib.request.Request(
            url + "/v1/jobs",
            data=json.dumps(TINY_REQUEST).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(req, timeout=30) as resp:
            assert resp.status == 202
            submitted = json.loads(resp.read())
            location = resp.headers["Location"]
        job_id = submitted["job"]["id"]
        assert location == f"/v1/jobs/{job_id}"

        with urllib.request.urlopen(
            url + f"/v1/jobs/{job_id}?wait=30", timeout=60
        ) as resp:
            done = json.loads(resp.read())
        assert done["schema"] == "repro.serve/v1.1"
        assert done["job"]["status"] == "done"
        assert done["verdict"]["ok"] is True
        assert done["plan"]["placement"]

    def test_missing_job_404_over_http(self, live_server):
        url, _ = live_server
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(url + "/v1/jobs/nope", timeout=10)
        assert exc.value.code == 404
        body = json.loads(exc.value.read())
        assert body["error"]["code"] == "job_not_found"

    def test_bad_wait_param_is_400(self, live_server):
        url, _ = live_server
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(
                url + "/v1/jobs/any?wait=soon", timeout=10
            )
        assert exc.value.code == 400
        body = json.loads(exc.value.read())
        assert body["error"]["code"] == "bad_request"
        assert body["error"]["detail"]["field"] == "wait"


# ----------------------------------------------------------------------
# loadgen + warehouse integration
# ----------------------------------------------------------------------
class TestLoadgen:
    def test_closed_loop_report_and_warehouse_row(self, live_server, tmp_path):
        url, _ = live_server
        config = LoadConfig(
            url=url, clients=8, requests=24, mix=2, seed=0, probes=4
        )
        report = run_load(config)
        assert len(report.samples) == 24
        assert report.errors == 0
        data = report.data()
        for key in (
            "throughput_rps",
            "latency_p50_s",
            "latency_p95_s",
            "cold_latency_p50_s",
            "cold_throughput_rps",
            "hit_probe_p50_s",
            "hit_speedup",
            "hit_ratio",
        ):
            assert key in data, key
        assert data["throughput_rps"] > 0
        assert data["hit_ratio"] == 1.0  # warmed mix ⇒ all window hits

        record = report_record(report, seed=0, repetition=0)
        sink = tmp_path / "load.jsonl"
        obs.append_jsonl(sink, record)

        from repro.warehouse import ingest_jsonl

        table, ingest = ingest_jsonl([str(sink)])
        assert ingest.num_rows == 1
        row = next(table.rows())
        assert row["benchmark"] == "serve_loadgen"
        assert row["m:bench:latency_p95_s"] > 0
        assert row["m:bench:throughput_rps"] > 0

    def test_open_loop_arrivals_are_seeded(self, live_server):
        url, _ = live_server
        config = LoadConfig(
            url=url,
            clients=4,
            requests=10,
            mode="open",
            rate=200.0,
            mix=2,
            seed=7,
            probes=0,
        )
        report = run_load(config)
        assert len(report.samples) == 10
        assert report.errors == 0

    def test_jobs_api_mode_matches_plan_mode(self, live_server):
        url, _ = live_server
        config = LoadConfig(
            url=url,
            clients=4,
            requests=12,
            mix=2,
            seed=3,
            probes=4,
            api="jobs",
            cold_concurrency=2,
        )
        report = run_load(config)
        assert len(report.samples) == 12
        assert report.errors == 0, report.error_codes()
        data = report.data()
        assert data["hit_ratio"] == 1.0
        assert data["cold_throughput_rps"] > 0


# ----------------------------------------------------------------------
# concurrent JSONL appends (the --json-out fix)
# ----------------------------------------------------------------------
class TestConcurrentAppend:
    def test_parallel_appends_never_interleave(self, tmp_path):
        sink = tmp_path / "records.jsonl"
        threads = 8
        per_thread = 50
        payload = {"filler": "x" * 512}

        def writer(tid):
            for i in range(per_thread):
                obs.append_jsonl(
                    sink,
                    {
                        "schema": "repro.obs/v1",
                        "run_id": f"writer-{tid}",
                        "index": i,
                        **payload,
                    },
                )

        pool = [
            threading.Thread(target=writer, args=(tid,))
            for tid in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()

        records = obs.read_jsonl(sink)  # raises on any corrupt line
        assert len(records) == threads * per_thread
        seen = {(r["run_id"], r["index"]) for r in records}
        assert len(seen) == threads * per_thread
