"""Tests for the communication-topology graph container."""

import pytest

from repro.core.topology import (
    Link,
    LinkKind,
    Node,
    NodeKind,
    Topology,
    iter_physical_links,
)


def tiny_topo() -> Topology:
    """rc0 -- gpu0 and rc0 -- ssd0, plus a CPU memory bank."""
    t = Topology("tiny")
    t.add("rc0", NodeKind.ROOT_COMPLEX)
    t.add("gpu0", NodeKind.GPU)
    t.add("gpu0:mem", NodeKind.GPU_MEM, egress_bw=1e12)
    t.add("ssd0", NodeKind.SSD, egress_bw=6e9)
    t.add("mem0", NodeKind.CPU_MEM, egress_bw=60e9)
    t.add_link("gpu0", "rc0", 20e9)
    t.add_link("gpu0:mem", "gpu0", 1e12, LinkKind.INTERNAL)
    t.add_link("ssd0", "rc0", 6e9)
    t.add_link("mem0", "rc0", 60e9, LinkKind.MEMORY)
    return t


class TestConstruction:
    def test_duplicate_node_rejected(self):
        t = Topology()
        t.add("a", NodeKind.GPU)
        with pytest.raises(ValueError):
            t.add("a", NodeKind.GPU)

    def test_link_to_unknown_node_rejected(self):
        t = Topology()
        t.add("a", NodeKind.GPU)
        with pytest.raises(KeyError):
            t.add_link("a", "b", 1e9)

    def test_duplicate_link_rejected(self):
        t = Topology()
        t.add("a", NodeKind.GPU)
        t.add("b", NodeKind.SWITCH)
        t.add_link("a", "b", 1e9)
        with pytest.raises(ValueError):
            t.add_link("a", "b", 1e9)

    def test_full_duplex_creates_both_directions(self):
        t = Topology()
        t.add("a", NodeKind.GPU)
        t.add("b", NodeKind.SWITCH)
        t.add_link("a", "b", 1e9, capacity_ba=2e9)
        assert t.link("a", "b").capacity == 1e9
        assert t.link("b", "a").capacity == 2e9

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Link("a", "b", 0.0)

    def test_invalid_egress(self):
        with pytest.raises(ValueError):
            Node("x", NodeKind.SSD, egress_bw=-5)


class TestTaxonomy:
    def test_kind_predicates(self):
        assert NodeKind.SSD.is_storage
        assert NodeKind.CPU_MEM.is_storage
        assert NodeKind.GPU_MEM.is_storage
        assert NodeKind.GPU.is_compute
        assert NodeKind.SWITCH.is_interconnect
        assert NodeKind.ROOT_COMPLEX.is_interconnect
        assert not NodeKind.GPU.is_storage

    def test_node_queries(self):
        t = tiny_topo()
        assert {n.name for n in t.storage_nodes} == {"gpu0:mem", "ssd0", "mem0"}
        assert t.gpus() == ["gpu0"]
        assert t.ssds() == ["ssd0"]
        assert {n.name for n in t.interconnect_nodes} == {"rc0"}


class TestRouting:
    def test_shortest_path_direct(self):
        t = tiny_topo()
        assert t.shortest_path("ssd0", "gpu0") == ["ssd0", "rc0", "gpu0"]

    def test_path_to_self(self):
        t = tiny_topo()
        assert t.shortest_path("gpu0", "gpu0") == ["gpu0"]

    def test_qpi_penalty_prefers_local(self):
        t = Topology()
        t.add("rc0", NodeKind.ROOT_COMPLEX)
        t.add("rc1", NodeKind.ROOT_COMPLEX)
        t.add("sw", NodeKind.SWITCH)
        t.add("gpu0", NodeKind.GPU)
        t.add("ssd0", NodeKind.SSD, egress_bw=6e9)
        # two routes: ssd0->rc0->sw->gpu0 (3 hops) vs ssd0->rc0->rc1->gpu0
        # where rc0->rc1 is QPI (penalty) — local wins despite equal hops
        t.add_link("rc0", "rc1", 20e9, LinkKind.QPI)
        t.add_link("rc0", "sw", 20e9)
        t.add_link("sw", "gpu0", 20e9)
        t.add_link("rc1", "gpu0", 20e9)
        t.add_link("ssd0", "rc0", 6e9)
        path = t.shortest_path("ssd0", "gpu0")
        assert path == ["ssd0", "rc0", "sw", "gpu0"]

    def test_no_path_returns_none(self):
        t = Topology()
        t.add("a", NodeKind.GPU)
        t.add("b", NodeKind.SSD, egress_bw=1e9)
        assert t.shortest_path("b", "a") is None

    def test_path_links(self):
        t = tiny_topo()
        links = t.path_links(["ssd0", "rc0", "gpu0"])
        assert [(l.src, l.dst) for l in links] == [("ssd0", "rc0"), ("rc0", "gpu0")]

    def test_unknown_endpoint_raises(self):
        t = tiny_topo()
        with pytest.raises(KeyError):
            t.shortest_path("nope", "gpu0")


class TestValidation:
    def test_valid_topology_passes(self):
        tiny_topo().validate()

    def test_no_gpu_fails(self):
        t = Topology()
        t.add("ssd0", NodeKind.SSD, egress_bw=1e9)
        with pytest.raises(ValueError, match="no GPU"):
            t.validate()

    def test_unreachable_storage_fails(self):
        t = Topology()
        t.add("gpu0", NodeKind.GPU)
        t.add("rc", NodeKind.ROOT_COMPLEX)
        t.add("ssd0", NodeKind.SSD, egress_bw=1e9)
        t.add("mem0", NodeKind.CPU_MEM)
        t.add_link("gpu0", "rc", 1e9)
        t.add_link("mem0", "rc", 1e9)
        with pytest.raises(ValueError, match="cannot reach"):
            t.validate()


class TestMisc:
    def test_copy_is_independent(self):
        t = tiny_topo()
        c = t.copy("clone")
        c.add("gpu1", NodeKind.GPU)
        assert "gpu1" in c and "gpu1" not in t

    def test_describe_mentions_all_nodes(self):
        text = tiny_topo().describe()
        for name in ("rc0", "gpu0", "ssd0", "mem0"):
            assert name in text

    def test_iter_physical_links_dedupes_directions(self):
        t = tiny_topo()
        once = list(iter_physical_links(t))
        assert len(once) == len(t.links) // 2
