"""Tests for the Machine A/B/Cluster C models and classic layouts."""

import pytest

from repro.core.flowmodel import plain_max_flow
from repro.core.placement import GPU, SSD
from repro.hardware.machines import (
    classic_layouts,
    cluster_c,
    machine_a,
    machine_b,
    moment_paper_layout_b,
)
from repro.utils.units import GB, GiB


class TestMachineA:
    def test_table_specs(self):
        m = machine_a()
        assert m.cpu_mem_total == pytest.approx(768 * GiB)
        assert m.gpu.hbm_bytes == pytest.approx(40 * GiB)
        assert m.ssd.read_bw == pytest.approx(6 * GB)

    def test_chassis_structure(self):
        ch = machine_a().chassis
        assert set(ch.interconnects) == {"rc0", "rc1", "plx0", "plx1"}
        assert any(t.label == "qpi" for t in ch.trunks)
        assert any(t.label == "bus9" for t in ch.trunks)

    def test_classic_layouts_fit(self):
        m = machine_a()
        layouts = classic_layouts(m)
        assert set(layouts) == {"a", "b", "c", "d"}
        for p in layouts.values():
            assert p.num_gpus == 4
            assert p.num_ssds == 8

    def test_layout_semantics(self):
        m = machine_a()
        lay = classic_layouts(m)
        # (a): SSDs on bays, GPUs split
        assert lay["a"].count("rc0.bays", SSD) == 4
        assert lay["a"].count("plx0.slots", GPU) == 2
        assert lay["a"].count("plx1.slots", GPU) == 2
        # (b): GPUs together
        assert lay["b"].count("plx0.slots", GPU) == 4
        # (c): SSDs co-located with GPUs on switches
        assert lay["c"].count("plx0.slots", SSD) == 4
        assert lay["c"].count("plx0.slots", GPU) == 2
        # (d): GPUs together, SSDs split across switches
        assert lay["d"].count("plx0.slots", GPU) == 4
        assert lay["d"].count("plx0.slots", SSD) == 4
        assert lay["d"].count("plx1.slots", SSD) == 4

    def test_build_topologies(self):
        m = machine_a()
        for p in classic_layouts(m).values():
            topo = m.build(p)
            assert len(topo.gpus()) == 4
            assert len(topo.ssds()) == 8
            topo.validate()

    def test_scaled_layouts(self):
        m = machine_a()
        for n in (1, 2, 3, 4):
            lay = classic_layouts(m, num_gpus=n)
            for p in lay.values():
                assert p.num_gpus == n

    def test_plain_maxflow_ordering(self):
        """Layout (c) admits strictly more raw flow than (b)."""
        m = machine_a()
        lay = classic_layouts(m)
        flow = {k: plain_max_flow(m.build(p)) for k, p in lay.items()}
        assert flow["c"] > flow["b"]
        assert flow["c"] > flow["d"]


class TestMachineB:
    def test_cascade_structure(self):
        ch = machine_b().chassis
        labels = {t.label for t in ch.trunks}
        assert "bus11" in labels and "bus16" in labels
        # cascade: plx1 hangs off plx0, not off a root complex
        t16 = next(t for t in ch.trunks if t.label == "bus16")
        assert {t16.a, t16.b} == {"plx0", "plx1"}

    def test_direct_slots_exist(self):
        ch = machine_b().chassis
        assert "rc0.x16" in ch.group_names
        assert "rc1.x16" in ch.group_names

    def test_moment_fig7_layout(self):
        m = machine_b()
        p = moment_paper_layout_b(m)
        assert p.num_gpus == 4
        assert p.num_ssds == 8
        assert p.count("rc0.x16", GPU) == 1
        assert p.count("rc1.x16", GPU) == 1
        assert p.count("rc1.bays", SSD) == 4
        assert p.count("plx1.slots", GPU) == 2
        m.build(p).validate()

    def test_fig7_layout_rejected_on_machine_a(self):
        with pytest.raises(ValueError):
            moment_paper_layout_b(machine_a())

    def test_fig7_beats_classic_c_in_raw_flow(self):
        m = machine_b()
        fig7 = plain_max_flow(m.build(moment_paper_layout_b(m)))
        c = plain_max_flow(m.build(classic_layouts(m)["c"]))
        assert fig7 >= c

    def test_classic_layouts_fit(self):
        m = machine_b()
        for p in classic_layouts(m).values():
            m.build(p).validate()


class TestClusterC:
    def test_specs(self):
        c = cluster_c()
        assert c.num_machines == 4
        assert c.total_cpu_mem == pytest.approx(4 * 256 * GiB)
        assert c.nic_bw == pytest.approx(12.5 * GB)
