"""Tests for the max-flow throughput predictor."""

import pytest

from repro.core.flowmodel import (
    CPU_CLASS,
    SSD_CLASS,
    TrafficDemand,
    build_time_network,
    min_completion_time,
    plain_max_flow,
    predict_throughput,
)
from repro.core.maxflow import dinic
from repro.core.topology import LinkKind, NodeKind, Topology
from repro.hardware.machines import classic_layouts, machine_a
from repro.utils.units import GB


def linear_topo() -> Topology:
    """ssd0 (6 GB/s) -> rc -> gpu0 (20 GB/s link)."""
    t = Topology("linear")
    t.add("rc", NodeKind.ROOT_COMPLEX)
    t.add("gpu0", NodeKind.GPU)
    t.add("ssd0", NodeKind.SSD, egress_bw=6 * GB)
    t.add("mem0", NodeKind.CPU_MEM, egress_bw=60 * GB)
    t.add_link("ssd0", "rc", 6 * GB)
    t.add_link("mem0", "rc", 60 * GB, LinkKind.MEMORY)
    t.add_link("gpu0", "rc", 20 * GB)
    return t


class TestTrafficDemand:
    def test_accumulates(self):
        d = TrafficDemand()
        d.add("ssd0", "gpu0", 10.0)
        d.add("ssd0", "gpu0", 5.0)
        assert d.entries[("ssd0", "gpu0")] == 15.0
        assert d.total == 15.0

    def test_zero_ignored(self):
        d = TrafficDemand()
        d.add("ssd0", "gpu0", 0.0)
        assert not d.entries

    def test_negative_rejected(self):
        d = TrafficDemand()
        with pytest.raises(ValueError):
            d.add("ssd0", "gpu0", -1.0)

    def test_aggregations(self):
        d = TrafficDemand()
        d.add("ssd0", "gpu0", 10.0)
        d.add("mem0", "gpu0", 5.0)
        d.add("ssd0", "gpu1", 1.0)
        assert d.per_gpu() == {"gpu0": 15.0, "gpu1": 1.0}
        assert d.per_bin() == {"ssd0": 11.0, "mem0": 5.0}

    def test_scaled(self):
        d = TrafficDemand({("a", "g"): 2.0})
        assert d.scaled(3.0).entries[("a", "g")] == 6.0


class TestMinCompletionTime:
    def test_ssd_bound(self):
        topo = linear_topo()
        d = TrafficDemand()
        d.add("ssd0", "gpu0", 60 * GB)  # 60 GB from a 6 GB/s drive
        pred = min_completion_time(topo, d)
        assert pred.time == pytest.approx(10.0, rel=1e-3)
        assert pred.throughput == pytest.approx(6 * GB, rel=1e-3)

    def test_link_bound_with_mixed_sources(self):
        topo = linear_topo()
        d = TrafficDemand()
        d.add("ssd0", "gpu0", 6 * GB)
        d.add("mem0", "gpu0", 34 * GB)  # total 40 GB through a 20 GB/s link
        pred = min_completion_time(topo, d)
        assert pred.time == pytest.approx(2.0, rel=1e-3)

    def test_storage_rate_reported(self):
        topo = linear_topo()
        d = TrafficDemand()
        d.add("ssd0", "gpu0", 12 * GB)
        pred = min_completion_time(topo, d)
        assert pred.storage_rate["ssd0"] == pytest.approx(6 * GB, rel=1e-2)

    def test_zero_demand(self):
        pred = min_completion_time(linear_topo(), TrafficDemand())
        assert pred.time == 0.0
        assert pred.throughput == 0.0

    def test_unknown_bin_raises(self):
        d = TrafficDemand()
        d.add("nope", "gpu0", 1.0)
        with pytest.raises(KeyError):
            min_completion_time(linear_topo(), d)

    def test_unknown_gpu_raises(self):
        d = TrafficDemand()
        d.add("ssd0", "nogpu", 1.0)
        with pytest.raises(KeyError):
            min_completion_time(linear_topo(), d)

    def test_per_gpu_rate(self):
        topo = linear_topo()
        d = TrafficDemand()
        d.add("ssd0", "gpu0", 6 * GB)
        pred = min_completion_time(topo, d)
        assert pred.per_gpu_rate["gpu0"] == pytest.approx(6 * GB, rel=1e-3)


class TestClassDemands:
    def test_ssd_class_splits_optimally(self):
        """Two SSDs behind separate links serve a class demand in parallel."""
        t = Topology()
        t.add("rc", NodeKind.ROOT_COMPLEX)
        t.add("gpu0", NodeKind.GPU)
        t.add("ssd0", NodeKind.SSD, egress_bw=6 * GB)
        t.add("ssd1", NodeKind.SSD, egress_bw=6 * GB)
        t.add_link("ssd0", "rc", 6 * GB)
        t.add_link("ssd1", "rc", 6 * GB)
        t.add_link("gpu0", "rc", 20 * GB)
        d = TrafficDemand()
        d.add(SSD_CLASS, "gpu0", 12 * GB)
        pred = min_completion_time(t, d)
        assert pred.time == pytest.approx(1.0, rel=1e-2)
        assert pred.storage_rate["ssd0"] == pytest.approx(6 * GB, rel=5e-2)
        assert pred.storage_rate["ssd1"] == pytest.approx(6 * GB, rel=5e-2)

    def test_cpu_class(self):
        topo = linear_topo()
        d = TrafficDemand()
        d.add(CPU_CLASS, "gpu0", 20 * GB)
        pred = min_completion_time(topo, d)
        assert pred.time == pytest.approx(1.0, rel=1e-2)


class TestOnMachines:
    def test_classic_c_throughput_exceeds_b(self):
        m = machine_a()
        lay = classic_layouts(m)
        results = {}
        for key in ("b", "c"):
            topo = m.build(lay[key])
            d = TrafficDemand()
            for g in topo.gpus():
                d.add(SSD_CLASS, g, 10 * GB)
            results[key] = predict_throughput(topo, d)
        assert results["c"] > 1.5 * results["b"]

    def test_bottleneck_reported_for_contended_layout(self):
        m = machine_a()
        topo = m.build(classic_layouts(m)["b"])
        d = TrafficDemand()
        for g in topo.gpus():
            d.add(SSD_CLASS, g, 10 * GB)
        pred = min_completion_time(topo, d)
        assert pred.bottlenecks  # bus9 saturates
        assert any("rc0" in b or "plx0" in b for b in pred.bottlenecks)


class TestPlainMaxFlow:
    def test_linear(self):
        # mem (60) + ssd (6) both limited by the 20 GB/s GPU link
        assert plain_max_flow(linear_topo()) == pytest.approx(20 * GB, rel=1e-6)

    def test_machine_a_classic_c_is_ssd_plus_mem_bound(self):
        m = machine_a()
        topo = m.build(classic_layouts(m)["c"])
        flow = plain_max_flow(topo)
        # 4 GPUs x 24 GB/s slot links is the hard ceiling
        assert flow <= 4 * 24 * GB * 1.01
        assert flow > 48 * GB  # more than SSDs alone: memory adds paths
