"""Tests for the simulated hardware profiler and the cost models."""

import pytest

from repro.costs.monetary import (
    CLUSTER_NODE,
    FIVE_YEARS_H,
    MOMENT_MACHINE,
    MachineCost,
    cloud_cost_ratio,
    cost_per_epoch,
    tco_comparison,
)
from repro.hardware.machines import classic_layouts, machine_a
from repro.hardware.profiler import HardwareProfiler
from repro.hardware.specs import P5510


@pytest.fixture(scope="module")
def topo():
    m = machine_a()
    return m.build(classic_layouts(m)["c"])


class TestProfiler:
    def test_noiseless_probe_matches_capacity(self, topo):
        prof = HardwareProfiler(topo, ssd=P5510, noise=0.0)
        bw = prof.probe_link("rc0", "plx0")
        assert bw == pytest.approx(topo.link("rc0", "plx0").capacity, rel=1e-6)

    def test_full_profile_covers_links_and_ssds(self, topo):
        prof = HardwareProfiler(topo, ssd=P5510, noise=0.0)
        profile = prof.profile()
        assert len(profile.links) == len(topo.links)
        assert set(profile.ssd_read) == set(topo.ssds())

    def test_noise_perturbs_but_bounded(self, topo):
        prof = HardwareProfiler(topo, ssd=P5510, noise=0.05, seed=1)
        cap = topo.link("rc0", "plx0").capacity
        values = [prof.probe_link("rc0", "plx0") for _ in range(20)]
        assert any(abs(v - cap) > 1e-6 for v in values)
        assert all(0.5 * cap < v < 1.5 * cap for v in values)

    def test_apply_builds_measured_topology(self, topo):
        prof = HardwareProfiler(topo, ssd=P5510, noise=0.0)
        measured = prof.apply_profile_topo = prof.profile().apply(topo)
        assert measured.link("rc0", "plx0").capacity == pytest.approx(
            topo.link("rc0", "plx0").capacity
        )
        measured.validate()

    def test_queue_depth_sweep_monotone(self, topo):
        prof = HardwareProfiler(topo, ssd=P5510, noise=0.0)
        sweep = prof.queue_depth_sweep([1, 16, 256])
        assert sweep[1] < sweep[16] < sweep[256]

    def test_sweep_requires_ssd(self, topo):
        with pytest.raises(ValueError):
            HardwareProfiler(topo).queue_depth_sweep()


class TestCosts:
    def test_tco_matches_paper(self):
        tco = tco_comparison()
        assert tco["machine_a_b_usd"] == pytest.approx(90_270, rel=1e-3)
        assert tco["cluster_c_usd"] == pytest.approx(181_100, rel=1e-3)
        assert tco["ratio"] == pytest.approx(0.5, abs=0.02)

    def test_cloud_ratio_half(self):
        assert cloud_cost_ratio() == pytest.approx(0.5)

    def test_capex_components(self):
        assert MOMENT_MACHINE.capex_usd > CLUSTER_NODE.capex_usd
        assert MOMENT_MACHINE.num_gpus == 4

    def test_opex_grows_with_years(self):
        assert MOMENT_MACHINE.opex_usd(5) > MOMENT_MACHINE.opex_usd(1)

    def test_tco_validation(self):
        with pytest.raises(ValueError):
            MOMENT_MACHINE.tco_usd(years=0)
        with pytest.raises(ValueError):
            MachineCost("x", -1, 0, 0, 0, 0, 0)

    def test_cost_per_epoch(self):
        usd = cost_per_epoch(90_270, FIVE_YEARS_H, 15.0)
        assert 0 < usd < 1.0
        with pytest.raises(ValueError):
            cost_per_epoch(1.0, 0, 15.0)
