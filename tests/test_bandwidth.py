"""Tests for max-min fair sharing and progressive filling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simulator.bandwidth import Flow, max_min_rates, progressive_fill


class TestMaxMinRates:
    def test_single_flow_gets_capacity(self):
        flows = [Flow(("l",), 100.0)]
        rates = max_min_rates(flows, {"l": 10.0})
        assert rates == [10.0]

    def test_equal_sharing(self):
        flows = [Flow(("l",), 1.0), Flow(("l",), 1.0)]
        rates = max_min_rates(flows, {"l": 10.0})
        assert rates == [5.0, 5.0]

    def test_water_filling_classic(self):
        # Flow A uses links 1+2, B uses 1, C uses 2.
        # cap1=10 shared A,B; cap2=30 shared A,C.
        # Fair: link1 bottleneck first -> A=B=5; C gets 30-5=25.
        flows = [
            Flow(("l1", "l2"), 1.0),
            Flow(("l1",), 1.0),
            Flow(("l2",), 1.0),
        ]
        rates = max_min_rates(flows, {"l1": 10.0, "l2": 30.0})
        assert rates[0] == pytest.approx(5.0)
        assert rates[1] == pytest.approx(5.0)
        assert rates[2] == pytest.approx(25.0)

    def test_local_flow_infinite(self):
        rates = max_min_rates([Flow((), 1.0)], {})
        assert rates[0] == float("inf")

    def test_unknown_resource(self):
        with pytest.raises(KeyError):
            max_min_rates([Flow(("x",), 1.0)], {"l": 1.0})

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            max_min_rates([Flow(("l",), 1.0)], {"l": 0.0})

    def test_inactive_flows_zero(self):
        flows = [Flow(("l",), 1.0), Flow(("l",), 1.0)]
        rates = max_min_rates(flows, {"l": 10.0}, active=[0])
        assert rates == [10.0, 0.0]

    def test_duplicate_resource_in_path_counted_once(self):
        flows = [Flow(("l", "l"), 1.0)]
        rates = max_min_rates(flows, {"l": 10.0})
        assert rates == [10.0]


class TestProgressiveFill:
    def test_single_flow_time(self):
        res = progressive_fill([Flow(("l",), 100.0)], {"l": 10.0})
        assert res.makespan == pytest.approx(10.0)
        assert res.finish_times == [pytest.approx(10.0)]
        assert res.resource_bytes["l"] == pytest.approx(100.0)

    def test_release_after_completion(self):
        # Two flows share a 10 B/s link; one needs 10 B, the other 30 B.
        # Phase 1: both at 5 B/s until t=2 (first finishes).
        # Phase 2: second at 10 B/s for remaining 20 B -> t=4.
        flows = [Flow(("l",), 10.0), Flow(("l",), 30.0)]
        res = progressive_fill(flows, {"l": 10.0})
        assert res.finish_times[0] == pytest.approx(2.0)
        assert res.finish_times[1] == pytest.approx(4.0)
        assert res.makespan == pytest.approx(4.0)

    def test_conservation_of_bytes(self):
        flows = [Flow(("a", "b"), 50.0), Flow(("b",), 25.0)]
        res = progressive_fill(flows, {"a": 10.0, "b": 10.0})
        assert res.resource_bytes["b"] == pytest.approx(75.0)
        assert res.resource_bytes["a"] == pytest.approx(50.0)

    def test_zero_demand_finishes_instantly(self):
        res = progressive_fill([Flow(("l",), 0.0)], {"l": 1.0})
        assert res.makespan == 0.0

    def test_local_flows_instant(self):
        res = progressive_fill([Flow((), 1e9)], {})
        assert res.makespan == 0.0

    def test_peak_rates_bounded_by_capacity(self):
        flows = [Flow(("l",), 10.0) for _ in range(5)]
        res = progressive_fill(flows, {"l": 7.0})
        assert res.peak_rates["l"] <= 7.0 + 1e-9

    def test_finish_by_tag(self):
        flows = [
            Flow(("l",), 10.0, tag="a"),
            Flow(("l",), 10.0, tag="a"),
            Flow(("m",), 1.0, tag="b"),
        ]
        res = progressive_fill(flows, {"l": 10.0, "m": 10.0})
        by_tag = res.finish_by_tag()
        assert by_tag["a"] == pytest.approx(2.0)
        assert by_tag["b"] == pytest.approx(0.1)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # path subset selector
                st.floats(min_value=0.0, max_value=100.0),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_properties_hold(self, spec):
        paths = [(), ("a",), ("b",), ("a", "b")]
        flows = [Flow(paths[i], d) for i, d in spec]
        caps = {"a": 10.0, "b": 5.0}
        res = progressive_fill(flows, caps)
        # 1. every flow finishes
        assert len(res.finish_times) == len(flows)
        # 2. bytes through each resource equal sum of demands routed on it
        for key, cap in caps.items():
            want = sum(f.demand for f in flows if key in f.path)
            got = res.resource_bytes.get(key, 0.0)
            assert got == pytest.approx(want, abs=1e-3)
        # 3. makespan lower bound: busiest resource's total / capacity
        lb = max(
            (
                sum(f.demand for f in flows if k in f.path) / c
                for k, c in caps.items()
            ),
            default=0.0,
        )
        assert res.makespan >= lb - 1e-6
        # 4. peak rates never exceed capacity
        for key, rate in res.peak_rates.items():
            assert rate <= caps[key] + 1e-6

    def test_makespan_matches_serial_bound(self):
        # All flows on one link: makespan must equal total/capacity
        flows = [Flow(("l",), d) for d in (5.0, 10.0, 15.0)]
        res = progressive_fill(flows, {"l": 10.0})
        assert res.makespan == pytest.approx(3.0)
