"""Tests for the system runners: Moment, M-Hyperion, M-GIDS, DistDGL."""

import pytest

from repro.baselines.distdgl import DistDglSystem
from repro.baselines.mgids import MGidsSystem
from repro.baselines.mhyperion import MHyperionSystem
from repro.graphs.datasets import CLUEWEB, IGB_HOM, PAPER100M, UK_2014
from repro.hardware.machines import classic_layouts, machine_a
from repro.runtime.system import MomentSystem, gpu_memory_budget
from repro.simulator.iostack import IoStackConfig

QUICK = 40  # extra scale factor so graphs stay test-sized


@pytest.fixture(scope="module")
def machine():
    return machine_a()


@pytest.fixture(scope="module")
def ig(machine):
    return IGB_HOM.build(scale=IGB_HOM.default_scale * QUICK, seed=0)


@pytest.fixture(scope="module")
def placement_c(machine):
    return classic_layouts(machine)["c"]


class TestGpuMemoryBudget:
    def test_fits_common_case(self, machine, ig):
        ledger = gpu_memory_budget(machine, ig, "graphsage", 4, IoStackConfig())
        assert ledger.free_bytes > 0
        assert "activations" in ledger.entries

    def test_extra_reservation_can_oom(self, machine, ig):
        from repro.simulator.memory import OutOfMemoryError

        with pytest.raises(OutOfMemoryError):
            gpu_memory_budget(
                machine, ig, "graphsage", 4, IoStackConfig(),
                extra={"huge": 100e9},
            )


class TestMomentSystem:
    def test_end_to_end(self, machine, ig):
        r = MomentSystem(machine).run(ig, num_gpus=2, num_ssds=4,
                                      sample_batches=2)
        assert r.ok
        assert r.system == "moment"
        assert r.paper_epoch_seconds > 0
        assert r.plan is not None
        assert r.placement.num_gpus == 2

    def test_fixed_placement(self, machine, ig, placement_c):
        r = MomentSystem(machine).run(
            ig, placement=placement_c, sample_batches=2
        )
        assert r.ok
        assert r.placement == placement_c

    def test_repr(self, machine, ig, placement_c):
        r = MomentSystem(machine).run(
            ig, placement=placement_c, sample_batches=2
        )
        assert "moment" in repr(r)


class TestMHyperion:
    def test_runs_with_binding(self, machine, ig, placement_c):
        r = MHyperionSystem(machine).run(
            ig, placement=placement_c, sample_batches=2
        )
        assert r.ok
        # binding: every SSD demand entry must be a bound drive
        from repro.simulator.binding import static_ssd_binding

        topo = machine.build(placement_c)
        binding = static_ssd_binding(topo)
        for (b, g), _ in r.epoch.demand.entries.items():
            if b.startswith("ssd"):
                assert b in binding[g]

    def test_defaults_to_classic_layout_c(self, machine, ig, placement_c):
        r = MHyperionSystem(machine).run(ig, sample_batches=2)
        assert r.ok
        assert r.placement.as_tuple() == placement_c.as_tuple()

    def test_base_system_requires_placement(self, machine, ig):
        from repro.runtime.system import GnnSystem

        with pytest.raises(ValueError):
            GnnSystem(machine).run(ig, sample_batches=2)


class TestMGids:
    def test_runs_on_small_dataset(self, machine, ig, placement_c):
        r = MGidsSystem(machine).run(
            ig, placement=placement_c, sample_batches=2
        )
        assert r.ok

    @pytest.mark.parametrize("spec", [UK_2014, CLUEWEB])
    def test_oom_on_terabyte_features(self, machine, placement_c, spec):
        ds = spec.build(scale=spec.default_scale * QUICK, seed=0)
        r = MGidsSystem(machine).run(ds, placement=placement_c, sample_batches=2)
        assert not r.ok
        assert "page_cache_metadata" in (r.oom or "")

    def test_paper100m_fits(self, machine, placement_c):
        ds = PAPER100M.build(scale=PAPER100M.default_scale * QUICK, seed=0)
        r = MGidsSystem(machine).run(ds, placement=placement_c, sample_batches=2)
        assert r.ok


class TestDistDgl:
    def test_pa_runs(self):
        ds = PAPER100M.build(scale=PAPER100M.default_scale * QUICK, seed=0)
        r = DistDglSystem().run(ds, sample_batches=2)
        assert r.ok
        assert r.epoch_seconds > 0
        assert r.seeds_per_s > 0
        # CPU sampling should be the bottleneck stage (paper's claim)
        assert r.sample_seconds >= r.network_seconds * 0.5

    @pytest.mark.parametrize("spec", [IGB_HOM, UK_2014, CLUEWEB])
    def test_oom_on_big_datasets(self, spec):
        ds = spec.build(scale=spec.default_scale * QUICK, seed=0)
        r = DistDglSystem().run(ds, sample_batches=2)
        assert not r.ok

    def test_network_not_the_bottleneck(self):
        """Paper: observed 20 Gb/s peak on a 100 Gb/s network."""
        ds = PAPER100M.build(scale=PAPER100M.default_scale * QUICK, seed=0)
        r = DistDglSystem().run(ds, sample_batches=2)
        assert r.network_seconds < r.sample_seconds


class TestComparisons:
    def test_moment_beats_binding_baseline(self, machine, ig, placement_c):
        # Moment searches its own placement; the baseline runs the best
        # classic layout with its static drive binding.
        moment = MomentSystem(machine).run(ig, sample_batches=3)
        hyperion = MHyperionSystem(machine).run(
            ig, placement=placement_c, sample_batches=3
        )
        assert moment.seeds_per_s >= hyperion.seeds_per_s * 0.95

    def test_moment_beats_distdgl_on_pa(self, machine):
        ds = PAPER100M.build(scale=PAPER100M.default_scale * QUICK, seed=0)
        moment = MomentSystem(machine).run(ds, num_gpus=4, sample_batches=3)
        dgl = DistDglSystem().run(ds, sample_batches=3)
        assert moment.ok and dgl.ok
        assert moment.seeds_per_s > dgl.seeds_per_s
