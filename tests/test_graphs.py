"""Tests for the CSR container, generators, and dataset registry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.csr import CSRGraph
from repro.graphs.datasets import (
    DATASETS,
    IGB_HOM,
    PAPER100M,
    get_dataset,
    tiny_dataset,
)
from repro.graphs.generators import (
    degree_gini,
    erdos_renyi_graph,
    power_law_graph,
    rmat_graph,
)
from repro.graphs.partition import (
    partition_contiguous,
    partition_random,
    partition_round_robin,
    validate_partition,
)
from repro.utils.units import GB


class TestCSRGraph:
    def simple(self):
        # 0->1, 0->2, 1->2
        return CSRGraph.from_edges(3, [0, 0, 1], [1, 2, 2], feature_dim=4)

    def test_from_edges(self):
        g = self.simple()
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert list(g.neighbors(0)) == [1, 2]
        assert list(g.neighbors(1)) == [2]
        assert list(g.neighbors(2)) == []

    def test_degrees(self):
        g = self.simple()
        assert list(g.out_degree()) == [2, 1, 0]
        assert list(g.out_degree(np.array([2, 0]))) == [0, 2]

    def test_dedupe(self):
        g = CSRGraph.from_edges(2, [0, 0, 0], [1, 1, 1])
        assert g.num_edges == 1
        g2 = CSRGraph.from_edges(2, [0, 0, 0], [1, 1, 1], dedupe=False)
        assert g2.num_edges == 3

    def test_feature_bytes(self):
        g = self.simple()
        assert g.feature_bytes == 16
        assert g.total_feature_bytes == 48

    def test_invalid_indptr(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([1, 2]), np.array([0]))

    def test_out_of_range_indices(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([5]))

    def test_out_of_range_edges(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [0], [7])

    def test_neighbors_bounds(self):
        with pytest.raises(IndexError):
            self.simple().neighbors(10)

    def test_to_undirected(self):
        g = self.simple().to_undirected()
        assert 0 in g.neighbors(1)
        assert 1 in g.neighbors(0)
        assert g.num_edges == 6

    def test_topology_bytes_positive(self):
        assert self.simple().topology_bytes > 0


class TestGenerators:
    def test_rmat_shape(self):
        g = rmat_graph(1000, 8000, seed=1)
        assert g.num_vertices == 1000
        assert 0 < g.num_edges <= 8000

    def test_rmat_deterministic(self):
        g1 = rmat_graph(500, 2000, seed=42)
        g2 = rmat_graph(500, 2000, seed=42)
        assert np.array_equal(g1.indices, g2.indices)

    def test_rmat_is_skewed(self):
        skewed = rmat_graph(2000, 20000, seed=0)
        uniform = erdos_renyi_graph(2000, 10, seed=0)
        assert degree_gini(skewed) > degree_gini(uniform) + 0.1

    def test_rmat_invalid_probs(self):
        with pytest.raises(ValueError):
            rmat_graph(100, 100, a=0.9, b=0.3, c=0.3)

    def test_power_law_skew_monotone_in_exponent(self):
        flat = power_law_graph(2000, 10, exponent=0.1, seed=0)
        steep = power_law_graph(2000, 10, exponent=1.0, seed=0)
        assert degree_gini(steep) > degree_gini(flat)

    def test_power_law_no_self_loops(self):
        g = power_law_graph(300, 5, seed=3)
        src = np.repeat(np.arange(g.num_vertices), np.diff(g.indptr))
        assert not np.any(src == g.indices)

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            power_law_graph(1, 5)
        with pytest.raises(ValueError):
            power_law_graph(100, -1)
        with pytest.raises(ValueError):
            erdos_renyi_graph(100, 0)

    @given(st.integers(min_value=2, max_value=200), st.integers(min_value=1, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_generated_graphs_are_valid_csr(self, n, d):
        g = power_law_graph(n, d, seed=0)
        assert g.indptr[-1] == g.num_edges
        if g.num_edges:
            assert g.indices.max() < n


class TestDatasets:
    def test_registry_matches_table2(self):
        assert set(DATASETS) == {"PA", "IG", "UK", "CL"}
        assert PAPER100M.num_vertices == 111_000_000
        assert PAPER100M.feature_storage_bytes == pytest.approx(56 * GB)
        assert IGB_HOM.feature_storage_bytes == pytest.approx(1.1e12)
        assert DATASETS["CL"].num_vertices == 1_000_000_000

    def test_get_dataset(self):
        assert get_dataset("pa") is PAPER100M
        with pytest.raises(KeyError):
            get_dataset("XX")

    def test_feature_bytes_per_vertex(self):
        assert PAPER100M.feature_bytes == 4096

    def test_build_scales_down(self):
        ds = PAPER100M.build(scale=20000, seed=0)
        assert ds.graph.num_vertices == pytest.approx(
            PAPER100M.num_vertices / 20000, rel=0.3
        )
        assert ds.batch_size >= 16
        assert ds.train_ids.size >= ds.batch_size

    def test_build_preserves_batch_ratio(self):
        # At moderate scales (before the batch-size floor of 16 kicks
        # in) the batches-per-epoch count matches the paper's.
        ds = PAPER100M.build(scale=500, seed=0)
        paper_batches = PAPER100M.num_vertices * 0.01 / PAPER100M.batch_size
        assert ds.num_batches == pytest.approx(paper_batches, rel=0.1)

    def test_scaled_capacity_and_time(self):
        ds = PAPER100M.build(scale=20000, seed=0)
        assert ds.scaled_capacity(40e9) == pytest.approx(2e6)
        assert ds.to_paper_time(0.001) == pytest.approx(20.0)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            PAPER100M.build(scale=0.5)

    def test_tiny_dataset(self):
        ds = tiny_dataset(num_vertices=500, batch_size=32, seed=1)
        assert ds.graph.num_vertices == 500
        assert ds.scale == 1.0
        assert ds.num_batches >= 1
        assert np.all(np.diff(ds.train_ids) > 0)  # sorted unique


class TestPartition:
    def test_round_robin_cover(self):
        ids = np.arange(10)
        parts = partition_round_robin(ids, 3)
        validate_partition(ids, parts)

    def test_contiguous_cover(self):
        ids = np.arange(11)
        parts = partition_contiguous(ids, 4)
        validate_partition(ids, parts)
        assert all(np.all(np.diff(p) == 1) for p in parts if p.size > 1)

    def test_random_cover_and_seeded(self):
        ids = np.arange(20)
        p1 = partition_random(ids, 4, seed=7)
        p2 = partition_random(ids, 4, seed=7)
        validate_partition(ids, p1)
        assert all(np.array_equal(a, b) for a, b in zip(p1, p2))

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            partition_round_robin(np.arange(4), 0)

    def test_validate_catches_imbalance(self):
        ids = np.arange(4)
        with pytest.raises(ValueError):
            validate_partition(ids, [ids[:3], ids[3:]])

    def test_validate_catches_missing(self):
        ids = np.arange(4)
        with pytest.raises(ValueError):
            validate_partition(ids, [ids[:2], ids[:2]])

    @given(st.integers(min_value=1, max_value=50), st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_round_robin_always_valid(self, n, parts):
        ids = np.arange(n)
        validate_partition(ids, partition_round_robin(ids, parts))
