"""Tests for the repro.obs telemetry subsystem.

Covers the disabled-mode no-op contract, span nesting/ordering,
histogram percentiles, the JSONL record schema round-trip, and an
integration test asserting the EpochSimulator's tier-byte metrics
reconcile with its :class:`EpochResult` / :class:`TrafficAccount`
totals.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.core.ddak import ddak_place, make_bins
from repro.graphs.datasets import tiny_dataset
from repro.hardware.machines import classic_layouts, machine_a
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    metric_key,
    parse_key,
    render_key,
)
from repro.obs.trace import Tracer, traced
from repro.sampling.hotness import degree_proxy_hotness
from repro.simulator.pipeline import EpochSimulator, SimConfig
from repro.simulator.routing import egress_key


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Every test starts and ends with telemetry disabled."""
    obs.disable()
    yield
    obs.disable()


# ----------------------------------------------------------------------
# Disabled mode: pure no-op
# ----------------------------------------------------------------------
class TestDisabledMode:
    def test_helpers_are_noops(self):
        assert obs.active() is None
        obs.add("x", 1.0, tier="ssd")
        obs.observe("y", 2.0)
        obs.set_gauge("z", 3.0)
        assert obs.active() is None
        assert obs.snapshot() is None
        assert obs.scope() is None

    def test_disabled_span_still_measures_but_records_nothing(self):
        with obs.span("work", step=1) as sp:
            sum(range(1000))
        assert sp.duration > 0
        assert obs.active() is None

    def test_traced_function_identity(self):
        @traced("t.f")
        def f(a, b=2):
            return a + b

        assert f(1) == 3
        assert f(5, b=7) == 12
        assert obs.active() is None

    def test_no_registry_state_leaks_across_enable(self):
        obs.add("leak", 1.0)
        tel = obs.enable()
        assert len(tel.registry) == 0
        assert tel.tracer.spans == []

    def test_disabled_overhead_is_one_none_check(self):
        # identity-overhead contract: the disabled helpers must not
        # allocate metrics or touch any registry; calling them many
        # times leaves the process exactly as it started
        for _ in range(10_000):
            obs.add("hot.counter", 1.0, tier="ssd")
        assert obs.active() is None


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_and_ordering(self):
        with obs.capture() as tel:
            with obs.span("root"):
                with obs.span("child_a"):
                    with obs.span("grandchild"):
                        pass
                with obs.span("child_b"):
                    pass
        names = [s.name for s in tel.tracer.spans]
        assert names == ["root", "child_a", "grandchild", "child_b"]
        by_name = {s.name: s for s in tel.tracer.spans}
        assert by_name["root"].depth == 0
        assert by_name["root"].parent is None
        assert by_name["child_a"].parent == by_name["root"].index
        assert by_name["grandchild"].depth == 2
        assert by_name["grandchild"].parent == by_name["child_a"].index
        assert by_name["child_b"].parent == by_name["root"].index

    def test_durations_nest(self):
        with obs.capture() as tel:
            with obs.span("outer"):
                with obs.span("inner"):
                    sum(range(100))
        outer, inner = tel.tracer.spans
        assert outer.duration >= inner.duration > 0

    def test_span_attrs_and_set(self):
        with obs.capture() as tel:
            with obs.span("s", fixed=1) as sp:
                sp.set(result=42)
        d = tel.tracer.spans[0].to_dict(tel.tracer.t0)
        assert d["attrs"] == {"fixed": 1, "result": 42}
        assert d["start_s"] >= 0

    def test_traced_records_when_enabled(self):
        @traced("math.double")
        def double(x):
            return 2 * x

        with obs.capture() as tel:
            assert double(4) == 8
        assert [s.name for s in tel.tracer.spans] == ["math.double"]

    def test_tracer_find_and_totals(self):
        t = Tracer()
        with t.span("a"):
            pass
        with t.span("a"):
            pass
        assert len(t.find("a")) == 2
        assert t.total_seconds("a") >= 0

    def test_capture_restores_previous_session(self):
        outer = obs.enable()
        with obs.capture() as inner:
            assert obs.active() is inner
            assert inner is not outer
        assert obs.active() is outer


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c", tier="ssd").inc(5)
        reg.counter("c", tier="ssd").inc(2.5)
        reg.gauge("g").set(1.0)
        reg.gauge("g").set(9.0)
        reg.histogram("h").observe(3.0)
        assert reg.counter("c", tier="ssd").value == 7.5
        assert reg.gauge("g").value == 9.0
        assert reg.histogram("h").count == 1

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_histogram_percentiles(self):
        h = Histogram(metric_key("h", {}))
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(90) == pytest.approx(90.1)
        assert h.mean == pytest.approx(50.5)
        stats = h.stats()
        assert stats["count"] == 100
        assert stats["p99"] == pytest.approx(99.01)
        assert stats["min"] == 1.0 and stats["max"] == 100.0

    def test_histogram_percentile_edge_cases(self):
        h = Histogram(metric_key("h", {}))
        assert np.isnan(h.percentile(50))
        h.observe(7.0)
        assert h.percentile(50) == 7.0
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_key_render_parse_roundtrip(self):
        key = metric_key("sim.tier_bytes", {"tier": "ssd", "gpu": "gpu0"})
        assert parse_key(render_key(key)) == key
        assert parse_key(render_key(metric_key("plain", {}))) == ("plain", ())

    def test_snapshot_delta(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(10)
        reg.histogram("h").observe(1.0)
        mark = reg.mark()
        reg.counter("c").inc(5)
        reg.counter("new").inc(1)
        reg.histogram("h").observe(3.0)
        reg.gauge("g").set(2.0)
        delta = reg.snapshot(since=mark)
        assert delta["counters"] == {"c": 5.0, "new": 1.0}
        assert delta["histograms"]["h"]["count"] == 1
        assert delta["histograms"]["h"]["mean"] == 3.0
        assert delta["gauges"]["g"] == 2.0
        full = reg.snapshot()
        assert full["counters"]["c"] == 15.0
        assert full["histograms"]["h"]["count"] == 2


# ----------------------------------------------------------------------
# JSONL records
# ----------------------------------------------------------------------
class TestRunRecords:
    def test_schema_roundtrip(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        with obs.capture() as tel:
            with obs.span("optimizer.optimize", machine="machine_a"):
                obs.add("sim.tier_bytes", 60.0, tier="ssd")
                obs.add("sim.tier_bytes", 40.0, tier="gpu")
                obs.observe("sim.stage_seconds", 0.5, stage="io")
                obs.set_gauge("traffic.link_utilization", 0.7,
                              src="rc0", dst="plx0")
        record = obs.build_run_record(
            run_id="unit",
            config={"experiment": "unit", "quick": True},
            telemetry=tel,
            meta=obs.run_metadata(seed=0),
        )
        obs.append_jsonl(path, record)
        obs.append_jsonl(path, record)  # appends, not truncates

        back = obs.read_jsonl(path)
        assert len(back) == 2
        r = back[0]
        assert obs.validate_record(r) == []
        assert r["run_id"] == "unit"
        assert r["config"]["quick"] is True
        assert r["spans"][0]["name"] == "optimizer.optimize"
        assert r["metrics"]["counters"]["sim.tier_bytes{tier=ssd}"] == 60.0
        assert r["metrics"]["histograms"]["sim.stage_seconds{stage=io}"][
            "count"
        ] == 1
        assert r["derived"]["tier_fractions"]["ssd"] == pytest.approx(0.6)
        assert "seed" in r["meta"] and "platform" in r["meta"]
        # every line is standalone JSON
        lines = path.read_text().strip().splitlines()
        assert all(json.loads(line) for line in lines)

    def test_validate_flags_problems(self):
        assert obs.validate_record({}) != []
        bad = {"schema": obs.record.SCHEMA, "run_id": "x",
               "timestamp_unix_s": 0, "config": {}, "meta": {},
               "derived": {}, "spans": [{"name": "a"}]}
        assert any("span" in p for p in obs.validate_record(bad))

    def test_numpy_values_serialize(self, tmp_path):
        path = tmp_path / "np.jsonl"
        with obs.capture() as tel:
            with obs.span("s", n=np.int64(3), f=np.float64(0.5)):
                obs.add("c", float(np.float32(2.0)))
        record = obs.build_run_record("np", telemetry=tel)
        obs.append_jsonl(path, record)
        back = obs.read_jsonl(path)[0]
        assert back["spans"][0]["attrs"] == {"n": 3, "f": 0.5}

    def test_report_renders_record(self):
        with obs.capture() as tel:
            with obs.span("optimizer.optimize"):
                obs.add("sim.tier_bytes", 10.0, tier="ssd")
                obs.add("traffic.link_bytes", 5.0, src="a", dst="b")
        record = obs.build_run_record("r", telemetry=tel)
        text = obs.report.render_record(record)
        assert "optimizer.optimize" in text
        assert "ssd" in text
        assert "a -> b" in text


# ----------------------------------------------------------------------
# Integration: simulator + optimizer telemetry
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sim_setup():
    machine = machine_a()
    topo = machine.build(classic_layouts(machine)["c"])
    dataset = tiny_dataset(num_vertices=3000, avg_degree=8, batch_size=64,
                           seed=0)
    bins = make_bins(
        topo,
        gpu_cache_bytes=200 * dataset.feature_bytes,
        cpu_cache_bytes=100 * dataset.feature_bytes,
        ssd_capacity_bytes=1e12,
    )
    hot = degree_proxy_hotness(dataset.graph)
    placement = ddak_place(bins, hot, dataset.feature_bytes)
    return machine, topo, dataset, placement


class TestSimulatorTelemetry:
    def test_tier_bytes_reconcile_with_traffic_account(self, sim_setup):
        machine, topo, dataset, placement = sim_setup
        sim = EpochSimulator(
            topo, machine, dataset, placement, SimConfig(sample_batches=3)
        )
        with obs.capture() as tel:
            epoch = sim.run_epoch()
        tiers = {
            dict(key[1])["tier"]: value
            for key, value in tel.registry.counter_values(
                "sim.tier_bytes"
            ).items()
        }
        # external tiers reconcile with the epoch's external byte total
        external = sum(v for t, v in tiers.items() if t != "gpu")
        assert external == pytest.approx(epoch.external_bytes, rel=1e-9)
        assert tiers.get("gpu", 0.0) == pytest.approx(
            epoch.local_bytes, rel=1e-9
        )
        # SSD tier bytes equal the TrafficAccount's summed SSD egress
        ssd_egress = sum(
            epoch.traffic.egress_bytes(ssd) for ssd in topo.ssds()
        )
        assert tiers.get("ssd", 0.0) == pytest.approx(ssd_egress, rel=1e-9)
        # per-link counters match the TrafficAccount link for link
        counters = tel.registry.counter_values("traffic.link_bytes")
        for key, value in counters.items():
            labels = dict(key[1])
            assert value == pytest.approx(
                epoch.traffic.link_bytes(
                    labels["src"], labels["dst"], both_directions=False
                ),
                rel=1e-9,
            )

    def test_stage_histograms_and_gauges(self, sim_setup):
        machine, topo, dataset, placement = sim_setup
        sim = EpochSimulator(
            topo, machine, dataset, placement, SimConfig(sample_batches=3)
        )
        with obs.capture() as tel:
            sim.run_epoch()
        counts = {
            stage: tel.registry.histogram(
                "sim.stage_seconds", stage=stage
            ).count
            for stage in ("io", "sample", "compute", "sync")
        }
        # one sample per simulated step, same count for every stage
        assert min(counts.values()) >= 1
        assert len(set(counts.values())) == 1
        assert counts["io"] == tel.registry.histogram(
            "sim.step_seconds"
        ).count
        snap = tel.registry.snapshot()
        shares = [
            v for k, v in snap["gauges"].items()
            if k.startswith("sim.stage_share")
        ]
        assert shares and all(0 <= s <= 1.0 + 1e-9 for s in shares)
        utils = [
            v for k, v in snap["gauges"].items()
            if k.startswith("traffic.link_utilization")
        ]
        assert utils and all(u >= 0 for u in utils)

    def test_epoch_result_identical_with_and_without_telemetry(
        self, sim_setup
    ):
        machine, topo, dataset, placement = sim_setup
        cfg = SimConfig(sample_batches=2)
        plain = EpochSimulator(topo, machine, dataset, placement, cfg)
        r1 = plain.run_epoch()
        with obs.capture():
            traced_sim = EpochSimulator(topo, machine, dataset, placement, cfg)
            r2 = traced_sim.run_epoch()
        assert r1.epoch_seconds == pytest.approx(r2.epoch_seconds)
        assert r1.external_bytes == pytest.approx(r2.external_bytes)
        assert r1.local_bytes == pytest.approx(r2.local_bytes)

    def test_optimizer_spans_one_source_of_truth(self):
        from repro.core.optimizer import MomentOptimizer, OptimizerConfig

        machine = machine_a()
        dataset = tiny_dataset(num_vertices=2000, avg_degree=6,
                               batch_size=64, seed=0)
        opt = MomentOptimizer(
            machine, num_gpus=2, num_ssds=2,
            config=OptimizerConfig(presample_batches=1, lp_top_k=2),
        )
        with obs.capture() as tel:
            plan = opt.optimize(dataset)
        root = tel.tracer.find("optimizer.optimize")
        assert len(root) == 1
        assert plan.optimize_seconds == pytest.approx(root[0].duration)
        names = {s.name for s in tel.tracer.spans}
        # the scoring passes now run inside the search engine's spans
        assert {"search.run", "search.pass1", "search.pass2",
                "optimizer.ddak"} <= names
        assert tel.registry.counter("optimizer.unique").value == \
            plan.num_unique
        assert tel.registry.counter("search.unique").value == \
            plan.num_unique
        # and with telemetry off the number is still populated
        plan2 = opt.optimize(dataset)
        assert plan2.optimize_seconds > 0

    def test_system_result_carries_scoped_telemetry(self):
        from repro.runtime.system import MomentSystem

        machine = machine_a()
        dataset = tiny_dataset(num_vertices=2000, avg_degree=6,
                               batch_size=64, seed=0)
        with obs.capture():
            obs.add("pre.existing", 99.0)  # outside the run scope
            result = MomentSystem(machine).run(
                dataset, num_gpus=2, num_ssds=2, sample_batches=2
            )
        assert result.telemetry is not None
        span_names = {s["name"] for s in result.telemetry["spans"]}
        assert "system.run" in span_names
        assert "epoch.run" in span_names
        counters = result.telemetry["metrics"]["counters"]
        assert "pre.existing" not in counters
        assert any(k.startswith("sim.tier_bytes") for k in counters)

    def test_system_result_telemetry_none_when_disabled(self):
        from repro.runtime.system import MomentSystem

        machine = machine_a()
        dataset = tiny_dataset(num_vertices=2000, avg_degree=6,
                               batch_size=64, seed=0)
        result = MomentSystem(machine).run(
            dataset, num_gpus=2, num_ssds=2, sample_batches=2
        )
        assert result.telemetry is None


# ----------------------------------------------------------------------
# Bounded histograms (opt-in reservoir)
# ----------------------------------------------------------------------


class TestBoundedHistograms:
    def test_exact_mode_is_the_default_and_unchanged(self):
        h = Histogram(metric_key("h", {}))
        for v in range(10_000):
            h.observe(float(v))
        assert len(h.values) == 10_000 and not h.sampled
        assert "approx" not in h.stats()

    def test_reservoir_bounds_memory_keeps_exact_moments(self):
        h = Histogram(metric_key("h", {}), max_samples=100)
        n = 10_000
        for v in range(1, n + 1):
            h.observe(float(v))
        assert len(h.values) == 100  # bounded
        assert h.sampled
        assert h.count == n  # exact accumulators
        assert h.total == n * (n + 1) / 2
        assert h.mean == pytest.approx((n + 1) / 2)
        stats = h.stats()
        assert stats["approx"] is True
        assert stats["count"] == n
        # a uniform sample of 1..n has percentiles near the truth
        assert stats["p50"] == pytest.approx(n / 2, rel=0.35)

    def test_reservoir_is_deterministic_per_key(self):
        def fill():
            h = Histogram(metric_key("sim.step", {"gpu": "g0"}),
                          max_samples=50)
            for v in range(1000):
                h.observe(float(v))
            return list(h.values)

        assert fill() == fill()

    def test_sampled_delta_window_degrades_gracefully(self):
        h = Histogram(metric_key("h", {}), max_samples=10)
        for v in range(100):
            h.observe(float(v))
        delta = h.stats(since=90)
        assert delta["count"] == 10 and delta.get("approx") is True

    def test_max_samples_validation(self):
        with pytest.raises(ValueError):
            Histogram(metric_key("h", {}), max_samples=0)

    def test_registry_threads_cap_to_new_histograms(self):
        reg = MetricsRegistry(histogram_max_samples=5)
        h = reg.histogram("h")
        for v in range(20):
            h.observe(float(v))
        assert len(h.values) == 5 and h.count == 20

    def test_env_default_applies_to_sessions(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_HIST_MAX", "7")
        assert obs.default_histogram_max_samples() == 7
        with obs.capture() as tel:
            h = tel.registry.histogram("h")
            for v in range(100):
                h.observe(float(v))
        assert len(h.values) == 7 and h.count == 100
        monkeypatch.setenv("REPRO_OBS_HIST_MAX", "0")
        assert obs.default_histogram_max_samples() is None
        monkeypatch.delenv("REPRO_OBS_HIST_MAX")
        assert obs.default_histogram_max_samples() is None
