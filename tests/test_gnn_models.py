"""Tests for model stacks, the trainer, and the compute cost model."""

import numpy as np
import pytest

from repro.gnn.costmodel import (
    BatchShape,
    ComputeCostModel,
    allreduce_seconds,
    gat_flops,
    sage_flops,
)
from repro.gnn.models import blocks_from_sample, gat, graphsage
from repro.gnn.training import (
    Adam,
    Trainer,
    accuracy,
    make_planted_labels,
    softmax_cross_entropy,
)
from repro.graphs.generators import power_law_graph
from repro.hardware.specs import A100_40GB
from repro.sampling.neighbor import sample_batch


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(400, 8, exponent=0.6, seed=0)


class TestModels:
    def test_graphsage_shapes(self, graph):
        model = graphsage(in_dim=16, num_classes=5, hidden_dim=32, seed=0)
        sample = sample_batch(graph, np.arange(10), [5, 5], seed=0)
        feats = np.random.default_rng(0).standard_normal((sample.num_unique, 16))
        logits = model.forward(sample, feats)
        assert logits.shape == (sample.num_unique, 5)

    def test_gat_shapes(self, graph):
        model = gat(in_dim=16, num_classes=5, hidden_dim=8, num_heads=4, seed=0)
        sample = sample_batch(graph, np.arange(10), [5, 5], seed=0)
        feats = np.random.default_rng(0).standard_normal((sample.num_unique, 16))
        logits = model.forward(sample, feats)
        assert logits.shape == (sample.num_unique, 5)

    def test_layer_hop_mismatch(self, graph):
        model = graphsage(in_dim=8, num_classes=3, seed=0)  # 2 layers
        sample = sample_batch(graph, np.arange(5), [4], seed=0)  # 1 hop
        feats = np.zeros((sample.num_unique, 8))
        with pytest.raises(ValueError):
            model.forward(sample, feats)

    def test_parameter_roundtrip(self):
        model = graphsage(in_dim=8, num_classes=3, hidden_dim=16, seed=0)
        params = model.parameters()
        doubled = {k: v * 2 for k, v in params.items()}
        model.set_parameters(doubled)
        after = model.parameters()
        for k in params:
            assert np.allclose(after[k], params[k] * 2)

    def test_parameter_count_positive(self):
        model = gat(in_dim=8, num_classes=3, hidden_dim=4, num_heads=2, seed=0)
        assert model.num_parameters > 0
        assert model.parameter_bytes == model.num_parameters * 4

    def test_blocks_share_vocab(self, graph):
        sample = sample_batch(graph, np.arange(10), [5, 5], seed=0)
        blocks = blocks_from_sample(sample)
        assert len(blocks) == 2
        assert all(b.num_nodes == sample.num_unique for b in blocks)


class TestLossAndOptim:
    def test_cross_entropy_uniform(self):
        logits = np.zeros((4, 8))
        labels = np.array([0, 1, 2, 3])
        loss, grad = softmax_cross_entropy(logits, labels)
        assert loss == pytest.approx(np.log(8))
        assert grad.shape == logits.shape
        # gradient rows sum to zero
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_cross_entropy_shape_check(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((4, 3)), np.zeros(5, dtype=int))

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert accuracy(logits, np.array([0, 1])) == 1.0
        assert accuracy(logits, np.array([1, 0])) == 0.0

    def test_adam_moves_toward_minimum(self):
        params = {"x": np.array([10.0])}
        opt = Adam(lr=0.5)
        for _ in range(200):
            grads = {"x": 2 * params["x"]}  # d/dx x^2
            params = opt.step(params, grads)
        assert abs(params["x"][0]) < 0.5

    def test_adam_missing_grad_is_noop(self):
        opt = Adam()
        params = {"x": np.array([1.0])}
        out = opt.step(params, {})
        assert out["x"] == params["x"]

    def test_adam_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam(lr=0)


class TestTrainer:
    def test_learns_planted_task(self, graph):
        feats, labels = make_planted_labels(graph, 4, 16, noise=0.3, seed=0)
        model = graphsage(in_dim=16, num_classes=4, hidden_dim=32, seed=0)
        trainer = Trainer(model, graph, feats, labels, fanouts=(5, 5), lr=5e-3, seed=0)
        train_ids = np.arange(200)
        first = trainer.train_epoch(train_ids, batch_size=50)
        for _ in range(8):
            last = trainer.train_epoch(train_ids, batch_size=50)
        assert last.mean_loss < first.mean_loss * 0.7
        assert last.mean_accuracy > 0.7

    def test_gat_also_learns(self, graph):
        feats, labels = make_planted_labels(graph, 3, 12, noise=0.3, seed=1)
        model = gat(in_dim=12, num_classes=3, hidden_dim=8, num_heads=2, seed=1)
        trainer = Trainer(model, graph, feats, labels, fanouts=(5, 5), lr=5e-3, seed=1)
        train_ids = np.arange(150)
        first = trainer.train_epoch(train_ids, batch_size=50)
        for _ in range(8):
            last = trainer.train_epoch(train_ids, batch_size=50)
        assert last.mean_loss < first.mean_loss

    def test_evaluate_bounds(self, graph):
        feats, labels = make_planted_labels(graph, 4, 16, seed=0)
        model = graphsage(in_dim=16, num_classes=4, hidden_dim=16, seed=0)
        trainer = Trainer(model, graph, feats, labels, fanouts=(3, 3), seed=0)
        acc = trainer.evaluate(np.arange(100))
        assert 0.0 <= acc <= 1.0

    def test_shape_validation(self, graph):
        feats, labels = make_planted_labels(graph, 4, 16, seed=0)
        model = graphsage(in_dim=16, num_classes=4, seed=0)
        with pytest.raises(ValueError):
            Trainer(model, graph, feats[:10], labels, fanouts=(5, 5))
        with pytest.raises(ValueError):
            Trainer(model, graph, feats, labels[:10], fanouts=(5, 5))
        with pytest.raises(ValueError):
            Trainer(model, graph, feats, labels, fanouts=(5,))


class TestCostModel:
    def test_flops_scale_with_batch(self):
        small = BatchShape(1000, 10_000)
        big = BatchShape(2000, 20_000)
        assert sage_flops(big, 1024) == pytest.approx(2 * sage_flops(small, 1024))
        assert gat_flops(big, 1024) == pytest.approx(2 * gat_flops(small, 1024))

    def test_gat_heavier_than_sage(self):
        # paper configs: SAGE hidden 256 vs GAT 64x8 heads — GAT's wide
        # hidden layers + per-edge attention cost more
        shape = BatchShape(100_000, 2_000_000)
        assert gat_flops(shape, 1024) > sage_flops(shape, 1024)

    def test_batch_seconds_reasonable(self):
        cm = ComputeCostModel(A100_40GB, "graphsage", in_dim=1024)
        t = cm.batch_seconds(BatchShape(200_000, 2_000_000))
        # milliseconds to tens of ms — not microseconds, not seconds
        assert 1e-3 < t < 0.5

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            ComputeCostModel(A100_40GB, "transformer", in_dim=64)

    def test_sampling_seconds_positive(self):
        cm = ComputeCostModel(A100_40GB, "gat", in_dim=64)
        assert cm.sampling_seconds(BatchShape(1000, 100_000)) > 0

    def test_allreduce(self):
        t1 = allreduce_seconds(10e6, 1, 20e9)
        assert t1 == 0.0
        t2 = allreduce_seconds(10e6, 2, 20e9)
        t4 = allreduce_seconds(10e6, 4, 20e9)
        assert t4 > t2 > 0

    def test_allreduce_validation(self):
        with pytest.raises(ValueError):
            allreduce_seconds(-1, 2, 20e9)
        with pytest.raises(ValueError):
            allreduce_seconds(1e6, 2, 0)


class TestGCNModel:
    def test_gcn_learns(self, graph):
        from repro.gnn.models import gcn
        feats, labels = make_planted_labels(graph, 3, 12, noise=0.3, seed=2)
        model = gcn(in_dim=12, num_classes=3, hidden_dim=24, seed=2)
        trainer = Trainer(model, graph, feats, labels, fanouts=(5, 5), lr=5e-3, seed=2)
        train_ids = np.arange(150)
        first = trainer.train_epoch(train_ids, batch_size=50)
        for _ in range(8):
            last = trainer.train_epoch(train_ids, batch_size=50)
        assert last.mean_loss < first.mean_loss

    def test_gcn_cost_model(self):
        from repro.gnn.costmodel import ComputeCostModel, BatchShape, gcn_flops, sage_flops
        shape = BatchShape(100_000, 2_000_000)
        # GCN has one projection vs SAGE's two: cheaper
        assert gcn_flops(shape, 1024) < sage_flops(shape, 1024)
        cm = ComputeCostModel(A100_40GB, "gcn", in_dim=1024)
        assert cm.batch_seconds(shape) > 0
