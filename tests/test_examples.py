"""Smoke checks for the example scripts.

Full runs take tens of seconds each (they are exercised manually and in
the docs); here we verify each example parses, imports everything it
needs, and exposes a ``main``.  ``quickstart``'s training section is
additionally executed with reduced sizes to catch API drift.
"""

import ast
import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text())
    names = {
        node.name for node in tree.body if isinstance(node, ast.FunctionDef)
    }
    assert "main" in names, f"{path.name} must define main()"
    # module docstring present (they are documentation)
    assert ast.get_docstring(tree), f"{path.name} needs a docstring"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Import the module (executes top-level imports, not main())."""
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(module.main)


def test_quickstart_training_section():
    """The quickstart's real-training part, at reduced size."""
    from repro.gnn import Trainer, graphsage, make_planted_labels
    from repro.graphs.datasets import tiny_dataset

    ds = tiny_dataset(num_vertices=400, avg_degree=8, feature_dim=16,
                      batch_size=32, seed=7)
    feats, labels = make_planted_labels(ds.graph, 3, 16, noise=0.3, seed=7)
    model = graphsage(in_dim=16, num_classes=3, hidden_dim=32, seed=7)
    trainer = Trainer(model, ds.graph, feats, labels, fanouts=(5, 5),
                      lr=5e-3, seed=7)
    first = trainer.train_epoch(ds.train_ids, batch_size=32)
    for _ in range(4):
        last = trainer.train_epoch(ds.train_ids, batch_size=32)
    assert last.mean_loss < first.mean_loss
