"""Declarative fabric layer: spec round-trips, compiled-vs-legacy
identity, generator properties, rate reconciliation, and fabric-keyed
run records."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.core.topology import NodeKind
from repro.graphs.datasets import tiny_dataset
from repro.hardware.fabric import (
    FABRIC_SCHEMA,
    FabricSpec,
    chassis_fingerprint,
    compile_fabric,
    fabric_summary,
    load_fabric,
    machine_a_spec,
    machine_b_spec,
    save_fabric,
    topology_fingerprint,
)
from repro.hardware.generate import (
    generate_fabric,
    gpu_slot_capacity,
    has_cxl,
    is_asymmetric,
    ssd_slot_capacity,
)
from repro.hardware.machines import (
    _legacy_machine_a,
    _legacy_machine_b,
    classic_layouts,
    machine_a,
    machine_b,
)
from repro.hardware.registry import get_machine, list_machines
from repro.obs.metrics import parse_key
from repro.runtime.spec import RunSpec
from repro.runtime.system import MomentSystem, SystemResult
from repro.simulator.routing import (
    Router,
    fair_storage_rates,
    reconcile_storage_rates,
)

DATA = os.path.join(os.path.dirname(__file__), "data")

#: The fixed fleet the CI sweep covers (mirrors fabric_sweep defaults).
SWEEP_SEEDS = tuple(range(25))


@pytest.fixture(scope="module")
def tiny():
    return tiny_dataset(num_vertices=800, seed=0)


# ---------------------------------------------------------------------------
# Tentpole acceptance: compiled specs are identical to the legacy
# hand-built machines, node for node and link for link.
# ---------------------------------------------------------------------------
class TestCompiledVsLegacy:
    @pytest.mark.parametrize(
        "compiled,legacy",
        [(machine_a, _legacy_machine_a), (machine_b, _legacy_machine_b)],
        ids=["machine_a", "machine_b"],
    )
    def test_machine_identity(self, compiled, legacy):
        new, old = compiled(), legacy()
        # MachineSpec equality ignores fabric_spec (compare=False), so
        # this covers name, chassis, parts, and socket count
        assert new == old
        assert chassis_fingerprint(new.chassis) == chassis_fingerprint(
            old.chassis
        )

    @pytest.mark.parametrize(
        "compiled,legacy",
        [(machine_a, _legacy_machine_a), (machine_b, _legacy_machine_b)],
        ids=["machine_a", "machine_b"],
    )
    def test_built_topology_identity(self, compiled, legacy):
        new, old = compiled(), legacy()
        for key, layout in classic_layouts(new).items():
            t_new, t_old = new.build(layout), old.build(layout)
            assert [(n.name, n.kind) for n in t_new.nodes] == [
                (n.name, n.kind) for n in t_old.nodes
            ], key
            assert [
                (l.src, l.dst, l.kind, l.capacity) for l in t_new.links
            ] == [
                (l.src, l.dst, l.kind, l.capacity) for l in t_old.links
            ], key
            assert topology_fingerprint(t_new) == topology_fingerprint(
                t_old
            ), key

    def test_compiled_records_its_spec(self):
        assert machine_a().fabric_spec == machine_a_spec()
        assert machine_b().fabric_spec == machine_b_spec()
        assert _legacy_machine_a().fabric_spec is None


# ---------------------------------------------------------------------------
# Spec serialization: JSON round-trips and committed golden files.
# ---------------------------------------------------------------------------
class TestSpecSerialization:
    @pytest.mark.parametrize(
        "factory", [machine_a_spec, machine_b_spec], ids=["a", "b"]
    )
    def test_json_round_trip(self, factory):
        spec = factory()
        again = FabricSpec.from_json(spec.to_json())
        assert again == spec
        assert chassis_fingerprint(
            compile_fabric(again).chassis
        ) == chassis_fingerprint(compile_fabric(spec).chassis)

    def test_schema_marker(self):
        assert machine_a_spec().to_dict()["schema"] == FABRIC_SCHEMA

    @pytest.mark.parametrize(
        "golden,factory,machine",
        [
            ("fabric_machine_a.json", machine_a_spec, machine_a),
            ("fabric_machine_b.json", machine_b_spec, machine_b),
        ],
        ids=["a", "b"],
    )
    def test_golden_file(self, golden, factory, machine):
        """The committed spec file is the source of truth: it must
        parse back to the in-code spec and compile to the same
        chassis the machine registry hands out."""
        spec = load_fabric(os.path.join(DATA, golden))
        assert spec == factory()
        assert chassis_fingerprint(
            compile_fabric(spec).chassis
        ) == chassis_fingerprint(machine().chassis)

    def test_save_load_round_trip(self, tmp_path):
        spec = generate_fabric(11)
        path = tmp_path / "gen11.json"
        save_fabric(spec, path)
        assert load_fabric(path) == spec

    def test_generated_specs_round_trip(self):
        for seed in SWEEP_SEEDS:
            spec = generate_fabric(seed)
            assert FabricSpec.from_json(spec.to_json()) == spec, seed


# ---------------------------------------------------------------------------
# Machine registry: names, generated references, spec files.
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_builtins_listed(self):
        names = {e.name for e in list_machines()}
        assert {"machine_a", "machine_b"} <= names

    def test_gen_reference_is_deterministic(self):
        a = get_machine("gen:7")
        b = compile_fabric(generate_fabric(7))
        assert chassis_fingerprint(a.chassis) == chassis_fingerprint(
            b.chassis
        )

    def test_json_path_reference(self, tmp_path):
        path = tmp_path / "fab.json"
        save_fabric(generate_fabric(3), path)
        machine = get_machine(str(path))
        assert chassis_fingerprint(machine.chassis) == chassis_fingerprint(
            get_machine("gen:3").chassis
        )

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown machine"):
            get_machine("machine_z")

    def test_bad_gen_reference_raises(self):
        with pytest.raises(KeyError, match="gen:<integer seed>"):
            get_machine("gen:xyz")


# ---------------------------------------------------------------------------
# Generator properties over the CI fleet (seeded fuzzing).
# ---------------------------------------------------------------------------
class TestGeneratorProperties:
    def test_deterministic(self):
        for seed in SWEEP_SEEDS[:8]:
            assert generate_fabric(seed) == generate_fabric(seed)

    def test_positive_capacities_and_slots(self):
        for seed in SWEEP_SEEDS:
            spec = generate_fabric(seed)
            machine = compile_fabric(spec)
            assert gpu_slot_capacity(spec) >= 2, seed
            assert ssd_slot_capacity(spec) >= 3, seed
            for group in machine.chassis.slot_groups:
                assert group.units > 0, seed
                assert group.link_bw > 0, seed

    def test_topology_connected_all_links_positive(self):
        from repro.core.search import sample_placements

        for seed in SWEEP_SEEDS[:6]:
            machine = compile_fabric(generate_fabric(seed))
            placement = sample_placements(machine.chassis, 2, 2, cap=1)[0]
            topo = machine.build(placement)
            assert all(l.capacity > 0 for l in topo.links), seed
            # Router precomputes every (storage, GPU) route and raises
            # if any storage node is unreachable
            router = Router(topo)
            for store in topo.storage_nodes:
                for gpu in topo.gpus():
                    router.path(store.name, gpu)

    def test_fleet_coverage(self):
        """The fixed CI fleet exercises the interesting shapes."""
        specs = [generate_fabric(s) for s in SWEEP_SEEDS]
        assert sum(1 for s in specs if is_asymmetric(s)) >= 1
        assert sum(1 for s in specs if has_cxl(s)) >= 1

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_any_seed_generates_a_valid_spec(self, seed):
        spec = generate_fabric(seed)
        spec.validate()
        assert spec.generator_seed == seed
        assert FabricSpec.from_json(spec.to_json()) == spec


# ---------------------------------------------------------------------------
# RunSpec hardware identity: machine names vs inline fabrics.
# ---------------------------------------------------------------------------
class TestRunSpecFabric:
    def test_machine_and_fabric_mutually_exclusive(self, tiny):
        with pytest.raises(ValueError, match="drop one"):
            RunSpec(
                dataset=tiny,
                machine="machine_a",
                fabric=machine_b_spec().to_dict(),
            )

    def test_fabric_spec_resolves(self, tiny):
        spec = RunSpec(dataset=tiny, fabric=machine_b_spec())
        machine = spec.resolve_machine()
        assert machine.name == "machine_b"
        assert machine == machine_b()

    def test_fabric_dict_resolves(self, tiny):
        spec = RunSpec(dataset=tiny, fabric=machine_a_spec().to_dict())
        assert spec.resolve_machine() == machine_a()

    def test_fabric_path_resolves(self, tiny, tmp_path):
        path = tmp_path / "gen5.json"
        save_fabric(generate_fabric(5), path)
        spec = RunSpec(dataset=tiny, fabric=str(path))
        assert chassis_fingerprint(
            spec.resolve_machine().chassis
        ) == chassis_fingerprint(get_machine("gen:5").chassis)

    def test_machine_name_resolves(self, tiny):
        assert (
            RunSpec(dataset=tiny, machine="machine_a").resolve_machine()
            == machine_a()
        )

    def test_mismatched_system_rejected(self, tiny):
        layout = classic_layouts(machine_a())["c"]
        spec = RunSpec(
            dataset=tiny,
            placement=layout,
            machine="machine_b",
            sample_batches=2,
        )
        with pytest.raises(ValueError, match="built for"):
            MomentSystem(machine_a()).run(spec)


# ---------------------------------------------------------------------------
# Fabric-shaped run records: telemetry counters and result payloads.
# ---------------------------------------------------------------------------
class TestFabricRunRecords:
    @pytest.fixture(scope="class")
    def run_and_counters(self):
        ds = tiny_dataset(num_vertices=800, seed=0)
        machine = machine_a()
        spec = RunSpec(
            dataset=ds,
            placement=classic_layouts(machine)["c"],
            sample_batches=2,
        )
        with obs.capture() as tel:
            result = MomentSystem(machine).run(spec)
        return result, tel.snapshot()["metrics"]["counters"]

    def test_result_carries_fabric_summary(self, run_and_counters):
        result, _ = run_and_counters
        fab = result.fabric
        expected = fabric_summary(
            machine_a(), machine_a().build(result.placement)
        )
        assert fab == expected
        assert fab["name"] == "machine_a"
        assert fab["generator_seed"] is None
        assert fab["nodes"] > 0 and fab["links"] > 0 and fab["tiers"] >= 3

    def test_run_record_round_trip(self, run_and_counters):
        result, _ = run_and_counters
        again = SystemResult.from_dict(result.to_dict())
        assert again.fabric == result.fabric

    def test_counters_keyed_by_fingerprint(self, run_and_counters):
        result, counters = run_and_counters
        fp = result.fabric["fingerprint"]
        for stat in ("nodes", "links", "tiers"):
            key = f"fabric.{stat}{{fabric={fp}}}"
            assert key in counters
            assert counters[key] == result.fabric[stat]
            assert parse_key(key) == (f"fabric.{stat}", (("fabric", fp),))


# ---------------------------------------------------------------------------
# Warehouse: rows keyed by fabric fingerprint, old tables tolerated.
# ---------------------------------------------------------------------------
class TestWarehouseFabricKeys:
    def _record(self):
        ds = tiny_dataset(num_vertices=800, seed=0)
        machine = machine_a()
        spec = RunSpec(
            dataset=ds,
            placement=classic_layouts(machine)["c"],
            sample_batches=2,
        )
        return MomentSystem(machine).run(spec).to_dict()

    def test_run_record_rows_keyed_by_fabric(self):
        from repro.warehouse.ingest import rows_from_run_record

        record = self._record()
        keys, metrics = rows_from_run_record(record)
        assert keys["fabric"] == record["fabric"]["fingerprint"]
        assert metrics["fabric.nodes"] == record["fabric"]["nodes"]
        assert metrics["fabric.links"] == record["fabric"]["links"]
        assert metrics["fabric.tiers"] == record["fabric"]["tiers"]

    def test_fabric_key_column_declared(self):
        from repro.warehouse.table import KEY_COLUMNS

        assert "fabric" in KEY_COLUMNS

    def test_old_table_without_fabric_column_loads(self):
        from repro.warehouse.table import RunTable

        table = RunTable()
        table.add_row({"run_id": "r0", "benchmark": "b"}, {"m:x": 1.0})
        payload = table.to_dict()
        del payload["columns"]["fabric"]
        again = RunTable.from_dict(payload)
        assert len(again) == 1
        assert again.columns["fabric"] == [None]


# ---------------------------------------------------------------------------
# LP-rate reconciliation against fair-share arbitration.
# ---------------------------------------------------------------------------
class TestRateReconciliation:
    @pytest.fixture(scope="class")
    def topo_a(self):
        machine = machine_a()
        return machine.build(classic_layouts(machine)["a"])

    @pytest.fixture(scope="class")
    def topo_d(self):
        machine = machine_a()
        return machine.build(classic_layouts(machine)["d"])

    def test_fair_rates_symmetric_drives_tie(self, topo_a):
        fair = fair_storage_rates(topo_a)
        drives = {d: r for d, r in fair.items() if d.startswith("ssd")}
        assert len(drives) == 8
        assert len({round(r) for r in drives.values()}) == 1
        assert all(r > 0 for r in drives.values())

    def test_fair_rates_see_cascade_asymmetry(self, topo_d):
        fair = fair_storage_rates(topo_d)
        # layout (d) parks half the drives behind a cascaded switch:
        # their sustainable rate must come out strictly lower
        direct = [fair[f"ssd{i}"] for i in range(4)]
        cascaded = [fair[f"ssd{i}"] for i in range(4, 8)]
        assert min(direct) > max(cascaded)

    def test_degenerate_zero_in_best_class_lifted(self, topo_a):
        fair = fair_storage_rates(topo_a)
        rates = {d: r for d, r in fair.items() if d.startswith("ssd")}
        rates["ssd2"] = 0.0  # symmetric drive parked by a degenerate LP
        fixed = reconcile_storage_rates(topo_a, rates)
        assert fixed["ssd2"] == pytest.approx(fair["ssd2"])

    def test_deliberate_zero_behind_cascade_kept(self, topo_d):
        fair = fair_storage_rates(topo_d)
        rates = {d: r for d, r in fair.items() if d.startswith("ssd")}
        rates["ssd6"] = 0.0  # cascaded drive: concentration, not waste
        fixed = reconcile_storage_rates(topo_d, rates)
        assert fixed["ssd6"] == 0.0

    def test_overestimate_capped_at_fair_rate(self, topo_a):
        fair = fair_storage_rates(topo_a)
        rates = {d: r for d, r in fair.items() if d.startswith("ssd")}
        rates["ssd0"] = fair["ssd0"] * 4.0
        fixed = reconcile_storage_rates(topo_a, rates)
        assert fixed["ssd0"] == pytest.approx(fair["ssd0"])

    def test_healthy_rates_untouched(self, topo_a):
        fair = fair_storage_rates(topo_a)
        rates = {d: r * 0.8 for d, r in fair.items()}
        assert reconcile_storage_rates(topo_a, rates) == rates


# ---------------------------------------------------------------------------
# Sweep harness smoke test (one seed; the full fleet runs in CI).
# ---------------------------------------------------------------------------
class TestFabricSweepSmoke:
    def test_one_seed_passes_all_invariants(self):
        from repro.experiments.fabric_sweep import run_fabric_sweep

        result = run_fabric_sweep(quick=True, seeds=(3,))
        report = result.data["reports"][0]
        assert report["violations"] == []
        assert report["summary"]["generator_seed"] == 3

    def test_env_override_parses(self, monkeypatch):
        from repro.experiments.fabric_sweep import sweep_seeds

        monkeypatch.setenv("REPRO_FABRIC_SEEDS", "3, 7 11")
        assert sweep_seeds() == (3, 7, 11)
        monkeypatch.delenv("REPRO_FABRIC_SEEDS")
        assert len(sweep_seeds(quick=True)) < len(sweep_seeds())
