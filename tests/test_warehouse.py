"""The results warehouse: run-table, ingest, stats, gate, repetitions.

Synthetic-fixture tests for the ``repro.warehouse`` machinery (ingest
tolerance of malformed/mixed-schema JSONL, CI math, direction-aware
gating) plus one real repetition run through a quick ``RunSpec``.
"""

import json
import math

import pytest

from repro import obs
from repro.utils.rng import derive_seed
from repro.warehouse import (
    GateConfig,
    RunTable,
    gate,
    ingest_jsonl,
    ingest_records,
    metric_direction,
    noise_band,
    render_compare,
    render_table,
    summarize,
    welch_t,
)
from repro.warehouse import bootstrap_ci
from repro.warehouse.__main__ import main as warehouse_main


def obs_record(
    run_id="bench_x",
    repetition=0,
    seed=0,
    sha="deadbeef",
    elapsed=1.0,
    bench=None,
):
    """A minimal but valid ``repro.obs/v1`` record."""
    record = {
        "schema": "repro.obs/v1",
        "run_id": run_id,
        "timestamp_unix_s": 1.7e9,
        "config": {"benchmark": run_id},
        "meta": {
            "git_sha": sha,
            "seed": seed,
            "repetition": repetition,
            "scale_profile": "quick",
            "machine_spec": {"processor": "x86_64", "cpu_count": 8},
        },
        "elapsed_s": elapsed,
        "derived": {"bench": bench or {"candidates_per_s": 100.0}},
        "metrics": {
            "counters": {},
            "gauges": {},
            "histograms": {
                "sim.step_seconds": {
                    "count": 10,
                    "mean": 0.1,
                    "p50": 0.1,
                    "p90": 0.12,
                    "p99": 0.13,
                }
            },
        },
        "spans": [
            {
                "name": "system.run",
                "start_s": 0.0,
                "duration_s": elapsed,
                "depth": 0,
            }
        ],
    }
    return record


class TestRunTable:
    def test_add_filter_values_roundtrip(self, tmp_path):
        t = RunTable()
        for rep, v in enumerate([10.0, 11.0, 12.0]):
            t.add_row(
                {"benchmark": "b", "repetition": rep, "git_sha": "aaa"},
                {"throughput": v},
            )
        assert len(t) == 3
        assert t.metric_names() == ["throughput"]
        assert t.values("throughput", benchmark="b") == [10.0, 11.0, 12.0]
        assert len(t.filter(repetition=1)) == 1
        assert len(t.filter(benchmark="nope")) == 0

        path = tmp_path / "t.json"
        t.save(path)
        back = RunTable.load(path)
        assert list(back.rows()) == list(t.rows())

        csv_path = tmp_path / "t.csv"
        t.to_csv(csv_path)
        lines = csv_path.read_text().strip().splitlines()
        assert len(lines) == 4 and "m:throughput" in lines[0]

    def test_unknown_key_column_rejected(self):
        t = RunTable()
        with pytest.raises(KeyError, match="unknown key column"):
            t.add_row({"not_a_key": 1}, {})

    def test_merge_densifies_disjoint_metrics(self):
        a, b = RunTable(), RunTable()
        a.add_row({"benchmark": "x"}, {"m1": 1.0})
        b.add_row({"benchmark": "y"}, {"m2": 2.0})
        a.merge(b)
        rows = list(a.rows())
        assert rows[0]["m:m2"] is None and rows[1]["m:m1"] is None

    def test_from_dict_rejects_bad_schema_and_ragged(self):
        with pytest.raises(ValueError, match="schema"):
            RunTable.from_dict({"schema": "nope/v0", "columns": {}})
        with pytest.raises(ValueError, match="ragged"):
            RunTable.from_dict(
                {
                    "schema": "repro.table/v1",
                    "columns": {"run_id": [1], "benchmark": []},
                }
            )


class TestIngest:
    def test_obs_record_rows(self):
        table, report = ingest_records([obs_record(repetition=2, seed=7)])
        assert len(table) == 1 and not report.errors
        row = next(table.rows())
        assert row["benchmark"] == "bench_x"
        assert row["git_sha"] == "deadbeef"
        assert row["seed"] == 7 and row["repetition"] == 2
        assert row["m:bench:candidates_per_s"] == 100.0
        assert row["m:h:sim.step_seconds.p50"] == 0.1
        assert row["m:span:system.run.total_s"] == 1.0

    def test_run_record_rows(self):
        record = {
            "schema": "repro.run/v1",
            "system": "moment",
            "machine": "machine_a",
            "dataset": "IG",
            "model": "graphsage",
            "num_gpus": 4,
            "seed": 3,
            "repetition": 1,
            "ok": True,
            "epoch": {"seeds_per_s": 123.0, "epoch_seconds": 4.5},
        }
        table, report = ingest_records([record])
        row = next(table.rows())
        assert row["m:epoch.seeds_per_s"] == 123.0
        assert row["seed"] == 3 and row["repetition"] == 1
        assert not report.errors

    def test_malformed_and_mixed_schema_lines(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        lines = [
            json.dumps(obs_record()),
            "{truncated json",  # crashed writer
            json.dumps({"schema": "who/knows"}),
            json.dumps([1, 2, 3]),  # not an object
            "",
            json.dumps(
                {
                    "schema": "repro.run/v1",
                    "system": "moment",
                    "machine": "machine_a",
                    "dataset": "IG",
                    "model": "graphsage",
                    "num_gpus": 4,
                    "ok": False,
                    "oom": "no HBM",
                }
            ),
        ]
        path.write_text("\n".join(lines) + "\n")
        table, report = ingest_jsonl(str(path))
        assert len(table) == 2
        assert len(report.errors) == 3
        assert report.by_schema == {"repro.obs/v1": 1, "repro.run/v1": 1}
        assert "ingested 2 row(s)" in report.render()

    def test_ingest_whole_table_file(self, tmp_path):
        t = RunTable()
        t.add_row({"benchmark": "b"}, {"x": 1.0})
        table_path = tmp_path / "t.json"
        t.save(table_path)
        merged, report = ingest_jsonl(str(table_path))
        assert len(merged) == 1 and not report.errors

    def test_missing_file_is_an_error_not_a_crash(self):
        table, report = ingest_jsonl("/nonexistent/never.jsonl")
        assert len(table) == 0 and len(report.errors) == 1


class TestStats:
    def test_summarize_known_ci(self):
        s = summarize([10.0, 12.0, 14.0])
        assert s.mean == 12.0 and s.median == 12.0
        assert s.stdev == pytest.approx(2.0)
        # t(0.975, df=2) = 4.3027; half-width = 4.3027 * 2/sqrt(3)
        assert s.ci_halfwidth == pytest.approx(4.969, abs=1e-2)
        assert s.ci_lo < 12.0 < s.ci_hi

    def test_summarize_single_sample(self):
        s = summarize([5.0])
        assert s.n == 1 and s.ci_halfwidth == 0.0 and s.stdev == 0.0
        with pytest.raises(ValueError):
            summarize([])

    def test_bootstrap_ci_brackets_mean_and_is_deterministic(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        lo, hi = bootstrap_ci(values, seed=42)
        assert lo <= 3.0 <= hi
        assert (lo, hi) == bootstrap_ci(values, seed=42)

    def test_welch_distinguishes_shifted_samples(self):
        a = [100.0, 101.0, 99.0, 100.5, 99.5]
        b = [80.0, 81.0, 79.0, 80.5, 79.5]
        r = welch_t(a, b)
        assert r.p_value < 0.001 and r.significant

    def test_welch_identical_constants(self):
        same = welch_t([5.0, 5.0], [5.0, 5.0])
        assert same.p_value == 1.0
        diff = welch_t([5.0, 5.0], [4.0, 4.0])
        assert diff.p_value == 0.0  # zero variance, different means

    def test_welch_needs_two_per_side(self):
        with pytest.raises(ValueError, match=">=2 samples"):
            welch_t([1.0], [1.0, 2.0])

    def test_noise_band_floor_and_growth(self):
        assert noise_band([5.0], floor=0.02) == 0.02
        noisy = [100.0, 140.0, 60.0]
        assert noise_band(noisy, floor=0.02) > 0.02


class TestDirections:
    def test_known_directions(self):
        assert metric_direction("bench:candidates_per_s") == +1
        assert metric_direction("epoch.seeds_per_s") == +1
        assert metric_direction("bench:data:replan") == +1
        assert metric_direction("elapsed_s") == -1
        assert metric_direction("epoch.epoch_seconds") == -1
        assert metric_direction("span:search.run.total_s") == -1
        assert metric_direction("qpi_share") == 0


def _table(bench, metric, values, sha="aaa"):
    t = RunTable()
    for rep, v in enumerate(values):
        t.add_row(
            {"benchmark": bench, "repetition": rep, "git_sha": sha},
            {metric: v},
        )
    return t


class TestGate:
    METRIC = "bench:candidates_per_s"

    def test_same_values_pass(self):
        base = _table("b", self.METRIC, [100.0, 102.0, 98.0])
        report = gate(base, base)
        assert report.ok and len(report.verdicts) == 1

    def test_twenty_percent_drop_fails(self):
        base = _table("b", self.METRIC, [100.0, 102.0, 98.0])
        cand = _table("b", self.METRIC, [80.0, 81.6, 78.4], sha="bbb")
        report = gate(base, cand)
        assert not report.ok
        v = report.failures[0]
        assert v.rel_change == pytest.approx(-0.2, abs=1e-6)
        assert v.p_value is not None and v.p_value < 0.05

    def test_injected_regression_hook(self):
        base = _table("b", self.METRIC, [100.0, 102.0, 98.0])
        assert gate(base, base, GateConfig(inject_regression=0.2)).ok is False
        # deterministic (zero-variance) metrics also fail on injection
        det = _table("b", "bench:data:replan", [0.87, 0.87, 0.87])
        assert gate(det, det, GateConfig(inject_regression=0.2)).ok is False

    def test_drop_within_noise_passes(self):
        base = _table("b", self.METRIC, [100.0, 130.0, 70.0])
        cand = _table("b", self.METRIC, [95.0, 123.5, 66.5], sha="bbb")
        report = gate(base, cand)  # 5% drop, ~37% noise band
        assert report.ok

    def test_single_rep_falls_back_to_threshold(self):
        base = _table("b", self.METRIC, [100.0])
        bad = _table("b", self.METRIC, [80.0], sha="bbb")
        close = _table("b", self.METRIC, [97.0], sha="bbb")
        assert not gate(base, bad).ok
        assert gate(base, close).ok
        assert gate(base, bad).verdicts[0].p_value is None

    def test_lower_is_better_direction(self):
        base = _table("b", "elapsed_s", [1.0, 1.01, 0.99])
        slower = _table("b", "elapsed_s", [1.3, 1.31, 1.29], sha="bbb")
        faster = _table("b", "elapsed_s", [0.8, 0.81, 0.79], sha="bbb")
        assert not gate(base, slower, GateConfig(metrics=("elapsed_s",))).ok
        assert gate(base, faster, GateConfig(metrics=("elapsed_s",))).ok

    def test_unknown_direction_skipped_by_default(self):
        base = _table("b", "qpi_share", [0.1, 0.1, 0.1])
        report = gate(base, base, GateConfig(metrics=None))
        assert not report.verdicts  # nothing tracked
        # explicitly requested metrics are judged (higher assumed better)
        report = gate(base, base, GateConfig(metrics=("qpi_share",)))
        assert len(report.verdicts) == 1

    def test_render_mentions_verdict(self):
        base = _table("b", self.METRIC, [100.0, 102.0, 98.0])
        assert "OK" in gate(base, base).render()


class TestRenderers:
    def test_render_table_and_compare(self):
        base = _table("b", "bench:candidates_per_s", [100.0, 102.0, 98.0])
        out = render_table(base)
        assert "bench:candidates_per_s" in out and "3" in out
        cmp_out = render_compare(base, base)
        assert "indistinguishable" in cmp_out

    def test_render_table_folds_span_columns(self):
        t = RunTable()
        t.add_row(
            {"benchmark": "b"},
            {"elapsed_s": 1.0, "span:system.run.total_s": 0.9},
        )
        assert "span:" not in render_table(t)
        assert "span:" in render_table(t, spans=True)


class TestCli:
    def test_ingest_report_gate_cycle(self, tmp_path, capsys):
        jsonl = tmp_path / "runs.jsonl"
        with open(jsonl, "w") as fh:
            for rep, v in enumerate([100.0, 101.0, 99.0]):
                fh.write(
                    json.dumps(
                        obs_record(
                            repetition=rep,
                            bench={"candidates_per_s": v},
                            elapsed=1.0 + rep * 0.01,
                        )
                    )
                    + "\n"
                )
        table = tmp_path / "table.json"
        assert warehouse_main(["ingest", str(table), str(jsonl)]) == 0
        assert warehouse_main(["report", str(table)]) == 0
        assert (
            warehouse_main(
                ["gate", "--baseline", str(table), "--candidate", str(table)]
            )
            == 0
        )
        assert (
            warehouse_main(
                [
                    "gate",
                    "--baseline",
                    str(table),
                    "--candidate",
                    str(table),
                    "--inject-regression",
                    "0.2",
                ]
            )
            == 1
        )
        assert (
            warehouse_main(
                ["compare", str(table), str(table), "--metric", "elapsed_s"]
            )
            == 0
        )
        capsys.readouterr()

    def test_gate_with_no_shared_metric_exits_2(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        _table("x", "only_in_a", [1.0]).save(a)
        _table("y", "only_in_b", [1.0]).save(b)
        assert (
            warehouse_main(["gate", "--baseline", str(a), "--candidate", str(b)])
            == 2
        )
        capsys.readouterr()

    def test_ingest_strict_fails_on_bad_lines(self, tmp_path, capsys):
        jsonl = tmp_path / "bad.jsonl"
        jsonl.write_text("{nope\n")
        table = tmp_path / "t.json"
        assert (
            warehouse_main(["ingest", str(table), str(jsonl), "--strict"]) == 1
        )
        capsys.readouterr()


class TestSeedDerivation:
    def test_repetition_zero_is_canonical(self):
        assert derive_seed(7, 0) == 7
        assert derive_seed(None, 0) == 0

    def test_derived_seeds_are_stable_and_distinct(self):
        seeds = [derive_seed(0, r) for r in range(5)]
        assert seeds == [derive_seed(0, r) for r in range(5)]
        assert len(set(seeds)) == 5
        assert [derive_seed(1, r) for r in range(5)][1:] != seeds[1:]

    def test_rejects_generator_and_negative(self):
        import numpy as np

        with pytest.raises(TypeError, match="integer"):
            derive_seed(np.random.default_rng(0), 1)
        with pytest.raises(ValueError, match="repetition"):
            derive_seed(0, -1)


class TestRepetitionDriver:
    @pytest.fixture(scope="class")
    def records(self):
        from repro import MomentSystem, RunSpec, machine_a
        from repro.experiments.figures import _dataset
        from repro.warehouse import repeat_runspec

        spec = RunSpec(
            dataset=_dataset("IG", True), sample_batches=2, seed=0
        )
        return repeat_runspec(
            MomentSystem(machine_a()), spec, repetitions=2, run_id="rt"
        )

    def test_records_are_tagged_and_valid(self, records):
        assert len(records) == 2
        for rep, record in enumerate(records):
            assert obs.validate_record(record) == []
            assert record["meta"]["repetition"] == rep
        assert records[0]["meta"]["seed"] == 0
        assert records[1]["meta"]["seed"] == derive_seed(0, 1)

    def test_records_carry_run_result_and_ingest(self, records):
        inner = records[0]["config"]["result"]
        assert inner["schema"] == "repro.run/v1"
        assert inner["seed"] == 0 and inner["repetition"] == 0
        table, report = ingest_records(records)
        assert len(table) == 2 and not report.errors
        assert table.values("bench:seeds_per_s") != []
        assert table.columns["seed"] == [0, derive_seed(0, 1)]
