"""Tests for chassis automorphisms and placement orbit dedup."""

import pytest

from repro.core.placement import GPU, Placement, SSD, enumerate_placements
from repro.core.symmetry import (
    chassis_automorphisms,
    canonical_key,
    dedupe_placements,
    slot_group_symmetries,
)
from repro.hardware.machines import machine_a, machine_b


class TestAutomorphisms:
    def test_machine_a_has_mirror_symmetry(self):
        autos = chassis_automorphisms(machine_a().chassis)
        # identity + left/right mirror
        assert len(autos) == 2
        mirror = [a for a in autos if a["rc0"] == "rc1"]
        assert len(mirror) == 1
        m = mirror[0]
        assert m["plx0"] == "plx1"
        assert m["rc0.bays"] == "rc1.bays"
        assert m["plx0.slots"] == "plx1.slots"
        assert m["mem0"] == "mem1"

    def test_machine_b_is_asymmetric(self):
        # The cascade breaks the mirror: only the identity survives.
        autos = chassis_automorphisms(machine_b().chassis)
        assert len(autos) == 1

    def test_identity_always_present(self):
        autos = chassis_automorphisms(machine_a().chassis)
        assert any(all(k == v for k, v in a.items()) for a in autos)

    def test_slot_group_symmetries_restrict_to_groups(self):
        syms = slot_group_symmetries(machine_a().chassis)
        groups = set(machine_a().chassis.group_names)
        for sym in syms:
            assert set(sym) == groups
            assert set(sym.values()) == groups


class TestDedup:
    def test_mirror_placements_collapse(self):
        ch = machine_a().chassis
        left = Placement(ch, {"plx0.slots": {GPU: 2}, "rc0.bays": {SSD: 2}})
        right = Placement(ch, {"plx1.slots": {GPU: 2}, "rc1.bays": {SSD: 2}})
        syms = slot_group_symmetries(ch)
        assert canonical_key(left, syms) == canonical_key(right, syms)
        assert len(dedupe_placements([left, right])) == 1

    def test_distinct_placements_survive(self):
        ch = machine_a().chassis
        p1 = Placement(ch, {"plx0.slots": {GPU: 2}})
        p2 = Placement(ch, {"plx0.slots": {GPU: 1}, "plx1.slots": {GPU: 1}})
        assert len(dedupe_placements([p1, p2])) == 2

    def test_dedupe_preserves_first_representative(self):
        ch = machine_a().chassis
        left = Placement(ch, {"plx0.slots": {GPU: 2}}, name="left")
        right = Placement(ch, {"plx1.slots": {GPU: 2}}, name="right")
        out = dedupe_placements([left, right])
        assert out[0].name == "left"

    def test_dedupe_empty(self):
        assert dedupe_placements([]) == []

    def test_machine_a_search_space_roughly_halves(self):
        ch = machine_a().chassis
        all_p = enumerate_placements(ch, num_gpus=2, num_ssds=4)
        uniq = dedupe_placements(all_p)
        # mirror symmetry: strictly fewer, at least half (self-symmetric
        # placements are their own mirror)
        assert len(uniq) < len(all_p)
        assert len(uniq) >= len(all_p) // 2

    def test_machine_b_dedupe_is_identity(self):
        ch = machine_b().chassis
        all_p = enumerate_placements(ch, num_gpus=1, num_ssds=2)
        assert len(dedupe_placements(all_p)) == len(all_p)
