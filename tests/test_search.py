"""Tests for the staged placement-search engine (repro.core.search).

The load-bearing guarantee is *equivalence*: the streaming, parallel,
funnelled engine must reproduce the pre-engine serial path — enumerate
everything, dedupe, pass-1 score everything, stable-sort, LP the top
``lp_top_k``, stable-sort — bit for bit.  ``_reference_search`` below
implements that original recipe directly and every equivalence test
compares the engine against it.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.optimizer import (
    CapacityPlan,
    MomentOptimizer,
    tier_fractions,
)
from repro.core.placement import enumerate_placements
from repro.core.search import (
    EnumeratedSource,
    FlexibleMaxFlowScorer,
    MulticommodityScorer,
    PRUNE_EQUIV_TOL,
    ScoredPlacement,
    SearchRequest,
    default_prune_bounds,
    default_workers,
    run_search,
    set_default_prune_bounds,
    set_default_workers,
)
from repro.core.symmetry import dedupe_placements
from repro.graphs.datasets import IGB_HOM
from repro.hardware.machines import machine_a, machine_b

FRACTIONS = (0.35, 0.15, 0.5)
LP_TOP_K = 12
TOP_K = 5

CONFIGS = [
    (machine_a, 2, 4),
    (machine_a, 4, 4),
    (machine_b, 2, 4),
    (machine_b, 4, 4),
]


def _reference_search(machine, num_gpus, num_ssds, fractions,
                      lp_top_k=LP_TOP_K, top_k=TOP_K):
    """The pre-engine serial recipe, reimplemented verbatim.

    Fully materialised enumeration, batch dedupe, pass-1 on every unique
    candidate, stable descending sort, pass-2 LP on the top ``lp_top_k``,
    stable descending sort.  Returns (ranked rows, num_candidates,
    num_unique).
    """
    candidates = enumerate_placements(machine.chassis, num_gpus, num_ssds)
    unique = dedupe_placements(candidates, machine.chassis)
    coarse = FlexibleMaxFlowScorer(fractions=fractions)
    exact = MulticommodityScorer(fractions=fractions)
    pass1 = []
    for placement in unique:
        topo = machine.build(placement)
        pass1.append((placement, topo, coarse.score(topo, placement)))
    pass1.sort(key=lambda row: -row[2].throughput)  # stable: ties keep order
    rows = []
    for placement, topo, p1 in pass1[:lp_top_k]:
        mcf = exact.score(topo, placement, p1)
        rows.append(ScoredPlacement(placement, mcf.throughput, p1, mcf))
    rows.sort(key=lambda row: -row.throughput)  # stable
    return rows[:top_k], len(candidates), len(unique)


def _request(machine, num_gpus, num_ssds, **overrides):
    base = dict(
        machine=machine,
        num_gpus=num_gpus,
        num_ssds=num_ssds,
        fractions=FRACTIONS,
        lp_top_k=LP_TOP_K,
        top_k=TOP_K,
        workers=1,
        prune_bounds=False,
    )
    base.update(overrides)
    return SearchRequest(**base)


def _ranking(scored):
    return [(row.placement.as_tuple(), row.throughput) for row in scored]


class TestEquivalence:
    """Engine == pre-engine serial path, on machines A and B, 2 & 4 GPUs."""

    @pytest.mark.parametrize("make_machine,num_gpus,num_ssds", CONFIGS)
    def test_matches_reference(self, make_machine, num_gpus, num_ssds):
        machine = make_machine()
        ref_rows, ref_candidates, ref_unique = _reference_search(
            machine, num_gpus, num_ssds, FRACTIONS
        )
        result = run_search(_request(machine, num_gpus, num_ssds))
        assert result.num_candidates == ref_candidates
        assert result.num_unique == ref_unique
        # same winner: placement and exact throughput
        assert result.best.placement.as_tuple() == ref_rows[0].placement.as_tuple()
        assert result.best.throughput == ref_rows[0].throughput
        # same top-k ordering, placement by placement
        assert _ranking(result.scored) == _ranking(ref_rows)

    def test_parallel_matches_serial(self):
        machine = machine_b()
        serial = run_search(_request(machine, 2, 4))
        parallel = run_search(_request(machine, 2, 4, workers=2))
        assert parallel.workers == 2
        assert _ranking(parallel.scored) == _ranking(serial.scored)
        assert parallel.num_candidates == serial.num_candidates
        assert parallel.num_unique == serial.num_unique

    def test_parallel_pruning_matches_serial_pruning(self):
        """Prune decisions are wave-based, never worker-dependent."""
        machine = machine_b()
        serial = run_search(_request(machine, 2, 4, prune_bounds=True))
        parallel = run_search(
            _request(machine, 2, 4, workers=2, prune_bounds=True)
        )
        assert serial.pruned_by_bound == parallel.pruned_by_bound
        assert _ranking(parallel.scored) == _ranking(serial.scored)

    def test_pruning_fires_and_keeps_winner(self):
        machine = machine_b()
        off = run_search(_request(machine, 2, 4))
        on = run_search(_request(machine, 2, 4, prune_bounds=True))
        assert on.pruned_by_bound > 0
        assert on.num_lp_scored + on.pruned_by_bound == off.num_lp_scored
        rel = abs(on.best.throughput - off.best.throughput) / off.best.throughput
        # the pass-1 bound holds only to LP-solver tolerance, so the
        # winner is preserved to PRUNE_EQUIV_TOL, not float epsilon
        assert rel <= PRUNE_EQUIV_TOL


class TestPruneNeverDropsArgmax:
    """Property: bound pruning preserves the winning throughput."""

    @given(
        machine_idx=st.integers(min_value=0, max_value=1),
        num_gpus=st.integers(min_value=1, max_value=2),
        num_ssds=st.integers(min_value=1, max_value=4),
        f_gpu=st.floats(min_value=0.0, max_value=0.8),
        f_cpu=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=6, deadline=None)
    def test_prune_on_equals_prune_off(
        self, machine_idx, num_gpus, num_ssds, f_gpu, f_cpu
    ):
        machine = (machine_a, machine_b)[machine_idx]()
        total = f_gpu + f_cpu
        if total > 0.9:
            f_gpu, f_cpu = 0.9 * f_gpu / total, 0.9 * f_cpu / total
        fractions = (f_gpu, f_cpu, 1.0 - f_gpu - f_cpu)
        off = run_search(
            _request(machine, num_gpus, num_ssds, fractions=fractions)
        )
        on = run_search(
            _request(
                machine, num_gpus, num_ssds,
                fractions=fractions, prune_bounds=True,
            )
        )
        rel = abs(on.best.throughput - off.best.throughput) / (
            off.best.throughput
        )
        # a pruned tie's exact score can exceed its pass-1 bound by
        # solver noise; the guarantee is PRUNE_EQUIV_TOL (see search.py)
        assert rel <= PRUNE_EQUIV_TOL


class TestStreamingSource:
    @pytest.mark.parametrize("make_machine", [machine_a, machine_b])
    def test_incremental_dedupe_matches_batch(self, make_machine):
        machine = make_machine()
        source = EnumeratedSource(machine.chassis, 2, 4)
        streamed = [p for p, _key in source.stream()]
        batch = dedupe_placements(
            enumerate_placements(machine.chassis, 2, 4), machine.chassis
        )
        assert [p.as_tuple() for p in streamed] == [
            p.as_tuple() for p in batch
        ]
        assert source.num_seen == len(
            enumerate_placements(machine.chassis, 2, 4)
        )

    def test_infeasible_request_raises(self):
        machine = machine_a()
        with pytest.raises(ValueError, match="no feasible placement"):
            run_search(_request(machine, 64, 64))


class TestTopologyCache:
    def test_pass2_reuses_pass1_topologies(self):
        result = run_search(_request(machine_a(), 2, 4))
        # pass 1 builds each unique candidate once (all misses); pass 2
        # re-reads the finalists from the cache (all hits).
        assert result.cache_misses == result.num_unique
        assert result.cache_hits == result.num_lp_scored
        assert result.cache_hits > 0


class TestKnobDefaults:
    def test_set_default_workers_roundtrip(self):
        try:
            set_default_workers(3)
            assert default_workers() == 3
        finally:
            set_default_workers(None)
        assert default_workers() >= 1

    def test_set_default_prune_roundtrip(self):
        try:
            set_default_prune_bounds(True)
            assert default_prune_bounds() is True
        finally:
            set_default_prune_bounds(None)


@pytest.fixture(scope="module")
def dataset():
    return IGB_HOM.build(scale=IGB_HOM.default_scale * 40, seed=0)


class TestOptimizerIntegration:
    def test_optimize_carries_search_result(self, dataset):
        opt = MomentOptimizer(machine_a(), num_gpus=2, num_ssds=4)
        plan = opt.optimize(dataset)
        assert plan.search is not None
        assert plan.search.num_candidates == plan.num_candidates
        assert plan.search.num_unique == plan.num_unique
        assert plan.search.best.throughput == plan.predicted_throughput

    def test_summary_labels_ranking_pass(self, dataset):
        opt = MomentOptimizer(machine_a(), num_gpus=2, num_ssds=4)
        plan = opt.optimize(dataset)
        text = plan.summary()
        assert "pass-2 multicommodity LP" in text
        assert "search engine: workers=" in text
        downgraded = dataclasses.replace(plan, mcf=None, search=None)
        assert "pass-1 max-flow" in downgraded.summary()


class TestTierFractionGuards:
    def _plan(self):
        return CapacityPlan(
            gpu_cache_bytes=1e9, cpu_cache_bytes=1e9,
            ssd_capacity_bytes=1e10,
        )

    def test_zero_feature_bytes_raises(self):
        with pytest.raises(ValueError, match="feature_bytes"):
            tier_fractions(np.ones(100), 0, self._plan(), num_gpus=2)

    def test_negative_feature_bytes_raises(self):
        with pytest.raises(ValueError, match="feature_bytes"):
            tier_fractions(np.ones(100), -4, self._plan(), num_gpus=2)

    def test_empty_hotness_raises(self):
        with pytest.raises(ValueError, match="hotness"):
            tier_fractions(np.array([]), 4, self._plan(), num_gpus=2)
