"""Tests for the staged placement-search engine (repro.core.search).

The load-bearing guarantee is *equivalence*: the streaming, parallel,
funnelled engine must reproduce the pre-engine serial path — enumerate
everything, dedupe, pass-1 score everything, stable-sort, LP the top
``lp_top_k``, stable-sort — bit for bit.  ``_reference_search`` below
implements that original recipe directly and every equivalence test
compares the engine against it.
"""

import dataclasses
from functools import partial

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs

from repro.core.flowbatch import fast_min_completion_time
from repro.core.flowmodel import min_completion_time
from repro.core.optimizer import (
    CapacityPlan,
    MomentOptimizer,
    tier_fractions,
)
from repro.core.placement import (
    Chassis,
    SlotGroup,
    count_placements,
    enumerate_placements,
    iter_placements,
)
from repro.core.search import (
    EnumeratedSource,
    FlexibleMaxFlowScorer,
    MulticommodityScorer,
    PRUNE_EQUIV_TOL,
    ScoredPlacement,
    SearchRequest,
    default_batch_size,
    default_prune_bounds,
    default_warm_starts,
    default_workers,
    run_search,
    scoring_demand,
    set_default_batch_size,
    set_default_prune_bounds,
    set_default_warm_starts,
    set_default_workers,
)
from repro.core.symmetry import (
    CanonicalFilter,
    canonical_key,
    dedupe_placements,
    iter_canonical_placements,
    slot_group_symmetries,
)
from repro.core.topology import NodeKind, TopologyMask
from repro.graphs.datasets import IGB_HOM
from repro.hardware.fabric import compile_fabric
from repro.hardware.generate import generate_fabric
from repro.hardware.machines import machine_a, machine_b

FRACTIONS = (0.35, 0.15, 0.5)
LP_TOP_K = 12
TOP_K = 5

CONFIGS = [
    (machine_a, 2, 4),
    (machine_a, 4, 4),
    (machine_b, 2, 4),
    (machine_b, 4, 4),
]


def _reference_search(machine, num_gpus, num_ssds, fractions,
                      lp_top_k=LP_TOP_K, top_k=TOP_K):
    """The pre-engine serial recipe, reimplemented verbatim.

    Fully materialised enumeration, batch dedupe, pass-1 on every unique
    candidate, stable descending sort, pass-2 LP on the top ``lp_top_k``,
    stable descending sort.  Returns (ranked rows, num_candidates,
    num_unique).
    """
    candidates = enumerate_placements(machine.chassis, num_gpus, num_ssds)
    unique = dedupe_placements(candidates, machine.chassis)
    coarse = FlexibleMaxFlowScorer(fractions=fractions)
    exact = MulticommodityScorer(fractions=fractions)
    pass1 = []
    for placement in unique:
        topo = machine.build(placement)
        pass1.append((placement, topo, coarse.score(topo, placement)))
    pass1.sort(key=lambda row: -row[2].throughput)  # stable: ties keep order
    rows = []
    for placement, topo, p1 in pass1[:lp_top_k]:
        mcf = exact.score(topo, placement, p1)
        rows.append(ScoredPlacement(placement, mcf.throughput, p1, mcf))
    rows.sort(key=lambda row: -row.throughput)  # stable
    return rows[:top_k], len(candidates), len(unique)


def _request(machine, num_gpus, num_ssds, **overrides):
    base = dict(
        machine=machine,
        num_gpus=num_gpus,
        num_ssds=num_ssds,
        fractions=FRACTIONS,
        lp_top_k=LP_TOP_K,
        top_k=TOP_K,
        workers=1,
        prune_bounds=False,
    )
    base.update(overrides)
    return SearchRequest(**base)


def _ranking(scored):
    return [(row.placement.as_tuple(), row.throughput) for row in scored]


class TestEquivalence:
    """Engine == pre-engine serial path, on machines A and B, 2 & 4 GPUs."""

    @pytest.mark.parametrize("make_machine,num_gpus,num_ssds", CONFIGS)
    def test_matches_reference(self, make_machine, num_gpus, num_ssds):
        machine = make_machine()
        ref_rows, ref_candidates, ref_unique = _reference_search(
            machine, num_gpus, num_ssds, FRACTIONS
        )
        result = run_search(_request(machine, num_gpus, num_ssds))
        assert result.num_candidates == ref_candidates
        assert result.num_unique == ref_unique
        # same winner: placement and exact throughput
        assert result.best.placement.as_tuple() == ref_rows[0].placement.as_tuple()
        assert result.best.throughput == ref_rows[0].throughput
        # same top-k ordering, placement by placement
        assert _ranking(result.scored) == _ranking(ref_rows)

    def test_parallel_matches_serial(self):
        machine = machine_b()
        serial = run_search(_request(machine, 2, 4))
        parallel = run_search(_request(machine, 2, 4, workers=2))
        assert parallel.workers == 2
        assert _ranking(parallel.scored) == _ranking(serial.scored)
        assert parallel.num_candidates == serial.num_candidates
        assert parallel.num_unique == serial.num_unique

    def test_parallel_pruning_matches_serial_pruning(self):
        """Prune decisions are wave-based, never worker-dependent."""
        machine = machine_b()
        serial = run_search(_request(machine, 2, 4, prune_bounds=True))
        parallel = run_search(
            _request(machine, 2, 4, workers=2, prune_bounds=True)
        )
        assert serial.pruned_by_bound == parallel.pruned_by_bound
        assert _ranking(parallel.scored) == _ranking(serial.scored)

    def test_pruning_fires_and_keeps_winner(self):
        machine = machine_b()
        off = run_search(_request(machine, 2, 4))
        on = run_search(_request(machine, 2, 4, prune_bounds=True))
        assert on.pruned_by_bound > 0
        assert on.num_lp_scored + on.pruned_by_bound == off.num_lp_scored
        rel = abs(on.best.throughput - off.best.throughput) / off.best.throughput
        # the pass-1 bound holds only to LP-solver tolerance, so the
        # winner is preserved to PRUNE_EQUIV_TOL, not float epsilon
        assert rel <= PRUNE_EQUIV_TOL


class TestPruneNeverDropsArgmax:
    """Property: bound pruning preserves the winning throughput."""

    @given(
        machine_idx=st.integers(min_value=0, max_value=1),
        num_gpus=st.integers(min_value=1, max_value=2),
        num_ssds=st.integers(min_value=1, max_value=4),
        f_gpu=st.floats(min_value=0.0, max_value=0.8),
        f_cpu=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=6, deadline=None)
    def test_prune_on_equals_prune_off(
        self, machine_idx, num_gpus, num_ssds, f_gpu, f_cpu
    ):
        machine = (machine_a, machine_b)[machine_idx]()
        total = f_gpu + f_cpu
        if total > 0.9:
            f_gpu, f_cpu = 0.9 * f_gpu / total, 0.9 * f_cpu / total
        fractions = (f_gpu, f_cpu, 1.0 - f_gpu - f_cpu)
        off = run_search(
            _request(machine, num_gpus, num_ssds, fractions=fractions)
        )
        on = run_search(
            _request(
                machine, num_gpus, num_ssds,
                fractions=fractions, prune_bounds=True,
            )
        )
        rel = abs(on.best.throughput - off.best.throughput) / (
            off.best.throughput
        )
        # a pruned tie's exact score can exceed its pass-1 bound by
        # solver noise; the guarantee is PRUNE_EQUIV_TOL (see search.py)
        assert rel <= PRUNE_EQUIV_TOL


class TestStreamingSource:
    @pytest.mark.parametrize("make_machine", [machine_a, machine_b])
    def test_incremental_dedupe_matches_batch(self, make_machine):
        machine = make_machine()
        source = EnumeratedSource(machine.chassis, 2, 4)
        streamed = [p for p, _key in source.stream()]
        batch = dedupe_placements(
            enumerate_placements(machine.chassis, 2, 4), machine.chassis
        )
        assert [p.as_tuple() for p in streamed] == [
            p.as_tuple() for p in batch
        ]
        assert source.num_seen == len(
            enumerate_placements(machine.chassis, 2, 4)
        )

    def test_num_seen_is_analytic(self):
        """``num_seen`` reports the raw (pre-symmetry) space size via the
        counting DP — available *before* streaming, and independent of
        how many canonical placements the direct enumerator emits."""
        machine = machine_a()
        source = EnumeratedSource(machine.chassis, 2, 4)
        raw = len(enumerate_placements(machine.chassis, 2, 4))
        assert source.num_seen == raw  # nothing streamed yet
        assert source.num_direct == 0
        streamed = list(source.stream())
        assert source.num_seen == raw  # unchanged by streaming
        assert source.num_direct == len(streamed)
        assert source.num_direct <= raw

    def test_infeasible_request_raises(self):
        machine = machine_a()
        with pytest.raises(ValueError, match="no feasible placement"):
            run_search(_request(machine, 64, 64))


class TestTopologyCache:
    def test_pass2_reuses_pass1_topologies(self):
        result = run_search(_request(machine_a(), 2, 4))
        # pass 1 builds each unique candidate once (all misses); pass 2
        # re-reads the finalists from the cache (all hits).
        assert result.cache_misses == result.num_unique
        assert result.cache_hits == result.num_lp_scored
        assert result.cache_hits > 0


class TestKnobDefaults:
    def test_set_default_workers_roundtrip(self):
        try:
            set_default_workers(3)
            assert default_workers() == 3
        finally:
            set_default_workers(None)
        assert default_workers() >= 1

    def test_set_default_prune_roundtrip(self):
        try:
            set_default_prune_bounds(True)
            assert default_prune_bounds() is True
        finally:
            set_default_prune_bounds(None)

    def test_set_default_batch_roundtrip(self):
        try:
            set_default_batch_size(8)
            assert default_batch_size() == 8
        finally:
            set_default_batch_size(None)
        assert default_batch_size() >= 1

    def test_set_default_warm_roundtrip(self):
        try:
            set_default_warm_starts(False)
            assert default_warm_starts() is False
        finally:
            set_default_warm_starts(None)
        assert default_warm_starts() in (True, False)


@pytest.fixture(scope="module")
def dataset():
    return IGB_HOM.build(scale=IGB_HOM.default_scale * 40, seed=0)


class TestOptimizerIntegration:
    def test_optimize_carries_search_result(self, dataset):
        opt = MomentOptimizer(machine_a(), num_gpus=2, num_ssds=4)
        plan = opt.optimize(dataset)
        assert plan.search is not None
        assert plan.search.num_candidates == plan.num_candidates
        assert plan.search.num_unique == plan.num_unique
        assert plan.search.best.throughput == plan.predicted_throughput

    def test_summary_labels_ranking_pass(self, dataset):
        opt = MomentOptimizer(machine_a(), num_gpus=2, num_ssds=4)
        plan = opt.optimize(dataset)
        text = plan.summary()
        assert "pass-2 multicommodity LP" in text
        assert "search engine: workers=" in text
        downgraded = dataclasses.replace(plan, mcf=None, search=None)
        assert "pass-1 max-flow" in downgraded.summary()


class TestTierFractionGuards:
    def _plan(self):
        return CapacityPlan(
            gpu_cache_bytes=1e9, cpu_cache_bytes=1e9,
            ssd_capacity_bytes=1e10,
        )

    def test_zero_feature_bytes_raises(self):
        with pytest.raises(ValueError, match="feature_bytes"):
            tier_fractions(np.ones(100), 0, self._plan(), num_gpus=2)

    def test_negative_feature_bytes_raises(self):
        with pytest.raises(ValueError, match="feature_bytes"):
            tier_fractions(np.ones(100), -4, self._plan(), num_gpus=2)

    def test_empty_hotness_raises(self):
        with pytest.raises(ValueError, match="hotness"):
            tier_fractions(np.array([]), 4, self._plan(), num_gpus=2)


# ---------------------------------------------------------------------------
# Differential equivalence harness: vectorized engine vs the legacy kernel
# ---------------------------------------------------------------------------


def _gen_machine(seed):
    return compile_fabric(generate_fabric(seed))


#: Fabrics for the differential harness: both hand-built machines plus
#: twelve fuzzer-generated ones.  The bigger generated fabrics run at a
#: (1, 2) pool so the scalar legacy-kernel reference stays fast; the
#: fabrics themselves are untouched.
DIFFERENTIAL_FABRICS = [
    ("machine_a", machine_a, (2, 4)),
    ("machine_b", machine_b, (2, 4)),
    ("gen:0", partial(_gen_machine, 0), (2, 2)),
    ("gen:1", partial(_gen_machine, 1), (2, 2)),
    ("gen:2", partial(_gen_machine, 2), (1, 2)),
    ("gen:3", partial(_gen_machine, 3), (2, 2)),
    ("gen:4", partial(_gen_machine, 4), (1, 2)),
    ("gen:5", partial(_gen_machine, 5), (2, 2)),
    ("gen:6", partial(_gen_machine, 6), (1, 2)),
    ("gen:7", partial(_gen_machine, 7), (2, 2)),
    ("gen:8", partial(_gen_machine, 8), (1, 2)),
    ("gen:9", partial(_gen_machine, 9), (1, 2)),
    ("gen:10", partial(_gen_machine, 10), (2, 2)),
    ("gen:11", partial(_gen_machine, 11), (2, 2)),
]


def _legacy_reference(machine, num_gpus, num_ssds, fractions,
                      lp_top_k=LP_TOP_K, top_k=TOP_K):
    """The pre-engine recipe with the *legacy bisection kernel* as pass 1.

    ``_reference_search`` above shares the vectorized kernel with the
    engine, so it checks pipeline equivalence only.  This variant
    reimplements pass 1 with :func:`min_completion_time` — the original
    scalar bisection solver — making it a true differential test of the
    cut-parametric kernel itself.  ``rel_tol=1e-4`` keeps the bisection
    slack well inside ``PRUNE_EQUIV_TOL``.
    """
    candidates = enumerate_placements(machine.chassis, num_gpus, num_ssds)
    unique = dedupe_placements(candidates, machine.chassis)
    exact = MulticommodityScorer(fractions=fractions)
    pass1 = []
    for placement in unique:
        topo = machine.build(placement)
        demand = scoring_demand(topo, fractions)
        pass1.append(
            (placement, topo, min_completion_time(topo, demand, rel_tol=1e-4))
        )
    pass1.sort(key=lambda row: -row[2].throughput)  # stable
    rows = []
    for placement, topo, p1 in pass1[:lp_top_k]:
        mcf = exact.score(topo, placement, p1)
        rows.append(ScoredPlacement(placement, mcf.throughput, p1, mcf))
    rows.sort(key=lambda row: -row.throughput)  # stable
    return rows[:top_k], len(candidates), len(unique)


class TestDifferentialEquivalence:
    """run_search (direct canonical enumeration + batched cut-parametric
    kernel + warm-start chaining) against the legacy scalar pipeline."""

    @pytest.mark.parametrize(
        "name,make_machine,pool",
        DIFFERENTIAL_FABRICS,
        ids=[row[0] for row in DIFFERENTIAL_FABRICS],
    )
    def test_engine_matches_legacy_kernel(self, name, make_machine, pool):
        machine = make_machine()
        num_gpus, num_ssds = pool
        ref_rows, ref_candidates, ref_unique = _legacy_reference(
            machine, num_gpus, num_ssds, FRACTIONS
        )
        result = run_search(_request(machine, num_gpus, num_ssds))
        assert result.num_candidates == ref_candidates
        assert result.num_unique == ref_unique
        # the direct enumerator produced every unique candidate itself
        # (no dedupe stage discarded anything)
        assert result.canonical_direct == ref_unique
        # agreeing objective, to the model-equivalence tolerance
        ref_best = ref_rows[0]
        rel = abs(result.best.throughput - ref_best.throughput) / (
            ref_best.throughput
        )
        assert rel <= PRUNE_EQUIV_TOL
        if result.best.placement.as_tuple() != ref_best.placement.as_tuple():
            # Some fabrics have an exact tie plateau at the optimum; the
            # two kernels may break it differently (LP solver noise is
            # larger than a zero-width tie).  The engine's pick must
            # then still be reference-optimal: rerun it through the
            # legacy pipeline and require the reference's own optimum.
            runner_up = ref_rows[1] if len(ref_rows) > 1 else None
            gap = (
                abs(ref_best.throughput - runner_up.throughput)
                / ref_best.throughput
                if runner_up is not None
                else 0.0
            )
            assert gap <= PRUNE_EQUIV_TOL, (
                "winner differs although the reference optimum is unique"
            )
            topo = machine.build(result.best.placement)
            p1 = min_completion_time(
                topo, scoring_demand(topo, FRACTIONS), rel_tol=1e-4
            )
            mcf = MulticommodityScorer(fractions=FRACTIONS).score(
                topo, result.best.placement, p1
            )
            tie_rel = abs(mcf.throughput - ref_best.throughput) / (
                ref_best.throughput
            )
            assert tie_rel <= PRUNE_EQUIV_TOL

    @pytest.mark.parametrize(
        "make_machine,pool",
        [(machine_a, (2, 4)), (partial(_gen_machine, 7), (2, 2))],
        ids=["machine_a", "gen:7"],
    )
    def test_workers_do_not_change_selection(self, make_machine, pool):
        """Warm-start chaining is batch-local and batch boundaries are
        worker-independent, so any worker count picks the same plan —
        bit for bit."""
        machine = make_machine()
        one = run_search(_request(machine, *pool))
        two = run_search(_request(machine, *pool, workers=2))
        assert _ranking(two.scored) == _ranking(one.scored)
        assert two.best.throughput == one.best.throughput


# ---------------------------------------------------------------------------
# Property tests: direct canonical enumeration and batched pass-1 scoring
# ---------------------------------------------------------------------------


def _two_switch_chassis(units, bay_units, mirrored, tagged):
    """A root complex fanning out to two switches with slot groups.

    ``mirrored`` gives both sides identical trunks and slots, creating a
    nontrivial chassis automorphism; ``tagged`` breaks it again via an
    electrical-identity tag on one side — together they cover the
    symmetric, asymmetric-capacity, and asymmetric-tag regimes.
    """
    c = Chassis("hyp-two-switch")
    c.add_interconnect("rc0", NodeKind.ROOT_COMPLEX)
    c.add_interconnect("plx0", NodeKind.SWITCH)
    c.add_interconnect("plx1", NodeKind.SWITCH)
    c.add_trunk("rc0", "plx0", 32e9)
    c.add_trunk("rc0", "plx1", 32e9 if mirrored else 16e9)
    c.add_memory("mem0", "rc0", 512e9, 100e9)
    c.add_slot_group(SlotGroup("plx0.slots", "plx0", units, 16e9))
    c.add_slot_group(
        SlotGroup(
            "plx1.slots", "plx1", units, 16e9,
            tag="hetero" if tagged else "",
        )
    )
    c.add_slot_group(
        SlotGroup(
            "rc0.bays", "rc0", bay_units, 8e9,
            allowed=frozenset({"ssd"}),
        )
    )
    return c


class TestDirectEnumeratorProperties:
    @given(
        units=st.integers(min_value=2, max_value=6),
        bay_units=st.integers(min_value=1, max_value=4),
        mirrored=st.booleans(),
        tagged=st.booleans(),
        num_gpus=st.integers(min_value=0, max_value=3),
        num_ssds=st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_direct_equals_enumerate_then_filter(
        self, units, bay_units, mirrored, tagged, num_gpus, num_ssds
    ):
        """The direct enumerator yields exactly the placements the old
        enumerate-everything-then-CanonicalFilter pipeline admits, in
        the same order."""
        chassis = _two_switch_chassis(units, bay_units, mirrored, tagged)
        syms = slot_group_symmetries(chassis)
        direct = list(
            iter_canonical_placements(chassis, num_gpus, num_ssds, syms)
        )
        filt = CanonicalFilter(chassis)
        admitted = [
            p for p in iter_placements(chassis, num_gpus, num_ssds)
            if filt.admit(p) is not None
        ]
        assert [p.as_tuple() for p in direct] == [
            p.as_tuple() for p in admitted
        ]
        # one representative per orbit, and every orbit covered
        keys = [canonical_key(p, syms) for p in direct]
        assert len(set(keys)) == len(keys)
        assert set(keys) == {
            canonical_key(p, syms)
            for p in iter_placements(chassis, num_gpus, num_ssds)
        }

    @given(
        units=st.integers(min_value=2, max_value=6),
        bay_units=st.integers(min_value=1, max_value=4),
        mirrored=st.booleans(),
        num_gpus=st.integers(min_value=0, max_value=3),
        num_ssds=st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_count_placements_matches_enumeration(
        self, units, bay_units, mirrored, num_gpus, num_ssds
    ):
        """The counting DP agrees with brute-force enumeration — this is
        what keeps ``EnumeratedSource.num_seen`` honest without the
        engine ever materialising the raw space."""
        chassis = _two_switch_chassis(units, bay_units, mirrored, False)
        raw = sum(1 for _ in iter_placements(chassis, num_gpus, num_ssds))
        assert count_placements(chassis, num_gpus, num_ssds) == raw


class TestBatchScalarEquivalence:
    @given(
        machine_idx=st.integers(min_value=0, max_value=1),
        f_gpu=st.floats(min_value=0.0, max_value=0.8),
        f_cpu=st.floats(min_value=0.0, max_value=0.5),
        start=st.integers(min_value=0, max_value=20),
        take=st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=8, deadline=None)
    def test_batched_pass1_equals_scalar_pass1(
        self, machine_idx, f_gpu, f_cpu, start, take
    ):
        """The stacked-matrix batch kernel returns, element for element,
        exactly what the scalar kernel returns for each topology alone —
        including with warm-start chaining on (the default)."""
        machine = (machine_a, machine_b)[machine_idx]()
        total = f_gpu + f_cpu
        if total > 0.9:
            f_gpu, f_cpu = 0.9 * f_gpu / total, 0.9 * f_cpu / total
        fractions = (f_gpu, f_cpu, 1.0 - f_gpu - f_cpu)
        placements = list(iter_canonical_placements(machine.chassis, 2, 4))
        window = placements[start:start + take] or placements[:take]
        topos = [machine.build(p, validate=False) for p in window]
        scorer = FlexibleMaxFlowScorer(fractions=fractions)
        batch, _warm = scorer.score_batch(topos)
        for topo, batched in zip(topos, batch):
            solo = scorer.score(topo, None)
            assert batched.time == solo.time
            assert batched.throughput == solo.throughput
            assert batched.storage_rate == solo.storage_rate
            assert batched.per_gpu_rate == solo.per_gpu_rate


# ---------------------------------------------------------------------------
# Warm-start regression: warm re-score of a neighbor == cold solve
# ---------------------------------------------------------------------------


def _single_slot_swap_pair(machine, num_gpus, num_ssds):
    """Two canonical placements differing by moving one SSD between
    groups (GPU seating identical)."""
    placements = list(
        iter_canonical_placements(machine.chassis, num_gpus, num_ssds)
    )
    for i, a in enumerate(placements):
        ta = a.as_tuple()
        for b in placements[i + 1:]:
            tb = b.as_tuple()
            gpu_same = all(x[1] == y[1] for x, y in zip(ta, tb))
            ssd_moves = sum(abs(x[2] - y[2]) for x, y in zip(ta, tb))
            if gpu_same and ssd_moves == 2:
                return a, b
    raise AssertionError("no single-slot-swap pair in the canonical set")


def _prediction_fingerprint(pred):
    return (
        pred.time,
        pred.throughput,
        tuple(sorted(pred.storage_rate.items())),
        tuple(sorted(pred.per_gpu_rate.items())),
    )


class TestWarmStartRegression:
    def test_swap_neighbor_warm_equals_cold(self):
        machine = machine_a()
        a, b = _single_slot_swap_pair(machine, 2, 4)
        topo_a = machine.build(a)
        topo_b = machine.build(b)
        seed = fast_min_completion_time(
            topo_a, scoring_demand(topo_a, FRACTIONS)
        )
        assert seed.cut_partition  # the hint we warm-start from
        demand_b = scoring_demand(topo_b, FRACTIONS)
        warm = fast_min_completion_time(
            topo_b, demand_b, warm_partition=seed.cut_partition
        )
        cold = fast_min_completion_time(topo_b, demand_b)
        assert _prediction_fingerprint(warm) == _prediction_fingerprint(cold)

    def test_swap_neighbor_warm_equals_cold_under_mask(self):
        """The replan shape: the warm hint comes from the *healthy*
        fabric while the solve runs on a degraded (masked) one."""
        machine = machine_a()
        a, b = _single_slot_swap_pair(machine, 2, 4)
        healthy = machine.build(a)
        seed = fast_min_completion_time(
            healthy, scoring_demand(healthy, FRACTIONS)
        )
        mask = TopologyMask(
            drop_nodes=(),
            egress_factors=(("ssd0", 0.4),),
            link_factors=(("rc0", "plx0", 0.5),),
        )
        masked = mask.apply(machine.build(b))
        demand = scoring_demand(masked, FRACTIONS)
        warm = fast_min_completion_time(
            masked, demand, warm_partition=seed.cut_partition
        )
        cold = fast_min_completion_time(masked, demand)
        assert _prediction_fingerprint(warm) == _prediction_fingerprint(cold)

    def test_warm_hint_survives_dropped_nodes(self):
        """A hint naming nodes the mask removed must degrade to a cold
        start, not crash or corrupt the solve."""
        machine = machine_a()
        a, _b = _single_slot_swap_pair(machine, 2, 4)
        healthy = machine.build(a)
        seed = fast_min_completion_time(
            healthy, scoring_demand(healthy, FRACTIONS)
        )
        mask = TopologyMask(
            drop_nodes=("ssd0",), egress_factors=(), link_factors=()
        )
        masked = mask.apply(healthy)
        demand = scoring_demand(masked, FRACTIONS)
        warm = fast_min_completion_time(
            masked, demand, warm_partition=seed.cut_partition
        )
        cold = fast_min_completion_time(masked, demand)
        assert _prediction_fingerprint(warm) == _prediction_fingerprint(cold)

    def test_engine_warm_off_bit_identical(self):
        machine = machine_a()
        on = run_search(_request(machine, 2, 4, warm_starts=True))
        off = run_search(_request(machine, 2, 4, warm_starts=False))
        assert on.warm_starts > 0
        assert off.warm_starts == 0
        assert _ranking(on.scored) == _ranking(off.scored)
        assert on.best.throughput == off.best.throughput

    def test_masked_rescore_with_warm_cut(self):
        """The ReplanPolicy request shape: one pinned candidate, a fault
        mask, and the previous solve's cut as the warm seed."""
        machine = machine_a()
        base = run_search(_request(machine, 2, 4))
        placement = base.best.placement
        mask = TopologyMask(
            drop_nodes=(),
            egress_factors=(("ssd0", 0.5),),
            link_factors=(),
        )
        cold = run_search(
            _request(machine, 2, 4, candidates=(placement,), mask=mask)
        )
        warm = run_search(
            _request(
                machine, 2, 4, candidates=(placement,), mask=mask,
                warm_cut=base.best.prediction.cut_partition,
            )
        )
        assert warm.warm_starts >= 1
        assert warm.best.throughput == cold.best.throughput
        assert (
            warm.best.placement.as_tuple() == cold.best.placement.as_tuple()
        )


class TestSearchCounters:
    def test_vectorized_counters_exported(self):
        with obs.capture() as tel:
            result = run_search(_request(machine_a(), 2, 4))
        metrics = tel.snapshot()["metrics"]
        counters = metrics["counters"]
        assert counters["search.canonical_direct"] == result.num_unique
        assert counters["search.warm_starts"] == result.warm_starts
        assert result.warm_starts > 0
        hist = metrics["histograms"]["search.batch_size"]
        assert hist["count"] == result.num_batches
        assert result.num_batches >= 1
