"""Top-level run facade: ``repro.api.run(system, spec)``.

One function, two values in, one value out — the stable surface for
scripts, benchmarks, and the experiments CLI.  Everything a run needs
travels in the :class:`~repro.runtime.spec.RunSpec`; everything it
produced comes back as a :class:`~repro.runtime.system.SystemResult`
(serializable via :meth:`SystemResult.to_dict`).

>>> from repro import MomentSystem, RunSpec, machine_a
>>> from repro.api import run
>>> result = run(MomentSystem(machine_a()), RunSpec(dataset=ds))
"""

from __future__ import annotations

from repro.runtime.spec import RunSpec
from repro.runtime.system import GnnSystem, SystemResult

__all__ = ["run", "RunSpec", "SystemResult"]


def run(system: GnnSystem, spec: RunSpec) -> SystemResult:
    """Run one epoch of ``system`` as described by ``spec``."""
    if not isinstance(spec, RunSpec):
        raise TypeError(
            f"repro.api.run takes a RunSpec, got {type(spec).__name__}; "
            "the legacy kwargs form lives on GnnSystem.run"
        )
    return system.run(spec)
