"""Top-level run facade: ``repro.api.run(system, spec)``.

One function, two values in, one value out — the stable surface for
scripts, benchmarks, and the experiments CLI.  Everything a run needs
travels in the :class:`~repro.runtime.spec.RunSpec`; everything it
produced comes back as a :class:`~repro.runtime.system.SystemResult`
(serializable via :meth:`SystemResult.to_dict`).

>>> from repro import MomentSystem, RunSpec, machine_a
>>> from repro.api import run
>>> result = run(MomentSystem(machine_a()), RunSpec(dataset=ds))
"""

from __future__ import annotations

from repro.runtime.spec import RunSpec
from repro.runtime.system import GnnSystem, SystemResult

__all__ = ["run", "system_for", "RunSpec", "SystemResult"]


def run(system: GnnSystem, spec: RunSpec) -> SystemResult:
    """Run one epoch of ``system`` as described by ``spec``."""
    if not isinstance(spec, RunSpec):
        raise TypeError(
            f"repro.api.run takes a RunSpec, got {type(spec).__name__}; "
            "the legacy kwargs form lives on GnnSystem.run"
        )
    return system.run(spec)


def system_for(spec: RunSpec, system_cls=None, **kwargs) -> GnnSystem:
    """Build the system a spec's hardware identity calls for.

    The spec must name its hardware (``machine="machine_a"``,
    ``machine="gen:7"``, or an inline/on-disk ``fabric``); the named
    fabric is compiled and handed to ``system_cls`` (default
    :class:`~repro.runtime.system.MomentSystem`) along with any extra
    constructor ``kwargs``::

        spec = RunSpec(dataset=ds, fabric=generate_fabric(7))
        result = run(system_for(spec), spec)
    """
    machine = spec.resolve_machine()
    if machine is None:
        raise ValueError(
            "spec carries no hardware identity; set RunSpec.machine "
            "(a registry name like 'machine_a' or 'gen:<seed>') or "
            "RunSpec.fabric (a FabricSpec, its dict, or a spec path)"
        )
    if system_cls is None:
        from repro.runtime.system import MomentSystem

        system_cls = MomentSystem
    return system_cls(machine, **kwargs)
