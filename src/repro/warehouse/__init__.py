"""repro.warehouse — the results warehouse.

Turns the one-shot benchmark figures into a tracked trajectory:

* :mod:`~repro.warehouse.table` — the columnar run-table
  (``repro.table/v1``, one row per run × repetition);
* :mod:`~repro.warehouse.ingest` — ``repro.obs/v1`` / ``repro.run/v1``
  JSONL → run-table, tolerant of malformed lines;
* :mod:`~repro.warehouse.stats` — CIs (t / bootstrap), Welch's t-test,
  noise bands;
* :mod:`~repro.warehouse.repeat` — N repetitions with derived seeds;
* :mod:`~repro.warehouse.gate` — the CI perf-regression gate;
* :mod:`~repro.warehouse.report` — summary/compare renderers.

CLI: ``python -m repro.warehouse {ingest,report,compare,gate,repeat}``
(schema and methodology documented in EXPERIMENTS.md).
"""

from repro.warehouse.gate import (
    DEFAULT_TRACKED,
    GateConfig,
    GateReport,
    GateVerdict,
    gate,
    metric_direction,
)
from repro.warehouse.ingest import (
    IngestReport,
    ingest_jsonl,
    ingest_records,
)
from repro.warehouse.repeat import repeat_experiment, repeat_runspec
from repro.warehouse.report import (
    render_compare,
    render_provenance,
    render_table,
)
from repro.warehouse.stats import (
    Summary,
    WelchResult,
    bootstrap_ci,
    noise_band,
    summarize,
    welch_t,
)
from repro.warehouse.table import (
    KEY_COLUMNS,
    TABLE_SCHEMA,
    RunTable,
    concat,
    is_metric_column,
    metric_column,
)

__all__ = [
    "DEFAULT_TRACKED",
    "GateConfig",
    "GateReport",
    "GateVerdict",
    "gate",
    "metric_direction",
    "IngestReport",
    "ingest_jsonl",
    "ingest_records",
    "repeat_experiment",
    "repeat_runspec",
    "render_compare",
    "render_provenance",
    "render_table",
    "Summary",
    "WelchResult",
    "bootstrap_ci",
    "noise_band",
    "summarize",
    "welch_t",
    "KEY_COLUMNS",
    "TABLE_SCHEMA",
    "RunTable",
    "concat",
    "is_metric_column",
    "metric_column",
]
