"""Render run-tables and comparisons as text reports.

``report`` gives per-benchmark × per-metric summary tables with 95 %
CIs (the repetition-and-CI discipline the one-shot figures lacked);
``compare`` judges two tables arm against arm with Welch's t-test.
Span/histogram percentile columns (``h:*.p50`` ...) ride along as
ordinary metrics, so span-level p50/p99 across repetitions fall out of
the same machinery.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.utils.report import Table
from repro.warehouse import stats
from repro.warehouse.table import RunTable


def _select_metrics(
    table: RunTable, metrics: Optional[Sequence[str]], spans: bool
) -> List[str]:
    names = list(metrics) if metrics else table.metric_names()
    if not spans and not metrics:
        names = [
            n for n in names if not n.startswith(("span:", "h:"))
        ]
    return names


def render_table(
    table: RunTable,
    benchmark: Optional[str] = None,
    metrics: Optional[Sequence[str]] = None,
    confidence: float = 0.95,
    spans: bool = False,
) -> str:
    """Per-metric summary (mean, median, CI, spread) per benchmark.

    By default the span/histogram detail columns are folded away; pass
    ``spans=True`` (CLI ``--spans``) for the span-level percentiles.
    """
    benches = [benchmark] if benchmark else table.benchmarks()
    names = _select_metrics(table, metrics, spans)
    out = []
    for bench in benches:
        nrows = sum(
            1 for b in table.columns.get("benchmark", []) if b == bench
        )
        sub_rows = Table(
            [
                "metric",
                "n",
                "mean",
                "median",
                f"ci{int(confidence * 100)}",
                "min",
                "max",
                "noise_%",
            ],
            title=f"{bench} — {nrows} row(s)",
        )
        shown = 0
        for metric in names:
            values = table.values(metric, benchmark=bench)
            if not values:
                continue
            s = stats.summarize(values, confidence)
            sub_rows.add_row(
                [
                    metric,
                    s.n,
                    f"{s.mean:.6g}",
                    f"{s.median:.6g}",
                    f"±{s.ci_halfwidth:.3g}",
                    f"{s.minimum:.6g}",
                    f"{s.maximum:.6g}",
                    f"{s.rel_noise * 100:.2f}",
                ]
            )
            shown += 1
        if shown:
            out.append(sub_rows.render())
    if not out:
        return "(empty run-table — nothing to report)"
    return "\n\n".join(out)


def render_provenance(table: RunTable) -> str:
    """One-line provenance summary: SHAs, machines, scale profiles."""

    def distinct(col: str) -> List[str]:
        seen = {}
        for v in table.columns.get(col, []):
            if v is not None:
                seen.setdefault(str(v), None)
        return list(seen)

    shas = [s[:10] for s in distinct("git_sha")]
    return (
        f"rows={len(table)} benchmarks={distinct('benchmark')} "
        f"sha={shas} machine={distinct('machine')} "
        f"profile={distinct('scale_profile')}"
    )


def render_compare(
    a: RunTable,
    b: RunTable,
    metrics: Optional[Sequence[str]] = None,
    confidence: float = 0.95,
    alpha: float = 0.05,
    label_a: str = "A",
    label_b: str = "B",
) -> str:
    """A vs B per shared benchmark × metric, with Welch's t-test.

    Unlike :func:`repro.warehouse.gate.gate` this is descriptive (no
    direction judgement, no exit code): it shows the change and whether
    it is statistically distinguishable from noise.
    """
    shared_b = [x for x in a.benchmarks() if x in set(b.benchmarks())]
    names = metrics or sorted(
        set(a.metric_names()) & set(b.metric_names())
    )
    table = Table(
        [
            "benchmark",
            "metric",
            f"{label_a} mean (n)",
            f"{label_b} mean (n)",
            "change_%",
            "p",
            "verdict",
        ],
        title=f"compare {label_a} vs {label_b}",
    )
    rows = 0
    for bench in shared_b:
        for metric in names:
            va = a.values(metric, benchmark=bench)
            vb = b.values(metric, benchmark=bench)
            if not va or not vb:
                continue
            sa = stats.summarize(va, confidence)
            sb = stats.summarize(vb, confidence)
            change = (
                float("nan")
                if sa.mean == 0
                else (sb.mean - sa.mean) / abs(sa.mean) * 100
            )
            if len(va) >= 2 and len(vb) >= 2:
                p = stats.welch_t(va, vb).p_value
                verdict = (
                    "different" if p < alpha else "indistinguishable"
                )
                p_txt = f"{p:.3f}"
            else:
                p_txt = "-"
                band = stats.noise_band(va, vb, confidence=confidence)
                verdict = (
                    "beyond band"
                    if abs(change) / 100 > band
                    else "within band"
                )
            table.add_row(
                [
                    bench,
                    metric,
                    f"{sa.mean:.6g} ({sa.n})",
                    f"{sb.mean:.6g} ({sb.n})",
                    f"{change:+.1f}",
                    p_txt,
                    verdict,
                ]
            )
            rows += 1
    if not rows:
        return "(no shared benchmark/metric between the two tables)"
    return table.render()
