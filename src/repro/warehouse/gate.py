"""The CI perf-regression gate.

``gate(baseline, candidate)`` compares two run-tables benchmark by
benchmark, metric by metric, and fails (nonzero CLI exit) when a
tracked metric *worsens* beyond the measured noise band:

* direction-aware — ``seeds_per_s`` dropping is a regression,
  ``epoch_seconds`` dropping is an improvement; metrics with no
  inferable direction are skipped unless explicitly requested;
* noise-aware — the band is the larger of either side's relative
  95 % CI half-width, floored at ``min_drop`` (default 5 %), so a rerun
  of the same SHA passes while a real 20 % throughput drop fails;
* significance-aware — with >= 2 repetitions on both sides the drop
  must also survive Welch's t-test at ``alpha``.

``inject_regression`` is a test hook: it scales the candidate's values
worse by the given fraction before judging, proving end to end that the
gate *would* catch a regression of that size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.warehouse import stats
from repro.warehouse.table import RunTable

#: Metrics the gate tracks when none are requested explicitly.
DEFAULT_TRACKED = (
    "bench:candidates_per_s",
    "bench:data:replan",
    "bench:data:static",
    "epoch.seeds_per_s",
    "elapsed_s",
)

_HIGHER_BETTER_HINTS = (
    "per_s",
    "throughput",
    "candidates",
    "frac",
    "replan",
    "static",
    "healthy",
    "ok",
)
_LOWER_BETTER_HINTS = (
    "seconds",
    "elapsed",
    "latency",
    "time_to",
)


def metric_direction(name: str) -> int:
    """+1 if higher is better, -1 if lower is better, 0 if unknown.

    Checked in order: an explicit throughput-ish hint wins over the
    generic seconds suffix (``candidates_per_s`` ends with ``_s`` too).
    """
    low = name.lower()
    for hint in _HIGHER_BETTER_HINTS:
        if hint in low:
            return +1
    for hint in _LOWER_BETTER_HINTS:
        if hint in low:
            return -1
    # bare seconds suffix (span:*.total_s, elapsed-style *_s totals)
    if low.endswith("_s"):
        return -1
    return 0


@dataclass
class GateVerdict:
    """One benchmark × metric judgement."""

    benchmark: str
    metric: str
    direction: int
    baseline: stats.Summary
    candidate: stats.Summary
    rel_change: float  # signed; negative = worse (direction-adjusted)
    band: float
    p_value: Optional[float]  # None when either side has < 2 reps
    regressed: bool

    @property
    def status(self) -> str:
        if self.regressed:
            return "FAIL"
        if self.rel_change < -self.band:
            return "noise"  # beyond band but not significant
        return "ok"


@dataclass
class GateReport:
    """All verdicts of one gate run."""

    verdicts: List[GateVerdict] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(v.regressed for v in self.verdicts)

    @property
    def failures(self) -> List[GateVerdict]:
        return [v for v in self.verdicts if v.regressed]

    def render(self) -> str:
        from repro.utils.report import Table

        table = Table(
            [
                "benchmark",
                "metric",
                "dir",
                "base mean±ci (n)",
                "cand mean±ci (n)",
                "change_%",
                "band_%",
                "p",
                "status",
            ],
            title="perf-regression gate",
        )
        for v in self.verdicts:
            table.add_row(
                [
                    v.benchmark,
                    v.metric,
                    "+" if v.direction > 0 else "-",
                    f"{v.baseline.mean:.4g}±{v.baseline.ci_halfwidth:.2g}"
                    f" ({v.baseline.n})",
                    f"{v.candidate.mean:.4g}±{v.candidate.ci_halfwidth:.2g}"
                    f" ({v.candidate.n})",
                    f"{v.rel_change * 100:+.1f}",
                    f"{v.band * 100:.1f}",
                    "-" if v.p_value is None else f"{v.p_value:.3f}",
                    v.status,
                ]
            )
        lines = [table.render()]
        if self.skipped:
            lines.append(
                f"  skipped (no direction / missing on one side): "
                f"{', '.join(self.skipped[:8])}"
                + (" ..." if len(self.skipped) > 8 else "")
            )
        lines.append(
            "  verdict: "
            + ("OK — no regression beyond noise" if self.ok
               else f"REGRESSED — {len(self.failures)} metric(s) failed")
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class GateConfig:
    """Gate thresholds (see module docstring)."""

    metrics: Optional[Tuple[str, ...]] = None  # None = DEFAULT_TRACKED
    benchmarks: Optional[Tuple[str, ...]] = None  # None = all shared
    min_drop: float = 0.05
    alpha: float = 0.05
    confidence: float = 0.95
    inject_regression: float = 0.0  # test hook


def _tracked_metrics(
    baseline: RunTable, candidate: RunTable, config: GateConfig
) -> List[str]:
    if config.metrics:
        return list(config.metrics)
    shared = set(baseline.metric_names()) & set(candidate.metric_names())
    return [m for m in DEFAULT_TRACKED if m in shared]


def gate(
    baseline: RunTable,
    candidate: RunTable,
    config: GateConfig = GateConfig(),
) -> GateReport:
    """Judge ``candidate`` against ``baseline`` (see module docstring)."""
    report = GateReport()
    benches = (
        list(config.benchmarks)
        if config.benchmarks
        else [
            b
            for b in candidate.benchmarks()
            if b in set(baseline.benchmarks())
        ]
    )
    metrics = _tracked_metrics(baseline, candidate, config)
    for bench in benches:
        for metric in metrics:
            base_vals = baseline.values(metric, benchmark=bench)
            cand_vals = candidate.values(metric, benchmark=bench)
            if not base_vals or not cand_vals:
                continue
            direction = metric_direction(metric)
            if direction == 0:
                if config.metrics:  # explicitly requested: assume higher
                    direction = +1
                else:
                    report.skipped.append(metric)
                    continue
            if config.inject_regression:
                # worsen the candidate by the injected fraction
                factor = (
                    1.0 - config.inject_regression
                    if direction > 0
                    else 1.0 + config.inject_regression
                )
                cand_vals = [v * factor for v in cand_vals]
            base_sum = stats.summarize(base_vals, config.confidence)
            cand_sum = stats.summarize(cand_vals, config.confidence)
            if base_sum.mean == 0:
                report.skipped.append(f"{metric} (zero baseline)")
                continue
            # signed relative change, negative = worse
            rel = (cand_sum.mean - base_sum.mean) / abs(base_sum.mean)
            rel *= direction
            band = stats.noise_band(
                base_vals,
                cand_vals,
                floor=config.min_drop,
                confidence=config.confidence,
            )
            p_value: Optional[float] = None
            beyond = rel < -band
            regressed = beyond
            if len(base_vals) >= 2 and len(cand_vals) >= 2:
                p_value = stats.welch_t(base_vals, cand_vals).p_value
                regressed = beyond and p_value < config.alpha
            report.verdicts.append(
                GateVerdict(
                    benchmark=bench,
                    metric=metric,
                    direction=direction,
                    baseline=base_sum,
                    candidate=cand_sum,
                    rel_change=rel,
                    band=band,
                    p_value=p_value,
                    regressed=regressed,
                )
            )
    return report
