"""Statistical machinery for the results warehouse.

Repetition discipline for benchmark numbers: summaries with 95 %
confidence intervals (Student-t for small samples, optional bootstrap),
Welch's t-test for comparing two arms/SHAs without assuming equal
variance, and a relative noise band that the regression gate uses to
tell a real throughput drop from LP-solver / scheduling jitter — the
same discipline the mubench replication's STATISTICAL_ANALYSIS_NOTES
applies to its speedup tables.

All inputs are plain sequences of floats (what
:meth:`repro.warehouse.table.RunTable.values` returns).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Descriptive statistics of one metric sample."""

    n: int
    mean: float
    median: float
    stdev: float  # sample standard deviation (ddof=1), 0 for n < 2
    minimum: float
    maximum: float
    ci_lo: float
    ci_hi: float
    confidence: float

    @property
    def ci_halfwidth(self) -> float:
        return (self.ci_hi - self.ci_lo) / 2.0

    @property
    def rel_noise(self) -> float:
        """CI half-width as a fraction of the mean (0 when mean is 0)."""
        if self.mean == 0:
            return 0.0
        return abs(self.ci_halfwidth / self.mean)

    def to_dict(self) -> Dict[str, float]:
        return {
            "n": self.n,
            "mean": self.mean,
            "median": self.median,
            "stdev": self.stdev,
            "min": self.minimum,
            "max": self.maximum,
            "ci_lo": self.ci_lo,
            "ci_hi": self.ci_hi,
            "confidence": self.confidence,
        }


def _t_critical(df: float, confidence: float) -> float:
    """Two-sided Student-t critical value (scipy when available)."""
    try:
        from scipy import stats as sp_stats

        return float(sp_stats.t.ppf(0.5 + confidence / 2.0, df))
    except ImportError:  # pragma: no cover - scipy is a hard dep elsewhere
        # normal approximation fallback
        return 1.959963984540054


def summarize(
    values: Sequence[float], confidence: float = 0.95
) -> Summary:
    """Mean/median/stdev plus a t-based confidence interval.

    With one sample the CI collapses to the point (noise unknown, not
    zero — the gate treats n=1 baselines with an explicit floor).
    """
    if not values:
        raise ValueError("summarize() needs at least one sample")
    arr = np.asarray(list(values), dtype=float)
    n = arr.size
    mean = float(arr.mean())
    if n > 1:
        stdev = float(arr.std(ddof=1))
        half = _t_critical(n - 1, confidence) * stdev / math.sqrt(n)
    else:
        stdev = 0.0
        half = 0.0
    return Summary(
        n=int(n),
        mean=mean,
        median=float(np.median(arr)),
        stdev=stdev,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        ci_lo=mean - half,
        ci_hi=mean + half,
        confidence=confidence,
    )


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int = 0,
) -> tuple:
    """Percentile-bootstrap CI of the mean (deterministic via ``seed``).

    Preferred over the t interval when repetitions are clearly
    non-normal (e.g. bimodal wall times from CPU frequency steps).
    """
    if not values:
        raise ValueError("bootstrap_ci() needs at least one sample")
    arr = np.asarray(list(values), dtype=float)
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_boot, arr.size))
    means = arr[idx].mean(axis=1)
    lo = float(np.quantile(means, (1 - confidence) / 2))
    hi = float(np.quantile(means, 1 - (1 - confidence) / 2))
    return lo, hi


@dataclass(frozen=True)
class WelchResult:
    """Welch's unequal-variance t-test between two samples."""

    t: float
    df: float
    p_value: float  # two-sided
    mean_a: float
    mean_b: float

    @property
    def significant(self) -> bool:
        """Significant at the conventional alpha = 0.05."""
        return self.p_value < 0.05


def welch_t(a: Sequence[float], b: Sequence[float]) -> WelchResult:
    """Welch's t-test (two-sided) for ``mean(a) != mean(b)``.

    Needs >= 2 samples per side; raises otherwise — callers decide how
    to handle single-shot data (the gate falls back to a pure
    threshold).
    """
    xa = np.asarray(list(a), dtype=float)
    xb = np.asarray(list(b), dtype=float)
    if xa.size < 2 or xb.size < 2:
        raise ValueError(
            f"welch_t needs >=2 samples per side (got {xa.size}, {xb.size})"
        )
    va = xa.var(ddof=1) / xa.size
    vb = xb.var(ddof=1) / xb.size
    denom = math.sqrt(va + vb)
    if denom == 0:
        # identical constants on both sides: no evidence of difference
        # unless the means differ exactly (then it is infinite evidence)
        same = float(xa.mean()) == float(xb.mean())
        return WelchResult(
            t=0.0 if same else math.inf,
            df=float(xa.size + xb.size - 2),
            p_value=1.0 if same else 0.0,
            mean_a=float(xa.mean()),
            mean_b=float(xb.mean()),
        )
    t = float((xa.mean() - xb.mean()) / denom)
    df = float(
        (va + vb) ** 2
        / (
            va**2 / (xa.size - 1)
            + vb**2 / (xb.size - 1)
        )
    )
    try:
        from scipy import stats as sp_stats

        p = float(2.0 * sp_stats.t.sf(abs(t), df))
    except ImportError:  # pragma: no cover
        # coarse normal-tail fallback
        p = float(2.0 * (1.0 - 0.5 * (1.0 + math.erf(abs(t) / math.sqrt(2)))))
    return WelchResult(
        t=t, df=df, p_value=p, mean_a=float(xa.mean()), mean_b=float(xb.mean())
    )


def noise_band(
    baseline: Sequence[float],
    candidate: Optional[Sequence[float]] = None,
    floor: float = 0.02,
    confidence: float = 0.95,
) -> float:
    """Relative noise band for a regression decision.

    The band is the larger of either side's relative CI half-width,
    floored at ``floor`` (even a deterministic simulation carries
    LP-solver tie-breaking noise; a 1-sample side carries *unknown*
    noise and gets the floor).  A drop within the band is
    indistinguishable from jitter.
    """
    band = floor
    for side in (baseline, candidate):
        if side:
            band = max(band, summarize(side, confidence).rel_noise)
    return band
