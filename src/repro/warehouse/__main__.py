"""CLI: the results warehouse.

Usage::

    python -m repro.warehouse ingest TABLE.json RUNS.jsonl [MORE...]
    python -m repro.warehouse report TABLE.json [--benchmark B] [--spans]
    python -m repro.warehouse compare BASE.json CAND.json [--metric M]
    python -m repro.warehouse gate --baseline B.json --candidate C.json
    python -m repro.warehouse repeat fig10 -n 3 --quick --out runs.jsonl

``ingest`` maps ``repro.obs/v1`` / ``repro.run/v1`` JSONL (and existing
``repro.table/v1`` tables) into one columnar run-table; ``report``
prints per-metric tables with 95 % CIs; ``compare`` judges two tables
with Welch's t-test; ``gate`` exits nonzero when a tracked benchmark
regressed beyond the measured noise band (the CI perf gate);
``repeat`` re-runs an experiment N times and emits tagged records.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.warehouse.gate import DEFAULT_TRACKED, GateConfig, gate
from repro.warehouse.ingest import ingest_jsonl
from repro.warehouse.report import (
    render_compare,
    render_provenance,
    render_table,
)
from repro.warehouse.table import RunTable


def _cmd_ingest(args) -> int:
    table = RunTable.load(args.table) if args.merge else RunTable()
    table, report = ingest_jsonl(args.inputs, table=table)
    print(report.render())
    if args.strict and report.errors:
        print("ingest --strict: refusing to write with bad lines")
        return 1
    table.save(args.table)
    if args.csv:
        table.to_csv(args.csv)
        print(f"wrote {args.csv}")
    print(f"wrote {args.table} ({len(table)} rows)")
    return 0


def _cmd_report(args) -> int:
    table = RunTable.load(args.table)
    print(render_provenance(table))
    print()
    print(
        render_table(
            table,
            benchmark=args.benchmark,
            metrics=args.metric or None,
            spans=args.spans,
        )
    )
    return 0


def _cmd_compare(args) -> int:
    a = RunTable.load(args.a)
    b = RunTable.load(args.b)
    print(
        render_compare(
            a,
            b,
            metrics=args.metric or None,
            alpha=args.alpha,
            label_a=args.a,
            label_b=args.b,
        )
    )
    return 0


def _cmd_gate(args) -> int:
    baseline = RunTable.load(args.baseline)
    candidate = RunTable.load(args.candidate)
    config = GateConfig(
        metrics=tuple(args.metric) if args.metric else None,
        benchmarks=tuple(args.benchmark) if args.benchmark else None,
        min_drop=args.min_drop,
        alpha=args.alpha,
        inject_regression=args.inject_regression,
    )
    report = gate(baseline, candidate, config)
    print(report.render())
    if not report.verdicts:
        print(
            "gate: no shared tracked metric between baseline and "
            f"candidate (tracked by default: {', '.join(DEFAULT_TRACKED)})"
        )
        return 2
    return 0 if report.ok else 1


def _cmd_repeat(args) -> int:
    from repro import obs
    from repro.warehouse.repeat import repeat_experiment

    records = repeat_experiment(
        args.experiment, repetitions=args.repetitions, quick=args.quick
    )
    for record in records:
        obs.append_jsonl(args.out, record)
    print(
        f"wrote {len(records)} record(s) for {args.experiment} "
        f"to {args.out}"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.warehouse",
        description="Results warehouse: run-tables, CIs, perf gate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("ingest", help="JSONL records -> run-table JSON")
    p.add_argument("table", help="output run-table path (repro.table/v1)")
    p.add_argument("inputs", nargs="+", help="JSONL files/dirs/globs")
    p.add_argument(
        "--merge",
        action="store_true",
        help="merge into an existing table instead of starting fresh",
    )
    p.add_argument("--csv", default=None, help="also export CSV here")
    p.add_argument(
        "--strict",
        action="store_true",
        help="fail (exit 1) if any line was malformed",
    )
    p.set_defaults(fn=_cmd_ingest)

    p = sub.add_parser("report", help="per-metric tables with CIs")
    p.add_argument("table")
    p.add_argument("--benchmark", default=None)
    p.add_argument(
        "--metric", action="append", default=None, metavar="NAME"
    )
    p.add_argument(
        "--spans",
        action="store_true",
        help="include span/histogram percentile columns (h:*, span:*)",
    )
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("compare", help="A vs B with Welch's t-test")
    p.add_argument("a")
    p.add_argument("b")
    p.add_argument(
        "--metric", action="append", default=None, metavar="NAME"
    )
    p.add_argument("--alpha", type=float, default=0.05)
    p.set_defaults(fn=_cmd_compare)

    p = sub.add_parser(
        "gate", help="fail (exit 1) on regression beyond noise"
    )
    p.add_argument("--baseline", required=True)
    p.add_argument("--candidate", required=True)
    p.add_argument(
        "--metric",
        action="append",
        default=None,
        metavar="NAME",
        help=f"tracked metric(s); default: {', '.join(DEFAULT_TRACKED)}",
    )
    p.add_argument(
        "--benchmark", action="append", default=None, metavar="NAME"
    )
    p.add_argument(
        "--min-drop",
        type=float,
        default=0.05,
        help="noise-band floor as a fraction (default 0.05)",
    )
    p.add_argument("--alpha", type=float, default=0.05)
    p.add_argument(
        "--inject-regression",
        type=float,
        default=0.0,
        metavar="FRAC",
        help="test hook: worsen the candidate by FRAC before judging "
        "(a working gate must then fail)",
    )
    p.set_defaults(fn=_cmd_gate)

    p = sub.add_parser(
        "repeat", help="run an experiment N times, emit tagged records"
    )
    p.add_argument("experiment", help="experiment id (see the registry)")
    p.add_argument("-n", "--repetitions", type=int, default=3)
    p.add_argument("--quick", action="store_true")
    p.add_argument("--out", default="runs.jsonl")
    p.set_defaults(fn=_cmd_repeat)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # report | head is a normal way to skim a big table
        return 0


if __name__ == "__main__":
    sys.exit(main())
