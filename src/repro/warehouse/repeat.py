"""Repetition driver: run the same workload N times with derived seeds.

Two entry points:

* :func:`repeat_runspec` — re-execute one frozen
  :class:`~repro.runtime.spec.RunSpec` N times.  Repetition ``r`` runs
  ``spec.with_repetition(r)``: repetition 0 keeps the base seed
  (bit-identical to the one-shot run), later repetitions get seeds
  derived via :func:`repro.utils.rng.derive_seed` so arms stay
  independent but reproducible.
* :func:`repeat_experiment` — re-run a registered experiment id N
  times under telemetry capture.  The figure runners are seed-stable
  by design, so here repetitions measure *wall-time* noise (LP solver,
  scheduling) — exactly the band the regression gate needs.

Both return JSON-ready ``repro.obs/v1`` records tagged with seed,
repetition index, and git SHA, ready for :mod:`repro.warehouse.ingest`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro import obs
from repro.runtime.spec import RunSpec
from repro.runtime.system import GnnSystem, SystemResult


def repeat_runspec(
    system: GnnSystem,
    spec: RunSpec,
    repetitions: int,
    run_id: str = "runspec",
    extra_meta: Optional[Dict[str, object]] = None,
) -> List[Dict[str, object]]:
    """Run ``spec`` ``repetitions`` times; one tagged record per rep.

    Each record's ``derived.bench`` carries the run's scalar outcome
    (throughput, epoch seconds) and its ``config.result`` the full
    ``repro.run/v1`` record, so ingest sees both shapes.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    records = []
    for rep in range(repetitions):
        rep_spec = spec.with_repetition(rep)
        with obs.capture() as tel:
            result = system.run(rep_spec)
        records.append(
            _record_for(
                run_id=run_id,
                telemetry=tel,
                repetition=rep,
                seed=rep_spec.seed,
                result=result,
                extra_meta=extra_meta,
            )
        )
    return records


def repeat_experiment(
    experiment_id: str,
    repetitions: int,
    quick: bool = True,
    runner: Optional[Callable] = None,
    extra_meta: Optional[Dict[str, object]] = None,
) -> List[Dict[str, object]]:
    """Run one registered experiment N times under telemetry capture."""
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    if runner is None:
        from repro.experiments.registry import run_experiment

        def runner(**kw):  # noqa: F811 - default runner
            return run_experiment(experiment_id, **kw)

    records = []
    for rep in range(repetitions):
        with obs.capture() as tel:
            result = runner(quick=quick)
        bench: Dict[str, float] = {}
        data = getattr(result, "data", None)
        if isinstance(data, dict):
            for k, v in data.items():
                if isinstance(v, (int, float)) and not isinstance(v, bool):
                    bench[f"data:{k}"] = float(v)
        elapsed = getattr(result, "elapsed_seconds", None)
        if elapsed is not None:
            bench["experiment_elapsed_s"] = float(elapsed)
        record = obs.build_run_record(
            run_id=experiment_id,
            config={"experiment": experiment_id, "quick": quick},
            telemetry=tel,
            meta=obs.run_metadata(
                seed=0,
                repetition=rep,
                scale_profile="quick" if quick else "full",
                experiment=experiment_id,
                **(extra_meta or {}),
            ),
        )
        if bench:
            record.setdefault("derived", {})["bench"] = bench
        records.append(record)
    return records


def _record_for(
    run_id: str,
    telemetry,
    repetition: int,
    seed,
    result: SystemResult,
    extra_meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    bench: Dict[str, float] = {"ok": 1.0 if result.ok else 0.0}
    if result.ok:
        bench["seeds_per_s"] = float(result.seeds_per_s)
        bench["paper_epoch_seconds"] = float(result.paper_epoch_seconds)
        bench["epoch_seconds"] = float(result.epoch.epoch_seconds)
    record = obs.build_run_record(
        run_id=run_id,
        config={
            "benchmark": run_id,
            "result": result.to_dict(),
        },
        telemetry=telemetry,
        meta=obs.run_metadata(
            seed=seed,
            repetition=repetition,
            dataset=result.dataset,
            **(extra_meta or {}),
        ),
    )
    record.setdefault("derived", {})["bench"] = bench
    return record
