"""JSONL → run-table ingestion.

Reads heterogeneous record streams — ``repro.obs/v1`` telemetry records
(what ``--json-out`` and the benchmark harness emit), ``repro.run/v1``
system-result records, and whole ``repro.table/v1`` tables — and maps
each to run-table rows.  Malformed or unknown-schema lines are
collected, never fatal: a warehouse must survive a truncated line from
a crashed run (exactly the case the ``--json-out`` mid-epoch flush
exists for).

Metric extraction is deliberately flat and prefixed:

* ``elapsed_s`` and scalar ``derived`` stats straight off the record;
* ``bench:<name>`` — the benchmark's primary scalars (the harness puts
  them under ``derived.bench``);
* ``h:<hist>.p50`` / ``.p90`` / ``.p99`` / ``.mean`` — the tracer's
  per-histogram summaries (span-level latency percentiles);
* ``span:<name>.total_s`` — summed duration per span name;
* ``epoch.*`` / ``replan.*`` — ``repro.run/v1`` scalar outcomes;
* ``fabric.*`` — fabric shape (node/link/tier counts, generator seed),
  with the chassis fingerprint promoted into the ``fabric`` key column
  (from the run record's ``fabric`` summary, or from
  ``fabric.<stat>{fabric=<fp>}`` counters on ``repro.obs/v1`` records).
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.warehouse.table import RunTable, TABLE_SCHEMA

OBS_SCHEMA = "repro.obs/v1"
RUN_SCHEMA = "repro.run/v1"

#: Histogram summary fields promoted into metric columns.
_HIST_FIELDS = ("mean", "p50", "p90", "p99")


@dataclass
class IngestReport:
    """What one ingest pass read, skipped, and produced."""

    num_lines: int = 0
    num_rows: int = 0
    by_schema: Dict[str, int] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)

    def note_schema(self, schema: str) -> None:
        self.by_schema[schema] = self.by_schema.get(schema, 0) + 1

    def render(self) -> str:
        lines = [
            f"ingested {self.num_rows} row(s) from {self.num_lines} line(s)"
        ]
        for schema, n in sorted(self.by_schema.items()):
            lines.append(f"  {schema}: {n} record(s)")
        if self.errors:
            lines.append(f"  skipped {len(self.errors)} bad line(s):")
            for err in self.errors[:10]:
                lines.append(f"    {err}")
            if len(self.errors) > 10:
                lines.append(f"    ... and {len(self.errors) - 10} more")
        return "\n".join(lines)


def _scalar(value: object) -> Optional[float]:
    """The float form of a JSON scalar metric (None if not one)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _fabric_from_counters(
    obs_metrics: Dict[str, object]
) -> Tuple[Optional[str], Dict[str, float]]:
    """(fabric fingerprint, fabric.* metrics) from rendered counters.

    Runs on compiled fabrics emit ``fabric.<stat>{fabric=<fingerprint>}``
    counters (see ``GnnSystem._run``); the label becomes the table's
    ``fabric`` key and the values become ``m:fabric.*`` columns.
    """
    from repro.obs.metrics import parse_key

    fingerprint: Optional[str] = None
    metrics: Dict[str, float] = {}
    for rendered, value in (obs_metrics.get("counters") or {}).items():
        name, labels = parse_key(str(rendered))
        if not name.startswith("fabric."):
            continue
        s = _scalar(value)
        if s is not None:
            metrics[name] = s
        for k, v in labels:
            if k == "fabric" and fingerprint is None:
                fingerprint = v
    return fingerprint, metrics


def _machine_label(meta: Dict[str, object]) -> Optional[str]:
    """Short stable machine descriptor from benchmark metadata."""
    spec = meta.get("machine_spec")
    if isinstance(spec, dict):
        proc = spec.get("processor") or spec.get("system") or "?"
        return f"{proc}/{spec.get('cpu_count', '?')}cpu"
    host = meta.get("hostname")
    return str(host) if host is not None else None


def rows_from_obs_record(
    record: Dict[str, object]
) -> Tuple[Dict[str, object], Dict[str, float]]:
    """(keys, metrics) of one ``repro.obs/v1`` record."""
    meta = record.get("meta") or {}
    config = record.get("config") or {}
    keys: Dict[str, object] = {
        "run_id": record.get("run_id"),
        "benchmark": (
            config.get("benchmark")
            or meta.get("experiment")
            or config.get("experiment")
            or record.get("run_id")
        ),
        "git_sha": meta.get("git_sha"),
        "machine": _machine_label(meta),
        "dataset": meta.get("dataset"),
        "scale_profile": meta.get("scale_profile"),
        "seed": meta.get("seed"),
        "repetition": meta.get("repetition", 0),
        "timestamp_unix_s": record.get("timestamp_unix_s"),
        "source_schema": OBS_SCHEMA,
    }
    metrics: Dict[str, float] = {}
    elapsed = _scalar(record.get("elapsed_s"))
    if elapsed is not None:
        metrics["elapsed_s"] = elapsed

    derived = record.get("derived") or {}
    for name, value in derived.items():
        if name == "bench" and isinstance(value, dict):
            for bname, bval in value.items():
                s = _scalar(bval)
                if s is not None:
                    metrics[f"bench:{bname}"] = s
            continue
        s = _scalar(value)
        if s is not None:
            metrics[name] = s

    obs_metrics = record.get("metrics") or {}
    fabric_fp, fabric_metrics = _fabric_from_counters(obs_metrics)
    if fabric_fp is not None:
        keys["fabric"] = fabric_fp
    metrics.update(fabric_metrics)
    for hist_key, stats in (obs_metrics.get("histograms") or {}).items():
        if not isinstance(stats, dict) or not stats.get("count"):
            continue
        for f in _HIST_FIELDS:
            s = _scalar(stats.get(f))
            if s is not None:
                metrics[f"h:{hist_key}.{f}"] = s

    span_totals: Dict[str, float] = {}
    for span in record.get("spans") or []:
        if not isinstance(span, dict):
            continue
        name = span.get("name")
        dur = _scalar(span.get("duration_s"))
        if name and dur is not None:
            span_totals[str(name)] = span_totals.get(str(name), 0.0) + dur
    for name, total in span_totals.items():
        metrics[f"span:{name}.total_s"] = total
    return keys, metrics


def rows_from_run_record(
    record: Dict[str, object]
) -> Tuple[Dict[str, object], Dict[str, float]]:
    """(keys, metrics) of one ``repro.run/v1`` system-result record."""
    keys: Dict[str, object] = {
        "run_id": f"{record.get('system')}/{record.get('dataset')}",
        "benchmark": record.get("system"),
        "git_sha": record.get("git_sha"),
        "machine": record.get("machine"),
        "dataset": record.get("dataset"),
        "scale_profile": None,
        "seed": record.get("seed"),
        "repetition": record.get("repetition", 0),
        "timestamp_unix_s": None,
        "source_schema": RUN_SCHEMA,
    }
    metrics: Dict[str, float] = {"ok": 1.0 if record.get("ok") else 0.0}
    fabric = record.get("fabric")
    if isinstance(fabric, dict):
        keys["fabric"] = fabric.get("fingerprint")
        for name in ("nodes", "links", "tiers"):
            s = _scalar(fabric.get(name))
            if s is not None:
                metrics[f"fabric.{name}"] = s
        s = _scalar(fabric.get("generator_seed"))
        if s is not None:
            metrics["fabric.generator_seed"] = s
    epoch = record.get("epoch") or {}
    for name in (
        "epoch_seconds",
        "paper_epoch_seconds",
        "seeds_per_s",
        "throughput_bytes_per_s",
        "io_seconds",
        "sample_seconds",
        "compute_seconds",
        "sync_seconds",
    ):
        s = _scalar(epoch.get(name))
        if s is not None:
            metrics[f"epoch.{name}"] = s
    replan = record.get("replan") or {}
    for name in ("time_to_recover_s", "migrated_bytes"):
        s = _scalar(replan.get(name))
        if s is not None:
            metrics[f"replan.{name}"] = s
    return keys, metrics


def ingest_records(
    records: Iterable[Dict[str, object]],
    table: Optional[RunTable] = None,
    report: Optional[IngestReport] = None,
) -> Tuple[RunTable, IngestReport]:
    """Map already-parsed records into run-table rows."""
    table = table if table is not None else RunTable()
    report = report if report is not None else IngestReport()
    for record in records:
        schema = record.get("schema") if isinstance(record, dict) else None
        if schema == OBS_SCHEMA:
            keys, metrics = rows_from_obs_record(record)
        elif schema == RUN_SCHEMA:
            keys, metrics = rows_from_run_record(record)
        elif schema == TABLE_SCHEMA:
            try:
                table.merge(RunTable.from_dict(record))
                report.note_schema(schema)
                report.num_rows = len(table)
            except ValueError as err:
                report.errors.append(f"bad table record: {err}")
            continue
        else:
            report.errors.append(f"unknown schema {schema!r}")
            continue
        table.add_row(keys, metrics)
        report.note_schema(str(schema))
        report.num_rows = len(table)
    return table, report


def ingest_jsonl(
    paths: Union[str, Iterable[str]],
    table: Optional[RunTable] = None,
) -> Tuple[RunTable, IngestReport]:
    """Ingest JSONL (or run-table JSON) files into a run-table.

    ``paths`` may contain globs and directories (``*.jsonl`` inside).
    Unreadable files and malformed lines land in the report's
    ``errors``; everything parseable is ingested.
    """
    if isinstance(paths, (str, os.PathLike)):
        paths = [str(paths)]
    table = table if table is not None else RunTable()
    report = IngestReport()
    for path in _expand(paths):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as err:
            report.errors.append(f"{path}: {err}")
            continue
        stripped = text.lstrip()
        if stripped.startswith("{") and '"repro.table/v1"' in stripped[:2000]:
            # a whole-table JSON file (indented, multi-line)
            try:
                record = json.loads(text)
            except json.JSONDecodeError as err:
                report.errors.append(f"{path}: {err}")
                continue
            report.num_lines += 1
            ingest_records([record], table, report)
            continue
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            report.num_lines += 1
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                report.errors.append(f"{path}:{lineno}: {err}")
                continue
            if not isinstance(record, dict):
                report.errors.append(
                    f"{path}:{lineno}: not a JSON object"
                )
                continue
            ingest_records([record], table, report)
    return table, report


def _expand(paths: Iterable[str]) -> List[str]:
    out: List[str] = []
    for p in paths:
        if os.path.isdir(p):
            out.extend(sorted(glob.glob(os.path.join(p, "*.jsonl"))))
            out.extend(sorted(glob.glob(os.path.join(p, "*.json"))))
        elif any(ch in p for ch in "*?["):
            out.extend(sorted(glob.glob(p)))
        else:
            out.append(p)
    return out
