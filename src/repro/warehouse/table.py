"""The columnar run-table (schema ``repro.table/v1``).

One row per run × repetition, keyed on provenance (git SHA, machine,
dataset/scale profile, seed, repetition index) with one ``m:``-prefixed
column per metric — the same shape as ``run_table.csv`` in the mubench
replication's results warehouse.  A :class:`RunTable` is what
``python -m repro.warehouse ingest`` produces from a directory of
``repro.obs/v1`` / ``repro.run/v1`` JSONL records, and what ``report`` /
``compare`` / ``gate`` consume.

The store is deliberately plain: a dict of column name -> list, JSON on
disk, no dataframe dependency.  Columns are dense (every row has every
column, missing values are ``None``) so CSV export and column math stay
one-liners.
"""

from __future__ import annotations

import csv
import json
import time
from typing import Dict, Iterator, List, Optional, Sequence, Union

TABLE_SCHEMA = "repro.table/v1"

#: Provenance columns every row carries (in column order).
KEY_COLUMNS = (
    "run_id",
    "benchmark",
    "git_sha",
    "machine",
    "fabric",
    "dataset",
    "scale_profile",
    "seed",
    "repetition",
    "timestamp_unix_s",
    "source_schema",
)

#: Prefix marking metric (value) columns.
METRIC_PREFIX = "m:"


def metric_column(name: str) -> str:
    """The column name storing metric ``name``."""
    return METRIC_PREFIX + name


def is_metric_column(column: str) -> bool:
    return column.startswith(METRIC_PREFIX)


class RunTable:
    """Columnar store of run×repetition rows.

    >>> t = RunTable()
    >>> t.add_row({"benchmark": "fig10", "seed": 0}, {"seeds_per_s": 1e5})
    >>> t.metric_names()
    ['seeds_per_s']
    """

    def __init__(self) -> None:
        self.columns: Dict[str, List[object]] = {
            k: [] for k in KEY_COLUMNS
        }
        self.created_unix_s = time.time()

    # -- construction ---------------------------------------------------
    def __len__(self) -> int:
        return len(self.columns["run_id"])

    def add_row(
        self,
        keys: Dict[str, object],
        metrics: Dict[str, float],
    ) -> None:
        """Append one run×repetition row.

        ``keys`` may provide any subset of :data:`KEY_COLUMNS` (the rest
        are ``None``); unknown keys raise rather than silently dropping
        provenance.  ``metrics`` maps metric name -> value and creates
        new ``m:`` columns on first sight (back-filled with ``None``).
        """
        unknown = set(keys) - set(KEY_COLUMNS)
        if unknown:
            raise KeyError(
                f"unknown key column(s) {sorted(unknown)}; "
                f"key columns are {list(KEY_COLUMNS)}"
            )
        n = len(self)
        for k in KEY_COLUMNS:
            self.columns[k].append(keys.get(k))
        for name, value in metrics.items():
            col = metric_column(name)
            if col not in self.columns:
                self.columns[col] = [None] * n
            self.columns[col].append(
                None if value is None else float(value)
            )
        # densify columns this row did not touch
        target = n + 1
        for col, values in self.columns.items():
            if len(values) < target:
                values.append(None)

    def merge(self, other: "RunTable") -> "RunTable":
        """Append every row of ``other`` (in place; returns self)."""
        for row in other.rows():
            keys = {k: row.get(k) for k in KEY_COLUMNS}
            metrics = {
                name: row[metric_column(name)]
                for name in other.metric_names()
                if row.get(metric_column(name)) is not None
            }
            self.add_row(keys, metrics)
        return self

    # -- queries --------------------------------------------------------
    def metric_names(self) -> List[str]:
        """All metric names (without the ``m:`` prefix), sorted."""
        return sorted(
            c[len(METRIC_PREFIX):]
            for c in self.columns
            if is_metric_column(c)
        )

    def benchmarks(self) -> List[str]:
        """Distinct non-None benchmark labels, first-seen order."""
        seen: Dict[str, None] = {}
        for b in self.columns["benchmark"]:
            if b is not None:
                seen.setdefault(str(b), None)
        return list(seen)

    def rows(self) -> Iterator[Dict[str, object]]:
        """Row dicts (column name -> value), in insertion order."""
        cols = list(self.columns)
        for i in range(len(self)):
            yield {c: self.columns[c][i] for c in cols}

    def filter(self, **equals: object) -> "RunTable":
        """Rows whose columns equal the given values, as a new table.

        Metric columns may be addressed by bare metric name.
        """
        resolved = {}
        for col, want in equals.items():
            if col not in self.columns and metric_column(col) in self.columns:
                col = metric_column(col)
            if col not in self.columns:
                # no such column: nothing can match
                return RunTable()
            resolved[col] = want
        out = RunTable()
        for row in self.rows():
            if all(row[c] == want for c, want in resolved.items()):
                out.add_row(
                    {k: row[k] for k in KEY_COLUMNS},
                    {
                        name: row[metric_column(name)]
                        for name in self.metric_names()
                        if row.get(metric_column(name)) is not None
                    },
                )
        return out

    def values(
        self, metric: str, benchmark: Optional[str] = None
    ) -> List[float]:
        """Non-None samples of one metric (optionally one benchmark)."""
        col = metric_column(metric)
        if col not in self.columns:
            return []
        out = []
        for i, v in enumerate(self.columns[col]):
            if v is None:
                continue
            if (
                benchmark is not None
                and self.columns["benchmark"][i] != benchmark
            ):
                continue
            out.append(float(v))
        return out

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": TABLE_SCHEMA,
            "created_unix_s": self.created_unix_s,
            "num_rows": len(self),
            "columns": self.columns,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "RunTable":
        schema = record.get("schema")
        if schema != TABLE_SCHEMA:
            raise ValueError(
                f"unsupported run-table schema {schema!r}; "
                f"expected {TABLE_SCHEMA!r}"
            )
        table = cls()
        columns = record.get("columns")
        if not isinstance(columns, dict):
            raise ValueError("run-table record has no 'columns' mapping")
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise ValueError(
                f"ragged run-table columns (lengths {sorted(lengths)})"
            )
        nrows = lengths.pop() if lengths else 0
        table.columns = {k: list(v) for k, v in columns.items()}
        for k in KEY_COLUMNS:  # tolerate older/partial tables
            table.columns.setdefault(k, [None] * nrows)
        if "created_unix_s" in record:
            table.created_unix_s = float(record["created_unix_s"])  # type: ignore
        return table

    def save(self, path: Union[str, "os.PathLike"]) -> None:  # noqa: F821
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: Union[str, "os.PathLike"]) -> "RunTable":  # noqa: F821
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def to_csv(self, path: Union[str, "os.PathLike"]) -> None:  # noqa: F821
        """CSV export (one header row, dense columns)."""
        cols = list(KEY_COLUMNS) + [
            metric_column(m) for m in self.metric_names()
        ]
        with open(path, "w", encoding="utf-8", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(cols)
            for row in self.rows():
                writer.writerow([row.get(c) for c in cols])


def concat(tables: Sequence[RunTable]) -> RunTable:
    """A new table holding every row of ``tables``, in order."""
    out = RunTable()
    for t in tables:
        out.merge(t)
    return out
