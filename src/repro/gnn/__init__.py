"""NumPy GNN substrate: GraphSAGE/GAT layers, models, training loop,
and the analytic GPU compute-cost model."""

from repro.gnn.layers import Block, GATConv, GCNConv, SAGEConv, mean_aggregate
from repro.gnn.models import GNNModel, blocks_from_sample, gat, gcn, graphsage
from repro.gnn.training import (
    Adam,
    EpochStats,
    Trainer,
    accuracy,
    make_planted_labels,
    softmax_cross_entropy,
)
from repro.gnn.costmodel import (
    BatchShape,
    ComputeCostModel,
    allreduce_seconds,
    gat_flops,
    gcn_flops,
    sage_flops,
)

__all__ = [
    "Block",
    "GATConv",
    "GCNConv",
    "SAGEConv",
    "mean_aggregate",
    "GNNModel",
    "blocks_from_sample",
    "gat",
    "gcn",
    "graphsage",
    "Adam",
    "EpochStats",
    "Trainer",
    "accuracy",
    "make_planted_labels",
    "softmax_cross_entropy",
    "BatchShape",
    "ComputeCostModel",
    "allreduce_seconds",
    "gat_flops",
    "gcn_flops",
    "sage_flops",
]
