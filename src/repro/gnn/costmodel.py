"""Analytic GPU compute-time model for GNN training steps.

The epoch-time simulator needs per-batch *compute* durations without
running CUDA.  We count the dominant FLOPs of a sampled-subgraph
forward+backward pass and divide by the GPU's effective throughput
(:attr:`~repro.hardware.specs.GpuSpec.effective_flops` — deliberately
far below peak, since GNN kernels are irregular and memory-bound), plus
a fixed per-batch launch/sync overhead.

The paper's observation that GAT is markedly heavier than GraphSAGE
(Fig. 10's lower GAT throughput) falls out of the attention-edge terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.hardware.specs import GpuSpec
from repro.utils.validation import check_nonnegative, check_positive

#: forward + backward costs roughly 3x the forward matmuls.
_FWD_BWD_FACTOR = 3.0


@dataclass(frozen=True)
class BatchShape:
    """Size summary of one sampled mini-batch on one GPU.

    ``layers`` optionally carries per-GNN-layer work, ordered from the
    first (feature-consuming) layer to the last: ``(dst_nodes, edges)``
    where ``dst_nodes`` are the vertices that layer produces outputs
    for.  When absent, FLOP counting conservatively assumes every layer
    touches all ``num_nodes``/``num_edges`` (a loose upper bound).
    """

    num_nodes: int
    num_edges: int
    layers: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        check_nonnegative("num_nodes", self.num_nodes)
        check_nonnegative("num_edges", self.num_edges)
        for dst, edges in self.layers:
            check_nonnegative("layer dst_nodes", dst)
            check_nonnegative("layer edges", edges)

    def layer_work(self, num_layers: int) -> Tuple[Tuple[int, int], ...]:
        """Per-layer (dst_nodes, edges), padded with the coarse totals."""
        if len(self.layers) == num_layers:
            return self.layers
        return ((self.num_nodes, self.num_edges),) * num_layers

    def scaled(self, factor: float) -> "BatchShape":
        """Scale all node/edge counts (paper-frame conversion)."""
        return BatchShape(
            int(self.num_nodes * factor),
            int(self.num_edges * factor),
            tuple(
                (int(d * factor), int(e * factor)) for d, e in self.layers
            ),
        )


def sage_flops(
    shape: BatchShape,
    in_dim: int,
    hidden_dim: int = 256,
    num_classes: int = 16,
    num_layers: int = 2,
) -> float:
    """Forward FLOPs of a GraphSAGE stack on a sampled subgraph."""
    check_positive("in_dim", in_dim)
    dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [num_classes]
    total = 0.0
    for l, (dst_nodes, edges) in enumerate(shape.layer_work(num_layers)):
        d_in, d_out = dims[l], dims[l + 1]
        # aggregation: one add per edge per input feature
        total += edges * d_in
        # two dense projections (self + neighbour): 2*d_in*d_out MACs each
        total += dst_nodes * 2 * (2 * d_in * d_out)
    return total


def gcn_flops(
    shape: BatchShape,
    in_dim: int,
    hidden_dim: int = 256,
    num_classes: int = 16,
    num_layers: int = 2,
) -> float:
    """Forward FLOPs of a GCN stack (one projection per layer)."""
    check_positive("in_dim", in_dim)
    dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [num_classes]
    total = 0.0
    for l, (dst_nodes, edges) in enumerate(shape.layer_work(num_layers)):
        d_in, d_out = dims[l], dims[l + 1]
        total += edges * d_in            # aggregation
        total += dst_nodes * (2 * d_in * d_out)  # single projection
    return total


def gat_flops(
    shape: BatchShape,
    in_dim: int,
    hidden_dim: int = 64,
    num_heads: int = 8,
    num_classes: int = 16,
    num_layers: int = 2,
) -> float:
    """Forward FLOPs of a GAT stack (projection + per-edge attention)."""
    check_positive("in_dim", in_dim)
    width = hidden_dim * num_heads
    dims = [in_dim] + [width] * (num_layers - 1) + [num_classes]
    total = 0.0
    for l, (dst_nodes, edges) in enumerate(shape.layer_work(num_layers)):
        d_in, d_out = dims[l], dims[l + 1]
        # src and dst projections per layer
        total += 2 * dst_nodes * (2 * d_in * d_out)
        # attention scores + softmax + weighted aggregation per edge
        total += edges * (4 * d_out)
    return total


@dataclass(frozen=True)
class ComputeCostModel:
    """Translates batch shapes into per-batch GPU seconds.

    ``launch_overhead`` covers kernel launches, sampling bookkeeping and
    Python/driver latency per iteration (a few ms on real systems).
    """

    gpu: GpuSpec
    model_name: str  # "graphsage" | "gat"
    in_dim: int
    num_classes: int = 16
    launch_overhead: float = 3e-3

    def __post_init__(self) -> None:
        if self.model_name not in ("graphsage", "gat", "gcn"):
            raise ValueError(f"unknown model {self.model_name!r}")
        check_positive("in_dim", self.in_dim)

    def forward_flops(self, shape: BatchShape) -> float:
        if self.model_name == "graphsage":
            return sage_flops(shape, self.in_dim, num_classes=self.num_classes)
        if self.model_name == "gcn":
            return gcn_flops(shape, self.in_dim, num_classes=self.num_classes)
        return gat_flops(shape, self.in_dim, num_classes=self.num_classes)

    def batch_seconds(self, shape: BatchShape) -> float:
        """Training-step wall time for one mini-batch on one GPU."""
        flops = self.forward_flops(shape) * _FWD_BWD_FACTOR
        return self.launch_overhead + flops / self.gpu.effective_flops

    def sampling_seconds(self, shape: BatchShape) -> float:
        """GPU-side sampling cost: index generation is cheap; dominated
        by random-number generation and gather, ~1 ns/edge effective."""
        return 0.5e-3 + shape.num_edges * 1e-9


def allreduce_seconds(
    param_bytes: float, num_gpus: int, link_bw: float, latency: float = 50e-6
) -> float:
    """Ring all-reduce time for gradient sync (2(n-1)/n data volume)."""
    check_nonnegative("param_bytes", param_bytes)
    check_positive("link_bw", link_bw)
    if num_gpus <= 1:
        return 0.0
    volume = 2.0 * (num_gpus - 1) / num_gpus * param_bytes
    return latency * num_gpus + volume / link_bw
