"""The paper's two GNN models as NumPy layer stacks.

* :func:`graphsage` — hidden dim 256 (paper Section 4.1);
* :func:`gat` — hidden dim 64 with 8 attention heads per layer.

A :class:`GNNModel` consumes a :class:`~repro.sampling.neighbor.MiniBatchSample`
plus a gathered feature matrix, runs layered message passing (hop
``L-1`` block first, seed block last — DGL block order), and exposes a
flat parameter/gradient dict for the optimizer.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

import numpy as np

from repro.gnn.layers import Block, GATConv, GCNConv, SAGEConv
from repro.sampling.neighbor import MiniBatchSample
from repro.utils.rng import SeedLike, ensure_rng

LayerType = Union[SAGEConv, GATConv, GCNConv]


def blocks_from_sample(sample: MiniBatchSample) -> List[Block]:
    """Convert a sampled mini-batch to local-index message blocks.

    All hops share the batch's unique-vertex numbering; block ``l``
    carries hop ``l``'s sampled edges.  Models consume them outermost
    hop first so information flows toward the seeds.
    """
    vocab = sample.unique_vertices
    n = int(vocab.size)
    blocks = []
    for layer in sample.layers:
        src = np.searchsorted(vocab, layer.src)
        dst = np.searchsorted(vocab, layer.dst)
        blocks.append(Block(src, dst, n))
    return blocks


class GNNModel:
    """A stack of message-passing layers with a classifier head."""

    def __init__(self, layers: Sequence[LayerType], name: str) -> None:
        if not layers:
            raise ValueError("model needs at least one layer")
        self.layers = list(layers)
        self.name = name

    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        """Number of message-passing layers."""
        return len(self.layers)

    @property
    def in_dim(self) -> int:
        """Input feature dimension."""
        return self.layers[0].in_dim

    @property
    def out_dim(self) -> int:
        """Output (class-logit) dimension."""
        return self.layers[-1].out_dim

    def parameters(self) -> Dict[str, np.ndarray]:
        """Flat ``{"layerI.name": array}`` view of all parameters."""
        out: Dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for key, val in layer.params.items():
                out[f"layer{i}.{key}"] = val
        return out

    def gradients(self) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for key, val in layer.grads.items():
                out[f"layer{i}.{key}"] = val
        return out

    def set_parameters(self, params: Dict[str, np.ndarray]) -> None:
        for i, layer in enumerate(self.layers):
            for key in layer.params:
                layer.params[key] = params[f"layer{i}.{key}"]

    @property
    def num_parameters(self) -> int:
        """Total trainable parameter count."""
        return sum(p.size for p in self.parameters().values())

    @property
    def parameter_bytes(self) -> int:
        """fp32 model size — what DDP all-reduces each step."""
        return self.num_parameters * 4

    # ------------------------------------------------------------------
    def forward(self, sample: MiniBatchSample, features: np.ndarray) -> np.ndarray:
        """Run message passing; returns logits for *all* local vertices
        (callers slice out the seed rows)."""
        blocks = blocks_from_sample(sample)
        if len(blocks) != len(self.layers):
            raise ValueError(
                f"sample has {len(blocks)} hops but model has "
                f"{len(self.layers)} layers"
            )
        h = features
        # outermost hop first: reversed block order
        for layer, block in zip(self.layers, reversed(blocks)):
            h = layer.forward(block, h)
        return h

    def backward(self, grad_logits: np.ndarray) -> np.ndarray:
        """Backprop through all layers; returns d loss / d features."""
        g = grad_logits
        for layer in reversed(self.layers):
            g = layer.backward(g)
        return g


def graphsage(
    in_dim: int,
    num_classes: int,
    hidden_dim: int = 256,
    num_layers: int = 2,
    seed: SeedLike = None,
) -> GNNModel:
    """GraphSAGE as configured in the paper (hidden 256, 2 hops)."""
    rng = ensure_rng(seed)
    dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [num_classes]
    layers = [
        SAGEConv(dims[i], dims[i + 1], activation=(i < num_layers - 1), seed=rng)
        for i in range(num_layers)
    ]
    return GNNModel(layers, "graphsage")


def gcn(
    in_dim: int,
    num_classes: int,
    hidden_dim: int = 256,
    num_layers: int = 2,
    seed: SeedLike = None,
) -> GNNModel:
    """GCN (paper Section 3.1 lists it as a supported input model)."""
    rng = ensure_rng(seed)
    dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [num_classes]
    layers = [
        GCNConv(dims[i], dims[i + 1], activation=(i < num_layers - 1), seed=rng)
        for i in range(num_layers)
    ]
    return GNNModel(layers, "gcn")


def gat(
    in_dim: int,
    num_classes: int,
    hidden_dim: int = 64,
    num_heads: int = 8,
    num_layers: int = 2,
    seed: SeedLike = None,
) -> GNNModel:
    """GAT as configured in the paper (hidden 64, 8 heads per layer).

    Hidden layers output ``hidden_dim * num_heads`` concatenated
    features; the final layer is single-head onto the classes.
    """
    rng = ensure_rng(seed)
    layers: List[LayerType] = []
    dim = in_dim
    for i in range(num_layers - 1):
        layer = GATConv(
            dim, hidden_dim * num_heads, num_heads=num_heads, seed=rng
        )
        layers.append(layer)
        dim = hidden_dim * num_heads
    layers.append(
        GATConv(dim, num_classes, num_heads=1, activation=False, seed=rng)
    )
    return GNNModel(layers, "gat")
