"""Training loop pieces: loss, Adam, and a single-process trainer.

Used by the runnable examples and the accuracy tests; the *timing* of
large-scale training comes from the simulator, but this module proves
the models actually learn (node classification, the paper's task).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gnn.models import GNNModel
from repro.graphs.csr import CSRGraph
from repro.sampling.batching import iter_seed_batches
from repro.sampling.neighbor import MiniBatchSample, sample_batch
from repro.utils.rng import SeedLike, ensure_rng


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean CE loss and its gradient w.r.t. logits (stable log-sum-exp)."""
    if logits.ndim != 2 or labels.shape != (logits.shape[0],):
        raise ValueError("logits must be (n, C) and labels (n,)")
    n = logits.shape[0]
    shifted = logits - logits.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    logprob = shifted - logsumexp
    loss = float(-logprob[np.arange(n), labels].mean())
    grad = np.exp(logprob)
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy."""
    return float((logits.argmax(axis=1) == labels).mean())


class Adam:
    """Standard Adam over a flat parameter dict (bias-corrected)."""

    def __init__(
        self,
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.t = 0
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}

    def step(
        self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray]
    ) -> Dict[str, np.ndarray]:
        """Return updated parameters (inputs are not mutated)."""
        self.t += 1
        out: Dict[str, np.ndarray] = {}
        for key, p in params.items():
            g = grads.get(key)
            if g is None:
                out[key] = p
                continue
            m = self._m.get(key, np.zeros_like(p))
            v = self._v.get(key, np.zeros_like(p))
            m = self.beta1 * m + (1 - self.beta1) * g
            v = self.beta2 * v + (1 - self.beta2) * g * g
            self._m[key], self._v[key] = m, v
            m_hat = m / (1 - self.beta1**self.t)
            v_hat = v / (1 - self.beta2**self.t)
            out[key] = p - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        return out


@dataclass
class EpochStats:
    """Loss/accuracy trace of one training epoch."""

    losses: List[float] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)

    @property
    def mean_loss(self) -> float:
        """Mean mini-batch loss over the epoch."""
        return float(np.mean(self.losses)) if self.losses else float("nan")

    @property
    def mean_accuracy(self) -> float:
        """Mean mini-batch training accuracy over the epoch."""
        return float(np.mean(self.accuracies)) if self.accuracies else float("nan")


class Trainer:
    """Mini-batch GNN trainer over a CSR graph with dense features.

    Follows the paper's workflow: sample → gather features → forward/
    backward → Adam step.  Single process; the multi-GPU *system* view
    lives in :mod:`repro.runtime`.
    """

    def __init__(
        self,
        model: GNNModel,
        graph: CSRGraph,
        features: np.ndarray,
        labels: np.ndarray,
        fanouts: Tuple[int, ...] = (25, 10),
        lr: float = 1e-3,
        seed: SeedLike = None,
    ) -> None:
        if features.shape[0] != graph.num_vertices:
            raise ValueError("features row count must equal num_vertices")
        if labels.shape != (graph.num_vertices,):
            raise ValueError("labels must be (num_vertices,)")
        if len(fanouts) != model.num_layers:
            raise ValueError("need one fanout per model layer")
        self.model = model
        self.graph = graph
        self.features = features
        self.labels = labels
        self.fanouts = tuple(fanouts)
        self.optimizer = Adam(lr=lr)
        self.rng = ensure_rng(seed)

    def train_step(self, seeds: np.ndarray) -> Tuple[float, float]:
        """One mini-batch step; returns (loss, accuracy)."""
        sample = sample_batch(self.graph, seeds, self.fanouts, seed=self.rng)
        feats = self.features[sample.unique_vertices]
        logits_all = self.model.forward(sample, feats)
        seed_rows = np.searchsorted(sample.unique_vertices, seeds)
        logits = logits_all[seed_rows]
        labels = self.labels[seeds]
        loss, grad_logits = softmax_cross_entropy(logits, labels)
        grad_all = np.zeros_like(logits_all)
        np.add.at(grad_all, seed_rows, grad_logits)
        self.model.backward(grad_all)
        new_params = self.optimizer.step(
            self.model.parameters(), self.model.gradients()
        )
        self.model.set_parameters(new_params)
        return loss, accuracy(logits, labels)

    def train_epoch(self, train_ids: np.ndarray, batch_size: int) -> EpochStats:
        stats = EpochStats()
        for seeds in iter_seed_batches(train_ids, batch_size, seed=self.rng):
            loss, acc = self.train_step(seeds)
            stats.losses.append(loss)
            stats.accuracies.append(acc)
        return stats

    def evaluate(self, ids: np.ndarray, batch_size: int = 256) -> float:
        """Sampled-subgraph accuracy on held-out vertices."""
        correct = 0
        for seeds in iter_seed_batches(ids, batch_size, shuffle=False):
            sample = sample_batch(self.graph, seeds, self.fanouts, seed=self.rng)
            feats = self.features[sample.unique_vertices]
            logits_all = self.model.forward(sample, feats)
            rows = np.searchsorted(sample.unique_vertices, seeds)
            pred = logits_all[rows].argmax(axis=1)
            correct += int((pred == self.labels[seeds]).sum())
        return correct / max(1, len(ids))


def make_planted_labels(
    graph: CSRGraph,
    num_classes: int,
    feature_dim: int,
    noise: float = 0.2,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Synthetic learnable task: class-correlated Gaussian features.

    Each vertex gets a random class; its features are the class mean
    plus noise, so a GNN (or even a linear model) can learn the mapping
    — used to verify end-to-end learning in tests/examples.
    """
    rng = ensure_rng(seed)
    labels = rng.integers(0, num_classes, size=graph.num_vertices)
    means = rng.standard_normal((num_classes, feature_dim))
    feats = means[labels] + noise * rng.standard_normal(
        (graph.num_vertices, feature_dim)
    )
    return feats.astype(np.float64), labels.astype(np.int64)
