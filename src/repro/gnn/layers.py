"""GNN layers in pure NumPy with manual forward/backward.

Implements the two models the paper evaluates:

* :class:`SAGEConv` — GraphSAGE with mean aggregation
  (``h' = ReLU(W_self h + W_neigh mean_{u in N(v)} h_u)``);
* :class:`GATConv` — multi-head graph attention (LeakyReLU scores,
  per-destination softmax, concatenated heads).

Layers operate on a *block*: ``(src, dst)`` index arrays into a local
feature matrix, where edge ``i`` means vertex ``src[i]`` aggregates from
vertex ``dst[i]`` (the sampler's orientation).  Everything is
vectorised via ``np.add.at`` scatter-adds; backward passes are exact
gradients, verified against finite differences in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class Block:
    """A message-passing structure over a local vertex numbering.

    ``src[i]`` (the aggregating vertex) receives a message from
    ``dst[i]`` (its sampled neighbour); both index rows of the feature
    matrix.  ``num_nodes`` is the local vertex count.
    """

    src: np.ndarray
    dst: np.ndarray
    num_nodes: int

    def __post_init__(self) -> None:
        src = np.ascontiguousarray(self.src, dtype=np.int64)
        dst = np.ascontiguousarray(self.dst, dtype=np.int64)
        object.__setattr__(self, "src", src)
        object.__setattr__(self, "dst", dst)
        if src.shape != dst.shape or src.ndim != 1:
            raise ValueError("src/dst must be equal-length 1-D arrays")
        if src.size and (
            min(src.min(), dst.min()) < 0
            or max(src.max(), dst.max()) >= self.num_nodes
        ):
            raise ValueError("block indices out of range")

    @property
    def num_edges(self) -> int:
        """Number of message edges in the block."""
        return int(self.src.size)


def _glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def mean_aggregate(block: Block, h: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Mean of neighbour features per aggregating vertex.

    Returns ``(agg, counts)``; vertices with no sampled neighbours get a
    zero vector (and count 0, guarded to 1 in the divide).
    """
    agg = np.zeros((block.num_nodes, h.shape[1]), dtype=h.dtype)
    np.add.at(agg, block.src, h[block.dst])
    counts = np.bincount(block.src, minlength=block.num_nodes).astype(h.dtype)
    agg /= np.maximum(counts, 1.0)[:, None]
    return agg, counts


class SAGEConv:
    """GraphSAGE convolution with mean aggregator and optional ReLU."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: bool = True,
        seed: SeedLike = None,
    ) -> None:
        rng = ensure_rng(seed)
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self.params: Dict[str, np.ndarray] = {
            "w_self": _glorot(rng, in_dim, out_dim),
            "w_neigh": _glorot(rng, in_dim, out_dim),
            "bias": np.zeros(out_dim),
        }
        self.grads: Dict[str, np.ndarray] = {}
        self._cache: Optional[tuple] = None

    def forward(self, block: Block, h: np.ndarray) -> np.ndarray:
        """Compute the layer's output features for a block."""
        if h.shape != (block.num_nodes, self.in_dim):
            raise ValueError(
                f"expected features {(block.num_nodes, self.in_dim)}, got {h.shape}"
            )
        agg, counts = mean_aggregate(block, h)
        z = h @ self.params["w_self"] + agg @ self.params["w_neigh"]
        z += self.params["bias"]
        out = np.maximum(z, 0.0) if self.activation else z
        self._cache = (block, h, agg, counts, z)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward pass; returns d loss/d input."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        block, h, agg, counts, z = self._cache
        g = grad_out * (z > 0) if self.activation else grad_out.copy()
        self.grads["bias"] = g.sum(axis=0)
        self.grads["w_self"] = h.T @ g
        self.grads["w_neigh"] = agg.T @ g
        grad_h = g @ self.params["w_self"].T
        # gradient through the mean aggregation
        grad_agg = g @ self.params["w_neigh"].T
        grad_agg = grad_agg / np.maximum(counts, 1.0)[:, None]
        np.add.at(grad_h, block.dst, grad_agg[block.src])
        self._cache = None
        return grad_h


class GCNConv:
    """Graph convolution (Kipf & Welling) on sampled blocks.

    ``h'_v = act(W * mean({h_v} + {h_u : u in N(v)}) + b)`` — the
    self-loop-augmented mean is the sampled-subgraph analogue of the
    symmetric-normalised adjacency (degrees are fan-out-bounded, so the
    mean normalisation is what DGL uses for sampled GCN too).
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: bool = True,
        seed: SeedLike = None,
    ) -> None:
        rng = ensure_rng(seed)
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self.params: Dict[str, np.ndarray] = {
            "w": _glorot(rng, in_dim, out_dim),
            "bias": np.zeros(out_dim),
        }
        self.grads: Dict[str, np.ndarray] = {}
        self._cache: Optional[tuple] = None

    def forward(self, block: Block, h: np.ndarray) -> np.ndarray:
        """Compute the layer's output features for a block."""
        if h.shape != (block.num_nodes, self.in_dim):
            raise ValueError(
                f"expected features {(block.num_nodes, self.in_dim)}, got {h.shape}"
            )
        # self-loop-augmented mean: (h_v + sum_u h_u) / (1 + deg_v)
        agg = h.copy()
        np.add.at(agg, block.src, h[block.dst])
        counts = 1.0 + np.bincount(block.src, minlength=block.num_nodes)
        agg /= counts[:, None]
        z = agg @ self.params["w"] + self.params["bias"]
        out = np.maximum(z, 0.0) if self.activation else z
        self._cache = (block, h, agg, counts, z)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward pass; returns d loss/d input."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        block, h, agg, counts, z = self._cache
        g = grad_out * (z > 0) if self.activation else grad_out.copy()
        self.grads["bias"] = g.sum(axis=0)
        self.grads["w"] = agg.T @ g
        grad_agg = (g @ self.params["w"].T) / counts[:, None]
        grad_h = grad_agg.copy()  # self-loop term
        np.add.at(grad_h, block.dst, grad_agg[block.src])
        self._cache = None
        return grad_h


def _segment_softmax(
    scores: np.ndarray, seg: np.ndarray, num_segments: int
) -> np.ndarray:
    """Softmax of ``scores`` within groups given by ``seg`` (any order).

    Numerically stabilised per segment.  ``scores`` may be 2-D
    (edges x heads); segments apply along axis 0.
    """
    if scores.ndim == 1:
        scores = scores[:, None]
    seg_max = np.full((num_segments, scores.shape[1]), -np.inf)
    np.maximum.at(seg_max, seg, scores)
    shifted = scores - seg_max[seg]
    exp = np.exp(shifted)
    seg_sum = np.zeros((num_segments, scores.shape[1]))
    np.add.at(seg_sum, seg, exp)
    return exp / np.maximum(seg_sum[seg], 1e-30)


class GATConv:
    """Multi-head graph attention layer (Velickovic et al.).

    Heads are concatenated (paper: 8 heads, hidden 64 per layer), so
    ``out_dim`` must be divisible by ``num_heads``.  Vertices with no
    sampled in-edges fall back to their own projected features.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        num_heads: int = 8,
        negative_slope: float = 0.2,
        activation: bool = True,
        seed: SeedLike = None,
    ) -> None:
        if out_dim % num_heads:
            raise ValueError("out_dim must be divisible by num_heads")
        rng = ensure_rng(seed)
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.num_heads = num_heads
        self.head_dim = out_dim // num_heads
        self.negative_slope = negative_slope
        self.activation = activation
        self.params: Dict[str, np.ndarray] = {
            "w": _glorot(rng, in_dim, out_dim),
            "attn_src": 0.1 * rng.standard_normal((num_heads, self.head_dim)),
            "attn_dst": 0.1 * rng.standard_normal((num_heads, self.head_dim)),
            "bias": np.zeros(out_dim),
        }
        self.grads: Dict[str, np.ndarray] = {}
        self._cache: Optional[tuple] = None

    # -- forward --------------------------------------------------------
    def forward(self, block: Block, h: np.ndarray) -> np.ndarray:
        """Compute the layer's output features for a block."""
        if h.shape != (block.num_nodes, self.in_dim):
            raise ValueError(
                f"expected features {(block.num_nodes, self.in_dim)}, got {h.shape}"
            )
        n, H, D = block.num_nodes, self.num_heads, self.head_dim
        hw = (h @ self.params["w"]).reshape(n, H, D)
        # per-node attention logits
        a_src = np.einsum("nhd,hd->nh", hw, self.params["attn_src"])
        a_dst = np.einsum("nhd,hd->nh", hw, self.params["attn_dst"])
        e = a_src[block.src] + a_dst[block.dst]  # (E, H)
        e_act = np.where(e > 0, e, self.negative_slope * e)
        alpha = _segment_softmax(e_act, block.src, n)  # (E, H)
        out = np.zeros((n, H, D))
        np.add.at(out, block.src, alpha[:, :, None] * hw[block.dst])
        # isolated vertices keep their own projection (self-fallback)
        has_in = np.zeros(n, dtype=bool)
        has_in[block.src] = True
        out[~has_in] = hw[~has_in]
        out = out.reshape(n, self.out_dim) + self.params["bias"]
        z = out
        final = np.maximum(z, 0.0) if self.activation else z
        self._cache = (block, h, hw, e, e_act, alpha, has_in, z)
        return final

    # -- backward -------------------------------------------------------
    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward pass; returns d loss/d input."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        block, h, hw, e, e_act, alpha, has_in, z = self._cache
        n, H, D = block.num_nodes, self.num_heads, self.head_dim
        g = grad_out * (z > 0) if self.activation else grad_out.copy()
        self.grads["bias"] = g.sum(axis=0)
        g3 = g.reshape(n, H, D)

        grad_hw = np.zeros_like(hw)
        # isolated vertices: out = hw
        grad_hw[~has_in] += g3[~has_in]
        g_agg = g3.copy()
        g_agg[~has_in] = 0.0
        # out[src] += alpha * hw[dst]
        grad_alpha = np.einsum("ehd,ehd->eh", g_agg[block.src], hw[block.dst])
        np.add.at(grad_hw, block.dst, alpha[:, :, None] * g_agg[block.src])
        # softmax backward per segment: d e = alpha * (d alpha - sum alpha d alpha)
        weighted = alpha * grad_alpha
        seg_sum = np.zeros((n, H))
        np.add.at(seg_sum, block.src, weighted)
        grad_e_act = weighted - alpha * seg_sum[block.src]
        grad_e = grad_e_act * np.where(e > 0, 1.0, self.negative_slope)
        # e = a_src[src] + a_dst[dst]
        grad_a_src = np.zeros((n, H))
        grad_a_dst = np.zeros((n, H))
        np.add.at(grad_a_src, block.src, grad_e)
        np.add.at(grad_a_dst, block.dst, grad_e)
        # a_src = einsum(hw, attn_src)
        self.grads["attn_src"] = np.einsum("nhd,nh->hd", hw, grad_a_src)
        self.grads["attn_dst"] = np.einsum("nhd,nh->hd", hw, grad_a_dst)
        grad_hw += grad_a_src[:, :, None] * self.params["attn_src"][None]
        grad_hw += grad_a_dst[:, :, None] * self.params["attn_dst"][None]

        grad_hw2 = grad_hw.reshape(n, self.out_dim)
        self.grads["w"] = h.T @ grad_hw2
        grad_h = grad_hw2 @ self.params["w"].T
        self._cache = None
        return grad_h
