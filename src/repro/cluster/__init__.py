"""Multi-node generalization of Moment (paper Section 5)."""

from repro.cluster.multinode import (
    ClusterBuilder,
    ClusterNode,
    MultiNodeMoment,
    MultiNodePlan,
    namespace_topology,
    node_local_bins,
)

__all__ = [
    "ClusterBuilder",
    "ClusterNode",
    "MultiNodeMoment",
    "MultiNodePlan",
    "namespace_topology",
    "node_local_bins",
]
