"""Multi-node generalization of Moment (paper Section 5, "Generalization
to Multi-node").

The paper sketches the extension: "model the cluster-level communication
topology by treating NICs, GPUs, and SSDs as hardware units connected
via PCIe.  As such, network communication links between NICs on
different machines form the edges of the topology graph...  Then Moment
determines the data traffic distribution and data placement based on
the graphs."  The authors leave it as future work; we implement it:

* :func:`namespace_topology` — clone a single-machine topology with a
  node prefix so several machines can coexist in one graph;
* :class:`ClusterBuilder` — merge per-node topologies, attach one NIC
  per node to its root complex, and join NICs through a network core
  (star topology, the common leaf-spine abstraction);
* :class:`MultiNodeMoment` — run the single-node automatic module per
  machine, then place data globally with DDAK over the union of all
  nodes' bins: remote reads transparently route PCIe -> NIC -> network
  -> NIC -> PCIe in the same flow model, so "prioritising local
  SSD/memory access" (the paper's mitigation) is exactly what the
  knapsack's traffic targets encode.

The existing epoch simulator runs unmodified on the merged topology —
cross-node fetches are just flows whose paths traverse network links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.ddak import (
    Bin,
    DataPlacement,
    GPU_REPLICATED,
    TIER_GPU,
    ddak_place,
    make_bins,
)
from repro import obs
from repro.core.optimizer import (
    MomentOptimizer,
    OptimizerConfig,
    capacity_plan,
)
from repro.core.placement import Placement
from repro.core.search import ScoredPlacement
from repro.core.topology import Link, LinkKind, Node, NodeKind, Topology
from repro.graphs.datasets import ScaledDataset
from repro.hardware.machines import MachineSpec
from repro.hardware.specs import NIC_100G_BW
from repro.utils.rng import SeedLike
from repro.utils.validation import check_positive


def namespace_topology(topo: Topology, prefix: str) -> Topology:
    """Clone a topology with every node renamed ``{prefix}/{name}``.

    Keeps all kinds, capacities and labels; used to merge several
    machines into one cluster graph without name collisions.
    """
    if not prefix or "/" in prefix:
        raise ValueError(f"invalid node prefix {prefix!r}")
    out = Topology(f"{prefix}/{topo.name}")
    for node in topo.nodes:
        out.add_node(Node(f"{prefix}/{node.name}", node.kind, node.egress_bw))
    for link in topo.links:
        out.add_directed_link(
            Link(
                f"{prefix}/{link.src}",
                f"{prefix}/{link.dst}",
                link.capacity,
                link.kind,
                link.label,
            )
        )
    return out


@dataclass
class ClusterNode:
    """One machine of the cluster: its spec and hardware placement."""

    machine: MachineSpec
    placement: Placement
    name: str = ""


class ClusterBuilder:
    """Merge machines into one cluster-level communication topology."""

    def __init__(
        self,
        nic_bw: float = NIC_100G_BW,
        core_bw: Optional[float] = None,
    ) -> None:
        check_positive("nic_bw", nic_bw)
        self.nic_bw = nic_bw
        #: network-core aggregate per node pair path; None = non-blocking
        self.core_bw = core_bw
        self.nodes: List[ClusterNode] = []

    def add_node(
        self, machine: MachineSpec, placement: Placement, name: str = ""
    ) -> "ClusterBuilder":
        """Append a machine (chainable)."""
        self.nodes.append(
            ClusterNode(machine, placement, name or f"n{len(self.nodes)}")
        )
        return self

    def build(self) -> Topology:
        """The merged topology: nodes, NICs, and a star network core."""
        if not self.nodes:
            raise ValueError("cluster needs at least one node")
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names: {names}")
        cluster = Topology(
            "cluster[" + ",".join(n.machine.name for n in self.nodes) + "]"
        )
        core_capacity = (
            self.core_bw
            if self.core_bw is not None
            else self.nic_bw * len(self.nodes)
        )
        if len(self.nodes) > 1:
            cluster.add("net", NodeKind.SWITCH)
        for node in self.nodes:
            topo = namespace_topology(
                node.machine.build(node.placement), node.name
            )
            for n in topo.nodes:
                cluster.add_node(n)
            for link in topo.links:
                cluster.add_directed_link(link)
            if len(self.nodes) > 1:
                nic = f"{node.name}/nic"
                cluster.add(nic, NodeKind.NIC)
                # NIC hangs off the node's first root complex
                cluster.add_link(
                    nic, f"{node.name}/rc0", self.nic_bw, LinkKind.PCIE,
                    "nic-pcie",
                )
                cluster.add_link(
                    nic, "net", min(self.nic_bw, core_capacity),
                    LinkKind.NETWORK, "uplink",
                )
        cluster.validate()
        return cluster


@dataclass
class MultiNodePlan:
    """Result of the cluster-level co-optimization."""

    topology: Topology
    nodes: List[ClusterNode]
    data_placement: DataPlacement
    #: per-node predicted throughput from the single-node module
    node_throughput: Dict[str, float] = field(default_factory=dict)

    @property
    def num_gpus(self) -> int:
        """Total GPUs across the cluster."""
        return len(self.topology.gpus())


class MultiNodeMoment:
    """Moment's automatic module lifted to a cluster.

    Per node, the regular single-machine optimizer picks a hardware
    placement.  Then a single global DDAK run places every vertex in
    exactly one bin across the whole cluster — GPU caches stay
    node-local (replicated per node), CPU/SSD bins are shared, and
    DDAK's traffic targets make remote (NIC-crossing) bins absorb only
    what the network can actually deliver.
    """

    def __init__(
        self,
        machines: Sequence[MachineSpec],
        num_gpus_per_node: int = 4,
        num_ssds_per_node: int = 8,
        nic_bw: float = NIC_100G_BW,
        config: Optional[OptimizerConfig] = None,
        seed: SeedLike = 0,
    ) -> None:
        if not machines:
            raise ValueError("need at least one machine")
        self.machines = list(machines)
        self.num_gpus_per_node = num_gpus_per_node
        self.num_ssds_per_node = num_ssds_per_node
        self.nic_bw = nic_bw
        self.config = config or OptimizerConfig()
        self.seed = seed

    def optimize(self, dataset) -> MultiNodePlan:
        """Co-optimize the cluster for ``dataset``.

        Also accepts a :class:`~repro.RunSpec` (only its ``dataset``
        and ``hotness`` fields apply at cluster level — per-node GPU
        and SSD counts are fixed by the constructor).
        """
        from repro.runtime.spec import RunSpec

        preset_hotness = None
        if isinstance(dataset, RunSpec):
            preset_hotness = dataset.hotness
            dataset = dataset.dataset
        # 1. per-node hardware placement via the shared search engine.
        # Each node issues one SearchRequest (via MomentOptimizer.search,
        # so worker/pruning knobs apply per node); DDAK is *not* run per
        # node — step 2 places data once, globally.
        builder = ClusterBuilder(nic_bw=self.nic_bw)
        node_throughput: Dict[str, float] = {}
        hotness = preset_hotness
        winners: List[ScoredPlacement] = []
        for i, machine in enumerate(self.machines):
            optimizer = MomentOptimizer(
                machine,
                self.num_gpus_per_node,
                self.num_ssds_per_node,
                self.config,
            )
            if hotness is None:
                hotness = optimizer.estimate_hotness(dataset)
            with obs.span(
                "cluster.node_search", node=f"n{i}", machine=machine.name
            ):
                result = optimizer.search(dataset, hotness)
            winners.append(result.best)
            builder.add_node(machine, result.best.placement, name=f"n{i}")
            node_throughput[f"n{i}"] = result.best.throughput
        topology = builder.build()

        # 2. global DDAK over the union of all nodes' bins
        bins: List[Bin] = []
        for i, (machine, best) in enumerate(zip(self.machines, winners)):
            cap = capacity_plan(
                machine,
                dataset,
                gpu_cache_fraction=self.config.gpu_cache_fraction,
                cpu_cache_vertex_fraction=(
                    self.config.cpu_cache_vertex_fraction
                ),
            )
            node_topo = namespace_topology(
                machine.build(best.placement), f"n{i}"
            )
            traffic = {
                f"n{i}/{name}": rate
                for name, rate in best.prediction.storage_rate.items()
            }
            node_bins = make_bins(
                node_topo,
                gpu_cache_bytes=cap.gpu_cache_bytes,
                cpu_cache_bytes=cap.cpu_cache_bytes,
                ssd_capacity_bytes=cap.ssd_capacity_bytes,
                traffic=traffic,
            )
            # the replicated-GPU bin must stay node-local: rename it
            for b in node_bins:
                if b.name == GPU_REPLICATED:
                    bins.append(
                        Bin(f"n{i}/{GPU_REPLICATED}", TIER_GPU,
                            b.capacity_bytes, b.traffic)
                    )
                else:
                    bins.append(b)

        data_placement = _global_ddak(
            bins, hotness, dataset.feature_bytes, self.config.ddak_pool_size
        )
        return MultiNodePlan(
            topology=topology,
            nodes=builder.nodes,
            data_placement=data_placement,
            node_throughput=node_throughput,
        )


def _global_ddak(
    bins: List[Bin], hotness: np.ndarray, feature_bytes: int, pool: int
) -> DataPlacement:
    """Cluster-wide DDAK.

    Per-node replicated GPU bins all sit in the top tier; because DDAK
    fills the highest tier first and splits within a tier by traffic
    targets, each node's cache absorbs (its share of) the hottest
    vertices, and the SSD tier spreads the rest cluster-wide.
    """
    return ddak_place(bins, hotness, feature_bytes, pool_size=pool)


def node_local_bins(placement: DataPlacement, node: str) -> List[str]:
    """Bin names belonging to one cluster node (``"n0"``)."""
    return [b.name for b in placement.bins if b.name.startswith(f"{node}/")]
