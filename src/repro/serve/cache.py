"""A thread-safe LRU cache for solved plan payloads.

Deliberately minimal: ``get``/``put``/``clear`` under one lock, LRU
eviction via :class:`collections.OrderedDict` move-to-end.  Hit/miss
accounting lives in :class:`~repro.serve.service.PlanService` (the
cache is consulted twice per request — optimistic fast path, then
re-check under the single-flight lock — and only the service knows
which consultation counts).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Tuple


class PlanCache:
    """Bounded LRU mapping cache keys to solved plan payloads."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()

    def get(self, key: Tuple) -> Optional[object]:
        """The cached payload for ``key`` (refreshes recency), or None."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                return None
            self._entries.move_to_end(key)
            return value

    def put(self, key: Tuple, value: object) -> None:
        """Insert/refresh ``key``, evicting the least-recent entry."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry."""
        with self._lock:
            self._entries.clear()

    def drop_where(self, predicate) -> int:
        """Drop entries whose *key* matches ``predicate``; returns the
        count (used by fingerprint invalidation)."""
        with self._lock:
            doomed = [k for k in self._entries if predicate(k)]
            for key in doomed:
                del self._entries[key]
        return len(doomed)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        with self._lock:
            return key in self._entries
