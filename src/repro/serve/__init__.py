"""repro.serve — the planning service (plans over HTTP).

Turns the library's one-shot solve (``repro.api.run``) into a
long-running service: ``RunSpec``-shaped JSON in, ``MomentPlan`` +
simulated throughput verdict out, under the versioned
:data:`~repro.serve.schema.SERVE_SCHEMA` (``repro.serve/v1``).

Layering (DESIGN.md §5f):

* :mod:`repro.serve.schema` — request parsing + cache-key
  normalization;
* :mod:`repro.serve.cache` — thread-safe LRU plan cache;
* :mod:`repro.serve.planner` — the default solver (rides
  ``repro.api.run`` and the :mod:`repro.core.search` engine);
* :mod:`repro.serve.service` — bounded queue, worker pool,
  single-flight dedup, backpressure/timeout semantics;
* :mod:`repro.serve.http` — stdlib ``ThreadingHTTPServer`` front-end;
* :mod:`repro.serve.loadgen` — seeded open/closed-loop traffic driver.

Start a server with ``python -m repro.serve --port 8421 --workers 2``;
drive it with ``python -m repro.serve.loadgen --url http://...`` (see
docs/API.md for the wire schema and curl-able examples).
"""

from repro.serve.cache import PlanCache
from repro.serve.http import PlanServer, make_server, server_url
from repro.serve.schema import (
    SERVE_SCHEMA,
    DatasetProfile,
    PlanRequest,
    RequestError,
    cache_key,
    parse_request,
)
from repro.serve.service import PlanService, ServeConfig, ServeResponse

__all__ = [
    "SERVE_SCHEMA",
    "DatasetProfile",
    "PlanRequest",
    "RequestError",
    "parse_request",
    "cache_key",
    "PlanCache",
    "PlanService",
    "ServeConfig",
    "ServeResponse",
    "PlanServer",
    "make_server",
    "server_url",
]
