"""repro.serve — the planning service (plans over HTTP).

Turns the library's one-shot solve (``repro.api.run``) into a
long-running service: ``RunSpec``-shaped JSON in, ``MomentPlan`` +
simulated throughput verdict out, under the versioned
:data:`~repro.serve.schema.SERVE_SCHEMA` (``repro.serve/v1.1``;
``repro.serve/v1`` requests still parse).

Layering (DESIGN.md §5f):

* :mod:`repro.serve.schema` — request parsing, cache-key
  normalization, the unified error envelope;
* :mod:`repro.serve.cache` — thread-safe LRU plan cache;
* :mod:`repro.serve.store` — persistent append-only plan store
  (``repro.servecache/v1``) that survives restarts;
* :mod:`repro.serve.planner` — the default solver (rides
  ``repro.api.run`` and the :mod:`repro.core.search` engine), plus the
  process-pool entry points;
* :mod:`repro.serve.service` — job table, bounded queue, worker pool,
  optional solver-process pool, single-flight dedup,
  backpressure/timeout semantics;
* :mod:`repro.serve.http` — stdlib ``ThreadingHTTPServer`` front-end
  (sync ``/v1/plan`` and the async ``/v1/jobs`` API);
* :mod:`repro.serve.loadgen` — seeded open/closed-loop traffic driver.

Start a server with ``python -m repro.serve --port 8421 --workers 2
--solver-processes 4 --cache-path plans.jsonl``; drive it with
``python -m repro.serve.loadgen --url http://...`` (see docs/API.md
for the wire schema and curl-able examples).
"""

from repro.serve.cache import PlanCache
from repro.serve.http import PlanServer, make_server, server_url
from repro.serve.schema import (
    ERROR_CODES,
    SERVE_SCHEMA,
    DatasetProfile,
    PlanRequest,
    RequestError,
    cache_key,
    error_body,
    parse_request,
)
from repro.serve.service import (
    JobState,
    PlanService,
    ServeConfig,
    ServeResponse,
)
from repro.serve.store import PlanStore

__all__ = [
    "SERVE_SCHEMA",
    "ERROR_CODES",
    "DatasetProfile",
    "PlanRequest",
    "RequestError",
    "parse_request",
    "cache_key",
    "error_body",
    "PlanCache",
    "PlanStore",
    "JobState",
    "PlanService",
    "ServeConfig",
    "ServeResponse",
    "PlanServer",
    "make_server",
    "server_url",
]
