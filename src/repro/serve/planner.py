"""The default planner: one request in, one solved payload out.

:func:`solve` is the worker-pool callable — it builds (or reuses) the
request's dataset and machine, runs the Moment optimizer through
``repro.api.run`` (``simulate=True``, the full epoch verdict) or
``MomentSystem.choose_placement`` (``simulate=False``, plan only), and
returns the JSON-ready payload the cache stores and the HTTP layer
ships.  The solve rides the existing :mod:`repro.core.search` engine,
so ``REPRO_SEARCH_WORKERS`` / ``--search-workers`` fan each LP scoring
pass onto the engine's :class:`~repro.core.search.ParallelExecutor`
process pool exactly as offline runs do.

Machines and built datasets are memoized process-wide (both are
immutable once built): machine resolution keys on the registry name or
the canonical JSON of an inline fabric, datasets on their
:meth:`~repro.serve.schema.DatasetProfile.normalized` recipe.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Callable, Dict, Optional

from repro.serve.cache import PlanCache
from repro.serve.schema import (
    SERVE_SCHEMA,
    TINY_KEY,
    DatasetProfile,
    PlanRequest,
    RequestError,
)

#: Built datasets are a few MB each; keep a handful.
_DATASET_CACHE = PlanCache(capacity=8)
_MACHINE_CACHE: Dict[str, object] = {}
_MACHINE_LOCK = threading.Lock()


def resolve_machine(request: PlanRequest):
    """The compiled :class:`~repro.hardware.machines.MachineSpec` a
    request names (memoized; :class:`RequestError` on bad identities).

    Only registry names (``machine_a``, aliases, ``gen:<seed>``) and
    inline fabric payloads are served — path-shaped names are rejected
    so a request can never make the server read its own filesystem.
    """
    if request.machine is not None:
        name = request.machine
        if "/" in name or "\\" in name or name.endswith(".json"):
            raise RequestError(
                f"machine {name!r} looks like a file path; the server "
                "resolves registry names only (send the spec inline via "
                "'fabric' instead)",
                field="machine",
            )
        cache_id = f"name:{name}"
    else:
        cache_id = "fabric:" + json.dumps(request.fabric, sort_keys=True)
    with _MACHINE_LOCK:
        machine = _MACHINE_CACHE.get(cache_id)
    if machine is not None:
        return machine
    try:
        if request.machine is not None:
            from repro.hardware.registry import get_machine

            machine = get_machine(request.machine)
        else:
            from repro.hardware.fabric import FabricSpec, compile_fabric

            machine = compile_fabric(FabricSpec.from_dict(request.fabric))
    except (KeyError, ValueError, TypeError) as err:
        field = "machine" if request.machine is not None else "fabric"
        raise RequestError(str(err), field=field) from err
    with _MACHINE_LOCK:
        _MACHINE_CACHE[cache_id] = machine
    return machine


def build_dataset(profile: DatasetProfile):
    """Build (or reuse) the :class:`ScaledDataset` a profile describes."""
    key = profile.normalized()
    dataset = _DATASET_CACHE.get(key)
    if dataset is not None:
        return dataset
    if profile.key == TINY_KEY:
        from repro.graphs.datasets import tiny_dataset

        dataset = tiny_dataset(
            num_vertices=profile.num_vertices,
            avg_degree=profile.avg_degree,
            seed=profile.seed,
            feature_dim=(
                profile.feature_dim if profile.feature_dim is not None else 32
            ),
            batch_size=profile.batch_size,
            skew_exponent=profile.skew_exponent,
        )
    else:
        from repro.graphs.datasets import get_dataset

        dataset = get_dataset(profile.key).build(
            scale=profile.scale,
            seed=profile.seed,
            feature_dim=profile.feature_dim,
        )
    _DATASET_CACHE.put(key, dataset)
    return dataset


def _plan_payload(plan) -> Optional[Dict]:
    """JSON-ready summary of a :class:`~repro.core.optimizer.MomentPlan`."""
    if plan is None:
        return None
    payload = {
        "placement": list(plan.placement.as_tuple()),
        "predicted_throughput": float(plan.predicted_throughput),
        "fractions": {
            "gpu": float(plan.fractions[0]),
            "cpu": float(plan.fractions[1]),
            "ssd": float(plan.fractions[2]),
        },
        "num_candidates": int(plan.num_candidates),
        "num_unique": int(plan.num_unique),
        "optimize_seconds": float(plan.optimize_seconds),
    }
    if plan.search is not None:
        s = plan.search
        payload["search"] = {
            "workers": int(s.workers),
            "num_lp_scored": int(s.num_lp_scored),
            "pruned_by_bound": int(s.pruned_by_bound),
            "cache_hits": int(s.cache_hits),
        }
    return payload


def run_planner(
    planner: Callable[[PlanRequest, object], Dict], request: PlanRequest
) -> Dict:
    """Process-pool entry point: resolve the machine in *this* process
    and run ``planner``.

    Submitted by :class:`~repro.serve.service.PlanService` when solver
    processes are configured — the request travels by pickle (it is a
    frozen dataclass of plain values), the machine is re-resolved
    against the child's own memoized caches (cheaper than pickling a
    compiled chassis per solve), and the payload comes back tagged with
    the solver PID so callers can verify which process solved.
    """
    machine = resolve_machine(request)
    payload = planner(request, machine)
    if isinstance(payload, dict):
        payload.setdefault("solver", {})["pid"] = os.getpid()
    return payload


def warm_process() -> int:
    """Pre-import the heavy solve dependencies in a pool worker.

    Submitted once per solver process at service start so the first
    real solve does not pay the numpy/scipy/engine import bill; returns
    the worker's PID (the caller counts distinct PIDs).
    """
    import numpy  # noqa: F401

    from repro.api import run  # noqa: F401
    from repro.runtime.system import MomentSystem  # noqa: F401

    return os.getpid()


def solve(request: PlanRequest, machine=None) -> Dict:
    """Solve one planning request into its cacheable response payload.

    The payload carries the plan summary, the throughput verdict, and
    (for simulated runs) the full ``repro.run/v1`` record — everything
    request-independent; per-request timing and cache labels are added
    by the service.
    """
    if machine is None:
        machine = resolve_machine(request)
    dataset = build_dataset(request.dataset)

    from repro.runtime.system import MomentSystem

    system = MomentSystem(
        machine,
        gpu_cache_fraction=request.gpu_cache_fraction,
        cpu_cache_vertex_fraction=request.cpu_cache_vertex_fraction,
    )

    if not request.simulate:
        # Plan-only: the same choose_placement path a full run takes,
        # with the same per-run seed override, minus the epoch.
        system.seed = request.seed
        placement, plan = system.choose_placement(
            dataset, None, request.num_gpus, request.num_ssds, None
        )
        return {
            "schema": SERVE_SCHEMA,
            "plan": _plan_payload(plan),
            "verdict": {
                "ok": True,
                "oom": None,
                "predicted_throughput": float(plan.predicted_throughput),
            },
            "result": None,
        }

    from repro.api import run as api_run
    from repro.runtime.spec import RunSpec

    spec = RunSpec(
        dataset=dataset,
        model=request.model,
        num_gpus=request.num_gpus,
        num_ssds=request.num_ssds,
        fanouts=request.fanouts,
        sample_batches=request.sample_batches,
        seed=request.seed,
    )
    result = api_run(system, spec)
    verdict = {
        "ok": bool(result.ok),
        "oom": result.oom,
        "predicted_throughput": (
            float(result.plan.predicted_throughput)
            if result.plan is not None
            else None
        ),
    }
    if result.ok:
        verdict.update(
            paper_epoch_seconds=float(result.paper_epoch_seconds),
            seeds_per_s=float(result.seeds_per_s),
            throughput_bytes_per_s=float(
                result.epoch.throughput_bytes_per_s
            ),
        )
    return {
        "schema": SERVE_SCHEMA,
        "plan": _plan_payload(result.plan),
        "verdict": verdict,
        "result": result.to_dict(),
    }
