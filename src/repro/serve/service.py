"""The plan service: bounded queue → worker pool → LRU plan cache.

:class:`PlanService` is the transport-independent core of
``repro.serve`` — the HTTP layer, the tests, and the load generator's
in-process mode all call :meth:`PlanService.handle` with a parsed JSON
payload and get back a :class:`ServeResponse` (status, body, headers).

Request lifecycle (DESIGN.md §5f):

1. parse + resolve hardware (failures → 400 with a structured body);
2. optimistic cache probe — hits return immediately, no queue;
3. under the single-flight lock: join an identical in-flight solve as
   a *follower*, or enqueue a new job (queue full → 429 with a
   ``Retry-After`` estimate from the EWMA solve time);
4. wait on the job with the request's deadline (expiry → 504; the
   solve itself is not killed — a finished late solve still seeds the
   cache);
5. workers drop jobs whose deadline passed while queued (graceful
   cancellation: nobody is waiting beyond the deadline, so the LP is
   never started).

All ``serve.*`` telemetry and the local stats mirror are updated under
one lock, so the counters stay exact no matter how many request
threads race (the obs registry itself is not thread-safe).
"""

from __future__ import annotations

import math
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro import obs
from repro.serve import planner as default_planner_module
from repro.serve.cache import PlanCache
from repro.serve.schema import (
    SERVE_SCHEMA,
    PlanRequest,
    RequestError,
    cache_key,
    error_body,
    parse_request,
)


@dataclass
class ServeConfig:
    """Operational knobs of one :class:`PlanService`."""

    #: Solver threads (each solve may additionally fan onto the search
    #: engine's process pool — see ``search_workers``).
    workers: int = 2
    #: Bounded request queue; ``put`` beyond this returns 429.
    queue_size: int = 16
    #: LRU plan-cache entries.
    cache_size: int = 64
    #: Applied when a request carries no ``timeout_s``.
    default_timeout_s: float = 30.0
    #: Hard ceiling on any request's effective timeout.
    max_timeout_s: float = 300.0


@dataclass
class ServeResponse:
    """One transport-ready response: HTTP status, JSON body, headers."""

    status: int
    body: Dict[str, object]
    headers: Dict[str, str] = field(default_factory=dict)


class _Job:
    """One queued solve shared by its leader and any followers."""

    __slots__ = (
        "key",
        "request",
        "machine",
        "deadline",
        "done",
        "payload",
        "error",
        "enqueued_at",
        "solve_s",
        "queued_s",
    )

    def __init__(self, key, request, machine, deadline: float) -> None:
        self.key = key
        self.request = request
        self.machine = machine
        self.deadline = deadline
        self.done = threading.Event()
        self.payload: Optional[Dict] = None
        #: (kind, message) — kind "timeout" maps to 504, else 500.
        self.error: Optional[Tuple[str, str]] = None
        self.enqueued_at = time.perf_counter()
        self.solve_s: Optional[float] = None
        self.queued_s: Optional[float] = None


_STOP = object()


class PlanService:
    """Thread-safe planning core: queue, workers, cache, single-flight.

    ``planner`` is injectable — ``(PlanRequest, MachineSpec) -> payload
    dict`` — so tests can substitute deterministic or deliberately slow
    solvers; the default is :func:`repro.serve.planner.solve`.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        planner: Optional[Callable[[PlanRequest, object], Dict]] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.planner = planner or default_planner_module.solve
        self.cache = PlanCache(self.config.cache_size)
        self._queue: "queue.Queue" = queue.Queue(
            maxsize=self.config.queue_size
        )
        self._inflight: Dict[Tuple, _Job] = {}
        self._flight_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._threads = []
        self._started = False
        self._ewma_solve_s: Optional[float] = None
        self.stats: Dict[str, int] = {
            "requests": 0,
            "ok": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "single_flight": 0,
            "bad_requests": 0,
            "rejected": 0,
            "timeouts": 0,
            "cancelled": 0,
            "errors": 0,
        }

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "PlanService":
        """Spawn the worker pool (idempotent)."""
        if self._started:
            return self
        self._started = True
        for i in range(self.config.workers):
            t = threading.Thread(
                target=self._worker, name=f"serve-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the workers (queued jobs are failed, not solved)."""
        if not self._started:
            return
        self._started = False
        for _ in self._threads:
            self._queue.put(_STOP)
        for t in self._threads:
            t.join(timeout=timeout)
        self._threads = []
        # fail anything still queued so no waiter hangs
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is not _STOP:
                job.error = ("internal", "service stopped")
                job.done.set()

    def __enter__(self) -> "PlanService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- bookkeeping (stats mirror + obs under one lock) -----------------
    def _count(self, stat: str, metric: Optional[str] = None, **labels) -> None:
        with self._stats_lock:
            self.stats[stat] += 1
            if metric is not None:
                obs.add(metric, 1, **labels)

    def _finish(
        self, started: float, outcome: str, status: int, **span_attrs
    ) -> None:
        """Per-request latency sample + span, under the stats lock."""
        now = time.perf_counter()
        with self._stats_lock:
            obs.observe("serve.latency", now - started, outcome=outcome)
            obs.record_span(
                "serve.request",
                started,
                now,
                outcome=outcome,
                status=status,
                **span_attrs,
            )

    def _set_queue_gauge(self) -> None:
        with self._stats_lock:
            obs.set_gauge("serve.queue_depth", self._queue.qsize())

    def metrics_snapshot(self) -> Dict[str, object]:
        """Point-in-time service state (the ``/v1/metrics`` body)."""
        with self._stats_lock:
            out: Dict[str, object] = dict(self.stats)
            ewma = self._ewma_solve_s
        out.update(
            queue_depth=self._queue.qsize(),
            queue_capacity=self.config.queue_size,
            inflight=len(self._inflight),
            cache_entries=len(self.cache),
            cache_capacity=self.cache.capacity,
            workers=self.config.workers,
            ewma_solve_s=ewma,
        )
        return out

    def retry_after_s(self) -> int:
        """Whole-second backoff hint for a 429 (queue drain estimate)."""
        with self._stats_lock:
            ewma = self._ewma_solve_s or 1.0
        depth = self._queue.qsize() + 1
        return max(1, int(math.ceil(depth * ewma / self.config.workers)))

    # -- request path ----------------------------------------------------
    def handle(self, payload: object) -> ServeResponse:
        """Serve one parsed-JSON planning request end to end."""
        started = time.perf_counter()
        self._count("requests", "serve.requests")
        try:
            request = parse_request(payload)
            machine = default_planner_module.resolve_machine(request)
        except RequestError as err:
            self._count("bad_requests", "serve.bad_requests")
            self._finish(started, "bad_request", 400)
            return ServeResponse(400, err.to_body())
        key = cache_key(request, machine)

        hit = self.cache.get(key)
        if hit is not None:
            return self._respond_hit(started, hit, "hit")

        timeout = min(
            request.timeout_s or self.config.default_timeout_s,
            self.config.max_timeout_s,
        )
        deadline = started + timeout

        with self._flight_lock:
            job = self._inflight.get(key)
            if job is not None:
                follower = True
            else:
                # lost race: a worker may have cached between our probe
                # and taking the lock — a fresh solve would be wasted
                hit = self.cache.get(key)
                if hit is not None:
                    job = None
                else:
                    job = _Job(key, request, machine, deadline)
                    try:
                        self._queue.put_nowait(job)
                    except queue.Full:
                        self._count("rejected", "serve.rejected")
                        self._finish(started, "rejected", 429)
                        retry = self.retry_after_s()
                        return ServeResponse(
                            429,
                            error_body(
                                "queue_full",
                                "request queue is full; retry later",
                            ),
                            headers={"Retry-After": str(retry)},
                        )
                    self._inflight[key] = job
                    follower = False
        if job is None:
            return self._respond_hit(started, hit, "hit")
        if follower:
            self._count("single_flight", "serve.cache.single_flight")
        self._set_queue_gauge()

        remaining = deadline - time.perf_counter()
        finished = job.done.wait(timeout=max(0.0, remaining))
        if not finished:
            self._count("timeouts", "serve.timeouts")
            self._finish(started, "timeout", 504)
            return ServeResponse(
                504,
                error_body(
                    "timeout",
                    f"request did not complete within {timeout:.3f}s",
                ),
            )
        if job.error is not None:
            kind, message = job.error
            if kind == "timeout":
                self._count("timeouts", "serve.timeouts")
                self._finish(started, "timeout", 504)
                return ServeResponse(504, error_body("timeout", message))
            self._count("errors", "serve.errors")
            self._finish(started, "error", 500)
            return ServeResponse(500, error_body("internal", message))

        outcome = "single_flight" if follower else "miss"
        if not follower:
            self._count("cache_misses", "serve.cache.miss")
        self._count("ok")
        self._finish(started, outcome, 200, solve_s=job.solve_s)
        return ServeResponse(
            200,
            self._body(job.payload, outcome, started, job),
        )

    def _respond_hit(
        self, started: float, payload: Dict, outcome: str
    ) -> ServeResponse:
        self._count("cache_hits", "serve.cache.hit")
        self._count("ok")
        self._finish(started, outcome, 200)
        return ServeResponse(200, self._body(payload, outcome, started))

    @staticmethod
    def _body(
        payload: Dict,
        outcome: str,
        started: float,
        job: Optional[_Job] = None,
    ) -> Dict[str, object]:
        body = dict(payload)
        body["schema"] = SERVE_SCHEMA
        body["cache"] = outcome
        timing: Dict[str, object] = {
            "total_s": time.perf_counter() - started
        }
        if job is not None:
            timing["solve_s"] = job.solve_s
            timing["queued_s"] = job.queued_s
        body["timing"] = timing
        return body

    # -- worker pool -----------------------------------------------------
    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is _STOP:
                return
            self._set_queue_gauge()
            now = time.perf_counter()
            job.queued_s = now - job.enqueued_at
            if now >= job.deadline:
                # graceful cancellation: every waiter's deadline passed
                # while the job sat queued — don't start the LP at all
                job.error = (
                    "timeout",
                    "deadline expired before a worker was free",
                )
                self._count("cancelled", "serve.cancelled")
            else:
                t0 = now
                try:
                    payload = self.planner(job.request, job.machine)
                    job.solve_s = time.perf_counter() - t0
                    self.cache.put(job.key, payload)
                    job.payload = payload
                    with self._stats_lock:
                        obs.observe("serve.solve_s", job.solve_s)
                        prev = self._ewma_solve_s
                        self._ewma_solve_s = (
                            job.solve_s
                            if prev is None
                            else 0.7 * prev + 0.3 * job.solve_s
                        )
                except Exception as err:  # solver bugs must not kill workers
                    job.error = (
                        "internal", f"{type(err).__name__}: {err}"
                    )
            with self._flight_lock:
                self._inflight.pop(job.key, None)
            job.done.set()
