"""The plan service: one job table → solver pool → layered plan cache.

:class:`PlanService` is the transport-independent core of
``repro.serve`` — the HTTP layer, the tests, and the load generator's
in-process mode all call :meth:`PlanService.handle` /
:meth:`PlanService.submit_job` / :meth:`PlanService.get_job` with
parsed JSON payloads and get back :class:`ServeResponse` objects
(status, body, headers).

Everything is one job lifecycle (DESIGN.md §5f): a solve is a
:class:`PlanJob` that moves ``queued → running → done | failed |
expired``.  ``POST /v1/jobs`` hands back the job id immediately and
``GET /v1/jobs/<id>`` (optionally long-polling) reads its state;
``POST /v1/plan`` is a *bounded-wait view over the same table* — it
submits (or joins) a job, waits until the request deadline, and on
expiry returns 504 **with the job id in the error detail** so the
client can switch to polling without losing the solve.

Request lifecycle:

1. parse + resolve hardware (failures → 400 with a structured body);
2. optimistic cache probe — LRU hits return immediately; LRU misses
   probe the persistent store (``cache: "disk"``) when one is
   configured, promoting disk hits into the LRU;
3. under the single-flight lock: join an identical in-flight job as a
   *follower* (the job's deadline extends to cover the new waiter), or
   enqueue a new job (queue full → 429 with a ``Retry-After`` estimate
   from the EWMA solve time and the *solver* parallelism);
4. waiters block on the job event with their own deadlines (expiry →
   504; the solve itself is never killed — a finished late solve still
   seeds both cache layers and resolves the job for pollers);
5. workers drop jobs whose deadline passed while queued (state
   ``expired``: every waiter's deadline passed, so the LP is never
   started).

Solves run either on the worker threads themselves (default — fine for
warm traffic and IO-ish planners) or, with
:attr:`ServeConfig.solver_processes` > 0, on a shared
:class:`~concurrent.futures.ProcessPoolExecutor`: the solve path is
GIL-heavy NumPy/LP, so N *cold* solves only run on N cores when they
run in N processes.  The request travels by pickle, the machine is
re-resolved in the child (memoized per process), and payloads are
bit-identical to in-thread solves.

All ``serve.*`` telemetry and the local stats mirror are updated under
one lock, so the counters stay exact no matter how many request
threads race (the obs registry itself is not thread-safe).
"""

from __future__ import annotations

import itertools
import math
import os
import queue
import threading
import time
import uuid
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro import obs
from repro.serve import planner as default_planner_module
from repro.serve.cache import PlanCache
from repro.serve.schema import (
    SERVE_SCHEMA,
    PlanRequest,
    RequestError,
    cache_key,
    error_body,
    parse_request,
)
from repro.serve.store import PlanStore


@dataclass
class ServeConfig:
    """Operational knobs of one :class:`PlanService`."""

    #: Dispatch threads.  Each either solves in-thread (default) or
    #: shepherds a solve on the process pool; when ``solver_processes``
    #: exceeds this, enough extra threads are spawned to keep the pool
    #: fed.
    workers: int = 2
    #: Bounded request queue; ``put`` beyond this returns 429.
    queue_size: int = 16
    #: LRU plan-cache entries.
    cache_size: int = 64
    #: Applied when a request carries no ``timeout_s``.
    default_timeout_s: float = 30.0
    #: Hard ceiling on any request's effective timeout; also the solve
    #: deadline granted to async jobs (``POST /v1/jobs``).
    max_timeout_s: float = 300.0
    #: Solver processes.  0 = solve on the worker threads; N >= 1
    #: routes every solve through a shared N-process pool.
    solver_processes: int = 0
    #: Persistent plan store path (None = memory-only LRU).
    cache_path: Optional[str] = None
    #: Live-entry bound of the persistent store.
    store_max_entries: int = 4096
    #: Terminal jobs stay pollable this long after finishing.
    job_ttl_s: float = 300.0
    #: Job-table bound (terminal jobs are evicted oldest-first beyond
    #: it; live jobs are already bounded by the queue).
    max_jobs: int = 4096
    #: Ceiling on one ``GET /v1/jobs/<id>?wait=`` long-poll.
    long_poll_max_s: float = 60.0


@dataclass
class ServeResponse:
    """One transport-ready response: HTTP status, JSON body, headers."""

    status: int
    body: Dict[str, object]
    headers: Dict[str, str] = field(default_factory=dict)


class JobState:
    """The job lifecycle states (``queued → running → terminal``)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    #: Deadline passed while queued: nobody was left waiting, the solve
    #: never started.
    EXPIRED = "expired"

    TERMINAL = frozenset({DONE, FAILED, EXPIRED})


class PlanJob:
    """One solve shared by its leader, any followers, and any pollers."""

    __slots__ = (
        "id",
        "key",
        "request",
        "machine",
        "state",
        "deadline",
        "done",
        "payload",
        "error",
        "created_unix_s",
        "finished_unix_s",
        "enqueued_at",
        "solve_s",
        "queued_s",
        "cache_outcome",
    )

    def __init__(self, job_id, key, request, machine, deadline: float) -> None:
        self.id = job_id
        self.key = key
        self.request = request
        self.machine = machine
        self.state = JobState.QUEUED
        #: perf_counter deadline; extended when later waiters join.
        self.deadline = deadline
        self.done = threading.Event()
        self.payload: Optional[Dict] = None
        #: (code, message) — the unified error-envelope pair.
        self.error: Optional[Tuple[str, str]] = None
        self.created_unix_s = time.time()
        self.finished_unix_s: Optional[float] = None
        self.enqueued_at = time.perf_counter()
        self.solve_s: Optional[float] = None
        self.queued_s: Optional[float] = None
        #: How the payload was produced: "miss" (solved), "hit"/"disk".
        self.cache_outcome = "miss"

    def view(self) -> Dict[str, object]:
        """The JSON-ready ``job`` object every jobs response carries."""
        view: Dict[str, object] = {
            "id": self.id,
            "status": self.state,
            "created_unix_s": self.created_unix_s,
        }
        if self.finished_unix_s is not None:
            view["finished_unix_s"] = self.finished_unix_s
        if self.queued_s is not None:
            view["queued_s"] = self.queued_s
        if self.solve_s is not None:
            view["solve_s"] = self.solve_s
        if self.error is not None:
            code, message = self.error
            view["error"] = {"code": code, "message": message}
        return view


class _QueueFull(Exception):
    """Internal: the bounded solve queue rejected a submission."""


_STOP = object()


class PlanService:
    """Thread-safe planning core: job table, solver pool, cache layers.

    ``planner`` is injectable — ``(PlanRequest, MachineSpec) -> payload
    dict`` — so tests can substitute deterministic or deliberately slow
    solvers; the default is :func:`repro.serve.planner.solve`.  With
    ``solver_processes`` > 0 the planner must be picklable (module
    level); the default is.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        planner: Optional[Callable[[PlanRequest, object], Dict]] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.planner = planner or default_planner_module.solve
        self.cache = PlanCache(self.config.cache_size)
        self.store: Optional[PlanStore] = None
        self._queue: "queue.Queue" = queue.Queue(
            maxsize=self.config.queue_size
        )
        self._inflight: Dict[Tuple, PlanJob] = {}
        self._jobs: "Dict[str, PlanJob]" = {}
        self._job_seq = itertools.count()
        self._flight_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._threads = []
        self._started = False
        self._ewma_solve_s: Optional[float] = None
        self.stats: Dict[str, int] = {
            "requests": 0,
            "ok": 0,
            "cache_hits": 0,
            "disk_hits": 0,
            "cache_misses": 0,
            "single_flight": 0,
            "bad_requests": 0,
            "rejected": 0,
            "timeouts": 0,
            "cancelled": 0,
            "errors": 0,
            "jobs_submitted": 0,
            "jobs_completed": 0,
            "jobs_failed": 0,
            "jobs_expired": 0,
            "invalidated": 0,
            "persisted": 0,
        }

    # -- lifecycle -------------------------------------------------------
    @property
    def solver_parallelism(self) -> int:
        """How many solves can truly run at once (processes beat
        threads: the solve path is GIL-bound)."""
        if self.config.solver_processes > 0:
            return self.config.solver_processes
        return max(1, self.config.workers)

    def _thread_count(self) -> int:
        return max(self.config.workers, self.config.solver_processes)

    def start(self) -> "PlanService":
        """Open the store, spawn the solver pool + threads (idempotent)."""
        if self._started:
            return self
        self._started = True
        if self.config.cache_path:
            self._open_store()
        if self.config.solver_processes > 0:
            self._start_pool()
        for i in range(self._thread_count()):
            t = threading.Thread(
                target=self._worker, name=f"serve-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)
        return self

    def _open_store(self) -> None:
        self.store = PlanStore(
            self.config.cache_path,
            max_entries=self.config.store_max_entries,
        )
        dropped = self.store.sync_registry(_registry_fingerprint)
        report = self.store.load_report
        with self._stats_lock:
            self.stats["invalidated"] += dropped
            obs.add("serve.cache.invalidated", dropped)
            obs.add("serve.store.quarantined", report.quarantined)
            obs.set_gauge("serve.store.entries", len(self.store))
        # warm the LRU with the most recent survivors (oldest first so
        # LRU recency matches write recency)
        for entry in self.store.recent_entries(self.config.cache_size):
            self.cache.put(entry.key, entry.payload)

    def _start_pool(self) -> None:
        self._pool = ProcessPoolExecutor(
            max_workers=self.config.solver_processes
        )
        with self._stats_lock:
            obs.set_gauge(
                "serve.solver.processes", self.config.solver_processes
            )
        # eagerly fan the workers out and pre-import the solve stack:
        # each warm task blocks its worker on imports, so pending tasks
        # force the executor to spawn the rest of the pool
        warmups = [
            self._pool.submit(default_planner_module.warm_process)
            for _ in range(2 * self.config.solver_processes)
        ]
        for future in warmups:
            try:
                future.result(timeout=60)
            except Exception:  # pragma: no cover - warmup is best-effort
                break

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the workers (queued jobs are failed, not solved)."""
        if not self._started:
            return
        self._started = False
        for _ in self._threads:
            self._queue.put(_STOP)
        for t in self._threads:
            t.join(timeout=timeout)
        self._threads = []
        # fail anything still queued so no waiter hangs
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is not _STOP:
                job.error = ("internal", "service stopped")
                self._finish_job(job, JobState.FAILED)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "PlanService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- bookkeeping (stats mirror + obs under one lock) -----------------
    def _count(self, stat: str, metric: Optional[str] = None, **labels) -> None:
        with self._stats_lock:
            self.stats[stat] += 1
            if metric is not None:
                obs.add(metric, 1, **labels)

    def _finish(
        self, started: float, outcome: str, status: int, **span_attrs
    ) -> None:
        """Per-request latency sample + span, under the stats lock."""
        now = time.perf_counter()
        with self._stats_lock:
            obs.observe("serve.latency", now - started, outcome=outcome)
            obs.record_span(
                "serve.request",
                started,
                now,
                outcome=outcome,
                status=status,
                **span_attrs,
            )

    def _set_queue_gauge(self) -> None:
        with self._stats_lock:
            obs.set_gauge("serve.queue_depth", self._queue.qsize())

    def metrics_snapshot(self) -> Dict[str, object]:
        """Point-in-time service state (the ``/v1/metrics`` body)."""
        with self._stats_lock:
            out: Dict[str, object] = dict(self.stats)
            ewma = self._ewma_solve_s
        with self._flight_lock:
            jobs_live = sum(
                1
                for job in self._jobs.values()
                if job.state not in JobState.TERMINAL
            )
            jobs_tracked = len(self._jobs)
        out.update(
            queue_depth=self._queue.qsize(),
            queue_capacity=self.config.queue_size,
            inflight=len(self._inflight),
            cache_entries=len(self.cache),
            cache_capacity=self.cache.capacity,
            store_entries=len(self.store) if self.store is not None else None,
            workers=self._thread_count(),
            solver_processes=self.config.solver_processes,
            solver_parallelism=self.solver_parallelism,
            jobs_live=jobs_live,
            jobs_tracked=jobs_tracked,
            ewma_solve_s=ewma,
        )
        return out

    def retry_after_s(self) -> int:
        """Whole-second backoff hint for a 429 (queue drain estimate).

        Drain rate is ``solver_parallelism / EWMA(solve time)`` — with
        a process pool the service drains ``solver_processes`` solves
        at a time no matter how many dispatch threads exist, so the
        hint divides by true solver parallelism, not thread count.
        """
        with self._stats_lock:
            ewma = self._ewma_solve_s or 1.0
        depth = self._queue.qsize() + 1
        return max(1, int(math.ceil(depth * ewma / self.solver_parallelism)))

    # -- cache layers ----------------------------------------------------
    def _probe(self, key: Tuple) -> Tuple[Optional[Dict], Optional[str]]:
        """(payload, outcome) from the LRU then the persistent store."""
        hit = self.cache.get(key)
        if hit is not None:
            return hit, "hit"
        if self.store is not None:
            payload = self.store.get(key)
            if payload is not None:
                self.cache.put(key, payload)
                return payload, "disk"
        return None, None

    def _respond_cached(
        self, started: float, payload: Dict, outcome: str
    ) -> ServeResponse:
        stat = "cache_hits" if outcome == "hit" else "disk_hits"
        metric = "serve.cache.hit" if outcome == "hit" else "serve.cache.disk_hit"
        self._count(stat, metric)
        self._count("ok")
        self._finish(started, outcome, 200)
        return ServeResponse(200, self._body(payload, outcome, started))

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop every cached/persisted plan keyed on ``fingerprint``
        (both layers); returns the number of entries removed."""
        dropped = self.cache.drop_where(lambda key: key[0] == fingerprint)
        if self.store is not None:
            dropped += self.store.invalidate(
                lambda entry: entry.fingerprint == fingerprint
            )
            with self._stats_lock:
                obs.set_gauge("serve.store.entries", len(self.store))
        if dropped:
            with self._stats_lock:
                self.stats["invalidated"] += dropped
                obs.add("serve.cache.invalidated", dropped)
        return dropped

    # -- job table -------------------------------------------------------
    def _new_job_id(self) -> str:
        return f"j{next(self._job_seq):06d}-{uuid.uuid4().hex[:8]}"

    def _reap_jobs_locked(self) -> None:
        """Drop terminal jobs past their TTL (flight lock held)."""
        now = time.time()
        ttl = self.config.job_ttl_s
        doomed = [
            job_id
            for job_id, job in self._jobs.items()
            if job.state in JobState.TERMINAL
            and job.finished_unix_s is not None
            and now - job.finished_unix_s > ttl
        ]
        for job_id in doomed:
            del self._jobs[job_id]
        overflow = len(self._jobs) - self.config.max_jobs
        if overflow > 0:
            terminal = [
                job_id
                for job_id, job in self._jobs.items()
                if job.state in JobState.TERMINAL
            ]
            for job_id in terminal[:overflow]:
                del self._jobs[job_id]

    def _register_done_job(
        self, key: Tuple, request, machine, payload: Dict, outcome: str
    ) -> PlanJob:
        """A pre-completed job for a cache hit (so ``POST /v1/jobs`` on
        warmed keys still hands back a pollable handle)."""
        job = PlanJob(
            self._new_job_id(), key, request, machine, time.perf_counter()
        )
        job.payload = payload
        job.state = JobState.DONE
        job.cache_outcome = outcome
        job.finished_unix_s = time.time()
        job.queued_s = 0.0
        job.done.set()
        with self._flight_lock:
            self._reap_jobs_locked()
            self._jobs[job.id] = job
        return job

    def _submit(
        self, key: Tuple, request, machine, deadline: float
    ) -> Tuple[PlanJob, bool, Optional[Dict]]:
        """Join or enqueue the job for ``key``.

        Returns ``(job, follower, raced_payload)``; ``raced_payload``
        is set when a worker cached the answer between the optimistic
        probe and the flight lock.  Raises :class:`_QueueFull` when the
        bounded queue rejects a fresh job.
        """
        with self._flight_lock:
            self._reap_jobs_locked()
            job = self._inflight.get(key)
            if job is not None:
                # follower: the job must outlive the latest waiter
                job.deadline = max(job.deadline, deadline)
                return job, True, None
            hit = self.cache.get(key)
            if hit is not None:
                return None, False, hit  # type: ignore[return-value]
            job = PlanJob(self._new_job_id(), key, request, machine, deadline)
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                raise _QueueFull() from None
            self._inflight[key] = job
            self._jobs[job.id] = job
            return job, False, None

    def _finish_job(self, job: PlanJob, state: str) -> None:
        """Move a job to a terminal state and wake every waiter."""
        job.state = state
        job.finished_unix_s = time.time()
        with self._flight_lock:
            self._inflight.pop(job.key, None)
        if state == JobState.DONE:
            self._count("jobs_completed", "serve.jobs.completed")
        elif state == JobState.EXPIRED:
            self._count("jobs_expired", "serve.jobs.expired")
        else:
            self._count("jobs_failed", "serve.jobs.failed")
        job.done.set()

    # -- request path: POST /v1/plan -------------------------------------
    def handle(self, payload: object) -> ServeResponse:
        """Serve one synchronous planning request end to end.

        Internally a bounded wait over the job table: cache probe →
        submit/join a job → wait until the request deadline → map the
        job's terminal state onto an HTTP response.
        """
        started = time.perf_counter()
        self._count("requests", "serve.requests")
        try:
            request = parse_request(payload)
            machine = default_planner_module.resolve_machine(request)
        except RequestError as err:
            self._count("bad_requests", "serve.bad_requests")
            self._finish(started, "bad_request", 400)
            return ServeResponse(400, err.to_body())
        key = cache_key(request, machine)

        cached, outcome = self._probe(key)
        if cached is not None:
            return self._respond_cached(started, cached, outcome)

        timeout = min(
            request.timeout_s or self.config.default_timeout_s,
            self.config.max_timeout_s,
        )
        deadline = started + timeout
        try:
            job, follower, raced = self._submit(key, request, machine, deadline)
        except _QueueFull:
            return self._reject_full(started)
        if raced is not None:
            return self._respond_cached(started, raced, "hit")
        if follower:
            self._count("single_flight", "serve.cache.single_flight")
        self._set_queue_gauge()

        remaining = deadline - time.perf_counter()
        finished = job.done.wait(timeout=max(0.0, remaining))
        if not finished:
            self._count("timeouts", "serve.timeouts")
            self._finish(started, "timeout", 504, job_id=job.id)
            return ServeResponse(
                504,
                error_body(
                    "timeout",
                    f"request did not complete within {timeout:.3f}s; "
                    f"the solve continues — poll GET /v1/jobs/{job.id}",
                    job_id=job.id,
                    timeout_s=timeout,
                ),
            )
        if job.state != JobState.DONE:
            code, message = job.error or ("internal", "job failed")
            if code == "timeout":
                self._count("timeouts", "serve.timeouts")
                self._finish(started, "timeout", 504, job_id=job.id)
                return ServeResponse(
                    504, error_body("timeout", message, job_id=job.id)
                )
            self._count("errors", "serve.errors")
            self._finish(started, "error", 500, job_id=job.id)
            return ServeResponse(500, error_body("internal", message))

        outcome = "single_flight" if follower else "miss"
        if not follower:
            self._count("cache_misses", "serve.cache.miss")
        self._count("ok")
        self._finish(started, outcome, 200, solve_s=job.solve_s)
        return ServeResponse(
            200,
            self._body(job.payload, outcome, started, job),
        )

    def _reject_full(self, started: float) -> ServeResponse:
        self._count("rejected", "serve.rejected")
        self._finish(started, "rejected", 429)
        retry = self.retry_after_s()
        return ServeResponse(
            429,
            error_body("queue_full", "request queue is full; retry later"),
            headers={"Retry-After": str(retry)},
        )

    # -- request path: the jobs API --------------------------------------
    def submit_job(self, payload: object) -> ServeResponse:
        """``POST /v1/jobs``: enqueue (or join) a solve, return its
        handle immediately (202; the body carries the current state —
        a warmed cache answers with an already-``done`` job)."""
        started = time.perf_counter()
        self._count("requests", "serve.requests")
        self._count("jobs_submitted", "serve.jobs.submitted")
        try:
            request = parse_request(payload)
            machine = default_planner_module.resolve_machine(request)
        except RequestError as err:
            self._count("bad_requests", "serve.bad_requests")
            self._finish(started, "bad_request", 400)
            return ServeResponse(400, err.to_body())
        key = cache_key(request, machine)

        cached, outcome = self._probe(key)
        if cached is None:
            deadline = started + self.config.max_timeout_s
            try:
                job, follower, cached = self._submit(
                    key, request, machine, deadline
                )
            except _QueueFull:
                return self._reject_full(started)
            if cached is not None:
                outcome = "hit"
        if cached is not None:
            job = self._register_done_job(
                key, request, machine, cached, outcome
            )
            self._count(
                "cache_hits" if outcome == "hit" else "disk_hits",
                "serve.cache.hit" if outcome == "hit" else "serve.cache.disk_hit",
            )
        self._set_queue_gauge()
        self._count("ok")
        self._finish(started, "job_submit", 202, job_id=job.id)
        return ServeResponse(
            202, self._job_body(job, outcome), headers={"Location": f"/v1/jobs/{job.id}"}
        )

    def get_job(self, job_id: str, wait_s: float = 0.0) -> ServeResponse:
        """``GET /v1/jobs/<id>``: the job's current state; ``wait_s`` >
        0 long-polls on completion (capped at
        :attr:`ServeConfig.long_poll_max_s`)."""
        started = time.perf_counter()
        with self._flight_lock:
            self._reap_jobs_locked()
            job = self._jobs.get(job_id)
        if job is None:
            self._finish(started, "job_not_found", 404)
            return ServeResponse(
                404,
                error_body(
                    "job_not_found",
                    f"no job {job_id!r} (unknown id, or expired after "
                    f"{self.config.job_ttl_s:.0f}s)",
                    job_id=job_id,
                ),
            )
        if wait_s > 0 and job.state not in JobState.TERMINAL:
            with self._stats_lock:
                obs.add("serve.jobs.long_polls", 1)
            job.done.wait(timeout=min(wait_s, self.config.long_poll_max_s))
        self._finish(started, f"job_{job.state}", 200, job_id=job.id)
        return ServeResponse(200, self._job_body(job, None))

    # -- response bodies -------------------------------------------------
    @staticmethod
    def _body(
        payload: Dict,
        outcome: str,
        started: float,
        job: Optional[PlanJob] = None,
    ) -> Dict[str, object]:
        body = dict(payload)
        body["schema"] = SERVE_SCHEMA
        body["cache"] = outcome
        timing: Dict[str, object] = {
            "total_s": time.perf_counter() - started
        }
        if job is not None:
            timing["solve_s"] = job.solve_s
            timing["queued_s"] = job.queued_s
            body["job"] = job.view()
        body["timing"] = timing
        return body

    @staticmethod
    def _job_body(job: PlanJob, outcome: Optional[str]) -> Dict[str, object]:
        """One jobs-API body: the job view, plus the full plan payload
        once the job is done."""
        body: Dict[str, object]
        if job.state == JobState.DONE and job.payload is not None:
            body = dict(job.payload)
            body["cache"] = outcome if outcome is not None else job.cache_outcome
        else:
            body = {}
        body["schema"] = SERVE_SCHEMA
        body["job"] = job.view()
        return body

    # -- solving ---------------------------------------------------------
    def _solve_payload(self, job: PlanJob) -> Dict:
        """Run the planner for one job, in-thread or on the pool."""
        if self._pool is None:
            payload = self.planner(job.request, job.machine)
            if isinstance(payload, dict):
                payload.setdefault("solver", {})["pid"] = os.getpid()
            return payload
        try:
            future = self._pool.submit(
                default_planner_module.run_planner, self.planner, job.request
            )
            return future.result()
        except BrokenProcessPool:
            # a solver process died (OOM-killed, segfault in a native
            # lib): rebuild the pool once and retry this job
            with self._pool_lock:
                if self._pool is not None:
                    self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = ProcessPoolExecutor(
                    max_workers=self.config.solver_processes
                )
            with self._stats_lock:
                obs.add("serve.solver.restarts", 1)
            future = self._pool.submit(
                default_planner_module.run_planner, self.planner, job.request
            )
            return future.result()

    # -- worker pool -----------------------------------------------------
    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is _STOP:
                return
            self._set_queue_gauge()
            now = time.perf_counter()
            job.queued_s = now - job.enqueued_at
            if now >= job.deadline:
                # graceful cancellation: every waiter's deadline passed
                # while the job sat queued — don't start the LP at all
                job.error = (
                    "timeout",
                    "deadline expired before a worker was free",
                )
                self._count("cancelled", "serve.cancelled")
                self._finish_job(job, JobState.EXPIRED)
                continue
            job.state = JobState.RUNNING
            t0 = now
            try:
                payload = self._solve_payload(job)
                job.solve_s = time.perf_counter() - t0
                mode = "process" if self._pool is not None else "thread"
                self.cache.put(job.key, payload)
                if self.store is not None:
                    self.store.put(
                        job.key, payload, machine=job.request.machine
                    )
                    self._count("persisted", "serve.cache.persisted")
                job.payload = payload
                with self._stats_lock:
                    obs.add("serve.solver.solves", 1, mode=mode)
                    obs.observe("serve.solve_s", job.solve_s)
                    prev = self._ewma_solve_s
                    self._ewma_solve_s = (
                        job.solve_s
                        if prev is None
                        else 0.7 * prev + 0.3 * job.solve_s
                    )
                self._finish_job(job, JobState.DONE)
            except Exception as err:  # solver bugs must not kill workers
                job.error = (
                    "internal", f"{type(err).__name__}: {err}"
                )
                self._finish_job(job, JobState.FAILED)


def _registry_fingerprint(name: str) -> Optional[str]:
    """The chassis fingerprint ``name`` currently compiles to, or None
    when the fabric registry no longer resolves it (the store's
    invalidation hook)."""
    try:
        from repro.hardware.fabric import chassis_fingerprint
        from repro.hardware.registry import get_machine

        return chassis_fingerprint(get_machine(name).chassis)
    except Exception:
        return None
