"""Persistent plan store: an append-only JSONL segment (`repro.servecache/v1`).

The LRU plan cache dies with the process; this store is the restart
layer under it.  Every solved plan is appended as one self-contained
JSON line (``op: "put"``) via the same single-``os.write`` ``O_APPEND``
idiom :func:`repro.obs.append_jsonl` uses, so concurrent writers land
whole lines and a crash can lose at most the trailing partial line.
Invalidation appends a tombstone (``op: "drop"``) rather than rewriting
the segment.

On open the segment is replayed newest-wins:

* a *truncated tail* (final line without the shape a crash mid-append
  leaves) is tolerated and dropped silently;
* any other undecodable or schema-violating line is **quarantined** —
  appended verbatim to ``<path>.quarantine`` — and replay continues;
  corruption is never fatal and never silently discarded;
* when the replayed log holds more records than live entries (dead
  puts, tombstones, quarantined lines), the segment is *compacted*:
  rewritten as one put per live entry to a temp file and atomically
  ``os.replace``-d into place.

Entries remember the registry ``machine`` name that produced them (None
for inline fabrics) alongside the chassis fingerprint they were keyed
on, so :meth:`PlanStore.sync_registry` can drop entries whose name no
longer resolves — or no longer resolves to the same chassis — in the
fabric registry.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.record import _json_default, append_jsonl
from repro.serve.schema import decode_key, encode_key

STORE_SCHEMA = "repro.servecache/v1"


@dataclass
class StoreEntry:
    """One live plan in the store."""

    key: Tuple
    payload: Dict[str, object]
    #: Chassis fingerprint the key was built from (= ``key[0]``).
    fingerprint: str
    #: Registry name the request used, or None for an inline fabric.
    machine: Optional[str]
    created_unix_s: float


@dataclass
class StoreLoadReport:
    """What replaying one segment file found."""

    records: int = 0
    entries: int = 0
    tombstones: int = 0
    quarantined: int = 0
    truncated_tail: bool = False
    compacted: bool = False


class PlanStore:
    """Append-only, restart-safe mapping of cache keys to plan payloads.

    Thread-safe; bounded by ``max_entries`` (oldest live entries are
    evicted in memory on overflow — the segment keeps their records
    until the next load-time compaction).
    """

    def __init__(self, path: str, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError(
                f"store max_entries must be >= 1, got {max_entries}"
            )
        self.path = os.fspath(path)
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: Dict[Tuple, StoreEntry] = {}
        self.load_report = self._load()

    # -- replay ----------------------------------------------------------
    def _load(self) -> StoreLoadReport:
        report = StoreLoadReport()
        if not os.path.exists(self.path):
            return report
        with open(self.path, "rb") as fh:
            raw = fh.read()
        lines = raw.split(b"\n")
        #: A crash mid-append leaves a final line without its newline;
        #: that tail is expected loss, not corruption.
        tail_is_partial = bool(lines and lines[-1])
        body, tail = lines[:-1], lines[-1]
        quarantine: List[bytes] = []
        for line in body:
            if not line.strip():
                continue
            report.records += 1
            if not self._apply(line, report):
                quarantine.append(line)
        if tail_is_partial:
            report.records += 1
            if self._apply(tail, report):
                # complete, valid JSON — the newline itself was lost
                pass
            else:
                report.truncated_tail = True
        if quarantine:
            report.quarantined = len(quarantine)
            with open(self.path + ".quarantine", "ab") as fh:
                fh.write(b"\n".join(quarantine) + b"\n")
        self._evict_overflow()
        report.entries = len(self._entries)
        dead = report.records - report.entries
        if dead > 0 or report.quarantined:
            self._compact()
            report.compacted = True
        return report

    def _apply(self, line: bytes, report: StoreLoadReport) -> bool:
        """Replay one record; False = not a valid record (quarantine)."""
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return False
        if not isinstance(record, dict) or record.get("schema") != STORE_SCHEMA:
            return False
        op = record.get("op")
        try:
            key = decode_key(record["key"])
        except (KeyError, ValueError):
            return False
        if op == "drop":
            self._entries.pop(key, None)
            report.tombstones += 1
            return True
        if op != "put":
            return False
        payload = record.get("payload")
        fingerprint = record.get("fingerprint")
        if not isinstance(payload, dict) or not isinstance(fingerprint, str):
            return False
        machine = record.get("machine")
        if machine is not None and not isinstance(machine, str):
            return False
        entry = StoreEntry(
            key=key,
            payload=payload,
            fingerprint=fingerprint,
            machine=machine,
            created_unix_s=float(record.get("created_unix_s") or 0.0),
        )
        # newest-wins, and re-put refreshes recency (dict order)
        self._entries.pop(key, None)
        self._entries[key] = entry
        return True

    def _evict_overflow(self) -> None:
        while len(self._entries) > self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]

    def _compact(self) -> None:
        """Rewrite the segment as one put per live entry (atomic)."""
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        fd, tmp = tempfile.mkstemp(
            prefix=".servecache-", suffix=".jsonl", dir=directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                for entry in self._entries.values():
                    fh.write(
                        json.dumps(
                            self._record(entry), default=_json_default
                        )
                        + "\n"
                    )
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @staticmethod
    def _record(entry: StoreEntry, op: str = "put") -> Dict[str, object]:
        record: Dict[str, object] = {
            "schema": STORE_SCHEMA,
            "op": op,
            "key": encode_key(entry.key),
            "fingerprint": entry.fingerprint,
            "created_unix_s": entry.created_unix_s,
        }
        if op == "put":
            record["payload"] = entry.payload
            if entry.machine is not None:
                record["machine"] = entry.machine
        return record

    # -- mutation --------------------------------------------------------
    def put(
        self,
        key: Tuple,
        payload: Dict[str, object],
        machine: Optional[str] = None,
    ) -> None:
        """Persist one solved plan (append + in-memory insert)."""
        entry = StoreEntry(
            key=key,
            payload=payload,
            fingerprint=str(key[0]),
            machine=machine,
            created_unix_s=time.time(),
        )
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = entry
            self._evict_overflow()
            append_jsonl(self.path, self._record(entry))

    def drop(self, key: Tuple) -> bool:
        """Remove one entry (appends a tombstone); False if absent."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            append_jsonl(self.path, self._record(entry, op="drop"))
            return True

    def invalidate(self, predicate: Callable[[StoreEntry], bool]) -> int:
        """Drop every entry ``predicate`` flags; returns the count."""
        with self._lock:
            doomed = [e for e in self._entries.values() if predicate(e)]
            for entry in doomed:
                del self._entries[entry.key]
                append_jsonl(self.path, self._record(entry, op="drop"))
        return len(doomed)

    def sync_registry(
        self, resolve_fingerprint: Callable[[str], Optional[str]]
    ) -> int:
        """Drop entries whose registry name no longer matches the fabric.

        ``resolve_fingerprint(name)`` returns the chassis fingerprint
        the registry currently compiles ``name`` to, or None when the
        name no longer resolves.  Entries from inline fabrics (no
        recorded name) are kept — they carry their full identity in the
        fingerprint itself.  Returns the number of entries dropped.
        """
        cache: Dict[str, Optional[str]] = {}

        def _stale(entry: StoreEntry) -> bool:
            if entry.machine is None:
                return False
            if entry.machine not in cache:
                cache[entry.machine] = resolve_fingerprint(entry.machine)
            return cache[entry.machine] != entry.fingerprint

        return self.invalidate(_stale)

    # -- lookup ----------------------------------------------------------
    def get(self, key: Tuple) -> Optional[Dict[str, object]]:
        """The persisted payload for ``key``, or None."""
        with self._lock:
            entry = self._entries.get(key)
            return entry.payload if entry is not None else None

    def recent_entries(self, count: int) -> List[StoreEntry]:
        """The ``count`` most recently written live entries, oldest
        first (the order an LRU warm-up should insert them in)."""
        with self._lock:
            entries = list(self._entries.values())
        return entries[-count:] if count > 0 else []

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        with self._lock:
            return key in self._entries
