"""The ``repro.serve/v1.1`` request schema: parsing, errors, cache keys.

A planning request is ``RunSpec``-shaped JSON — the same fields a
:class:`repro.RunSpec` takes, minus the in-memory objects (datasets
arrive as profiles to build, hardware as a registry name or an inline
``repro.fabric/v1`` payload).  :func:`parse_request` validates one
payload into a frozen :class:`PlanRequest` (raising
:class:`RequestError` with the offending field for the HTTP 400 body),
and :func:`cache_key` folds a request + its resolved machine into the
normalized tuple the plan cache, single-flight table, and persistent
store key on.  :func:`encode_key` / :func:`decode_key` round-trip that
tuple through JSON for the on-disk store.

Normalization rules (documented in DESIGN.md §5f): hardware is keyed by
:func:`~repro.hardware.fabric.chassis_fingerprint` — not by name — so
``"machine_a"``, an alias, and an inline fabric that compiles to the
same chassis all share cache entries; dataset profiles key on their
full build recipe (every knob that changes the built graph); floats are
canonicalised through ``float()``; defaulted and explicitly-passed
default values key identically.

Error envelope (``repro.serve/v1.1``): every non-200 body from every
endpoint is ``{"schema": ..., "error": {"code", "message",
"detail"?}}`` — ``code`` is one of the stable strings in
:data:`ERROR_CODES` (what clients branch on), ``message`` is
human-readable (never stable), and ``detail`` is a small object
pointing at the culprit (``{"field": "dataset.key"}``,
``{"job_id": ...}``...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

SERVE_SCHEMA = "repro.serve/v1.1"

#: Request schemas this server still accepts (v1 requests are a strict
#: subset of v1.1: the jobs endpoints and the error envelope changed,
#: the planning-request fields did not).
COMPAT_SCHEMAS = ("repro.serve/v1", SERVE_SCHEMA)

#: Dataset key for the synthetic smoke-test graph
#: (:func:`repro.graphs.datasets.tiny_dataset`).
TINY_KEY = "TINY"

#: The stable machine-readable error codes, by HTTP status.  Clients
#: (and this repo's tests + load generator) branch on ``error.code``;
#: ``error.message`` wording is free to change.
ERROR_CODES: Dict[str, int] = {
    "bad_request": 400,  # ill-typed/unknown field — detail.field names it
    "invalid_json": 400,  # body not parseable as JSON
    "not_found": 404,  # unknown route — detail.path
    "job_not_found": 404,  # unknown/reaped job id — detail.job_id
    "too_large": 413,  # body over the byte cap — detail.limit_bytes
    "queue_full": 429,  # solve queue full — Retry-After header set
    "internal": 500,  # the planner raised
    "timeout": 504,  # deadline expired — detail.job_id keeps the handle
}


class RequestError(ValueError):
    """A planning request the server must reject (HTTP 400).

    Carries the offending ``field`` (dotted path, or None for
    payload-level problems) so the structured error body can point at
    it.
    """

    def __init__(self, message: str, field: Optional[str] = None) -> None:
        super().__init__(message)
        self.message = message
        self.field = field

    def to_body(self) -> Dict[str, object]:
        """The structured JSON error body for this rejection."""
        detail = {"field": self.field} if self.field is not None else {}
        return error_body("bad_request", self.message, **detail)


def error_body(code: str, message: str, **detail: object) -> Dict[str, object]:
    """One ``repro.serve/v1.1`` error payload (every non-200 body).

    ``code`` must be one of :data:`ERROR_CODES`; ``detail`` keys point
    at the culprit (``field=...``, ``job_id=...``) and are omitted when
    empty.
    """
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    err: Dict[str, object] = {"code": code, "message": message}
    detail = {k: v for k, v in detail.items() if v is not None}
    if detail:
        err["detail"] = detail
    return {"schema": SERVE_SCHEMA, "error": err}


def encode_key(key: Tuple) -> List:
    """JSON-ready form of a :func:`cache_key` tuple (tuples → lists).

    Key tuples hold only ints, floats, bools, strings, None, and nested
    tuples of the same, all of which survive a JSON round-trip exactly;
    :func:`decode_key` restores the original tuple shape.
    """
    return [encode_key(v) if isinstance(v, tuple) else v for v in key]


def decode_key(payload: object) -> Tuple:
    """The cache-key tuple a JSON array (from :func:`encode_key`) names."""
    if not isinstance(payload, list):
        raise ValueError(f"encoded cache key must be a list, got {payload!r}")
    return tuple(
        decode_key(v) if isinstance(v, list) else v for v in payload
    )


@dataclass(frozen=True)
class DatasetProfile:
    """The build recipe for one request's dataset.

    ``key`` is a registry key from
    :data:`repro.graphs.datasets.DATASETS` (``PA``/``IG``/``UK``/``CL``)
    or :data:`TINY_KEY` for the synthetic smoke graph.  Registry
    datasets take ``scale``/``feature_dim`` overrides; the tiny graph
    takes its full generator knobs.  ``normalized()`` is the cache-key
    contribution: every field that changes the built graph, nothing
    else.
    """

    key: str
    seed: int = 0
    #: Registry datasets only: fraction of the paper-scale graph.
    scale: Optional[float] = None
    feature_dim: Optional[int] = None
    #: Tiny graph only.
    num_vertices: int = 2000
    avg_degree: float = 8.0
    batch_size: int = 64
    skew_exponent: float = 0.8

    def normalized(self) -> Tuple:
        """Canonical cache-key tuple of this profile."""
        if self.key == TINY_KEY:
            return (
                TINY_KEY,
                int(self.num_vertices),
                float(self.avg_degree),
                None if self.feature_dim is None else int(self.feature_dim),
                int(self.batch_size),
                float(self.skew_exponent),
                int(self.seed),
            )
        return (
            self.key,
            None if self.scale is None else float(self.scale),
            None if self.feature_dim is None else int(self.feature_dim),
            int(self.seed),
        )


@dataclass(frozen=True)
class PlanRequest:
    """One validated planning request (the output of
    :func:`parse_request`).

    Mirrors :class:`repro.RunSpec` field-for-field where that makes
    sense over the wire; ``simulate=False`` asks for the plan only
    (placement search, no epoch simulation), ``timeout_s`` bounds how
    long this request is willing to wait end-to-end.
    """

    dataset: DatasetProfile
    machine: Optional[str] = "machine_a"
    #: Inline ``repro.fabric/v1`` payload (mutually exclusive with
    #: ``machine``; the server never reads spec files off its own disk).
    fabric: Optional[Dict] = field(default=None, compare=False)
    num_gpus: int = 4
    num_ssds: int = 8
    model: str = "graphsage"
    fanouts: Tuple[int, ...] = (25, 10)
    sample_batches: int = 10
    seed: int = 0
    simulate: bool = True
    timeout_s: Optional[float] = None
    gpu_cache_fraction: float = 0.6
    cpu_cache_vertex_fraction: float = 0.01


_TOP_FIELDS = {
    "schema",
    "dataset",
    "machine",
    "fabric",
    "num_gpus",
    "num_ssds",
    "model",
    "fanouts",
    "sample_batches",
    "seed",
    "simulate",
    "timeout_s",
    "optimizer",
}
_REGISTRY_DATASET_FIELDS = {"key", "seed", "scale", "feature_dim"}
_TINY_DATASET_FIELDS = {
    "key",
    "seed",
    "feature_dim",
    "num_vertices",
    "avg_degree",
    "batch_size",
    "skew_exponent",
}
_OPTIMIZER_FIELDS = {"gpu_cache_fraction", "cpu_cache_vertex_fraction"}

_KNOWN_MODELS = ("graphsage", "gat", "gcn")


def _require_int(value, name, minimum=None, default=None):
    """An int field (bool explicitly rejected), range-checked."""
    if value is None:
        value = default
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError(f"{name} must be an integer", field=name)
    if minimum is not None and value < minimum:
        raise RequestError(f"{name} must be >= {minimum}", field=name)
    return value


def _require_float(value, name, minimum=None, maximum=None, default=None):
    """A float field (ints accepted, bool rejected), range-checked."""
    if value is None:
        value = default
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RequestError(f"{name} must be a number", field=name)
    value = float(value)
    if minimum is not None and value < minimum:
        raise RequestError(f"{name} must be >= {minimum}", field=name)
    if maximum is not None and value > maximum:
        raise RequestError(f"{name} must be <= {maximum}", field=name)
    return value


def _parse_dataset(payload) -> DatasetProfile:
    """Validate the ``dataset`` object of a request."""
    from repro.graphs.datasets import DATASETS

    if not isinstance(payload, dict):
        raise RequestError(
            "dataset must be an object with a 'key' field", field="dataset"
        )
    key = payload.get("key")
    if not isinstance(key, str):
        raise RequestError("dataset.key must be a string", field="dataset.key")
    key = key.upper()
    known = sorted(DATASETS) + [TINY_KEY]
    if key != TINY_KEY and key not in DATASETS:
        raise RequestError(
            f"unknown dataset key {key!r} (known: {', '.join(known)})",
            field="dataset.key",
        )
    allowed = _TINY_DATASET_FIELDS if key == TINY_KEY else _REGISTRY_DATASET_FIELDS
    unknown = set(payload) - allowed
    if unknown:
        raise RequestError(
            f"unknown dataset field(s) for {key}: {', '.join(sorted(unknown))}",
            field="dataset",
        )
    seed = _require_int(payload.get("seed"), "dataset.seed", minimum=0, default=0)
    feature_dim = payload.get("feature_dim")
    if feature_dim is not None:
        feature_dim = _require_int(
            feature_dim, "dataset.feature_dim", minimum=1
        )
    if key == TINY_KEY:
        return DatasetProfile(
            key=key,
            seed=seed,
            feature_dim=feature_dim,
            num_vertices=_require_int(
                payload.get("num_vertices"),
                "dataset.num_vertices",
                minimum=64,
                default=2000,
            ),
            avg_degree=_require_float(
                payload.get("avg_degree"),
                "dataset.avg_degree",
                minimum=1.0,
                default=8.0,
            ),
            batch_size=_require_int(
                payload.get("batch_size"),
                "dataset.batch_size",
                minimum=1,
                default=64,
            ),
            skew_exponent=_require_float(
                payload.get("skew_exponent"),
                "dataset.skew_exponent",
                minimum=0.0,
                default=0.8,
            ),
        )
    scale = payload.get("scale")
    if scale is not None:
        scale = _require_float(scale, "dataset.scale", minimum=1e-6)
    return DatasetProfile(
        key=key, seed=seed, scale=scale, feature_dim=feature_dim
    )


def parse_request(payload) -> PlanRequest:
    """Validate one JSON planning payload into a :class:`PlanRequest`.

    Unknown fields are rejected (schema drift should fail loudly, not
    silently plan something else); every rejection raises
    :class:`RequestError` carrying the offending field.
    """
    if not isinstance(payload, dict):
        raise RequestError("request body must be a JSON object")
    unknown = set(payload) - _TOP_FIELDS
    if unknown:
        raise RequestError(
            f"unknown field(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(_TOP_FIELDS))})"
        )
    schema = payload.get("schema")
    if schema is not None and schema not in COMPAT_SCHEMAS:
        raise RequestError(
            f"schema is {schema!r}, this server speaks "
            f"{' / '.join(COMPAT_SCHEMAS)}",
            field="schema",
        )
    if "dataset" not in payload:
        raise RequestError("missing required field 'dataset'", field="dataset")
    dataset = _parse_dataset(payload["dataset"])

    machine = payload.get("machine")
    fabric = payload.get("fabric")
    if machine is not None and fabric is not None:
        raise RequestError(
            "give exactly one hardware identity: machine or fabric, not both",
            field="machine",
        )
    if machine is not None and not isinstance(machine, str):
        raise RequestError(
            "machine must be a registry name (string)", field="machine"
        )
    if fabric is not None and not isinstance(fabric, dict):
        raise RequestError(
            "fabric must be an inline repro.fabric/v1 object "
            "(the server does not read spec files)",
            field="fabric",
        )
    if machine is None and fabric is None:
        machine = "machine_a"

    model = payload.get("model", "graphsage")
    if not isinstance(model, str):
        raise RequestError("model must be a string", field="model")
    model = model.lower()
    if model not in _KNOWN_MODELS:
        raise RequestError(
            f"unknown model {model!r} (known: {', '.join(_KNOWN_MODELS)})",
            field="model",
        )

    fanouts = payload.get("fanouts", [25, 10])
    if (
        not isinstance(fanouts, (list, tuple))
        or not fanouts
        or not all(
            isinstance(f, int) and not isinstance(f, bool) and f >= 1
            for f in fanouts
        )
    ):
        raise RequestError(
            "fanouts must be a non-empty list of integers >= 1",
            field="fanouts",
        )

    timeout_s = payload.get("timeout_s")
    if timeout_s is not None:
        timeout_s = _require_float(timeout_s, "timeout_s", minimum=0.001)

    simulate = payload.get("simulate", True)
    if not isinstance(simulate, bool):
        raise RequestError("simulate must be a boolean", field="simulate")

    optimizer = payload.get("optimizer") or {}
    if not isinstance(optimizer, dict):
        raise RequestError("optimizer must be an object", field="optimizer")
    unknown = set(optimizer) - _OPTIMIZER_FIELDS
    if unknown:
        raise RequestError(
            f"unknown optimizer field(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(_OPTIMIZER_FIELDS))})",
            field="optimizer",
        )

    return PlanRequest(
        dataset=dataset,
        machine=machine,
        fabric=fabric,
        num_gpus=_require_int(
            payload.get("num_gpus"), "num_gpus", minimum=1, default=4
        ),
        num_ssds=_require_int(
            payload.get("num_ssds"), "num_ssds", minimum=1, default=8
        ),
        model=model,
        fanouts=tuple(int(f) for f in fanouts),
        sample_batches=_require_int(
            payload.get("sample_batches"),
            "sample_batches",
            minimum=1,
            default=10,
        ),
        seed=_require_int(payload.get("seed"), "seed", minimum=0, default=0),
        simulate=simulate,
        timeout_s=timeout_s,
        gpu_cache_fraction=_require_float(
            optimizer.get("gpu_cache_fraction"),
            "optimizer.gpu_cache_fraction",
            minimum=0.01,
            maximum=1.0,
            default=0.6,
        ),
        cpu_cache_vertex_fraction=_require_float(
            optimizer.get("cpu_cache_vertex_fraction"),
            "optimizer.cpu_cache_vertex_fraction",
            minimum=0.0,
            maximum=1.0,
            default=0.01,
        ),
    )


def cache_key(request: PlanRequest, machine) -> Tuple:
    """The normalized cache/single-flight key of one request.

    Hardware contributes its
    :func:`~repro.hardware.fabric.chassis_fingerprint` (structural
    identity, not the registry name), the dataset its full build
    recipe, and the optimizer its knobs — two requests share a key iff
    the solve they'd trigger is identical.
    """
    from repro.hardware.fabric import chassis_fingerprint

    return (
        chassis_fingerprint(machine.chassis),
        request.dataset.normalized(),
        tuple(int(f) for f in request.fanouts),
        int(request.num_gpus),
        int(request.num_ssds),
        request.model.lower(),
        int(request.sample_batches),
        int(request.seed),
        bool(request.simulate),
        (
            float(request.gpu_cache_fraction),
            float(request.cpu_cache_vertex_fraction),
        ),
    )
