"""Stdlib HTTP front-end for the plan service.

A :class:`ThreadingHTTPServer` whose handler threads call straight into
:meth:`~repro.serve.service.PlanService.handle` — one OS thread per
connected client (they mostly block on cache probes or the job event,
so hundreds are fine), solver concurrency bounded separately by the
service's worker pool.

Routes:

* ``POST /v1/plan`` — one synchronous planning request (bounded wait);
* ``POST /v1/jobs`` — the same request, answered immediately with a
  job handle (202 + ``Location``);
* ``GET  /v1/jobs/<id>`` — job state; ``?wait=<seconds>`` long-polls
  until the job finishes or the wait elapses;
* ``GET  /v1/health`` — liveness + headline counters;
* ``GET  /v1/metrics`` — full service stats snapshot.

Every body (success and error) is ``repro.serve/v1.1`` JSON; every
error uses the one envelope ``{"error": {"code", "message",
"detail"?}}``; 429 responses carry ``Retry-After``.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional
from urllib.parse import parse_qs, urlsplit

from repro.obs.record import _json_default
from repro.serve.schema import SERVE_SCHEMA, error_body
from repro.serve.service import PlanService, ServeResponse

#: Planning payloads are small; anything bigger is a mistake (413).
MAX_BODY_BYTES = 2 * 1024 * 1024


class PlanServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`PlanService`."""

    daemon_threads = True
    allow_reuse_address = True
    #: Accept backlog: the load generator opens 100+ connections in the
    #: same instant; the socketserver default (5) drops the burst into
    #: SYN-retransmit territory (1s+ latency spikes, resets).
    request_queue_size = 256

    def __init__(self, address, service: PlanService) -> None:
        super().__init__(address, PlanHandler)
        self.service = service


class PlanHandler(BaseHTTPRequestHandler):
    """Routes requests into the owning server's service."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"
    #: Set True (class-wide) to restore stderr access logging.
    verbose = False

    @property
    def service(self) -> PlanService:
        """The plan service this handler serves."""
        return self.server.service

    def log_message(self, fmt, *args) -> None:
        """Quiet by default; the service's own metrics are the log."""
        if self.verbose:
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    def _send(self, response: ServeResponse) -> None:
        data = json.dumps(response.body, default=_json_default).encode(
            "utf-8"
        )
        self.send_response(response.status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _read_json(self) -> Optional[object]:
        """The request body as parsed JSON, or None after sending the
        matching 413/400 error response."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._send(
                ServeResponse(
                    413,
                    error_body(
                        "too_large",
                        f"body must be <= {MAX_BODY_BYTES} bytes",
                    ),
                )
            )
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            self._send(
                ServeResponse(
                    400, error_body("invalid_json", f"invalid JSON: {err}")
                )
            )
            return None

    def _not_found(self) -> None:
        self._send(
            ServeResponse(
                404, error_body("not_found", f"no route {self.path!r}")
            )
        )

    def do_POST(self) -> None:  # noqa: N802 (http.server contract)
        """Handle ``POST /v1/plan`` and ``POST /v1/jobs``."""
        route = urlsplit(self.path).path
        if route not in ("/v1/plan", "/v1/jobs"):
            self._not_found()
            return
        payload = self._read_json()
        if payload is None:
            return
        if route == "/v1/plan":
            self._send(self.service.handle(payload))
        else:
            self._send(self.service.submit_job(payload))

    def do_GET(self) -> None:  # noqa: N802 (http.server contract)
        """Handle ``GET /v1/jobs/<id>``, ``/v1/health``, ``/v1/metrics``."""
        parts = urlsplit(self.path)
        route = parts.path
        if route.startswith("/v1/jobs/"):
            job_id = route[len("/v1/jobs/"):]
            if not job_id or "/" in job_id:
                self._not_found()
                return
            query = parse_qs(parts.query)
            try:
                wait_s = float(query.get("wait", ["0"])[0])
            except ValueError:
                self._send(
                    ServeResponse(
                        400,
                        error_body(
                            "bad_request",
                            "wait must be a number of seconds",
                            field="wait",
                        ),
                    )
                )
                return
            self._send(self.service.get_job(job_id, wait_s=wait_s))
            return
        if route == "/v1/health":
            stats = self.service.metrics_snapshot()
            self._send(
                ServeResponse(
                    200,
                    {
                        "schema": SERVE_SCHEMA,
                        "status": "ok",
                        "requests": stats["requests"],
                        "queue_depth": stats["queue_depth"],
                    },
                )
            )
        elif route == "/v1/metrics":
            body: Dict[str, object] = {"schema": SERVE_SCHEMA}
            body.update(self.service.metrics_snapshot())
            self._send(ServeResponse(200, body))
        else:
            self._not_found()


def make_server(
    service: PlanService, host: str = "127.0.0.1", port: int = 0
) -> PlanServer:
    """A ready-to-run :class:`PlanServer` (port 0 = ephemeral).

    The caller owns both lifecycles: ``service.start()`` before serving
    and ``service.stop()`` / ``server.shutdown()`` after.
    """
    return PlanServer((host, port), service)


def server_url(server: PlanServer, path: str = "") -> str:
    """The http://host:port root (or ``path``) of a bound server."""
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def run_server(
    service: PlanService,
    host: str = "127.0.0.1",
    port: int = 8421,
    ready_message: Optional[str] = None,
) -> None:
    """Serve forever on the calling thread (Ctrl-C to stop)."""
    server = make_server(service, host, port)
    service.start()
    if ready_message:
        print(ready_message.format(url=server_url(server)), flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.stop()
