"""CLI entry point: ``python -m repro.serve``.

Starts the planning service on a ``ThreadingHTTPServer`` and blocks
until Ctrl-C.  Telemetry is on by default (``serve.*`` counters,
latency histograms, per-request spans — histograms reservoir-bounded
so a long-lived server's memory stays flat); ``--json-out`` appends
one ``repro.obs/v1`` record with the session's telemetry at shutdown.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import obs
from repro.serve.http import run_server
from repro.serve.service import PlanService, ServeConfig

#: Long-running server: bound histogram memory unless the env says
#: otherwise (exact histograms grow one float per request).
DEFAULT_HIST_MAX = 4096


def main(argv: Optional[List[str]] = None) -> int:
    """Parse flags, start the service, serve until interrupted."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Moment planning service (repro.serve/v1 over HTTP)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8421)
    parser.add_argument(
        "--workers", type=int, default=2, help="solver threads"
    )
    parser.add_argument(
        "--queue-size", type=int, default=16, help="bounded request queue"
    )
    parser.add_argument(
        "--cache-size", type=int, default=64, help="LRU plan-cache entries"
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="default per-request timeout (seconds)",
    )
    parser.add_argument(
        "--solver-processes",
        type=int,
        default=0,
        help="route solves through an N-process pool (0 = solve on the "
        "worker threads); N cold solves then run on N cores",
    )
    parser.add_argument(
        "--cache-path",
        help="persist solved plans to this JSONL segment "
        "(repro.servecache/v1) and reload them on restart",
    )
    parser.add_argument(
        "--store-max-entries",
        type=int,
        default=4096,
        help="live-entry bound of the persistent store",
    )
    parser.add_argument(
        "--job-ttl",
        type=float,
        default=300.0,
        help="seconds finished jobs stay pollable via GET /v1/jobs/<id>",
    )
    parser.add_argument(
        "--no-telemetry",
        action="store_true",
        help="skip obs.enable() (serve.* metrics off)",
    )
    parser.add_argument(
        "--json-out",
        help="append one repro.obs/v1 record with the session telemetry "
        "at shutdown",
    )
    args = parser.parse_args(argv)

    telemetry = None
    if not args.no_telemetry:
        cap = obs.default_histogram_max_samples() or DEFAULT_HIST_MAX
        telemetry = obs.enable(histogram_max_samples=cap)

    service = PlanService(
        ServeConfig(
            workers=args.workers,
            queue_size=args.queue_size,
            cache_size=args.cache_size,
            default_timeout_s=args.timeout,
            solver_processes=args.solver_processes,
            cache_path=args.cache_path,
            store_max_entries=args.store_max_entries,
            job_ttl_s=args.job_ttl,
        )
    )
    try:
        run_server(
            service,
            host=args.host,
            port=args.port,
            ready_message=(
                "repro.serve listening on {url} "
                f"(workers={args.workers}, queue={args.queue_size}, "
                f"cache={args.cache_size}, "
                f"solver_processes={args.solver_processes}, "
                f"cache_path={args.cache_path})"
            ),
        )
    finally:
        if args.json_out and telemetry is not None:
            record = obs.build_run_record(
                run_id="serve",
                config={
                    "benchmark": "serve",
                    "workers": args.workers,
                    "queue_size": args.queue_size,
                    "cache_size": args.cache_size,
                    "solver_processes": args.solver_processes,
                    "cache_path": args.cache_path,
                },
                telemetry=telemetry,
                meta=obs.run_metadata(stats=service.metrics_snapshot()),
            )
            obs.append_jsonl(args.json_out, record)
    return 0


if __name__ == "__main__":
    sys.exit(main())
