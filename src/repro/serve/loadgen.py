"""Synthetic traffic driver for the plan service.

Locust-style, stdlib-only: ``closed`` mode runs N concurrent clients
that each fire their next request the moment the previous one returns;
``open`` mode draws Poisson arrivals at ``--rate`` req/s from a seeded
:func:`repro.utils.rng.ensure_rng` stream and dispatches each request
on its own thread regardless of completions (the arrival process does
not slow down when the server does — that is the point of open-loop
load testing).

The request mix is ``--mix`` variants of one tiny-dataset planning
request differing only in their ``seed`` field — distinct cache keys,
identical cost — cycled round-robin.  With ``--warm`` (default) each
variant is solved once before the timed window, so the window measures
the steady state cache-hit path and the warm-up measures cold-solve
latency; ``--no-warm`` measures the mixed cold+hit regime.

``--json-out`` appends one ``repro.obs/v1`` record per repetition with
``derived.bench`` scalars (``throughput_rps``, ``latency_p95_s``,
``hit_latency_p50_s``, ``cold_latency_p50_s``, ``hit_speedup``,
``errors``...) — directly ingestable by ``python -m repro.warehouse``
and gateable with its CI machinery (see EXPERIMENTS.md "Serving").

Run it against a live server (``--url``) or let it spawn an in-process
one (``--spawn``)::

    python -m repro.serve.loadgen --spawn --clients 100 --requests 400
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.serve.schema import SERVE_SCHEMA
from repro.utils.rng import derive_seed, ensure_rng


@dataclass
class LoadConfig:
    """One load-run description (CLI flags map 1:1)."""

    url: str
    clients: int = 8
    requests: int = 64
    mode: str = "closed"
    #: Open-loop arrival rate (req/s); ignored in closed mode.
    rate: float = 50.0
    #: Distinct request variants (distinct cache keys) in the mix.
    mix: int = 4
    seed: int = 0
    #: Solve each variant once before the timed window.
    warm: bool = True
    timeout_s: float = 60.0
    machine: str = "machine_a"
    num_gpus: int = 2
    num_ssds: int = 3
    sample_batches: int = 3
    vertices: int = 2000
    #: Serial cache-hit probes after the timed window (isolates the
    #: hit path's service time from the window's queueing delay).
    probes: int = 16
    #: Warm-phase concurrency.  1 = solve the mix serially (per-solve
    #: cold latency); N > 1 fires the whole mix N-at-a-time and reports
    #: ``cold_throughput_rps`` — the number that scales with
    #: ``--solver-processes``.
    cold_concurrency: int = 1
    #: "plan" = POST /v1/plan; "jobs" = POST /v1/jobs + long-poll.
    api: str = "plan"


#: Cache outcomes that count as hits (LRU or persistent store).
HIT_OUTCOMES = ("hit", "disk")


@dataclass
class Sample:
    """One request's outcome."""

    status: int
    latency_s: float
    cache: Optional[str] = None
    #: Stable error code from the unified envelope (non-200 only).
    error_code: Optional[str] = None


@dataclass
class LoadReport:
    """Aggregated outcome of one load run."""

    config: LoadConfig
    duration_s: float
    samples: List[Sample] = field(default_factory=list)
    cold_latencies: List[float] = field(default_factory=list)
    #: Serial post-window cache-hit latencies (no queueing delay).
    probe_latencies: List[float] = field(default_factory=list)
    #: Wall-clock of the (possibly concurrent) warm phase.
    cold_burst_s: float = 0.0

    @property
    def errors(self) -> int:
        """Samples that did not return HTTP 200."""
        return sum(1 for s in self.samples if s.status != 200)

    def error_codes(self) -> Dict[str, int]:
        """Non-200 sample counts keyed by unified-envelope code."""
        counts: Dict[str, int] = {}
        for s in self.samples:
            if s.status != 200:
                code = s.error_code or "transport"
                counts[code] = counts.get(code, 0) + 1
        return counts

    def latencies(self, cache: Optional[str] = None) -> List[float]:
        """Latencies of OK samples (optionally one cache outcome)."""
        return [
            s.latency_s
            for s in self.samples
            if s.status == 200 and (cache is None or s.cache == cache)
        ]

    def data(self) -> Dict[str, float]:
        """Warehouse-ready scalars (``derived.bench`` of the record)."""
        ok = self.latencies()
        hits = [
            s.latency_s
            for s in self.samples
            if s.status == 200 and s.cache in HIT_OUTCOMES
        ]
        out = {
            "requests": float(len(self.samples)),
            "errors": float(self.errors),
            "duration_s": self.duration_s,
            "throughput_rps": (
                len(ok) / self.duration_s if self.duration_s > 0 else 0.0
            ),
            "latency_p50_s": percentile(ok, 50),
            "latency_p95_s": percentile(ok, 95),
            "latency_max_s": max(ok) if ok else float("nan"),
        }
        if ok:
            out["hit_ratio"] = len(hits) / len(ok)
        if hits:
            out["hit_latency_p50_s"] = percentile(hits, 50)
        if self.cold_latencies and self.cold_burst_s > 0:
            out["cold_throughput_rps"] = (
                len(self.cold_latencies) / self.cold_burst_s
            )
        if self.cold_latencies:
            out["cold_latency_p50_s"] = percentile(self.cold_latencies, 50)
        if self.probe_latencies:
            out["hit_probe_p50_s"] = percentile(self.probe_latencies, 50)
        # speedup compares per-request *service* times: serial cold
        # solves vs serial hit probes (in-window hit latency also
        # carries the closed-loop queueing delay of `clients` peers)
        if self.probe_latencies and self.cold_latencies:
            probe_p50 = percentile(self.probe_latencies, 50)
            if probe_p50 > 0:
                out["hit_speedup"] = (
                    percentile(self.cold_latencies, 50) / probe_p50
                )
        return out

    def summary(self) -> str:
        """One human-readable result block."""
        d = self.data()
        lines = [
            f"loadgen: {self.config.mode}-loop, "
            f"{self.config.clients} clients, {self.config.api} API, "
            f"{len(self.samples)} requests in {self.duration_s:.2f}s",
            f"  throughput: {d['throughput_rps']:.1f} req/s, "
            f"hit ratio: {d.get('hit_ratio', float('nan')):.2f}, "
            f"errors: {self.errors}",
            f"  latency p50/p95/max: {d['latency_p50_s'] * 1e3:.2f} / "
            f"{d['latency_p95_s'] * 1e3:.2f} / "
            f"{d['latency_max_s'] * 1e3:.2f} ms",
        ]
        if self.errors:
            codes = ", ".join(
                f"{code}={n}" for code, n in sorted(self.error_codes().items())
            )
            lines.append(f"  error codes: {codes}")
        if "cold_throughput_rps" in d:
            lines.append(
                f"  cold burst: {len(self.cold_latencies)} solves in "
                f"{self.cold_burst_s:.2f}s "
                f"({d['cold_throughput_rps']:.2f} solves/s at "
                f"concurrency {self.config.cold_concurrency})"
            )
        if "cold_latency_p50_s" in d and "hit_probe_p50_s" in d:
            lines.append(
                f"  cold solve p50 {d['cold_latency_p50_s'] * 1e3:.1f} ms "
                f"vs serial hit p50 {d['hit_probe_p50_s'] * 1e3:.2f} ms "
                f"({d.get('hit_speedup', float('nan')):.0f}x)"
            )
        return "\n".join(lines)


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (NaN on empty input)."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q / 100 * len(ordered))) - 1))
    if q >= 100:
        rank = len(ordered) - 1
    return ordered[rank]


def build_requests(config: LoadConfig) -> List[Dict]:
    """The request mix: ``mix`` variants differing only by plan seed."""
    base = {
        "schema": SERVE_SCHEMA,
        "dataset": {
            "key": "TINY",
            "num_vertices": config.vertices,
            "seed": config.seed,
        },
        "machine": config.machine,
        "num_gpus": config.num_gpus,
        "num_ssds": config.num_ssds,
        "sample_batches": config.sample_batches,
        "timeout_s": config.timeout_s,
    }
    return [
        dict(base, seed=config.seed + i) for i in range(max(1, config.mix))
    ]


def _error_code(raw: bytes) -> Optional[str]:
    """The stable ``error.code`` of an error body (None if unparsable)."""
    try:
        body = json.loads(raw.decode("utf-8"))
        code = body.get("error", {}).get("code")
        return code if isinstance(code, str) else None
    except (UnicodeDecodeError, json.JSONDecodeError, AttributeError):
        return None


def _request_json(
    url: str, data: Optional[bytes], timeout_s: float, method: str
) -> Tuple[int, Optional[Dict], Optional[str]]:
    """(status, body, error_code) for one HTTP exchange; never raises."""
    req = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"},
        method=method,
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout_s) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8")), None
    except urllib.error.HTTPError as err:
        return err.code, None, _error_code(err.read())
    except (urllib.error.URLError, OSError, ValueError):
        return -1, None, None


def post_plan(
    url: str, payload: Dict, timeout_s: float = 60.0
) -> Sample:
    """POST one planning request; never raises (errors become samples)."""
    body = json.dumps(payload).encode("utf-8")
    t0 = time.perf_counter()
    status, data, code = _request_json(
        url.rstrip("/") + "/v1/plan", body, timeout_s, "POST"
    )
    return Sample(
        status,
        time.perf_counter() - t0,
        data.get("cache") if data else None,
        error_code=code,
    )


def post_job(url: str, payload: Dict, timeout_s: float = 60.0) -> Sample:
    """Solve one request via the jobs API: submit, then long-poll.

    The sample's latency spans submit through terminal state — the
    apples-to-apples number against :func:`post_plan` — and a job that
    ends ``failed``/``expired`` becomes a 500/504-shaped error sample
    with the job's error code.
    """
    base = url.rstrip("/")
    body = json.dumps(payload).encode("utf-8")
    t0 = time.perf_counter()
    status, data, code = _request_json(
        base + "/v1/jobs", body, timeout_s, "POST"
    )
    if status != 202 or data is None:
        return Sample(status, time.perf_counter() - t0, error_code=code)
    job = data.get("job", {})
    job_id = job.get("id")
    deadline = t0 + timeout_s
    while job.get("status") not in ("done", "failed", "expired"):
        remaining = deadline - time.perf_counter()
        if remaining <= 0:
            return Sample(
                504, time.perf_counter() - t0, error_code="timeout"
            )
        wait = max(0.05, min(remaining, 30.0))
        status, data, code = _request_json(
            f"{base}/v1/jobs/{job_id}?wait={wait:.3f}", None,
            timeout_s, "GET",
        )
        if status != 200 or data is None:
            return Sample(status, time.perf_counter() - t0, error_code=code)
        job = data.get("job", {})
    elapsed = time.perf_counter() - t0
    if job.get("status") == "done":
        return Sample(200, elapsed, data.get("cache"))
    job_error = job.get("error") or {}
    code = job_error.get("code") or "internal"
    return Sample(504 if code == "timeout" else 500, elapsed, error_code=code)


def run_load(config: LoadConfig) -> LoadReport:
    """Execute one load run and aggregate the outcome."""
    variants = build_requests(config)
    fire_one = post_job if config.api == "jobs" else post_plan
    cold: List[float] = []
    cold_lock = threading.Lock()
    cold_burst_s = 0.0

    def _warm_one(payload: Dict) -> None:
        sample = fire_one(config.url, payload, config.timeout_s)
        if sample.status == 200 and sample.cache == "miss":
            with cold_lock:
                cold.append(sample.latency_s)

    if config.warm:
        burst_t0 = time.perf_counter()
        if config.cold_concurrency > 1:
            # fire the whole mix N-at-a-time: wall clock over the burst
            # is the cold *throughput* the solver pool determines
            pending = list(variants)
            while pending:
                batch = pending[: config.cold_concurrency]
                pending = pending[config.cold_concurrency:]
                threads = [
                    threading.Thread(
                        target=_warm_one, args=(p,), daemon=True
                    )
                    for p in batch
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
        else:
            for payload in variants:
                _warm_one(payload)
        cold_burst_s = time.perf_counter() - burst_t0

    samples: List[Sample] = []
    lock = threading.Lock()
    counter = {"next": 0}

    def _take_index() -> Optional[int]:
        with lock:
            i = counter["next"]
            if i >= config.requests:
                return None
            counter["next"] = i + 1
            return i

    def _fire(i: int) -> None:
        sample = fire_one(
            config.url, variants[i % len(variants)], config.timeout_s
        )
        with lock:
            samples.append(sample)

    t0 = time.perf_counter()
    if config.mode == "open":
        rng = ensure_rng(config.seed)
        gaps = rng.exponential(
            1.0 / max(config.rate, 1e-9), size=config.requests
        )
        threads = []
        for i in range(config.requests):
            if i:
                time.sleep(float(gaps[i]))
            t = threading.Thread(target=_fire, args=(i,), daemon=True)
            t.start()
            threads.append(t)
        for t in threads:
            t.join(timeout=config.timeout_s)
    else:

        def _client() -> None:
            while True:
                i = _take_index()
                if i is None:
                    return
                _fire(i)

        threads = [
            threading.Thread(target=_client, daemon=True)
            for _ in range(config.clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    duration = time.perf_counter() - t0

    probes: List[float] = []
    for i in range(config.probes if config.warm else 0):
        sample = fire_one(
            config.url, variants[i % len(variants)], config.timeout_s
        )
        if sample.status == 200 and sample.cache in HIT_OUTCOMES:
            probes.append(sample.latency_s)
    return LoadReport(
        config=config,
        duration_s=duration,
        samples=samples,
        cold_latencies=cold,
        probe_latencies=probes,
        cold_burst_s=cold_burst_s,
    )


def report_record(
    report: LoadReport, seed: int, repetition: int
) -> Dict[str, object]:
    """One warehouse-ingestable ``repro.obs/v1`` record of a load run."""
    cfg = report.config
    record = obs.build_run_record(
        run_id="serve_loadgen",
        config={
            "benchmark": "serve_loadgen",
            "mode": cfg.mode,
            "api": cfg.api,
            "clients": cfg.clients,
            "requests": cfg.requests,
            "mix": cfg.mix,
            "machine": cfg.machine,
            "num_gpus": cfg.num_gpus,
            "num_ssds": cfg.num_ssds,
            "cold_concurrency": cfg.cold_concurrency,
        },
        derived={"bench": report.data()},
        meta=obs.run_metadata(seed=seed, repetition=repetition),
    )
    record["elapsed_s"] = report.duration_s
    return record


def _spawn_server(args) -> Tuple[str, object]:
    """Start an in-process service + HTTP server; returns (url, stop)."""
    from repro.serve.http import make_server, server_url
    from repro.serve.service import PlanService, ServeConfig

    service = PlanService(
        ServeConfig(
            workers=args.workers,
            queue_size=args.queue_size,
            cache_size=args.cache_size,
            solver_processes=args.solver_processes,
            cache_path=args.cache_path,
        )
    ).start()
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    def _stop() -> None:
        server.shutdown()
        server.server_close()
        service.stop()

    return server_url(server), _stop


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (``python -m repro.serve.loadgen``)."""
    parser = argparse.ArgumentParser(
        description="synthetic traffic driver for repro.serve"
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--url", help="base URL of a running server")
    target.add_argument(
        "--spawn",
        action="store_true",
        help="spawn an in-process server on an ephemeral port",
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--mode", choices=("closed", "open"), default="closed")
    parser.add_argument(
        "--rate", type=float, default=50.0, help="open-loop arrivals/s"
    )
    parser.add_argument("--mix", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--reps", type=int, default=1)
    parser.add_argument("--no-warm", action="store_true")
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument("--machine", default="machine_a")
    parser.add_argument("--gpus", type=int, default=2)
    parser.add_argument("--ssds", type=int, default=3)
    parser.add_argument("--sample-batches", type=int, default=3)
    parser.add_argument("--vertices", type=int, default=2000)
    parser.add_argument(
        "--json-out", help="append one repro.obs/v1 record per repetition"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if any repetition saw a non-200 response",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="--spawn: service workers"
    )
    parser.add_argument(
        "--queue-size", type=int, default=64, help="--spawn: queue bound"
    )
    parser.add_argument(
        "--cache-size", type=int, default=64, help="--spawn: cache entries"
    )
    parser.add_argument(
        "--solver-processes",
        type=int,
        default=0,
        help="--spawn: solver process pool size (0 = in-thread)",
    )
    parser.add_argument(
        "--cache-path", help="--spawn: persistent plan-store path"
    )
    parser.add_argument(
        "--api",
        choices=("plan", "jobs"),
        default="plan",
        help="drive POST /v1/plan (sync) or the jobs API (submit+poll)",
    )
    parser.add_argument(
        "--cold-concurrency",
        type=int,
        default=1,
        help="fire the warm-phase mix N-at-a-time and report "
        "bench:cold_throughput_rps",
    )
    args = parser.parse_args(argv)

    stop = None
    url = args.url
    if args.spawn:
        url, stop = _spawn_server(args)
        print(f"spawned in-process server at {url}", flush=True)

    failures = 0
    try:
        for rep in range(max(1, args.reps)):
            rep_seed = derive_seed(args.seed, rep)
            config = LoadConfig(
                url=url,
                clients=args.clients,
                requests=args.requests,
                mode=args.mode,
                rate=args.rate,
                mix=args.mix,
                seed=int(rep_seed),
                warm=not args.no_warm,
                timeout_s=args.timeout,
                machine=args.machine,
                num_gpus=args.gpus,
                num_ssds=args.ssds,
                sample_batches=args.sample_batches,
                vertices=args.vertices,
                cold_concurrency=args.cold_concurrency,
                api=args.api,
            )
            report = run_load(config)
            failures += report.errors
            print(f"-- repetition {rep} --")
            print(report.summary())
            if args.json_out:
                obs.append_jsonl(
                    args.json_out, report_record(report, int(rep_seed), rep)
                )
    finally:
        if stop is not None:
            stop()
    if args.check and failures:
        print(f"FAIL: {failures} non-200 responses", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
