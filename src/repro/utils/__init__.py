"""Shared utilities: unit constants, RNG helpers, validation, reporting."""

from repro.utils.units import (
    KiB,
    MiB,
    GiB,
    TiB,
    KB,
    MB,
    GB,
    TB,
    fmt_bytes,
    fmt_rate,
    fmt_time,
)
from repro.utils.rng import ensure_rng
from repro.utils.validation import (
    check_positive,
    check_nonnegative,
    check_in_range,
    check_fraction,
)
from repro.utils.report import Table

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "KB",
    "MB",
    "GB",
    "TB",
    "fmt_bytes",
    "fmt_rate",
    "fmt_time",
    "ensure_rng",
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_fraction",
    "Table",
]
