"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed,
an existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy).
``ensure_rng`` normalises all three so call sites stay one-liners.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    Passing an existing generator returns it unchanged, so a single
    generator can be threaded through a pipeline for reproducibility.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(base: SeedLike, repetition: int) -> int:
    """A stable integer seed for repetition ``repetition`` of a run.

    Repetition 0 is the canonical run and keeps the base seed
    unchanged (bit-identical to the one-shot path); later repetitions
    derive independent streams through :class:`numpy.random.SeedSequence`
    spawn keys, so the mapping is stable across processes and machines
    (the warehouse relies on that to key run-table rows on seed).

    A ``Generator`` base is rejected: repetitions need a value that can
    be recorded and replayed.
    """
    if isinstance(base, np.random.Generator):
        raise TypeError(
            "derive_seed needs an integer (or None) base seed, not a "
            "Generator — repetitions must be recordable"
        )
    if repetition < 0:
        raise ValueError(f"repetition must be >= 0, got {repetition}")
    root = 0 if base is None else int(base)
    if repetition == 0:
        return root
    ss = np.random.SeedSequence(root, spawn_key=(repetition,))
    return int(ss.generate_state(1, dtype=np.uint32)[0])


def spawn_rngs(seed: SeedLike, n: int) -> list:
    """Derive ``n`` independent child generators from one seed.

    Used when several simulated GPUs each need their own stream that is
    stable regardless of scheduling order.
    """
    root = ensure_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
