"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed,
an existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy).
``ensure_rng`` normalises all three so call sites stay one-liners.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    Passing an existing generator returns it unchanged, so a single
    generator can be threaded through a pipeline for reproducibility.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list:
    """Derive ``n`` independent child generators from one seed.

    Used when several simulated GPUs each need their own stream that is
    stable regardless of scheduling order.
    """
    root = ensure_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
