"""Small argument-validation helpers used across the library.

These raise ``ValueError`` with the offending parameter name so errors
surface at the public-API boundary rather than deep inside a simulation.
"""

from __future__ import annotations

import math


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0`` (and finite)."""
    if not (isinstance(value, (int, float)) and math.isfinite(value)) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Require ``value >= 0`` (and finite)."""
    if not (isinstance(value, (int, float)) and math.isfinite(value)) or value < 0:
        raise ValueError(f"{name} must be a non-negative finite number, got {value!r}")
    return value


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Require ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Require a proportion in [0, 1]."""
    return check_in_range(name, value, 0.0, 1.0)
