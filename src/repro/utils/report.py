"""Plain-text tabular reporting for benchmark harnesses.

The benchmark scripts print the same rows/series the paper's figures
report; :class:`Table` renders them with aligned columns so the output is
diffable between runs.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


class Table:
    """An append-only text table with aligned columns.

    >>> t = Table(["dataset", "epoch (s)"])
    >>> t.add_row(["IG", 14.9])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        if not columns:
            raise ValueError("Table needs at least one column")
        self.title = title
        self.columns = [str(c) for c in columns]
        self.rows: List[List[str]] = []

    def add_row(self, row: Iterable) -> None:
        """Append one row (cell count must match the columns)."""
        cells = [self._fmt(c) for c in row]
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(cells)

    @staticmethod
    def _fmt(cell) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1000 or abs(cell) < 0.01:
                return f"{cell:.3g}"
            return f"{cell:.3f}".rstrip("0").rstrip(".")
        return str(cell)

    def render(self) -> str:
        """The table as aligned plain text."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells):
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        out = []
        if self.title:
            out.append(self.title)
        out.append(line(self.columns))
        out.append(line(["-" * w for w in widths]))
        out.extend(line(row) for row in self.rows)
        return "\n".join(out)

    def print(self) -> None:
        """Print :meth:`render` to stdout."""
        print(self.render())

    def __len__(self) -> int:
        return len(self.rows)
