"""Byte/rate unit constants and human-readable formatting.

All bandwidths inside the library are expressed in **bytes per second**
and all sizes in **bytes**, so these constants are the only place where
decimal vs. binary prefixes matter.
"""

from __future__ import annotations

# Binary (IEC) prefixes -- used for memory and storage capacities.
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

# Decimal (SI) prefixes -- used for link bandwidths, as vendors do.
KB = 1000
MB = 1000 * KB
GB = 1000 * MB
TB = 1000 * GB

_BIN_STEPS = [(TiB, "TiB"), (GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")]


def fmt_bytes(n: float) -> str:
    """Format a byte count with a binary prefix, e.g. ``fmt_bytes(2*GiB)``."""
    if n < 0:
        return "-" + fmt_bytes(-n)
    for step, suffix in _BIN_STEPS:
        if n >= step:
            return f"{n / step:.2f} {suffix}"
    return f"{n:.0f} B"


def fmt_rate(bytes_per_s: float) -> str:
    """Format a bandwidth in GB/s (decimal), the unit the paper reports."""
    return f"{bytes_per_s / GB:.2f} GB/s"


def fmt_time(seconds: float) -> str:
    """Format a duration with an adaptive unit (us/ms/s)."""
    if seconds < 0:
        return "-" + fmt_time(-seconds)
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.2f} us"
