"""Lightweight span tracing with nesting.

A :class:`Span` always measures its own wall time (two
``perf_counter`` calls), so code can read ``span.duration`` as its one
source of truth whether or not telemetry is enabled; *recording* into a
:class:`Tracer` only happens when one is attached.  Spans nest via the
tracer's stack: entering a span makes it the parent of spans opened
before it exits, giving the JSONL record and the report renderer a
proper tree.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Dict, List, Optional


class Span:
    """One timed region, optionally recorded into a tracer."""

    __slots__ = (
        "name",
        "attrs",
        "start",
        "end",
        "depth",
        "parent",
        "index",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        attrs: Optional[Dict[str, object]] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.name = name
        self.attrs = attrs or {}
        self.start: float = 0.0
        self.end: Optional[float] = None
        self.depth: int = 0
        self.parent: Optional[int] = None
        self.index: Optional[int] = None
        self._tracer = tracer

    @property
    def duration(self) -> float:
        """Seconds between enter and exit (0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attrs: object) -> "Span":
        """Attach result attributes (candidate counts, byte totals...)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._open(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = time.perf_counter()
        if self._tracer is not None:
            self._tracer._close(self)

    def to_dict(self, t0: float = 0.0) -> Dict[str, object]:
        """JSON-ready form with times relative to the tracer's birth."""
        out: Dict[str, object] = {
            "name": self.name,
            "start_s": self.start - t0,
            "duration_s": self.duration,
            "depth": self.depth,
            "parent": self.parent,
        }
        if self.attrs:
            out["attrs"] = {k: _jsonable(v) for k, v in self.attrs.items()}
        return out


def _jsonable(value):
    """Coerce span attributes to JSON-safe scalars."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    try:  # numpy scalars
        return value.item()
    except AttributeError:
        return str(value)


class Tracer:
    """Collects finished spans of one telemetry session, in start order."""

    def __init__(self) -> None:
        self.t0 = time.perf_counter()
        self.wall_t0 = time.time()
        self.spans: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str, **attrs: object) -> Span:
        """Create a recorded span (enter it with ``with``)."""
        return Span(name, attrs, tracer=self)

    # -- tracer internals (called by Span.__enter__/__exit__) ----------
    def _open(self, span: Span) -> None:
        span.index = len(self.spans)
        span.depth = len(self._stack)
        span.parent = self._stack[-1].index if self._stack else None
        self.spans.append(span)
        self._stack.append(span)

    def _close(self, span: Span) -> None:
        # tolerate out-of-order exits (generator-held spans): pop
        # through the stack until this span is gone
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    # -- queries --------------------------------------------------------
    def mark(self) -> int:
        """Position marker: spans recorded so far (for run scoping)."""
        return len(self.spans)

    def to_dicts(self, since: int = 0) -> List[Dict[str, object]]:
        """Finished-or-open spans from ``since`` on, JSON-ready."""
        return [s.to_dict(self.t0) for s in self.spans[since:]]

    def find(self, name: str) -> List[Span]:
        """All spans with ``name``, in start order."""
        return [s for s in self.spans if s.name == name]

    def total_seconds(self, name: str) -> float:
        """Summed duration of every span named ``name``."""
        return sum(s.duration for s in self.find(name))


def traced(
    name: Optional[str] = None, **attrs: object
) -> Callable[[Callable], Callable]:
    """Decorator: run the function inside a span.

    The span is named after the function unless ``name`` is given.  The
    wrapper asks :mod:`repro.obs` for the active telemetry at call time,
    so enabling/disabling telemetry after decoration behaves correctly.
    """

    def decorate(fn: Callable) -> Callable:
        span_name = name or f"{fn.__module__.split('.')[-1]}.{fn.__qualname__}"

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            from repro import obs

            with obs.span(span_name, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
