"""Process-wide metrics primitives: counters, gauges, histograms.

A :class:`MetricsRegistry` owns every metric of one telemetry session.
Metrics are identified by a name plus optional string labels
(``registry.counter("sim.tier_bytes", tier="ssd")``); the rendered form
``sim.tier_bytes{tier=ssd}`` is what JSONL records and reports show.

Registries are plain containers — the decision of whether telemetry is
on at all lives in :mod:`repro.obs` (module-level helpers no-op when no
registry is active, which is the hot-path fast path).
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def metric_key(name: str, labels: Mapping[str, object]) -> MetricKey:
    """Canonical (name, sorted-labels) key for one metric instance."""
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def render_key(key: MetricKey) -> str:
    """Human/JSON form: ``name`` or ``name{k=v,k2=v2}``."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def parse_key(rendered: str) -> MetricKey:
    """Inverse of :func:`render_key` (used by record round-trips)."""
    if "{" not in rendered:
        return (rendered, ())
    name, _, rest = rendered.partition("{")
    items = []
    for pair in rest.rstrip("}").split(","):
        if pair:
            k, _, v = pair.partition("=")
            items.append((k, v))
    return (name, tuple(sorted(items)))


@dataclass
class Counter:
    """Monotonically increasing total (bytes, candidates, stalls...)."""

    key: MetricKey
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the running total."""
        if amount < 0:
            raise ValueError(f"counter {render_key(self.key)}: inc({amount})")
        self.value += amount


@dataclass
class Gauge:
    """Last-write-wins instantaneous value (utilization, bandwidth)."""

    key: MetricKey
    value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with the latest observation."""
        self.value = float(value)


@dataclass
class Histogram:
    """Sample store with percentile queries: exact by default, bounded
    on request.

    Short simulated runs observe at most thousands of samples per
    metric, so the default keeps every value (exact percentiles,
    delta-able snapshots).  Long simulations can cap memory with
    ``max_samples``: past the cap, reservoir sampling (Algorithm R with
    a per-key deterministic RNG) keeps a uniform sample for the
    percentile queries while ``count``/``total``/``mean`` stay *exact*
    via separate accumulators.
    """

    key: MetricKey
    values: List[float] = field(default_factory=list)
    #: None = keep every sample (exact mode, the default); an int caps
    #: ``values`` at that many reservoir-sampled entries.
    max_samples: Optional[int] = None
    _seen: int = field(init=False, default=0)
    _total: float = field(init=False, default=0.0)
    _rng: Optional[random.Random] = field(init=False, default=None)

    def __post_init__(self) -> None:
        if self.max_samples is not None and self.max_samples < 1:
            raise ValueError(
                f"max_samples must be >= 1, got {self.max_samples}"
            )
        # a histogram may be seeded with initial values (the stats()
        # sub-window construction does this)
        self._seen = len(self.values)
        self._total = float(sum(self.values))

    @property
    def sampled(self) -> bool:
        """Whether the reservoir has dropped any sample."""
        return self._seen > len(self.values)

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self._seen += 1
        self._total += value
        if self.max_samples is None or len(self.values) < self.max_samples:
            self.values.append(value)
            return
        if self._rng is None:
            # deterministic per-key stream: runs are reproducible
            self._rng = random.Random(
                zlib.crc32(render_key(self.key).encode())
            )
        j = self._rng.randrange(self._seen)
        if j < self.max_samples:
            self.values[j] = value

    @property
    def count(self) -> int:
        """Exact number of observations (not the reservoir size)."""
        return self._seen

    @property
    def total(self) -> float:
        """Exact running sum of every observation."""
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._seen if self._seen else math.nan

    def percentile(self, q: float) -> float:
        """Exact q-th percentile (q in [0, 100], linear interpolation)."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile q={q} outside [0, 100]")
        if not self.values:
            return math.nan
        ordered = sorted(self.values)
        if len(ordered) == 1:
            return ordered[0]
        pos = (q / 100.0) * (len(ordered) - 1)
        lo = int(math.floor(pos))
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def stats(self, since: int = 0) -> Dict[str, float]:
        """Summary statistics over ``values[since:]`` (JSON-ready).

        In exact mode ``since`` selects the delta window precisely.
        Once the reservoir has dropped samples the per-observation
        window no longer exists; the percentiles then come from the
        whole uniform sample, the count stays the exact delta, and the
        snapshot is marked ``"approx": True``.
        """
        if self.sampled:
            window = list(self.values)
            count = self._seen - since
            if count <= 0 or not window:
                return {"count": 0}
        else:
            window = self.values[since:]
            count = len(window)
            if not window:
                return {"count": 0}
        ordered = sorted(window)
        sub = Histogram(self.key, ordered)
        out = {
            "count": count,
            "sum": float(sum(window)),
            "mean": float(sum(window) / len(window)),
            "min": ordered[0],
            "max": ordered[-1],
            "p50": sub.percentile(50),
            "p90": sub.percentile(90),
            "p99": sub.percentile(99),
        }
        if self.sampled:
            out["approx"] = True
        return out


class MetricsRegistry:
    """All metrics of one telemetry session.

    ``histogram_max_samples`` caps every histogram's stored samples
    with the opt-in reservoir (see :class:`Histogram`); ``None`` (the
    default) keeps exact mode, right for short runs.
    """

    def __init__(
        self, histogram_max_samples: Optional[int] = None
    ) -> None:
        self.counters: Dict[MetricKey, Counter] = {}
        self.gauges: Dict[MetricKey, Gauge] = {}
        self.histograms: Dict[MetricKey, Histogram] = {}
        self.histogram_max_samples = histogram_max_samples

    # -- metric factories (get-or-create) ------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        key = metric_key(name, labels)
        try:
            return self.counters[key]
        except KeyError:
            c = self.counters[key] = Counter(key)
            return c

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = metric_key(name, labels)
        try:
            return self.gauges[key]
        except KeyError:
            g = self.gauges[key] = Gauge(key)
            return g

    def histogram(self, name: str, **labels: object) -> Histogram:
        key = metric_key(name, labels)
        try:
            return self.histograms[key]
        except KeyError:
            h = self.histograms[key] = Histogram(
                key, max_samples=self.histogram_max_samples
            )
            return h

    # -- queries --------------------------------------------------------
    def counter_values(self, name: str) -> Dict[MetricKey, float]:
        """All counters with ``name``, keyed by full metric key."""
        return {
            k: c.value for k, c in self.counters.items() if k[0] == name
        }

    def mark(self) -> Dict[str, Dict[MetricKey, float]]:
        """Opaque position marker for :meth:`snapshot` deltas."""
        return {
            "counters": {k: c.value for k, c in self.counters.items()},
            "hist_counts": {
                k: float(h.count) for k, h in self.histograms.items()
            },
        }

    def snapshot(
        self, since: Optional[Dict[str, Dict[MetricKey, float]]] = None
    ) -> Dict[str, Dict[str, object]]:
        """JSON-ready state, optionally as a delta from a prior mark.

        Counters subtract the marked value, histograms report stats of
        the samples observed after the mark, gauges always report their
        latest value (an instantaneous reading has no meaningful delta).
        Zero-delta counters are dropped from delta snapshots.
        """
        base_c = (since or {}).get("counters", {})
        base_h = (since or {}).get("hist_counts", {})
        counters = {}
        for key, c in self.counters.items():
            value = c.value - base_c.get(key, 0.0)
            if since is None or value != 0.0:
                counters[render_key(key)] = value
        histograms = {}
        for key, h in self.histograms.items():
            stats = h.stats(since=int(base_h.get(key, 0.0)))
            if since is None or stats["count"]:
                histograms[render_key(key)] = stats
        return {
            "counters": counters,
            "gauges": {render_key(k): g.value for k, g in self.gauges.items()},
            "histograms": histograms,
        }

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)
