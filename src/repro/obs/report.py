"""Human-readable rendering of telemetry: span tree + metric tables.

``python -m repro.experiments <id> --trace`` prints these after each
experiment; they also render any JSONL record produced earlier
(:func:`render_record`), so a saved run can be re-inspected without
re-running anything.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.metrics import parse_key
from repro.utils.report import Table
from repro.utils.units import fmt_bytes, fmt_time


def render_span_tree(
    spans: List[Dict[str, object]],
    min_duration_s: float = 0.0,
    max_spans: int = 200,
) -> str:
    """Indented span tree with durations and self-times.

    ``spans`` is the JSON form (``Tracer.to_dicts`` / a record's
    ``spans`` field).  Repeated siblings beyond ``max_spans`` are
    elided with a count so per-step spans don't drown the tree.
    """
    if not spans:
        return "(no spans recorded)"
    children: Dict[Optional[int], List[int]] = {}
    for i, s in enumerate(spans):
        children.setdefault(s.get("parent"), []).append(i)
    lines: List[str] = []

    def walk(idx: int) -> None:
        s = spans[idx]
        if s["duration_s"] < min_duration_s:
            return
        kids = children.get(idx, [])
        child_time = sum(spans[k]["duration_s"] for k in kids)
        self_s = max(0.0, s["duration_s"] - child_time)
        note = ""
        attrs = s.get("attrs") or {}
        if attrs:
            inner = ", ".join(f"{k}={v}" for k, v in attrs.items())
            note = f"  [{inner}]"
        lines.append(
            f"{'  ' * int(s['depth'])}{s['name']}: "
            f"{fmt_time(s['duration_s'])}"
            + (f" (self {fmt_time(self_s)})" if kids else "")
            + note
        )
        for k in kids:
            walk(k)

    for root in children.get(None, []):
        walk(root)
        if len(lines) >= max_spans:
            lines.append(f"... ({len(spans)} spans total)")
            break
    return "\n".join(lines)


def render_tier_table(metrics: Dict[str, Dict[str, object]]) -> str:
    """Per-tier feature-byte breakdown from ``sim.tier_bytes``."""
    counters: Dict[str, float] = metrics.get("counters", {})  # type: ignore
    tiers = {}
    for rendered, value in counters.items():
        name, labels = parse_key(rendered)
        if name == "sim.tier_bytes":
            tiers[dict(labels).get("tier", "?")] = value
    if not tiers:
        return "(no tier-byte counters recorded)"
    total = sum(tiers.values())
    table = Table(
        ["tier", "bytes", "fraction"], title="Feature bytes by serving tier"
    )
    order = {"gpu": 0, "peer_gpu": 1, "cpu": 2, "ssd": 3}
    for tier in sorted(tiers, key=lambda t: order.get(t, 9)):
        table.add_row(
            [tier, fmt_bytes(tiers[tier]), f"{tiers[tier] / total:.3f}"]
        )
    return table.render()


def render_link_table(
    metrics: Dict[str, Dict[str, object]], top_k: int = 8
) -> str:
    """Busiest physical links: bytes and (when known) utilization."""
    counters: Dict[str, float] = metrics.get("counters", {})  # type: ignore
    gauges: Dict[str, float] = metrics.get("gauges", {})  # type: ignore
    rows = []
    for rendered, value in counters.items():
        name, labels = parse_key(rendered)
        if name != "traffic.link_bytes":
            continue
        d = dict(labels)
        util_key = (
            f"traffic.link_utilization{{dst={d.get('dst')},src={d.get('src')}}}"
        )
        rows.append(
            (
                value,
                d.get("src", "?"),
                d.get("dst", "?"),
                gauges.get(util_key),
            )
        )
    if not rows:
        return "(no per-link counters recorded)"
    rows.sort(key=lambda r: -r[0])
    table = Table(
        ["link", "bytes", "utilization"], title=f"Busiest links (top {top_k})"
    )
    for value, src, dst, util in rows[:top_k]:
        table.add_row(
            [
                f"{src} -> {dst}",
                fmt_bytes(value),
                "n/a" if util is None else f"{util:.3f}",
            ]
        )
    return table.render()


def render_record(record: Dict[str, object]) -> str:
    """Full report of one run record: header, tree, tier + link tables."""
    out = [
        f"-- telemetry: {record.get('run_id', '?')} "
        f"(schema {record.get('schema', '?')}) --"
    ]
    meta = record.get("meta") or {}
    if meta.get("git_sha"):
        out.append(f"git: {str(meta['git_sha'])[:12]}")
    spans = record.get("spans") or []
    out.append(render_span_tree(spans))
    metrics = record.get("metrics") or {}
    tier = render_tier_table(metrics)
    if not tier.startswith("("):
        out.append(tier)
    links = render_link_table(metrics)
    if not links.startswith("("):
        out.append(links)
    derived = record.get("derived") or {}
    if "qpi_share" in derived:
        out.append(f"QPI share of link traffic: {derived['qpi_share']:.3f}")
    return "\n".join(out)


def render_telemetry(telemetry) -> str:
    """Report straight from a live :class:`repro.obs.Telemetry`."""
    return render_record(
        {
            "run_id": "(live)",
            "schema": "repro.obs/v1",
            "spans": telemetry.tracer.to_dicts(),
            "metrics": telemetry.registry.snapshot(),
            "derived": {},
        }
    )
