"""Structured JSONL run records.

One record per run — config, span tree, metrics, derived stats, and
host metadata — appended as a single JSON line so a directory of runs
greps/streams like the mubench replication's ``run_table.csv``.  The
schema is documented field-by-field in EXPERIMENTS.md ("Run record
schema"); bump :data:`SCHEMA` when it changes shape.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import sys
import threading
import time
from typing import IO, Dict, List, Optional, Union

SCHEMA = "repro.obs/v1"


def _json_default(value):
    """Last-resort coercion for numpy scalars/arrays and odd objects."""
    try:
        return value.item()
    except AttributeError:
        pass
    try:
        return list(value)
    except TypeError:
        return str(value)


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """Current commit SHA, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def run_metadata(**extra: object) -> Dict[str, object]:
    """Host/provenance tags shared by every record of a process.

    ``extra`` adds run-specific tags (machine spec, dataset, seed...).
    """
    meta: Dict[str, object] = {
        "git_sha": git_sha(),
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "argv": list(sys.argv),
    }
    meta.update(extra)
    return meta


def build_run_record(
    run_id: str,
    config: Optional[Dict[str, object]] = None,
    telemetry=None,
    derived: Optional[Dict[str, object]] = None,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble one JSON-ready run record.

    ``telemetry`` is a :class:`repro.obs.Telemetry` (or None for a
    record that only carries config/metadata).  Derived stats default
    to :func:`derive_stats` over the telemetry's metrics.
    """
    record: Dict[str, object] = {
        "schema": SCHEMA,
        "run_id": run_id,
        "timestamp_unix_s": time.time(),
        "config": config or {},
        "meta": meta or {},
    }
    if telemetry is not None:
        record["spans"] = telemetry.tracer.to_dicts()
        record["metrics"] = telemetry.registry.snapshot()
        record["elapsed_s"] = time.perf_counter() - telemetry.tracer.t0
        if derived is None:
            derived = derive_stats(record["metrics"])
    record["derived"] = derived or {}
    return record


def derive_stats(metrics: Dict[str, Dict[str, object]]) -> Dict[str, object]:
    """Headline numbers computed from a metrics snapshot.

    Tier fractions from the ``sim.tier_bytes`` counters, the QPI share
    of link traffic, and the most-utilized link — the three quantities
    the paper's evaluation keeps coming back to.
    """
    counters: Dict[str, float] = metrics.get("counters", {})  # type: ignore
    gauges: Dict[str, float] = metrics.get("gauges", {})  # type: ignore
    out: Dict[str, object] = {}

    tier_bytes = {
        _label_of(k, "tier"): v
        for k, v in counters.items()
        if k.startswith("sim.tier_bytes{")
    }
    total = sum(tier_bytes.values())
    if total > 0:
        out["tier_bytes"] = tier_bytes
        out["tier_fractions"] = {
            t: v / total for t, v in tier_bytes.items()
        }

    kind_bytes = {
        _label_of(k, "kind"): v
        for k, v in counters.items()
        if k.startswith("traffic.kind_bytes{")
    }
    link_total = sum(kind_bytes.values())
    if link_total > 0:
        out["link_kind_bytes"] = kind_bytes
        out["qpi_share"] = kind_bytes.get("qpi", 0.0) / link_total

    utils = {
        k: v
        for k, v in gauges.items()
        if k.startswith("traffic.link_utilization{")
    }
    if utils:
        busiest = max(utils, key=utils.get)
        out["busiest_link"] = {
            "link": busiest[busiest.index("{") :].strip("{}"),
            "utilization": utils[busiest],
        }
    return out


def _label_of(rendered: str, label: str) -> str:
    """Value of one label in a rendered metric name (\"\" if absent)."""
    from repro.obs.metrics import parse_key

    return dict(parse_key(rendered)[1]).get(label, "")


# ----------------------------------------------------------------------
# JSONL I/O
# ----------------------------------------------------------------------
#: Per-path append locks (same-process writers: server workers, load
#: generator threads).  Keyed on the absolute path so two handles to
#: one sink serialize; bounded in practice (a process writes to a
#: handful of sinks).
_APPEND_LOCKS: Dict[str, threading.Lock] = {}
_APPEND_LOCKS_GUARD = threading.Lock()


def _append_lock(path: str) -> threading.Lock:
    key = os.path.abspath(path)
    with _APPEND_LOCKS_GUARD:
        lock = _APPEND_LOCKS.get(key)
        if lock is None:
            lock = _APPEND_LOCKS[key] = threading.Lock()
        return lock


def append_jsonl(
    path_or_file: Union[str, os.PathLike, IO[str]],
    record: Dict[str, object],
) -> None:
    """Append one record as a single JSON line (creates the file).

    Concurrency-safe for the shapes the repo produces: for a *path*,
    the full line is written in one ``os.write`` on an ``O_APPEND``
    descriptor, under a per-path lock — concurrent threads of one
    process (plan-service workers, load-generator clients) and, on
    POSIX, separate processes appending to the same sink each land
    whole lines, never interleaved fragments.  Multi-process writers
    on filesystems without atomic ``O_APPEND`` (e.g. some network
    mounts) should write per-worker files and merge them at shutdown —
    the warehouse ingests any number of JSONL files.

    File-like sinks are written with a single ``write`` call (the
    caller owns any locking for shared handles).
    """
    line = json.dumps(record, default=_json_default) + "\n"
    if hasattr(path_or_file, "write"):
        path_or_file.write(line)
        return
    path = os.fspath(path_or_file)
    data = line.encode("utf-8")
    with _append_lock(path):
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)


def read_jsonl(
    path: Union[str, os.PathLike],
) -> List[Dict[str, object]]:
    """All records of a JSONL file, in file order."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def validate_record(record: Dict[str, object]) -> List[str]:
    """Schema problems of one record ([] when valid)."""
    problems = []
    if record.get("schema") != SCHEMA:
        problems.append(f"schema is {record.get('schema')!r}, want {SCHEMA!r}")
    for field in ("run_id", "timestamp_unix_s", "config", "meta", "derived"):
        if field not in record:
            problems.append(f"missing field {field!r}")
    for span in record.get("spans", []):
        for field in ("name", "start_s", "duration_s", "depth"):
            if field not in span:
                problems.append(f"span missing {field!r}: {span}")
                break
    metrics = record.get("metrics")
    if metrics is not None:
        for section in ("counters", "gauges", "histograms"):
            if section not in metrics:
                problems.append(f"metrics missing section {section!r}")
    return problems
