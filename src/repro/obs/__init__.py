"""repro.obs — opt-in telemetry: spans, metrics, JSONL run records.

Telemetry is **off by default**.  Instrumented code calls the
module-level helpers (:func:`add`, :func:`observe`, :func:`set_gauge`,
:func:`span`); with no active :class:`Telemetry` each is a single
``None`` check (counters/gauges/histograms) or a detached span that
still measures time but records nothing — so the simulator and
optimizer hot paths pay effectively nothing when nobody is watching.

Enable for a whole process with :func:`enable`, or scoped with
:func:`capture`::

    from repro import obs

    with obs.capture() as tel:
        MomentSystem(machine).run(RunSpec(dataset=dataset))
    print(obs.report.render_telemetry(tel))

``python -m repro.experiments <id> --trace --json-out run.jsonl`` wires
this up end to end; see EXPERIMENTS.md for the record schema.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.obs import report
from repro.obs.metrics import MetricsRegistry
from repro.obs.record import (
    append_jsonl,
    build_run_record,
    derive_stats,
    read_jsonl,
    run_metadata,
    validate_record,
)
from repro.obs.trace import Span, Tracer, traced

__all__ = [
    "Telemetry",
    "RunScope",
    "Span",
    "Tracer",
    "MetricsRegistry",
    "traced",
    "default_histogram_max_samples",
    "enable",
    "disable",
    "active",
    "capture",
    "span",
    "record_span",
    "add",
    "observe",
    "set_gauge",
    "scope",
    "snapshot",
    "append_jsonl",
    "read_jsonl",
    "build_run_record",
    "run_metadata",
    "derive_stats",
    "validate_record",
    "report",
]


def default_histogram_max_samples() -> Optional[int]:
    """The env-configured histogram sample cap (None = exact mode).

    ``REPRO_OBS_HIST_MAX=N`` bounds every histogram of new sessions at
    N reservoir-sampled values so long simulations cannot grow memory
    without limit; unset/0 keeps the exact default.
    """
    raw = os.environ.get("REPRO_OBS_HIST_MAX", "").strip()
    if not raw:
        return None
    n = int(raw)
    return n if n > 0 else None


class Telemetry:
    """One telemetry session: a metrics registry plus a span tracer.

    ``histogram_max_samples`` bounds histogram memory (opt-in reservoir
    sampling; see :class:`repro.obs.metrics.Histogram`).  The sentinel
    ``"env"`` (the default) reads ``REPRO_OBS_HIST_MAX``.
    """

    def __init__(
        self, histogram_max_samples: object = "env"
    ) -> None:
        if histogram_max_samples == "env":
            histogram_max_samples = default_histogram_max_samples()
        self.registry = MetricsRegistry(
            histogram_max_samples=histogram_max_samples
        )
        self.tracer = Tracer()

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready spans + metrics of the whole session."""
        return {
            "spans": self.tracer.to_dicts(),
            "metrics": self.registry.snapshot(),
        }


class RunScope:
    """Delta view over the active telemetry for one sub-run.

    Created by :func:`scope` before a run starts; :meth:`collect`
    returns only the spans and metric increments recorded since —
    what :class:`repro.runtime.system.SystemResult` carries as its
    ``telemetry`` payload.
    """

    def __init__(self, telemetry: Telemetry) -> None:
        self._telemetry = telemetry
        self._span_mark = telemetry.tracer.mark()
        self._metric_mark = telemetry.registry.mark()

    def collect(self) -> Dict[str, object]:
        """Spans + metric deltas recorded since this scope was opened."""
        return {
            "spans": self._telemetry.tracer.to_dicts(self._span_mark),
            "metrics": self._telemetry.registry.snapshot(
                since=self._metric_mark
            ),
        }


#: The process-wide active session (None = telemetry disabled).
_ACTIVE: Optional[Telemetry] = None


def active() -> Optional[Telemetry]:
    """The active telemetry session, or None when disabled."""
    return _ACTIVE


def enable(histogram_max_samples: object = "env") -> Telemetry:
    """Start a fresh process-wide telemetry session and return it."""
    global _ACTIVE
    _ACTIVE = Telemetry(histogram_max_samples=histogram_max_samples)
    return _ACTIVE


def disable() -> None:
    """Turn telemetry off (helpers return to their no-op fast path)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def capture(
    histogram_max_samples: object = "env",
) -> Iterator[Telemetry]:
    """Enable a fresh session for the block, restoring the prior state."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = Telemetry(histogram_max_samples=histogram_max_samples)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


# ----------------------------------------------------------------------
# Hot-path helpers: one None check when telemetry is disabled.
# ----------------------------------------------------------------------
def span(name: str, **attrs: object) -> Span:
    """A span recorded into the active tracer (detached when disabled).

    Detached spans still measure ``duration`` — callers may rely on it
    (e.g. ``MomentPlan.optimize_seconds``) with telemetry off.
    """
    tel = _ACTIVE
    if tel is None:
        return Span(name, attrs or None)
    return tel.tracer.span(name, **attrs)


def record_span(
    name: str, start: float, end: float, **attrs: object
) -> None:
    """Record an already-measured interval as a completed root span.

    For concurrent recorders (the plan service's request threads):
    the tracer's nesting stack assumes one thread of control, so
    threads measure their own ``perf_counter`` interval and append the
    finished span here — as a depth-0 root, never touching the stack.
    Callers serialize calls themselves (no-op when disabled).
    """
    tel = _ACTIVE
    if tel is None:
        return
    sp = Span(name, attrs or None)
    sp.start = start
    sp.end = end
    sp.index = len(tel.tracer.spans)
    tel.tracer.spans.append(sp)


def add(name: str, amount: float, **labels: object) -> None:
    """Increment a counter (no-op when disabled)."""
    tel = _ACTIVE
    if tel is not None:
        tel.registry.counter(name, **labels).inc(amount)


def observe(name: str, value: float, **labels: object) -> None:
    """Record a histogram sample (no-op when disabled)."""
    tel = _ACTIVE
    if tel is not None:
        tel.registry.histogram(name, **labels).observe(value)


def set_gauge(name: str, value: float, **labels: object) -> None:
    """Set a gauge (no-op when disabled)."""
    tel = _ACTIVE
    if tel is not None:
        tel.registry.gauge(name, **labels).set(value)


def scope() -> Optional[RunScope]:
    """Open a :class:`RunScope` on the active session (None if off)."""
    tel = _ACTIVE
    if tel is None:
        return None
    return RunScope(tel)


def snapshot() -> Optional[Dict[str, object]]:
    """Snapshot of the active session (None when disabled)."""
    tel = _ACTIVE
    if tel is None:
        return None
    return tel.snapshot()
