"""Monetary cost and TCO models (paper Section 4.2).

The paper makes two cost claims:

* referring to AWS on-demand pricing, a single 4-GPU machine costs
  about **50%** of four 1-GPU machines ("Moment achieves only about 50%
  monetary cost of DistDGL");
* using Hyperion's TCO method, Machine A/B come to a 5-year TCO of
  **$90,270** versus **$181,100** for the 4-node Cluster C.

We reproduce both: an hourly cloud-pricing comparison and a
capex+opex TCO model whose constants are calibrated to land on the
paper's two published totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.utils.validation import check_nonnegative, check_positive

#: Hours in five years (the paper's TCO horizon).
FIVE_YEARS_H = 5 * 365 * 24


@dataclass(frozen=True)
class MachineCost:
    """Capex/opex breakdown of one machine."""

    name: str
    #: purchase price of the base server (chassis, CPUs, DRAM)
    server_usd: float
    #: per-GPU price
    gpu_usd: float
    num_gpus: int
    #: per-SSD price
    ssd_usd: float
    num_ssds: int
    #: steady-state power draw (kW) for energy opex
    power_kw: float
    #: $/kWh electricity + cooling
    energy_usd_per_kwh: float = 0.10
    #: yearly maintenance as a fraction of capex
    maintenance_rate: float = 0.05

    def __post_init__(self) -> None:
        for label, v in (
            ("server_usd", self.server_usd),
            ("gpu_usd", self.gpu_usd),
            ("ssd_usd", self.ssd_usd),
            ("power_kw", self.power_kw),
        ):
            check_nonnegative(label, v)

    @property
    def capex_usd(self) -> float:
        """Purchase price: server + GPUs + SSDs."""
        return (
            self.server_usd
            + self.gpu_usd * self.num_gpus
            + self.ssd_usd * self.num_ssds
        )

    def opex_usd(self, years: float) -> float:
        """Energy plus maintenance over ``years``."""
        energy = self.power_kw * 365 * 24 * years * self.energy_usd_per_kwh
        maintenance = self.capex_usd * self.maintenance_rate * years
        return energy + maintenance

    def tco_usd(self, years: float = 5.0) -> float:
        """Total cost of ownership over ``years`` (Hyperion's method:
        capex + energy + maintenance)."""
        check_positive("years", years)
        return self.capex_usd + self.opex_usd(years)


#: Moment's machine: 4x A100 + 8x P5510 in one dual-socket server.
#: Constants calibrated so the 5-year TCO matches the paper's $90,270.
MOMENT_MACHINE = MachineCost(
    name="moment-4gpu-8ssd",
    server_usd=19_406.4,
    gpu_usd=10_000.0,
    num_gpus=4,
    ssd_usd=550.0,
    num_ssds=8,
    power_kw=2.4,
)

#: One Cluster C node: single A100, no NVMe array, plus 100G networking
#: share.  Calibrated so 4 nodes' 5-year TCO matches the paper's $181,100.
CLUSTER_NODE = MachineCost(
    name="cluster-node-1gpu",
    server_usd=22_015.2,
    gpu_usd=10_000.0,
    num_gpus=1,
    ssd_usd=0.0,
    num_ssds=0,
    power_kw=1.2,
)


@dataclass(frozen=True)
class CloudPrice:
    """On-demand hourly pricing for a GPU instance shape."""

    name: str
    usd_per_hour: float
    num_gpus: int

    @property
    def usd_per_gpu_hour(self) -> float:
        """Hourly price normalised per GPU."""
        return self.usd_per_hour / self.num_gpus


#: Indicative AWS-style on-demand prices: one 4-GPU instance vs four
#: 1-GPU instances.  Multi-GPU boxes amortise host overhead, which is
#: where the paper's ~50% figure comes from.
FOUR_GPU_INSTANCE = CloudPrice("4xA100-single-node", 16.00, 4)
ONE_GPU_INSTANCE = CloudPrice("1xA100-node", 8.00, 1)


def cloud_cost_ratio(
    single: CloudPrice = FOUR_GPU_INSTANCE,
    distributed: CloudPrice = ONE_GPU_INSTANCE,
    num_machines: int = 4,
) -> float:
    """Hourly cost of the single multi-GPU machine relative to the
    distributed fleet with the same GPU count (paper: ~0.5)."""
    check_positive("num_machines", num_machines)
    return single.usd_per_hour / (distributed.usd_per_hour * num_machines)


def tco_comparison(years: float = 5.0) -> Dict[str, float]:
    """The paper's TCO table: Machine A/B vs the 4-node Cluster C."""
    single = MOMENT_MACHINE.tco_usd(years)
    cluster = CLUSTER_NODE.tco_usd(years) * 4
    return {
        "machine_a_b_usd": single,
        "cluster_c_usd": cluster,
        "ratio": single / cluster,
    }


def cost_per_epoch(
    tco_usd: float,
    lifetime_hours: float,
    epoch_seconds: float,
) -> float:
    """Amortised dollars per training epoch."""
    check_positive("lifetime_hours", lifetime_hours)
    check_positive("epoch_seconds", epoch_seconds)
    usd_per_second = tco_usd / (lifetime_hours * 3600.0)
    return usd_per_second * epoch_seconds
