"""Monetary cost and TCO models (paper Section 4.2)."""

from repro.costs.monetary import (
    CLUSTER_NODE,
    CloudPrice,
    FOUR_GPU_INSTANCE,
    MOMENT_MACHINE,
    MachineCost,
    ONE_GPU_INSTANCE,
    cloud_cost_ratio,
    cost_per_epoch,
    tco_comparison,
)

__all__ = [
    "CLUSTER_NODE",
    "CloudPrice",
    "FOUR_GPU_INSTANCE",
    "MOMENT_MACHINE",
    "MachineCost",
    "ONE_GPU_INSTANCE",
    "cloud_cost_ratio",
    "cost_per_epoch",
    "tco_comparison",
]
