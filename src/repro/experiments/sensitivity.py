"""Sensitivity analyses beyond the paper's figures.

The paper's conclusions rest on a handful of physical parameters; these
sweeps show how robust the reproduction's shapes are to each:

* :func:`sweep_gpu_cache` — epoch time vs HBM cache budget (the
  out-of-core pressure knob);
* :func:`sweep_qpi_bandwidth` — layout (c) vs (b) gap as the socket
  interconnect speeds up (does topology still matter with fast QPI?);
* :func:`sweep_skew` — DDAK-vs-hash gain as graph skew varies (the
  paper's "hash fails because access is skewed" claim, quantified);
* :func:`sweep_feature_dim` — per-vertex embedding size vs throughput
  (IOPS-bound small features vs bandwidth-bound large ones).

Each returns an :class:`~repro.experiments.figures.ExperimentResult` so
the benches print them like the paper figures.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence

import numpy as np

from repro.core.ddak import hash_place, make_bins
from repro.experiments.figures import ExperimentResult, _batches, _dataset, _timed
from repro.graphs.datasets import IGB_HOM
from repro.graphs.generators import power_law_graph
from repro.hardware.machines import classic_layouts, machine_a
from repro.runtime.spec import RunSpec
from repro.runtime.system import MomentSystem
from repro.utils.report import Table


class _HashMoment(MomentSystem):
    name = "moment-hash"

    def place_data(self, topo, dataset, hotness, plan, traffic=None):
        bins = make_bins(
            topo,
            gpu_cache_bytes=plan.gpu_cache_bytes,
            cpu_cache_bytes=plan.cpu_cache_bytes,
            ssd_capacity_bytes=plan.ssd_capacity_bytes,
        )
        return hash_place(bins, hotness, dataset.feature_bytes)


@_timed
def sweep_gpu_cache(
    quick: bool = False,
    fractions: Sequence[float] = (0.1, 0.3, 0.6, 0.9),
) -> ExperimentResult:
    """Epoch time vs the HBM share given to the embedding cache."""
    ds = _dataset("IG", quick)
    machine = machine_a()
    placement = classic_layouts(machine)["c"]
    table = Table(
        ["gpu_cache_fraction", "epoch_s", "cache_hit_%"],
        title="Sensitivity: GPU embedding-cache budget (layout c, IG)",
    )
    data: Dict[float, float] = {}
    for frac in fractions:
        r = MomentSystem(machine, gpu_cache_fraction=frac).run(RunSpec(
            dataset=ds, placement=placement, sample_batches=_batches(quick)
        ))
        e = r.epoch
        hit = e.local_bytes / max(e.local_bytes + e.external_bytes, 1)
        table.add_row([frac, e.paper_epoch_seconds, hit * 100])
        data[frac] = e.paper_epoch_seconds
    return ExperimentResult(
        "sens-cache",
        "GPU cache budget sweep",
        table,
        data=data,
        notes=["bigger caches help monotonically; gains flatten once the "
               "hot set fits"],
    )


@_timed
def sweep_qpi_bandwidth(
    quick: bool = False,
    p2p_bws: Sequence[float] = (4e9, 9e9, 20e9, 40e9),
) -> ExperimentResult:
    """Does hardware placement still matter with a fast interconnect?

    Re-runs layouts (b) and (c) while scaling the cross-socket P2P
    ceiling.  The (c)/(b) gap shrinks as QPI stops being a bottleneck —
    Moment's thesis is strongest on commodity interconnects.
    """
    import repro.hardware.specs as specs
    from repro.baselines.mhyperion import MHyperionSystem

    ds = _dataset("IG", quick)
    machine = machine_a()
    layouts = classic_layouts(machine)
    table = Table(
        ["qpi_p2p_gbs", "epoch_b_s", "epoch_c_s", "gap"],
        title="Sensitivity: cross-socket P2P bandwidth vs layout gap",
    )
    data = {}
    original = specs.QPI_P2P_BW
    try:
        for bw in p2p_bws:
            specs.QPI_P2P_BW = bw
            times = {}
            for key in ("b", "c"):
                r = MHyperionSystem(machine).run(RunSpec(
                    dataset=ds,
                    placement=layouts[key],
                    sample_batches=_batches(quick),
                ))
                times[key] = r.paper_epoch_seconds
            gap = times["b"] / times["c"]
            table.add_row([bw / 1e9, times["b"], times["c"], f"{gap:.2f}x"])
            data[bw] = gap
    finally:
        specs.QPI_P2P_BW = original
    return ExperimentResult(
        "sens-qpi",
        "QPI P2P bandwidth sweep",
        table,
        data=data,
        notes=["the layout gap persists: (b) is bus-9-bound regardless of "
               "QPI speed"],
    )


@_timed
def sweep_skew(
    quick: bool = False,
    exponents: Sequence[float] = (0.0, 0.4, 0.8, 1.1),
) -> ExperimentResult:
    """DDAK-vs-hash gain as a function of degree skew (layout d)."""
    machine = machine_a()
    placement = classic_layouts(machine)["d"]
    base = _dataset("IG", quick)
    table = Table(
        ["zipf_exponent", "ddak_epoch_s", "hash_epoch_s", "gain_%"],
        title="Sensitivity: graph skew vs DDAK gain (layout d)",
    )
    data = {}
    for exp in exponents:
        graph = power_law_graph(
            base.graph.num_vertices,
            base.spec.avg_degree,
            exponent=exp,
            seed=3,
        )
        ds = dataclasses.replace(base, graph=graph)
        ddak = MomentSystem(machine).run(RunSpec(
            dataset=ds, placement=placement, sample_batches=_batches(quick)
        ))
        hashed = _HashMoment(machine).run(RunSpec(
            dataset=ds, placement=placement, sample_batches=_batches(quick)
        ))
        gain = hashed.paper_epoch_seconds / ddak.paper_epoch_seconds - 1
        table.add_row(
            [exp, ddak.paper_epoch_seconds, hashed.paper_epoch_seconds,
             gain * 100]
        )
        data[exp] = gain
    return ExperimentResult(
        "sens-skew",
        "graph-skew sweep",
        table,
        data=data,
        notes=[
            "most of DDAK's (d)-layout gain is bandwidth-proportional "
            "placement (hash loads QPI-crossing drives equally); skew "
            "adds a further edge on top",
        ],
    )


@_timed
def sweep_feature_dim(
    quick: bool = False,
    dims: Sequence[int] = (128, 512, 1024, 4096),
) -> ExperimentResult:
    """Embedding width: small features are IOPS-bound, large ones
    bandwidth-bound (the artifact's "data access granularity" knob)."""
    machine = machine_a()
    placement = classic_layouts(machine)["c"]
    base = _dataset("IG", quick)
    table = Table(
        ["feature_dim", "page_kib", "epoch_s", "fabric_gbs"],
        title="Sensitivity: feature dimension (layout c, IG)",
    )
    data = {}
    for dim in dims:
        graph = dataclasses.replace(base.graph, feature_dim=dim)
        ds = dataclasses.replace(base, graph=graph)
        r = MomentSystem(machine).run(RunSpec(
            dataset=ds, placement=placement, sample_batches=_batches(quick)
        ))
        e = r.epoch
        table.add_row(
            [
                dim,
                dim * 4 / 1024,
                e.paper_epoch_seconds,
                e.throughput_bytes_per_s / 1e9,
            ]
        )
        data[dim] = e.paper_epoch_seconds
    return ExperimentResult(
        "sens-featdim",
        "feature-dimension sweep",
        table,
        data=data,
        notes=["epoch time grows with feature bytes once fetches are "
               "bandwidth-bound"],
    )
