"""Fault-injection experiment: static plan vs degradation-aware replan.

Three arms run the same workload (IG on Machine A, layout (c), 4 GPUs,
8 SSDs) through :class:`~repro.runtime.spec.RunSpec`:

* **healthy** — no faults, the recovery yardstick;
* **static** — the fault schedule hits mid-epoch and the original data
  placement keeps paying for re-routed reads to the drive's origin
  replica tier;
* **replan** — same schedule, but the :class:`ReplanPolicy` re-runs
  the masked search + DDAK on the surviving topology and migrates the
  hot set off the failed drive at background bandwidth.

The acceptance bar (ISSUE 5): under an ``SsdFailure`` mid-epoch, the
replan arm's steady-state throughput recovers to >= 80 % of healthy
while the static arm's does not.  ``steady_frac`` in the result data
is exactly that fraction (healthy step time over the arm's final step
time), computed on the last simulated step where the replan's one-off
migration charge has passed.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.figures import ExperimentResult, _dataset, _timed
from repro.faults import FaultSchedule
from repro.hardware.machines import classic_layouts, machine_a
from repro.runtime.spec import RunSpec
from repro.runtime.system import MomentSystem, SystemResult
from repro.utils.report import Table


def default_fault_schedule(quick: bool = False) -> FaultSchedule:
    """One drive dies mid-epoch (step 2 quick / step 4 full)."""
    step = 2 if quick else 4
    return FaultSchedule.parse(f"fail@{step}:ssd0")


def _steady_frac(healthy: SystemResult, arm: SystemResult) -> float:
    """Healthy-throughput fraction the arm sustains at steady state
    (last step: past the fault transient and any migration charge)."""
    h = healthy.epoch.step_seconds[-1]
    a = arm.epoch.step_seconds[-1]
    return h / a if a > 0 else 0.0


def _fault_placement(machine, num_gpus: int, num_ssds: int):
    """The placement the fault arms run on: the paper's layout (c) when
    the machine has the classic bays/slots groups, otherwise a searched
    placement over a bounded candidate sample (arbitrary compiled
    fabrics have no classic layouts)."""
    try:
        return classic_layouts(machine)["c"], num_gpus, num_ssds
    except (KeyError, ValueError):
        pass
    from repro.core.optimizer import MomentOptimizer, OptimizerConfig
    from repro.core.placement import GPU, SSD
    from repro.core.search import sample_placements

    gpus = min(
        num_gpus,
        sum(
            g.units
            for g in machine.chassis.slot_groups
            if GPU in g.allowed
        ),
    )
    ssds = min(
        num_ssds,
        sum(
            g.units
            for g in machine.chassis.slot_groups
            if SSD in g.allowed
        ),
    )
    candidates = sample_placements(machine.chassis, gpus, ssds, cap=12)
    plan = MomentOptimizer(
        machine, gpus, ssds, OptimizerConfig(seed=0)
    ).optimize(_dataset("IG", True), candidates=candidates)
    return plan.placement, gpus, ssds


@_timed
def run_faults(
    quick: bool = False,
    faults: Optional[FaultSchedule] = None,
    machine=None,
) -> ExperimentResult:
    """Static-plan vs replanned throughput under injected faults.

    ``machine`` defaults to Machine A; any compiled fabric (e.g.
    ``get_machine("gen:7")``) works — fabrics without the paper's
    classic slot groups get a searched placement instead of layout (c).
    """
    machine = machine if machine is not None else machine_a()
    ds = _dataset("IG", quick)
    placement, num_gpus, num_ssds = _fault_placement(machine, 4, 8)
    schedule = faults if faults is not None else default_fault_schedule(quick)
    base = RunSpec(
        dataset=ds,
        placement=placement,
        num_gpus=num_gpus,
        num_ssds=num_ssds,
        sample_batches=6 if quick else 12,
    )

    arms: Dict[str, SystemResult] = {}
    arms["healthy"] = MomentSystem(machine).run(base)
    arms["static"] = MomentSystem(machine).run(base.replace(faults=schedule))
    arms["replan"] = MomentSystem(machine).run(
        base.replace(faults=schedule, replan=True)
    )

    table = Table(
        ["arm", "epoch_s", "last_step_ms", "steady_frac_%",
         "recover_s", "migrated_MB"],
        title=f"faults: {schedule.describe()} on {machine.name}, IG",
    )
    data: Dict = {"schedule": schedule.describe(), "records": {}}
    for name, r in arms.items():
        frac = _steady_frac(arms["healthy"], r)
        rep = r.replan
        table.add_row(
            [
                name,
                r.epoch.epoch_seconds,
                r.epoch.step_seconds[-1] * 1e3,
                frac * 100,
                "-" if rep is None or rep.time_to_recover_s is None
                else f"{rep.time_to_recover_s:.2f}",
                "-" if rep is None
                else f"{rep.migrated_bytes / 1e6:.0f}",
            ]
        )
        data[name] = frac
        data["records"][name] = r.to_dict()

    notes = [
        f"static sustains {data['static'] * 100:.0f}% of healthy, "
        f"replan {data['replan'] * 100:.0f}% "
        "(target: replan >= 80%, static below it)",
    ]
    return ExperimentResult(
        "faults",
        "fault injection: static plan vs degradation-aware replan",
        table,
        data=data,
        notes=notes,
    )
