"""CLI: regenerate paper experiments.

Usage::

    python -m repro.experiments            # list experiments
    python -m repro.experiments fig10      # run one (full settings)
    python -m repro.experiments all --quick
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.registry import list_experiments, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate Moment's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (e.g. fig10), or 'all'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small datasets / few simulated batches (CI-sized)",
    )
    args = parser.parse_args(argv)

    if not args.experiment:
        print("available experiments:")
        for exp in list_experiments():
            print(f"  {exp}")
        return 0

    ids = list_experiments() if args.experiment == "all" else [args.experiment]
    for exp in ids:
        result = run_experiment(exp, quick=args.quick)
        result.print()
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
