"""CLI: regenerate paper experiments.

Usage::

    python -m repro.experiments            # list experiments
    python -m repro.experiments fig10      # run one (full settings)
    python -m repro.experiments all --quick
    python -m repro.experiments fig10 --trace --json-out runs.jsonl
    python -m repro.experiments fig10 --search-workers 4 --prune-bounds
    python -m repro.experiments faults --faults "fail@2:ssd0;slow@5:ssd3:0.5"

``--trace`` prints the telemetry report (span tree, tier breakdown,
busiest links) after each experiment; ``--json-out`` appends one
structured JSONL run record per experiment (schema documented in
EXPERIMENTS.md) — by default it *appends* (``--json-out-mode
overwrite`` truncates once at startup), and a run that raises
mid-epoch still flushes its partial record with an ``error`` field
before the exception propagates.  Either flag enables telemetry for
the run.
``--search-workers`` / ``--prune-bounds`` set the placement-search
engine's process-wide defaults (see :mod:`repro.core.search`).
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.core import search
from repro.experiments.registry import list_experiments, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate Moment's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (e.g. fig10), or 'all'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small datasets / few simulated batches (CI-sized)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="enable telemetry and print the span tree + metric tables",
    )
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        default=None,
        help="enable telemetry and append one JSONL run record per "
        "experiment to PATH (even for runs that raise mid-epoch: the "
        "partial span tree/metrics are flushed with an 'error' field)",
    )
    parser.add_argument(
        "--json-out-mode",
        choices=("append", "overwrite"),
        default="append",
        help="append to an existing --json-out file (default, the "
        "historical behaviour) or truncate it once at startup",
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="inject a fault schedule into fault-aware experiments; "
        "SPEC is ';'-separated 'kind@step[+duration]:target[:param]' "
        "clauses, e.g. 'fail@2:ssd0;slow@5:ssd3:0.5' "
        "(see repro.faults.FaultSchedule.parse)",
    )
    parser.add_argument(
        "--fabric",
        metavar="TARGET",
        default=None,
        help="run fabric-aware experiments on this hardware instead of "
        "the paper default; TARGET resolves through the machine "
        "registry ('machine_b', 'gen:<seed>', a repro.fabric/v1 JSON "
        "or chassis text file)",
    )
    parser.add_argument(
        "--search-workers",
        type=int,
        metavar="N",
        default=None,
        help="placement-search scoring processes (default: "
        "$REPRO_SEARCH_WORKERS or 1; serial and parallel runs pick "
        "identical winners)",
    )
    parser.add_argument(
        "--prune-bounds",
        action="store_true",
        help="skip pass-2 LP scoring of candidates whose pass-1 bound "
        "cannot win (preserves the winner's throughput to LP-solver "
        "noise; see repro.core.search.PRUNE_EQUIV_TOL)",
    )
    args = parser.parse_args(argv)

    if args.search_workers is not None:
        search.set_default_workers(args.search_workers)
    if args.prune_bounds:
        search.set_default_prune_bounds(True)
    faults = None
    if args.faults is not None:
        from repro.faults import FaultSchedule

        faults = FaultSchedule.parse(args.faults)
    machine = None
    if args.fabric is not None:
        from repro.hardware.registry import get_machine

        machine = get_machine(args.fabric)

    if not args.experiment:
        print("available experiments:")
        for exp in list_experiments():
            print(f"  {exp}")
        return 0

    ids = list_experiments() if args.experiment == "all" else [args.experiment]
    telemetry_on = args.trace or args.json_out is not None
    if args.json_out and args.json_out_mode == "overwrite":
        # truncate exactly once; the per-experiment writes below append
        open(args.json_out, "w", encoding="utf-8").close()
    for exp in ids:
        if telemetry_on:
            result = None
            error = None
            with obs.capture() as tel:
                try:
                    result = run_experiment(
                        exp, quick=args.quick, faults=faults,
                        machine=machine,
                    )
                except Exception as err:  # noqa: BLE001 - flushed + re-raised
                    error = err
            record = obs.build_run_record(
                run_id=exp,
                config={
                    "experiment": exp,
                    "quick": args.quick,
                    "title": getattr(result, "title", None),
                },
                telemetry=tel,
                meta=obs.run_metadata(),
            )
            if error is not None:
                # flush the partial span tree/metrics so the record of
                # a crashed run is not lost, then re-raise
                record["error"] = {
                    "type": type(error).__name__,
                    "message": str(error),
                }
            if args.json_out:
                obs.append_jsonl(args.json_out, record)
            if error is not None:
                raise error
            result.print()
            if args.trace:
                print()
                print(obs.report.render_record(record))
        else:
            result = run_experiment(
                exp, quick=args.quick, faults=faults, machine=machine
            )
            result.print()
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
