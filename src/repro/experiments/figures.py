"""Per-figure/table experiment runners (paper Section 4).

Each ``run_*`` function regenerates the rows/series of one paper
element and returns an :class:`ExperimentResult` holding a printable
table, the raw data, and the paper's reference values for side-by-side
comparison.  The benchmark harness under ``benchmarks/`` is a thin
wrapper around these runners.

Conventions:

* epoch times and throughput are paper-frame (see
  :mod:`repro.simulator.pipeline`);
* throughput is reported as trained seed vertices/second (scale
  invariant) unless a figure calls for bytes/s;
* ``quick=True`` shrinks datasets and simulated batches so the whole
  suite stays test-sized; the benches run the full settings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.baselines.distdgl import DistDglSystem
from repro.baselines.mgids import MGidsSystem
from repro.baselines.mhyperion import MHyperionSystem
from repro.core.ddak import hash_place, make_bins
from repro.core.mcmf import multicommodity_min_time
from repro.core.optimizer import MomentOptimizer, OptimizerConfig
from repro.core.placement import enumerate_placements
from repro.core.symmetry import dedupe_placements
from repro.costs.monetary import cloud_cost_ratio, tco_comparison
from repro.graphs.datasets import DATASETS, DatasetSpec, ScaledDataset, get_dataset
from repro.hardware.machines import (
    MachineSpec,
    classic_layouts,
    cluster_c,
    machine_a,
    machine_b,
    moment_paper_layout_b,
)
from repro.runtime.spec import RunSpec
from repro.runtime.system import GnnSystem, MomentSystem, SystemResult
from repro.utils.report import Table

#: Paper-reported epoch seconds for Figures 1 and 2 (GraphSAGE on IG).
PAPER_FIG1_EPOCHS = {"a": 15.9, "b": 26.7, "c": 14.9, "d": 24.1}
PAPER_FIG2_EPOCHS = {"a": 28.4, "b": 29.7, "c": 18.6, "d": 24.0}
#: Paper headline speedups (Section 4.2).
PAPER_MAX_SPEEDUP_VS_MGIDS = 6.51
PAPER_MAX_SPEEDUP_VS_DISTDGL = 3.02
#: Paper Fig 13 max prediction error.
PAPER_MAX_PREDICTION_ERROR = 0.0861
#: Paper Fig 14/15 max DDAK gains.
PAPER_DDAK_GAIN = {"machine_a": 0.306, "machine_b": 0.340}
#: Paper Fig 16 scaling (1 -> 4 GPUs).
PAPER_SCALING = {
    "machine_a": {"d": 1.92, "c": 1.21, "moment": 2.26},
    "machine_b": {"d": 1.57, "c": 1.21, "moment": 2.21},
}
#: Paper Fig 17 QPI-traffic reductions by DDAK on Machine A.
PAPER_QPI_REDUCTION = {"a": 0.142, "b": 0.087, "c": 0.181, "d": 0.095}
#: Paper Fig 18 NVLink gains.
PAPER_NVLINK_GAIN = {"machine_a": 0.117, "machine_b": 0.068}


@dataclass
class ExperimentResult:
    """One regenerated paper element."""

    experiment_id: str
    title: str
    table: Table
    data: Dict = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    def render(self) -> str:
        """The result header, table, and notes as text."""
        out = [f"== {self.experiment_id}: {self.title} =="]
        out.append(self.table.render())
        for note in self.notes:
            out.append(f"  note: {note}")
        out.append(f"  (regenerated in {self.elapsed_seconds:.1f} s)")
        return "\n".join(out)

    def print(self) -> None:
        """Print :meth:`render` to stdout."""
        print(self.render())


def _machine(name: str) -> MachineSpec:
    if name in ("a", "machine_a"):
        return machine_a()
    if name in ("b", "machine_b"):
        return machine_b()
    raise ValueError(f"unknown machine {name!r}")


@lru_cache(maxsize=16)
def _dataset(key: str, quick: bool, seed: int = 0) -> ScaledDataset:
    spec = get_dataset(key)
    scale = spec.default_scale * (16 if quick else 1)
    return spec.build(scale=scale, seed=seed)


def _batches(quick: bool) -> int:
    return 3 if quick else 8


def _timed(fn):
    """Wrap a runner in an ``experiment.*`` obs span; the span's
    duration (measured even with telemetry off) is the wall time."""

    def wrapper(*args, **kwargs) -> ExperimentResult:
        with obs.span(f"experiment.{fn.__name__}") as sp:
            result = fn(*args, **kwargs)
        result.elapsed_seconds = sp.duration
        return result

    wrapper.__name__ = fn.__name__
    wrapper.__doc__ = fn.__doc__
    return wrapper


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
@_timed
def run_table1_machines() -> ExperimentResult:
    """Table 1/3: the evaluation platforms."""
    from repro.utils.units import GiB

    table = Table(
        ["machine", "gpus", "ssds", "cpu", "cpu_mem_gib", "interconnect"],
        title="Table 1: evaluation platforms",
    )
    for m in (machine_a(), machine_b()):
        table.add_row(
            [
                m.name,
                f"4x {m.gpu.name}",
                f"8x {m.ssd.name}",
                m.cpu.name,
                round(m.cpu_mem_total / GiB),
                "PCIe 4.0 x16 + QPI",
            ]
        )
    c = cluster_c()
    table.add_row(
        [
            c.name,
            f"{c.num_machines}x {c.gpu.name}",
            "-",
            c.cpu.name,
            round(c.total_cpu_mem / GiB),
            "PCIe 3.0 x16 + 100Gbps",
        ]
    )
    return ExperimentResult("table1", "evaluation platforms", table)


@_timed
def run_table2_datasets(quick: bool = False) -> ExperimentResult:
    """Table 2: dataset statistics, plus the scaled stand-ins built."""
    table = Table(
        [
            "dataset",
            "vertices",
            "edges",
            "topology",
            "features",
            "scaled_V",
            "scaled_E",
            "skew_gini",
        ],
        title="Table 2: dataset statistics (paper scale | local stand-in)",
    )
    from repro.graphs.generators import degree_gini
    from repro.utils.units import fmt_bytes

    for key, spec in DATASETS.items():
        ds = _dataset(key, quick)
        table.add_row(
            [
                key,
                f"{spec.num_vertices / 1e6:.0f}M",
                f"{spec.num_edges / 1e9:.1f}B",
                fmt_bytes(spec.topology_bytes),
                fmt_bytes(spec.feature_storage_bytes),
                f"{ds.graph.num_vertices:,}",
                f"{ds.graph.num_edges:,}",
                round(degree_gini(ds.graph), 3),
            ]
        )
    return ExperimentResult("table2", "dataset statistics", table)


# ----------------------------------------------------------------------
# Figures 1/2: hardware placement motivation study
# ----------------------------------------------------------------------
def _placement_sweep(
    machine: MachineSpec,
    dataset: ScaledDataset,
    model: str,
    num_gpus: int,
    sample_batches: int,
    system_cls=MHyperionSystem,
) -> Dict[str, SystemResult]:
    system = system_cls(machine)
    out = {}
    for key, placement in classic_layouts(machine, num_gpus=num_gpus).items():
        out[key] = system.run(RunSpec(
            dataset=dataset,
            placement=placement,
            model=model,
            num_gpus=num_gpus,
            sample_batches=sample_batches,
        ))
    return out


@_timed
def run_fig1_placements_a(quick: bool = False) -> ExperimentResult:
    """Figure 1: the four classic layouts on Machine A (epoch time)."""
    ds = _dataset("IG", quick)
    results = _placement_sweep(machine_a(), ds, "graphsage", 4, _batches(quick))
    table = Table(
        ["placement", "epoch_s", "paper_epoch_s"],
        title="Fig 1: hardware placement vs epoch time, Machine A (SAGE/IG)",
    )
    for key in "abcd":
        table.add_row(
            [key, results[key].paper_epoch_seconds, PAPER_FIG1_EPOCHS[key]]
        )
    order = sorted("abcd", key=lambda k: results[k].paper_epoch_seconds)
    paper_order = sorted("abcd", key=lambda k: PAPER_FIG1_EPOCHS[k])
    return ExperimentResult(
        "fig1",
        "placement strategies on Machine A",
        table,
        data={k: r.paper_epoch_seconds for k, r in results.items()},
        notes=[f"measured order {order} vs paper order {paper_order}"],
    )


@_timed
def run_fig2_placements_b(quick: bool = False) -> ExperimentResult:
    """Figure 2: the four classic layouts on Machine B (epoch time)."""
    ds = _dataset("IG", quick)
    results = _placement_sweep(machine_b(), ds, "graphsage", 4, _batches(quick))
    table = Table(
        ["placement", "epoch_s", "paper_epoch_s"],
        title="Fig 2: hardware placement vs epoch time, Machine B (SAGE/IG)",
    )
    for key in "abcd":
        table.add_row(
            [key, results[key].paper_epoch_seconds, PAPER_FIG2_EPOCHS[key]]
        )
    order = sorted("abcd", key=lambda k: results[k].paper_epoch_seconds)
    paper_order = sorted("abcd", key=lambda k: PAPER_FIG2_EPOCHS[k])
    return ExperimentResult(
        "fig2",
        "placement strategies on Machine B",
        table,
        data={k: r.paper_epoch_seconds for k, r in results.items()},
        notes=[f"measured order {order} vs paper order {paper_order}"],
    )


@_timed
def run_fig3_mhyperion_a(quick: bool = False) -> ExperimentResult:
    """Figure 3: M-Hyperion throughput per placement, Machine A (IG+UK)."""
    return _mhyperion_placement_fig("fig3", machine_a(), quick)


@_timed
def run_fig4_mhyperion_b(quick: bool = False) -> ExperimentResult:
    """Figure 4: M-Hyperion throughput per placement, Machine B (IG+UK)."""
    return _mhyperion_placement_fig("fig4", machine_b(), quick)


def _mhyperion_placement_fig(fig_id, machine, quick) -> ExperimentResult:
    table = Table(
        ["dataset", "placement", "kseeds_per_s"],
        title=f"{fig_id}: M-Hyperion throughput per placement, {machine.name}",
    )
    data: Dict = {}
    best_over_b = 0.0
    for key in ("IG", "UK"):
        ds = _dataset(key, quick)
        results = _placement_sweep(
            machine, ds, "graphsage", 4, _batches(quick)
        )
        for pk in "abcd":
            table.add_row([key, pk, results[pk].seeds_per_s / 1e3])
        data[key] = {pk: r.seeds_per_s for pk, r in results.items()}
        best_over_b = max(
            best_over_b, data[key]["c"] / max(data[key]["b"], 1e-9)
        )
    return ExperimentResult(
        fig_id,
        f"M-Hyperion per-placement throughput on {machine.name}",
        table,
        data=data,
        notes=[
            f"best placement (c) over (b): {best_over_b:.2f}x "
            "(paper: 1.86x on A, 1.96x on B)"
        ],
    )


@_timed
def run_fig5_scaling_mhyperion(quick: bool = False) -> ExperimentResult:
    """Figure 5: M-Hyperion 2 vs 4 GPUs under placement (d)."""
    return _binding_scaling_fig("fig5", MHyperionSystem, quick)


@_timed
def run_fig6_scaling_mgids(quick: bool = False) -> ExperimentResult:
    """Figure 6: M-GIDS 2 vs 4 GPUs under placement (d)."""
    return _binding_scaling_fig("fig6", MGidsSystem, quick)


def _binding_scaling_fig(fig_id, system_cls, quick) -> ExperimentResult:
    machine = machine_a()
    system = system_cls(machine)
    table = Table(
        ["dataset", "gpus", "kseeds_per_s"],
        title=f"{fig_id}: {system.name} GPU scaling under placement (d)",
    )
    data: Dict = {}
    for key in ("IG", "UK"):
        ds = _dataset(key, quick)
        per_gpu = {}
        for n in (2, 4):
            placement = classic_layouts(machine, num_gpus=n)["d"]
            r = system.run(RunSpec(
                dataset=ds,
                placement=placement,
                num_gpus=n,
                sample_batches=_batches(quick),
            ))
            per_gpu[n] = r.seeds_per_s if r.ok else 0.0
            table.add_row([key, n, per_gpu[n] / 1e3])
        data[key] = per_gpu
    notes = []
    for key, per_gpu in data.items():
        if per_gpu[2] > 0:
            ratio = per_gpu[4] / per_gpu[2]
            notes.append(
                f"{key}: 4-GPU/2-GPU = {ratio:.2f}x "
                "(paper: little or decreased throughput)"
            )
    return ExperimentResult(
        fig_id,
        "negative GPU scaling under placement (d)",
        table,
        data=data,
        notes=notes,
    )


@_timed
def run_fig7_moment_placement(quick: bool = False) -> ExperimentResult:
    """Figure 7: Moment's optimized placement on Machine B."""
    machine = machine_b()
    ds = _dataset("IG", quick)
    moment = MomentSystem(machine)
    r = moment.run(RunSpec(dataset=ds, sample_batches=_batches(quick)))
    fig7 = moment.run(RunSpec(
        dataset=ds,
        placement=moment_paper_layout_b(machine),
        sample_batches=_batches(quick),
    ))
    best_classic = _placement_sweep(
        machine, ds, "graphsage", 4, _batches(quick), MomentSystem
    )
    table = Table(
        ["layout", "epoch_s", "per_gpu_inlet_gbs"],
        title="Fig 7: Moment's placement on Machine B (paper epoch 13.2 s,"
        " 15.61 GB/s per-GPU inlet)",
    )

    def inlet(res):
        rates = list(res.epoch.per_gpu_inlet.values())
        return float(np.mean(rates)) / 1e9 if rates else 0.0

    table.add_row(["moment (searched)", r.paper_epoch_seconds, inlet(r)])
    table.add_row(["paper fig-7 layout", fig7.paper_epoch_seconds, inlet(fig7)])
    best_c = best_classic["c"]
    table.add_row(["classic (c)", best_c.paper_epoch_seconds, inlet(best_c)])
    return ExperimentResult(
        "fig7",
        "Moment placement on Machine B",
        table,
        data={
            "moment_epoch_s": r.paper_epoch_seconds,
            "fig7_epoch_s": fig7.paper_epoch_seconds,
            "classic_c_epoch_s": best_c.paper_epoch_seconds,
            "moment_placement": repr(r.placement),
        },
        notes=[f"searched placement: {r.placement!r}"],
    )


# ----------------------------------------------------------------------
# Figure 10: end-to-end throughput
# ----------------------------------------------------------------------
@_timed
def run_fig10_end_to_end(
    quick: bool = False,
    datasets: Sequence[str] = ("PA", "IG", "UK", "CL"),
    models: Sequence[str] = ("graphsage", "gat"),
) -> ExperimentResult:
    """Figure 10: Moment vs M-GIDS vs DistDGL on all datasets/models."""
    machine = machine_a()
    table = Table(
        ["dataset", "model", "moment", "m-gids", "distdgl"],
        title="Fig 10: end-to-end throughput (kseeds/s; X = OOM)",
    )
    data: Dict = {}
    speedup_gids = []
    speedup_dgl = []
    for key in datasets:
        ds = _dataset(key, quick)
        # baselines do not optimise hardware placement: they run the
        # stock front-bay server layout (a)
        stock = classic_layouts(machine)["a"]
        for model in models:
            moment = MomentSystem(machine).run(RunSpec(
                dataset=ds, model=model, sample_batches=_batches(quick)
            ))
            mgids = MGidsSystem(machine).run(RunSpec(
                dataset=ds,
                placement=stock,
                model=model,
                sample_batches=_batches(quick),
            ))
            dgl = DistDglSystem().run(RunSpec(
                dataset=ds, model=model, sample_batches=_batches(quick)
            ))

            def cell(ok: bool, seeds: float) -> str:
                return f"{seeds / 1e3:.1f}" if ok else "X"

            table.add_row(
                [
                    key,
                    model,
                    cell(moment.ok, moment.seeds_per_s),
                    cell(mgids.ok, mgids.seeds_per_s),
                    cell(dgl.ok, dgl.seeds_per_s),
                ]
            )
            data[(key, model)] = {
                "moment": moment.seeds_per_s if moment.ok else None,
                "m-gids": mgids.seeds_per_s if mgids.ok else None,
                "distdgl": dgl.seeds_per_s if dgl.ok else None,
            }
            if mgids.ok:
                speedup_gids.append(moment.seeds_per_s / mgids.seeds_per_s)
            if dgl.ok:
                speedup_dgl.append(moment.seeds_per_s / dgl.seeds_per_s)
    notes = [
        f"max speedup vs M-GIDS: {max(speedup_gids):.2f}x (paper up to "
        f"{PAPER_MAX_SPEEDUP_VS_MGIDS}x; paper M-GIDS OOMs on UK/CL)",
        f"max speedup vs DistDGL: {max(speedup_dgl):.2f}x (paper up to "
        f"{PAPER_MAX_SPEEDUP_VS_DISTDGL}x; paper DistDGL OOMs on IG/UK/CL)",
    ]
    return ExperimentResult(
        "fig10", "end-to-end throughput", table, data=data, notes=notes
    )


# ----------------------------------------------------------------------
# Figures 11/12: classic placements + Moment
# ----------------------------------------------------------------------
@_timed
def run_fig11_placements_vs_moment_a(quick: bool = False) -> ExperimentResult:
    return _placements_vs_moment_fig("fig11", machine_a(), quick)


@_timed
def run_fig12_placements_vs_moment_b(quick: bool = False) -> ExperimentResult:
    return _placements_vs_moment_fig("fig12", machine_b(), quick)


def _placements_vs_moment_fig(fig_id, machine, quick) -> ExperimentResult:
    ds = _dataset("IG", quick)
    gpu_counts = (2, 4) if quick else (2, 3, 4)
    models = ("graphsage",) if quick else ("graphsage", "gat")
    table = Table(
        ["model", "gpus", "a", "b", "c", "d", "moment", "speedup"],
        title=f"{fig_id}: classic placements vs Moment on {machine.name} "
        "(kseeds/s)",
    )
    data: Dict = {}
    max_speedup = 0.0
    max_vs_any = 0.0
    for model in models:
        for n in gpu_counts:
            classics = _placement_sweep(
                machine, ds, model, n, _batches(quick), MomentSystem
            )
            moment = MomentSystem(machine).run(RunSpec(
                dataset=ds, model=model, num_gpus=n,
                sample_batches=_batches(quick),
            ))
            best_classic = max(r.seeds_per_s for r in classics.values())
            worst_classic = min(r.seeds_per_s for r in classics.values())
            speedup = moment.seeds_per_s / max(best_classic, 1e-9)
            max_speedup = max(max_speedup, speedup)
            max_vs_any = max(
                max_vs_any, moment.seeds_per_s / max(worst_classic, 1e-9)
            )
            table.add_row(
                [
                    model,
                    n,
                    *(classics[k].seeds_per_s / 1e3 for k in "abcd"),
                    moment.seeds_per_s / 1e3,
                    f"{speedup:.2f}x",
                ]
            )
            data[(model, n)] = {
                **{k: classics[k].seeds_per_s for k in "abcd"},
                "moment": moment.seeds_per_s,
            }
    paper = "1.54x" if machine.name == "machine_a" else "1.63x"
    return ExperimentResult(
        fig_id,
        f"Moment vs classic placements on {machine.name}",
        table,
        data=data,
        notes=[
            f"max Moment speedup over best classic: {max_speedup:.2f}x, "
            f"over any classic: {max_vs_any:.2f}x "
            f"(paper: up to {paper} over the classics)"
        ],
    )


# ----------------------------------------------------------------------
# Figure 13: prediction accuracy
# ----------------------------------------------------------------------
@_timed
def run_fig13_prediction(
    quick: bool = False,
    datasets: Sequence[str] = ("PA", "IG", "UK", "CL"),
) -> ExperimentResult:
    """Figure 13: predicted vs measured throughput on both machines."""
    if quick:
        datasets = ("PA", "IG")
    table = Table(
        ["machine", "dataset", "gpus", "measured_gbs", "predicted_gbs", "err_%"],
        title="Fig 13: automatic-module prediction accuracy "
        f"(paper max error {PAPER_MAX_PREDICTION_ERROR * 100:.1f}%)",
    )
    errors = []
    data: Dict = {}
    # prediction accuracy needs a low-variance measurement: simulate
    # more steps than the other figures
    n_batches = 4 if quick else 20
    for machine in (machine_a(), machine_b()):
        for key in datasets:
            ds = _dataset(key, quick)
            for n in (2, 4):
                moment = MomentSystem(machine)
                r = moment.run(RunSpec(
                    dataset=ds, num_gpus=n, sample_batches=n_batches
                ))
                if not r.ok:
                    continue
                epoch = r.epoch
                io_epoch = epoch.io_seconds * epoch.num_steps
                measured = epoch.external_bytes / max(io_epoch, 1e-9)
                topo = machine.build(r.placement)
                pred = multicommodity_min_time(topo, epoch.demand)
                predicted = epoch.demand.total / max(pred.time, 1e-9)
                err = abs(predicted - measured) / measured
                errors.append(err)
                table.add_row(
                    [
                        machine.name,
                        key,
                        n,
                        measured / 1e9,
                        predicted / 1e9,
                        err * 100,
                    ]
                )
                data[(machine.name, key, n)] = {
                    "measured": measured,
                    "predicted": predicted,
                    "error": err,
                }
    notes = [
        f"max prediction error: {max(errors) * 100:.2f}% "
        f"(paper: {PAPER_MAX_PREDICTION_ERROR * 100:.2f}%)"
    ]
    return ExperimentResult(
        "fig13", "prediction accuracy", table, data=data, notes=notes
    )


# ----------------------------------------------------------------------
# Figures 14/15/17: DDAK vs hash
# ----------------------------------------------------------------------
class _HashMomentSystem(MomentSystem):
    """Moment's runtime with hash data placement (the Fig-14 baseline)."""

    name = "moment-hash"

    def place_data(self, topo, dataset, hotness, plan, traffic=None):
        bins = make_bins(
            topo,
            gpu_cache_bytes=plan.gpu_cache_bytes,
            cpu_cache_bytes=plan.cpu_cache_bytes,
            ssd_capacity_bytes=plan.ssd_capacity_bytes,
        )
        return hash_place(bins, hotness, dataset.feature_bytes)


def _ddak_vs_hash(
    machine: MachineSpec, quick: bool
) -> Dict[str, Dict[str, SystemResult]]:
    ds = _dataset("IG", quick)
    out: Dict[str, Dict[str, SystemResult]] = {}
    for key, placement in classic_layouts(machine).items():
        ddak = MomentSystem(machine).run(RunSpec(
            dataset=ds, placement=placement, sample_batches=_batches(quick)
        ))
        hashed = _HashMomentSystem(machine).run(RunSpec(
            dataset=ds, placement=placement, sample_batches=_batches(quick)
        ))
        out[key] = {"ddak": ddak, "hash": hashed}
    return out


@_timed
def run_fig14_ddak_a(quick: bool = False) -> ExperimentResult:
    return _ddak_fig("fig14", machine_a(), quick)


@_timed
def run_fig15_ddak_b(quick: bool = False) -> ExperimentResult:
    return _ddak_fig("fig15", machine_b(), quick)


def _ddak_fig(fig_id, machine, quick) -> ExperimentResult:
    results = _ddak_vs_hash(machine, quick)
    table = Table(
        ["placement", "ddak_epoch_s", "hash_epoch_s", "gain_%"],
        title=f"{fig_id}: DDAK vs hash placement on {machine.name} "
        f"(paper max gain {PAPER_DDAK_GAIN[machine.name] * 100:.1f}%)",
    )
    gains = {}
    for key in "abcd":
        d = results[key]["ddak"].paper_epoch_seconds
        h = results[key]["hash"].paper_epoch_seconds
        gains[key] = h / d - 1
        table.add_row([key, d, h, gains[key] * 100])
    return ExperimentResult(
        fig_id,
        f"DDAK gains on {machine.name}",
        table,
        data=gains,
        notes=[
            f"max gain {max(gains.values()) * 100:.1f}% "
            f"(paper {PAPER_DDAK_GAIN[machine.name] * 100:.1f}%)"
        ],
    )


@_timed
def run_fig17_qpi_traffic(quick: bool = False) -> ExperimentResult:
    """Figure 17: cross-QPI traffic, hash vs DDAK, Machine A."""
    results = _ddak_vs_hash(machine_a(), quick)
    table = Table(
        ["placement", "hash_qpi_gb", "ddak_qpi_gb", "reduction_%", "paper_%"],
        title="Fig 17: QPI traffic per epoch, hash vs DDAK (Machine A)",
    )
    data = {}
    for key in "abcd":
        qd = results[key]["ddak"].epoch.traffic.qpi_bytes
        qh = results[key]["hash"].epoch.traffic.qpi_bytes
        red = 1 - qd / max(qh, 1e-9)
        data[key] = red
        table.add_row(
            [key, qh / 1e9, qd / 1e9, red * 100, PAPER_QPI_REDUCTION[key] * 100]
        )
    return ExperimentResult(
        "fig17", "QPI traffic hash vs DDAK", table, data=data
    )


# ----------------------------------------------------------------------
# Figure 16: scalability
# ----------------------------------------------------------------------
@_timed
def run_fig16_scalability(
    quick: bool = False, machines: Sequence[str] = ("a", "b")
) -> ExperimentResult:
    """Figure 16: Moment vs placements (c)/(d) from 1 to 4 GPUs."""
    table = Table(
        ["machine", "system", "1gpu", "2gpu", "3gpu", "4gpu", "scaling"],
        title="Fig 16: scalability, kseeds/s (IG, GraphSAGE)",
    )
    gpu_counts = (1, 2, 4) if quick else (1, 2, 3, 4)
    data: Dict = {}
    ds = _dataset("IG", quick)
    for mname in machines:
        machine = _machine(mname)
        rows: Dict[str, Dict[int, float]] = {"c": {}, "d": {}, "moment": {}}
        for n in gpu_counts:
            layouts = classic_layouts(machine, num_gpus=n)
            for key in ("c", "d"):
                r = MomentSystem(machine).run(RunSpec(
                    dataset=ds,
                    placement=layouts[key],
                    num_gpus=n,
                    sample_batches=_batches(quick),
                ))
                rows[key][n] = r.seeds_per_s
            rm = MomentSystem(machine).run(RunSpec(
                dataset=ds, num_gpus=n, sample_batches=_batches(quick)
            ))
            rows["moment"][n] = rm.seeds_per_s
        for sysname, per_gpu in rows.items():
            scaling = per_gpu[max(gpu_counts)] / max(per_gpu[1], 1e-9)
            paper = PAPER_SCALING[machine.name][sysname]
            table.add_row(
                [
                    machine.name,
                    sysname,
                    *(
                        per_gpu.get(n, float("nan")) / 1e3
                        for n in (1, 2, 3, 4)
                    ),
                    f"{scaling:.2f}x (paper {paper:.2f}x)",
                ]
            )
            data[(machine.name, sysname)] = per_gpu
    return ExperimentResult("fig16", "GPU scalability", table, data=data)


# ----------------------------------------------------------------------
# Figure 18: NVLink support
# ----------------------------------------------------------------------
@_timed
def run_fig18_nvlink(quick: bool = False) -> ExperimentResult:
    """Figure 18: NVLink on/off under placement (c)."""
    ds = _dataset("IG", quick)
    table = Table(
        ["machine", "no_nvlink_s", "nvlink_s", "gain_%", "paper_%"],
        title="Fig 18: NVLink vs no-NVLink, placement (c), IG",
    )
    data = {}
    for machine in (machine_a(), machine_b()):
        placement = classic_layouts(machine)["c"]
        pairs = [(0, 2), (1, 3)]  # bridges across the two switches
        base = MomentSystem(machine).run(RunSpec(
            dataset=ds, placement=placement, sample_batches=_batches(quick)
        ))
        nv = MomentSystem(machine).run(RunSpec(
            dataset=ds,
            placement=placement,
            sample_batches=_batches(quick),
            nvlink_pairs=pairs,
        ))
        gain = base.paper_epoch_seconds / nv.paper_epoch_seconds - 1
        data[machine.name] = gain
        table.add_row(
            [
                machine.name,
                base.paper_epoch_seconds,
                nv.paper_epoch_seconds,
                gain * 100,
                PAPER_NVLINK_GAIN[machine.name] * 100,
            ]
        )
    return ExperimentResult("fig18", "NVLink support", table, data=data)


# ----------------------------------------------------------------------
# Section 4.2 cost claims and Section 3.3 pooling cost
# ----------------------------------------------------------------------
@_timed
def run_cost_tco() -> ExperimentResult:
    """Section 4.2: monetary cost (~50%) and 5-year TCO comparison."""
    tco = tco_comparison()
    ratio = cloud_cost_ratio()
    table = Table(
        ["metric", "value", "paper"],
        title="Section 4.2: monetary cost",
    )
    table.add_row(["cloud hourly ratio (1 box vs 4 nodes)", f"{ratio:.2f}", "~0.50"])
    table.add_row(
        ["5y TCO, Machine A/B", f"${tco['machine_a_b_usd']:,.0f}", "$90,270"]
    )
    table.add_row(
        ["5y TCO, Cluster C", f"${tco['cluster_c_usd']:,.0f}", "$181,100"]
    )
    return ExperimentResult(
        "cost", "monetary cost and TCO", table, data={**tco, "cloud": ratio}
    )


@_timed
def run_ddak_pooling(quick: bool = False) -> ExperimentResult:
    """Section 3.3: DDAK pooling factor n — planning time vs epoch time."""
    from repro.core.ddak import ddak_place
    from repro.core.optimizer import (
        MomentOptimizer,
        OptimizerConfig,
        capacity_plan,
    )

    machine = machine_a()
    ds = _dataset("UK" if not quick else "PA", quick)
    opt = MomentOptimizer(machine, 4, 8)
    hotness = opt.estimate_hotness(ds)
    plan = opt.optimize(ds, hotness=hotness)
    cap = capacity_plan(machine, ds)
    bins = make_bins(
        plan.topology,
        gpu_cache_bytes=cap.gpu_cache_bytes,
        cpu_cache_bytes=cap.cpu_cache_bytes,
        ssd_capacity_bytes=cap.ssd_capacity_bytes,
        traffic=plan.prediction.storage_rate,
    )
    table = Table(
        ["pool_n", "plan_ms", "epoch_s"],
        title="DDAK pooling factor sweep (paper: n=100, ~14 s offline on UK)",
    )
    data = {}
    pools = (10, 100, 1000) if quick else (1, 10, 100, 1000, 10000)
    from repro.runtime.system import MomentSystem as _MS
    from repro.simulator.pipeline import EpochSimulator, SimConfig

    for n in pools:
        t0 = time.perf_counter()
        dp = ddak_place(bins, hotness, ds.feature_bytes, pool_size=n)
        plan_ms = (time.perf_counter() - t0) * 1e3
        sim = EpochSimulator(
            plan.topology,
            machine,
            ds,
            dp,
            SimConfig(sample_batches=_batches(quick)),
        )
        epoch = sim.run_epoch()
        data[n] = {"plan_ms": plan_ms, "epoch_s": epoch.paper_epoch_seconds}
        table.add_row([n, plan_ms, epoch.paper_epoch_seconds])
    return ExperimentResult(
        "pooling",
        "DDAK pooling factor",
        table,
        data=data,
        notes=["larger n plans faster; epoch time degrades only slowly"],
    )
