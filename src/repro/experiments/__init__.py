"""Experiment runners regenerating every table and figure of the paper."""

from repro.experiments.registry import (
    get_runner,
    list_experiments,
    run_experiment,
)
from repro.experiments.figures import ExperimentResult

__all__ = [
    "ExperimentResult",
    "get_runner",
    "list_experiments",
    "run_experiment",
]
