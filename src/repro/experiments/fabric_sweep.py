"""Fabric sweep: invariant harness over generated heterogeneous fabrics.

Each seeded fabric from :func:`repro.hardware.generate.generate_fabric`
is compiled to a machine and driven through the full stack (search,
optimizer, simulator, faults, replanning).  Four properties must hold on
*every* fabric — they are statements about the model, not about any one
machine:

* **ddak_beats_hash** — on the searched placement, Moment's DDAK data
  placement achieves at least hash placement's throughput (within
  :data:`THROUGHPUT_TOL`; DDAK degenerates to hash-equivalent on
  uniform fabrics, it never loses).
* **capacity_respected** — the epoch simulator's per-link traffic never
  exceeds link capacity x time (mean utilization <= 1 +
  :data:`UTILIZATION_EPS` on every link).
* **oom_monotone** — the OOM verdict is monotone in HBM size: if the
  memory budget fits at some HBM scale it fits at every larger scale.
* **replan_recovers** — after a drive failure, the degradation-aware
  replan arm's steady-state step time is no worse than the static arm's
  (within :data:`THROUGHPUT_TOL`).

Seeds default to 0..24 full / 0..5 quick; set ``REPRO_FABRIC_SEEDS``
(space- or comma-separated) to override — e.g. reproduce one failing
seed with ``REPRO_FABRIC_SEEDS=13 python -m repro.experiments
fabric-sweep``.  A violation raises ``AssertionError`` naming the seeds
and that repro command, which is what makes the CI job a gate.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional, Tuple

from repro.core.optimizer import MomentOptimizer, OptimizerConfig
from repro.core.search import sample_placements
from repro.experiments.figures import (
    ExperimentResult,
    _HashMomentSystem,
    _dataset,
    _timed,
)
from repro.faults import FaultSchedule
from repro.graphs.datasets import ScaledDataset
from repro.hardware.fabric import compile_fabric, fabric_summary
from repro.hardware.generate import (
    generate_fabric,
    has_cxl,
    is_asymmetric,
)
from repro.runtime.spec import RunSpec
from repro.runtime.system import MomentSystem
from repro.simulator.memory import OutOfMemoryError
from repro.utils.report import Table

#: Fixed sweep seeds (full / quick); REPRO_FABRIC_SEEDS overrides both.
DEFAULT_SEEDS: Tuple[int, ...] = tuple(range(25))
QUICK_SEEDS: Tuple[int, ...] = tuple(range(6))

#: Relative slack on throughput comparisons (LP/simulator noise).
THROUGHPUT_TOL = 0.05
#: Absolute slack on mean link utilization.  The epoch simulator
#: amortizes prefetch steady state (a step's IO time is the joint
#: makespan divided by in-flight batches), so the bytes charged to the
#: gating step can exceed capacity x step-time by a few percent —
#: classic machines peak near 0.97, generated fabrics near 1.035.  The
#: bound still catches real accounting bugs (2x would blow through it)
#: without flagging the amortization artifact.
UTILIZATION_EPS = 0.05
#: Ascending HBM scale factors probed for the OOM-monotonicity check
#: (the smallest must sit below the fixed reservations so the frontier
#: is actually exercised).
HBM_SCALES: Tuple[float, ...] = (0.002, 0.02, 0.2, 1.0)
#: Candidate-sample cap per fabric (generated chassis can enumerate
#: thousands of canonical placements; the invariants need a searched
#: placement, not the global optimum).
CANDIDATE_CAP = 12

_GPUS = 2
_SSDS = 3


def sweep_seeds(quick: bool = False) -> Tuple[int, ...]:
    """The fabric seeds this sweep covers (env override first)."""
    env = os.environ.get("REPRO_FABRIC_SEEDS")
    if env:
        return tuple(int(s) for s in env.replace(",", " ").split())
    return QUICK_SEEDS if quick else DEFAULT_SEEDS


def _max_utilization(result) -> float:
    """Peak mean per-link utilization of a run's epoch."""
    epoch = result.epoch
    util = epoch.traffic.link_utilization(epoch.epoch_seconds)
    return max(util.values()) if util else 0.0


def _oom_verdicts(machine, dataset: ScaledDataset) -> List[bool]:
    """Fits-in-HBM verdicts over :data:`HBM_SCALES` (ascending)."""
    verdicts = []
    for scale in HBM_SCALES:
        gpu = dataclasses.replace(
            machine.gpu, hbm_bytes=machine.gpu.hbm_bytes * scale
        )
        shrunk = dataclasses.replace(
            machine, gpu=gpu, fabric_spec=machine.fabric_spec
        )
        try:
            MomentSystem(shrunk).hbm_cache_budget(dataset, "graphsage", _GPUS)
            verdicts.append(True)
        except OutOfMemoryError:
            verdicts.append(False)
    return verdicts


def check_fabric(seed: int, quick: bool = False) -> Dict:
    """Run every invariant on one generated fabric; returns the
    per-fabric report dict (``violations`` empty = all hold)."""
    spec = generate_fabric(seed)
    machine = compile_fabric(spec)
    # the figures' scaled PA stand-in: caches scale down with the
    # dataset, so runs have real external traffic to account
    dataset = _dataset("PA", quick)
    batches = 3 if quick else 4
    violations: List[str] = []

    candidates = sample_placements(
        machine.chassis, _GPUS, _SSDS, cap=CANDIDATE_CAP
    )
    plan = MomentOptimizer(
        machine, _GPUS, _SSDS, OptimizerConfig(seed=0)
    ).optimize(dataset, candidates=candidates)
    summary = fabric_summary(machine, machine.build(plan.placement))
    base = RunSpec(
        dataset=dataset,
        placement=plan.placement,
        num_gpus=_GPUS,
        num_ssds=_SSDS,
        sample_batches=batches,
    )

    moment = MomentSystem(machine).run(base)
    hashed = _HashMomentSystem(machine).run(base)
    if not moment.ok or not hashed.ok:
        violations.append(
            f"run failed: moment={moment.oom!r} hash={hashed.oom!r}"
        )
        ddak_gain = float("nan")
        max_util = float("nan")
    else:
        ddak_gain = moment.seeds_per_s / hashed.seeds_per_s
        if moment.seeds_per_s < hashed.seeds_per_s * (1 - THROUGHPUT_TOL):
            violations.append(
                f"ddak_beats_hash: moment {moment.seeds_per_s:.1f} < "
                f"hash {hashed.seeds_per_s:.1f} seeds/s"
            )
        max_util = max(_max_utilization(moment), _max_utilization(hashed))
        if max_util > 1 + UTILIZATION_EPS:
            violations.append(
                f"capacity_respected: peak link utilization {max_util:.4f}"
            )

    verdicts = _oom_verdicts(machine, dataset)
    if verdicts != sorted(verdicts):
        violations.append(
            f"oom_monotone: fits-verdicts {verdicts} over HBM scales "
            f"{HBM_SCALES} are not monotone"
        )

    schedule = FaultSchedule.parse("fail@1:ssd0")
    static = MomentSystem(machine).run(base.replace(faults=schedule))
    replan = MomentSystem(machine).run(
        base.replace(faults=schedule, replan=True)
    )
    if not static.ok or not replan.ok:
        violations.append(
            f"fault run failed: static={static.oom!r} replan={replan.oom!r}"
        )
        replan_vs_static = float("nan")
    else:
        s_last = static.epoch.step_seconds[-1]
        r_last = replan.epoch.step_seconds[-1]
        replan_vs_static = s_last / r_last if r_last > 0 else float("inf")
        if r_last > s_last * (1 + THROUGHPUT_TOL):
            violations.append(
                f"replan_recovers: replan last step {r_last * 1e3:.2f} ms "
                f"> static {s_last * 1e3:.2f} ms"
            )

    return {
        "seed": seed,
        "summary": summary,
        "asymmetric": is_asymmetric(spec),
        "cxl": has_cxl(spec),
        "num_candidates": len(candidates),
        "ddak_gain": ddak_gain,
        "max_utilization": max_util,
        "oom_verdicts": verdicts,
        "replan_vs_static": replan_vs_static,
        "violations": violations,
    }


@_timed
def run_fabric_sweep(
    quick: bool = False, seeds: Optional[Tuple[int, ...]] = None
) -> ExperimentResult:
    """Sweep the invariants across generated fabrics (seeded fuzzing)."""
    seeds = tuple(seeds) if seeds is not None else sweep_seeds(quick)
    table = Table(
        ["seed", "fabric", "nodes", "links", "asym", "cxl",
         "ddak_gain", "max_util", "replan/static", "ok"],
        title=f"fabric sweep: {len(seeds)} generated fabrics "
        f"(cap {CANDIDATE_CAP} candidates/fabric)",
    )
    reports = []
    for seed in seeds:
        rep = check_fabric(seed, quick=quick)
        reports.append(rep)
        s = rep["summary"]
        table.add_row(
            [
                seed,
                s["fingerprint"],
                s["nodes"],
                s["links"],
                "y" if rep["asymmetric"] else "-",
                "y" if rep["cxl"] else "-",
                f"{rep['ddak_gain']:.3f}",
                f"{rep['max_utilization']:.3f}",
                f"{rep['replan_vs_static']:.3f}",
                "ok" if not rep["violations"] else
                f"{len(rep['violations'])} FAIL",
            ]
        )

    n_asym = sum(1 for r in reports if r["asymmetric"])
    n_cxl = sum(1 for r in reports if r["cxl"])
    failed = [r for r in reports if r["violations"]]
    notes = [
        f"{n_asym}/{len(seeds)} asymmetric-PCIe fabrics, "
        f"{n_cxl}/{len(seeds)} with a CXL tier",
        "invariants: ddak_beats_hash, capacity_respected, oom_monotone, "
        "replan_recovers",
    ]
    if not os.environ.get("REPRO_FABRIC_SEEDS"):
        # coverage demands only apply to the default fleet; a pinned
        # repro seed legitimately has whatever shape it has
        if n_asym < 1 or (not quick and n_cxl < 1):
            failed.append(
                {
                    "seed": None,
                    "violations": [
                        f"coverage: {n_asym} asymmetric / {n_cxl} CXL "
                        "fabrics in the fleet (need >=1 of each)"
                    ],
                }
            )
    result = ExperimentResult(
        "fabric-sweep",
        "fabric invariants over generated heterogeneous machines",
        table,
        data={"reports": reports, "seeds": list(seeds)},
        notes=notes,
    )
    if failed:
        result.print()
        lines = []
        for r in failed:
            for v in r["violations"]:
                lines.append(f"  seed {r['seed']}: {v}")
        raise AssertionError(
            "fabric sweep violated invariant(s) on "
            f"{len(failed)} fabric(s):\n" + "\n".join(lines) + "\n"
            "reproduce one seed with: REPRO_FABRIC_SEEDS=<seed> "
            "python -m repro.experiments fabric-sweep"
        )
    return result
