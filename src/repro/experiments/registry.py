"""Registry mapping experiment ids to their runners.

``python -m repro.experiments fig10`` (or the benchmark harness) looks
runners up here; ``list_experiments`` powers the README's experiment
index.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.experiments import fabric_sweep as FS
from repro.experiments import faults as X
from repro.experiments import figures as F
from repro.experiments import sensitivity as S

#: experiment id -> (runner, accepts-quick-kwarg)
_REGISTRY: Dict[str, Callable] = {
    "table1": F.run_table1_machines,
    "table2": F.run_table2_datasets,
    "fig1": F.run_fig1_placements_a,
    "fig2": F.run_fig2_placements_b,
    "fig3": F.run_fig3_mhyperion_a,
    "fig4": F.run_fig4_mhyperion_b,
    "fig5": F.run_fig5_scaling_mhyperion,
    "fig6": F.run_fig6_scaling_mgids,
    "fig7": F.run_fig7_moment_placement,
    "fig10": F.run_fig10_end_to_end,
    "fig11": F.run_fig11_placements_vs_moment_a,
    "fig12": F.run_fig12_placements_vs_moment_b,
    "fig13": F.run_fig13_prediction,
    "fig14": F.run_fig14_ddak_a,
    "fig15": F.run_fig15_ddak_b,
    "fig16": F.run_fig16_scalability,
    "fig17": F.run_fig17_qpi_traffic,
    "fig18": F.run_fig18_nvlink,
    "cost": F.run_cost_tco,
    "pooling": F.run_ddak_pooling,
    "faults": X.run_faults,
    "fabric-sweep": FS.run_fabric_sweep,
    "sens-cache": S.sweep_gpu_cache,
    "sens-qpi": S.sweep_qpi_bandwidth,
    "sens-skew": S.sweep_skew,
    "sens-featdim": S.sweep_feature_dim,
}

#: runners that take no ``quick`` parameter
_NO_QUICK = {"table1", "cost"}

#: runners that accept a ``faults`` schedule (CLI ``--faults SPEC``)
_ACCEPTS_FAULTS = {"faults"}

#: runners that accept a ``machine`` (CLI ``--fabric TARGET``, resolved
#: through :func:`repro.hardware.registry.get_machine`)
_ACCEPTS_MACHINE = {"faults"}


def list_experiments() -> List[str]:
    """All experiment ids, paper order."""
    return list(_REGISTRY)


def get_runner(experiment_id: str) -> Callable:
    """Look up a runner; raises ``KeyError`` with the available ids."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(_REGISTRY)}"
        ) from None


def run_experiment(
    experiment_id: str, quick: bool = False, faults=None, machine=None
):
    """Run one experiment by id.

    ``faults`` (a :class:`~repro.faults.FaultSchedule`) is forwarded to
    runners that inject faults, and ``machine`` (a compiled
    :class:`~repro.hardware.machines.MachineSpec`, e.g. from
    ``get_machine("gen:7")``) to runners that take their hardware as a
    parameter; passing either to any other experiment is an error
    rather than a silent no-op.
    """
    runner = get_runner(experiment_id)
    if faults is not None and experiment_id not in _ACCEPTS_FAULTS:
        raise ValueError(
            f"experiment {experiment_id!r} does not take a fault "
            f"schedule; --faults applies to: {', '.join(_ACCEPTS_FAULTS)}"
        )
    if machine is not None and experiment_id not in _ACCEPTS_MACHINE:
        raise ValueError(
            f"experiment {experiment_id!r} does not take a machine; "
            f"--fabric applies to: {', '.join(sorted(_ACCEPTS_MACHINE))}"
        )
    if experiment_id in _NO_QUICK:
        return runner()
    kwargs = {"quick": quick}
    if experiment_id in _ACCEPTS_FAULTS:
        kwargs["faults"] = faults
    if experiment_id in _ACCEPTS_MACHINE:
        kwargs["machine"] = machine
    return runner(**kwargs)
