"""Training-vertex partitioning across data-parallel GPUs.

Moment "performs data-parallel training on multiple GPUs by evenly
partitioning training vertices" (Section 3.1).  We provide the even
round-robin partitioner plus a contiguous-range variant used by the
DistDGL baseline (which partitions by machine).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng


def partition_round_robin(train_ids: np.ndarray, num_parts: int) -> List[np.ndarray]:
    """Deal training vertices across parts like cards: part i gets
    ids[i::num_parts].  Part sizes differ by at most one."""
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    ids = np.asarray(train_ids, dtype=np.int64)
    return [ids[i::num_parts] for i in range(num_parts)]


def partition_contiguous(train_ids: np.ndarray, num_parts: int) -> List[np.ndarray]:
    """Split into contiguous chunks (DistDGL-style per-machine ranges)."""
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    ids = np.asarray(train_ids, dtype=np.int64)
    return [np.array(part, dtype=np.int64) for part in np.array_split(ids, num_parts)]


def partition_random(
    train_ids: np.ndarray, num_parts: int, seed: SeedLike = None
) -> List[np.ndarray]:
    """Shuffle then deal — what DDP samplers actually do per epoch."""
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    rng = ensure_rng(seed)
    ids = np.asarray(train_ids, dtype=np.int64).copy()
    rng.shuffle(ids)
    return partition_round_robin(ids, num_parts)


def validate_partition(
    train_ids: np.ndarray, parts: List[np.ndarray]
) -> None:
    """Check a partition is exact: disjoint cover, balanced within 1."""
    ids = np.asarray(train_ids, dtype=np.int64)
    joined = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    if sorted(joined.tolist()) != sorted(ids.tolist()):
        raise ValueError("partition does not exactly cover the training set")
    sizes = [p.size for p in parts]
    if sizes and max(sizes) - min(sizes) > 1:
        raise ValueError(f"partition imbalanced: sizes {sizes}")
