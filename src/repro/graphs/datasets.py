"""Dataset registry: the paper's four graphs and their scaled stand-ins.

Table 2 of the paper:

============  ======  ======  =======  =======
Dataset       PA      IG      UK       CL
============  ======  ======  =======  =======
Vertices      111 M   269 M   0.79 B   1 B
Edges         1.6 B   4 B     47.2 B   42.5 B
Topology      14 GB   34 GB   384 GB   348 GB
Feature dim   1024    1024    1024     1024
Features      56 GB   1.1 TB  3.2 TB   4.1 TB
============  ======  ======  =======  =======

We cannot hold terabyte graphs, so each spec carries a ``default_scale``
and :meth:`DatasetSpec.build` instantiates the graph at ``1/scale``
vertices/edges with a matching batch size (paper: 8000).  The scaling
rule (DESIGN.md §6): divide every byte capacity by the same ``scale``
and multiply simulated times by ``scale`` — traffic fractions, cache
hit-rates and bottleneck identities are invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.graphs.generators import power_law_graph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.units import GB, TB


@dataclass(frozen=True)
class DatasetSpec:
    """Paper-scale description of one evaluation graph."""

    key: str
    name: str
    num_vertices: int
    num_edges: int
    feature_dim: int
    topology_bytes: float
    feature_storage_bytes: float
    #: Zipf exponent of the scaled stand-in (web graphs are more skewed).
    skew_exponent: float
    #: Default down-scaling factor for local instantiation.
    default_scale: int
    train_fraction: float = 0.01
    batch_size: int = 8000

    @property
    def avg_degree(self) -> float:
        """Mean out-degree at paper scale."""
        return self.num_edges / self.num_vertices

    @property
    def feature_bytes(self) -> int:
        """Bytes per vertex embedding (fp32)."""
        return self.feature_dim * 4

    @property
    def total_bytes(self) -> float:
        """Topology + features — what DistDGL must hold in cluster DRAM."""
        return self.topology_bytes + self.feature_storage_bytes

    def build(
        self,
        scale: Optional[float] = None,
        seed: SeedLike = 0,
        feature_dim: Optional[int] = None,
    ) -> "ScaledDataset":
        """Instantiate a scaled stand-in graph with matching skew.

        ``scale`` defaults to :attr:`default_scale`; larger values build
        smaller, faster graphs (tests use ``scale * 50``).
        """
        scale = float(scale if scale is not None else self.default_scale)
        if scale < 1:
            raise ValueError("scale must be >= 1")
        rng = ensure_rng(seed)
        n = max(1000, int(round(self.num_vertices / scale)))
        graph = power_law_graph(
            num_vertices=n,
            avg_degree=self.avg_degree,
            exponent=self.skew_exponent,
            seed=rng,
            feature_dim=feature_dim if feature_dim is not None else self.feature_dim,
        )
        batch = max(16, int(round(self.batch_size / scale)))
        num_train = max(batch, int(round(n * self.train_fraction)))
        train_ids = rng.choice(n, size=num_train, replace=False).astype(np.int64)
        return ScaledDataset(
            spec=self,
            graph=graph,
            train_ids=np.sort(train_ids),
            scale=scale,
            batch_size=batch,
        )


@dataclass(frozen=True)
class ScaledDataset:
    """A locally instantiated stand-in for a paper dataset."""

    spec: DatasetSpec
    graph: CSRGraph
    train_ids: np.ndarray
    scale: float
    batch_size: int

    @property
    def num_batches(self) -> int:
        """Seed mini-batches per epoch at the instantiated scale."""
        return max(1, int(np.ceil(self.train_ids.size / self.batch_size)))

    @property
    def batch_ratio(self) -> float:
        """Paper batch size over instantiated batch size: the factor
        converting per-step quantities to paper magnitude.  Equals
        ``scale`` except when the batch-size floor (16) kicked in."""
        return self.spec.batch_size / self.batch_size

    @property
    def feature_bytes(self) -> int:
        """Bytes per embedding — *not* scaled (dim is unchanged)."""
        return self.graph.feature_bytes

    def scaled_capacity(self, paper_bytes: float) -> float:
        """Convert a paper-scale byte capacity to this instance's scale."""
        return paper_bytes / self.scale

    def to_paper_time(self, simulated_seconds: float) -> float:
        """Rescale a simulated duration to paper-comparable magnitude."""
        return simulated_seconds * self.scale

    def __repr__(self) -> str:
        return (
            f"ScaledDataset({self.spec.key}, 1/{self.scale:g} scale, "
            f"{self.graph!r}, batch={self.batch_size})"
        )


PAPER100M = DatasetSpec(
    key="PA",
    name="Paper100M",
    num_vertices=111_000_000,
    num_edges=1_600_000_000,
    feature_dim=1024,
    topology_bytes=14 * GB,
    feature_storage_bytes=56 * GB,
    skew_exponent=0.70,
    default_scale=200,
)

IGB_HOM = DatasetSpec(
    key="IG",
    name="IGB-HOM",
    num_vertices=269_000_000,
    num_edges=4_000_000_000,
    feature_dim=1024,
    topology_bytes=34 * GB,
    feature_storage_bytes=1.1 * TB,
    skew_exponent=0.75,
    default_scale=400,
)

UK_2014 = DatasetSpec(
    key="UK",
    name="UK-2014",
    num_vertices=790_000_000,
    num_edges=47_200_000_000,
    feature_dim=1024,
    topology_bytes=384 * GB,
    feature_storage_bytes=3.2 * TB,
    skew_exponent=0.95,
    default_scale=1600,
)

CLUEWEB = DatasetSpec(
    key="CL",
    name="ClueWeb",
    num_vertices=1_000_000_000,
    num_edges=42_500_000_000,
    feature_dim=1024,
    topology_bytes=348 * GB,
    feature_storage_bytes=4.1 * TB,
    skew_exponent=0.95,
    default_scale=2000,
)

#: Registry in the paper's column order.
DATASETS: Dict[str, DatasetSpec] = {
    d.key: d for d in (PAPER100M, IGB_HOM, UK_2014, CLUEWEB)
}


def get_dataset(key: str) -> DatasetSpec:
    """Look up a dataset spec by its two-letter paper key."""
    try:
        return DATASETS[key.upper()]
    except KeyError:
        raise KeyError(
            f"unknown dataset {key!r}; available: {sorted(DATASETS)}"
        ) from None


def tiny_dataset(
    num_vertices: int = 2000,
    avg_degree: float = 8.0,
    seed: SeedLike = 0,
    feature_dim: int = 32,
    batch_size: int = 64,
    skew_exponent: float = 0.8,
) -> ScaledDataset:
    """A small synthetic dataset for unit tests and quickstart examples.

    Reported as a 1/1-scale dataset of itself (no paper counterpart).
    """
    rng = ensure_rng(seed)
    spec = DatasetSpec(
        key="TINY",
        name="tiny-synthetic",
        num_vertices=num_vertices,
        num_edges=int(num_vertices * avg_degree),
        feature_dim=feature_dim,
        topology_bytes=num_vertices * avg_degree * 8,
        feature_storage_bytes=num_vertices * feature_dim * 4,
        skew_exponent=skew_exponent,
        default_scale=1,
        batch_size=batch_size,
    )
    graph = power_law_graph(
        num_vertices, avg_degree, exponent=skew_exponent, seed=rng,
        feature_dim=feature_dim,
    )
    num_train = max(batch_size, int(num_vertices * 0.05))
    train_ids = np.sort(
        rng.choice(num_vertices, size=num_train, replace=False).astype(np.int64)
    )
    return ScaledDataset(spec, graph, train_ids, scale=1.0, batch_size=batch_size)
