"""Graph substrate: CSR container, generators, dataset registry,
training-vertex partitioning."""

from repro.graphs.csr import CSRGraph
from repro.graphs.generators import (
    community_graph,
    degree_gini,
    erdos_renyi_graph,
    power_law_graph,
    rmat_graph,
)
from repro.graphs.datasets import (
    CLUEWEB,
    DATASETS,
    DatasetSpec,
    IGB_HOM,
    PAPER100M,
    ScaledDataset,
    UK_2014,
    get_dataset,
    tiny_dataset,
)
from repro.graphs.partition import (
    partition_contiguous,
    partition_random,
    partition_round_robin,
    validate_partition,
)

__all__ = [
    "CSRGraph",
    "community_graph",
    "degree_gini",
    "erdos_renyi_graph",
    "power_law_graph",
    "rmat_graph",
    "CLUEWEB",
    "DATASETS",
    "DatasetSpec",
    "IGB_HOM",
    "PAPER100M",
    "ScaledDataset",
    "UK_2014",
    "get_dataset",
    "tiny_dataset",
    "partition_contiguous",
    "partition_random",
    "partition_round_robin",
    "validate_partition",
]
