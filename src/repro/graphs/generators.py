"""Synthetic graph generators.

The paper's graphs (Paper100M, IGB-HOM, UK-2014, ClueWeb) are web/
citation graphs with heavy-tailed degree distributions — the skewness
DDAK exploits.  We instantiate scaled stand-ins with:

* :func:`rmat_graph` — Recursive MATrix (Chakrabarti et al.) power-law
  generator, the standard synthetic stand-in for web graphs (Graph500
  uses it);
* :func:`power_law_graph` — Chung–Lu style expected-degree model with a
  configurable Zipf exponent, for precise skew control;
* :func:`erdos_renyi_graph` — uniform baseline, used in tests and
  ablations as the "no skew" control.

All generators are vectorised and deterministic given a seed.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.utils.rng import SeedLike, ensure_rng


def rmat_graph(
    num_vertices: int,
    num_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: SeedLike = None,
    feature_dim: int = 1024,
) -> CSRGraph:
    """R-MAT power-law graph (defaults are the Graph500 parameters).

    ``num_vertices`` is rounded up to the next power of two internally
    and truncated back by modular mapping, which preserves the skew.
    """
    if num_vertices < 2:
        raise ValueError("need at least 2 vertices")
    if num_edges < 1:
        raise ValueError("need at least 1 edge")
    d = 1.0 - a - b - c
    if d < 0 or min(a, b, c) < 0:
        raise ValueError("R-MAT probabilities must be non-negative and sum <= 1")
    rng = ensure_rng(seed)
    levels = int(np.ceil(np.log2(num_vertices)))
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    # Each level: choose a quadrant for every edge simultaneously.
    for _ in range(levels):
        r = rng.random(num_edges)
        right = (r >= a + c) | ((r >= a) & (r < a + b))  # quadrants b, d
        down = r >= a + b  # quadrants c, d
        src = (src << 1) | down.astype(np.int64)
        dst = (dst << 1) | right.astype(np.int64)
    src %= num_vertices
    dst %= num_vertices
    keep = src != dst
    return CSRGraph.from_edges(
        num_vertices, src[keep], dst[keep], feature_dim=feature_dim
    )


def power_law_graph(
    num_vertices: int,
    avg_degree: float,
    exponent: float = 0.8,
    seed: SeedLike = None,
    feature_dim: int = 1024,
) -> CSRGraph:
    """Chung–Lu graph whose expected degrees follow ``rank^-exponent``.

    ``exponent`` near 0 is uniform; 0.8–1.0 resembles web graphs.  Both
    endpoints of each edge are drawn from the same Zipf weights, so hub
    vertices have high in- *and* out-degree — matching the access skew
    the paper reports (a small vertex set accessed far more often).
    """
    if num_vertices < 2:
        raise ValueError("need at least 2 vertices")
    if avg_degree <= 0:
        raise ValueError("avg_degree must be positive")
    if exponent < 0:
        raise ValueError("exponent must be >= 0")
    rng = ensure_rng(seed)
    num_edges = int(num_vertices * avg_degree)
    weights = (np.arange(1, num_vertices + 1, dtype=np.float64)) ** (-exponent)
    weights /= weights.sum()
    # Shuffle hub identity so vertex id does not encode hotness.
    perm = rng.permutation(num_vertices)
    src = perm[rng.choice(num_vertices, size=num_edges, p=weights)]
    dst = perm[rng.choice(num_vertices, size=num_edges, p=weights)]
    keep = src != dst
    return CSRGraph.from_edges(
        num_vertices, src[keep], dst[keep], feature_dim=feature_dim
    )


def erdos_renyi_graph(
    num_vertices: int,
    avg_degree: float,
    seed: SeedLike = None,
    feature_dim: int = 1024,
) -> CSRGraph:
    """Uniform random graph with the given expected out-degree."""
    if num_vertices < 2:
        raise ValueError("need at least 2 vertices")
    if avg_degree <= 0:
        raise ValueError("avg_degree must be positive")
    rng = ensure_rng(seed)
    num_edges = int(num_vertices * avg_degree)
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    keep = src != dst
    return CSRGraph.from_edges(
        num_vertices, src[keep], dst[keep], feature_dim=feature_dim
    )


def community_graph(
    num_vertices: int,
    avg_degree: float,
    num_communities: int = 8,
    exponent: float = 0.8,
    cross_fraction: float = 0.05,
    seed: SeedLike = None,
    feature_dim: int = 1024,
) -> CSRGraph:
    """Power-law communities with sparse cross edges.

    Each community is its own Chung–Lu power-law subgraph over a
    contiguous vertex range, plus ``cross_fraction`` of edges drawn
    uniformly across the whole graph.  Hubs are therefore *local to
    their community* — training seeds drawn from one community heat up
    that community's hubs, which is the access-drift pattern the
    adaptive-placement extension (paper Section 5) targets.
    """
    if num_communities < 1 or num_communities > num_vertices:
        raise ValueError("need 1 <= num_communities <= num_vertices")
    if not 0.0 <= cross_fraction <= 1.0:
        raise ValueError("cross_fraction must be in [0, 1]")
    rng = ensure_rng(seed)
    bounds = np.linspace(0, num_vertices, num_communities + 1).astype(np.int64)
    srcs, dsts = [], []
    for c in range(num_communities):
        lo, hi = int(bounds[c]), int(bounds[c + 1])
        size = hi - lo
        if size < 2:
            continue
        local = power_law_graph(
            size, avg_degree * (1 - cross_fraction), exponent, seed=rng,
            feature_dim=feature_dim,
        )
        src = np.repeat(
            np.arange(size, dtype=np.int64), np.diff(local.indptr)
        )
        srcs.append(src + lo)
        dsts.append(local.indices + lo)
    n_cross = int(num_vertices * avg_degree * cross_fraction)
    if n_cross:
        srcs.append(rng.integers(0, num_vertices, n_cross, dtype=np.int64))
        dsts.append(rng.integers(0, num_vertices, n_cross, dtype=np.int64))
    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    keep = src != dst
    return CSRGraph.from_edges(
        num_vertices, src[keep], dst[keep], feature_dim=feature_dim
    )


def degree_gini(graph: CSRGraph) -> float:
    """Gini coefficient of the out-degree distribution in [0, 1).

    A scale-free skew measure used by tests and the dataset registry to
    verify generated graphs are "web-like" (paper graphs: high skew).
    """
    degs = np.sort(graph.out_degree().astype(np.float64))
    n = degs.size
    if n == 0 or degs.sum() == 0:
        return 0.0
    cum = np.cumsum(degs)
    # Gini = 1 - 2 * area under the Lorenz curve (midpoint rule)
    lorenz = cum / cum[-1]
    area = float((lorenz.sum() - 0.5 * lorenz[-1]) / n)
    return float(1.0 - 2.0 * area)
