"""Compressed-sparse-row graph container.

The library's single graph representation: an immutable CSR adjacency
(out-neighbours) over ``int64`` vertex ids, plus optional feature
metadata.  Terabyte-scale paper graphs are *described* (vertex/edge
counts, feature bytes) by :mod:`repro.graphs.datasets` and *instantiated*
at a reduced scale through the generators; everything downstream
(sampling, hotness, DDAK, the simulator) operates on this container.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class CSRGraph:
    """An immutable directed graph in CSR form.

    Attributes
    ----------
    indptr:
        ``int64[num_vertices + 1]`` — neighbour-range offsets.
    indices:
        ``int64[num_edges]`` — concatenated out-neighbour lists.
    feature_dim:
        Per-vertex embedding width (elements).
    feature_bytes_per_elem:
        Bytes per embedding element (4 for fp32 — the paper's setting).
    """

    indptr: np.ndarray
    indices: np.ndarray
    feature_dim: int = 1024
    feature_bytes_per_elem: int = 4

    def __post_init__(self) -> None:
        indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr/indices must be 1-D")
        if indptr.size == 0:
            raise ValueError("indptr must have at least one entry")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise ValueError("indptr must start at 0 and end at num_edges")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_vertices):
            raise ValueError("indices reference out-of-range vertices")
        if self.feature_dim <= 0 or self.feature_bytes_per_elem <= 0:
            raise ValueError("feature dimensions must be positive")

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return int(self.indptr.size - 1)

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return int(self.indices.size)

    @property
    def feature_bytes(self) -> int:
        """Bytes of one vertex embedding (4 KiB in the paper's setup)."""
        return self.feature_dim * self.feature_bytes_per_elem

    @property
    def total_feature_bytes(self) -> int:
        """Bytes of the full embedding table."""
        return self.num_vertices * self.feature_bytes

    @property
    def topology_bytes(self) -> int:
        """Approximate CSR storage footprint (what sits in CPU memory)."""
        return int(self.indptr.nbytes + self.indices.nbytes)

    def out_degree(self, v: Optional[np.ndarray] = None) -> np.ndarray:
        """Out-degrees, for all vertices or a vertex-id array."""
        degs = np.diff(self.indptr)
        return degs if v is None else degs[np.asarray(v, dtype=np.int64)]

    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbour view of vertex ``v`` (no copy)."""
        if not 0 <= v < self.num_vertices:
            raise IndexError(f"vertex {v} out of range")
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        src: Sequence[int],
        dst: Sequence[int],
        feature_dim: int = 1024,
        feature_bytes_per_elem: int = 4,
        dedupe: bool = True,
    ) -> "CSRGraph":
        """Build from an edge list (vectorised sort-based construction)."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same length")
        if src.size and (
            src.min() < 0
            or dst.min() < 0
            or src.max() >= num_vertices
            or dst.max() >= num_vertices
        ):
            raise ValueError("edge endpoints out of range")
        if dedupe and src.size:
            key = src * num_vertices + dst
            _, keep = np.unique(key, return_index=True)
            src, dst = src[keep], dst[keep]
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        counts = np.bincount(src, minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, dst, feature_dim, feature_bytes_per_elem)

    def to_undirected(self) -> "CSRGraph":
        """Symmetrise: add the reverse of every edge (deduplicated)."""
        src = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), np.diff(self.indptr)
        )
        all_src = np.concatenate([src, self.indices])
        all_dst = np.concatenate([self.indices, src])
        return CSRGraph.from_edges(
            self.num_vertices,
            all_src,
            all_dst,
            self.feature_dim,
            self.feature_bytes_per_elem,
        )

    def __repr__(self) -> str:
        return (
            f"CSRGraph(V={self.num_vertices:,}, E={self.num_edges:,}, "
            f"feat={self.feature_dim}x{self.feature_bytes_per_elem}B)"
        )
