"""DistDGL baseline: distributed CPU-sampling training on Cluster C.

DistDGL partitions the graph across machines (METIS-style), samples on
CPUs, ships remote features over the network, and trains on each
machine's GPU.  The paper configures 4 machines x 1 GPU, 48 sampling
threads each, and observes at most 20 Gb/s network utilisation
(CPU-bound, not network-bound).  Failure mode: "allocates about 5x
memory of the original dataset size" per the paper -- the IG/UK/CL
partitions exceed the 256 GB nodes (Section 4.2).

The model is analytic (no PCIe fabric to simulate): per-step time is
the max of CPU sampling, network feature shipping, and GPU compute,
with DDP gradient sync on top.  Sampled-subgraph sizes come from the
*real* sampler on the scaled dataset, rescaled to paper magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.gnn.costmodel import BatchShape, ComputeCostModel, allreduce_seconds
from repro.graphs.datasets import ScaledDataset
from repro.hardware.machines import ClusterSpec, cluster_c
from repro.sampling.neighbor import sample_batch
from repro.simulator.memory import (
    MemoryLedger,
    OutOfMemoryError,
    distdgl_partition_bytes,
)
from repro.utils.rng import SeedLike, ensure_rng


@dataclass
class DistDglResult:
    """Outcome of a DistDGL run (paper-scale seconds)."""

    system: str
    dataset: str
    model: str
    num_machines: int
    epoch_seconds: float = float("nan")
    oom: Optional[str] = None
    sample_seconds: float = 0.0
    network_seconds: float = 0.0
    compute_seconds: float = 0.0
    seeds_per_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the run fit in cluster memory."""
        return self.oom is None

    @property
    def paper_epoch_seconds(self) -> float:
        """Epoch seconds (paper frame; NaN when OOMed)."""
        return self.epoch_seconds


class DistDglSystem:
    """Analytic DistDGL model on Cluster C.

    ``remote_feature_fraction`` is the share of feature bytes fetched
    from remote partitions (METIS partitioning keeps most neighbour
    accesses local; the paper's observed 20 Gb/s peak implies a modest
    remote share).
    """

    name = "distdgl"

    def __init__(
        self,
        cluster: Optional[ClusterSpec] = None,
        remote_feature_fraction: float = 0.12,
        memory_expansion: float = 5.0,
        sample_edges_per_s_per_machine: float = 2.5e6,
        seed: SeedLike = 0,
    ) -> None:
        self.cluster = cluster or cluster_c()
        self.remote_feature_fraction = remote_feature_fraction
        self.memory_expansion = memory_expansion
        #: Effective distributed neighbour-sampling rate of one machine,
        #: including remote-partition RPC round-trips — the reason
        #: "CPU-based sampling falls short of keeping up with GPU-based
        #: model training" (paper Section 2.2).  Single-digit millions
        #: of edges/s/machine matches published DistDGL measurements.
        self.sample_edges_per_s_per_machine = sample_edges_per_s_per_machine
        self.seed = seed

    def check_memory(self, dataset: ScaledDataset) -> None:
        """Per-machine CPU ledger with the 5x expansion (paper 4.2)."""
        need = distdgl_partition_bytes(
            dataset.spec.total_bytes,
            self.cluster.num_machines,
            self.memory_expansion,
        )
        ledger = MemoryLedger(
            f"{self.cluster.name} node DRAM", self.cluster.cpu_mem_per_machine
        )
        ledger.reserve("os+runtime", 16e9)
        ledger.reserve("graph_partition_5x", need)

    def run(
        self,
        dataset,
        model: str = "graphsage",
        fanouts: Tuple[int, ...] = (25, 10),
        sample_batches: int = 10,
    ) -> DistDglResult:
        """Run one epoch; accepts a :class:`~repro.RunSpec` or the
        legacy loose arguments (DistDGL ignores the spec's placement
        and GPU-count fields — the cluster shape is fixed)."""
        from repro.runtime.spec import RunSpec

        if isinstance(dataset, RunSpec):
            spec = dataset
            dataset = spec.dataset
            model = spec.model
            fanouts = spec.fanouts
            sample_batches = spec.sample_batches
        result = DistDglResult(
            system=self.name,
            dataset=dataset.spec.key,
            model=model,
            num_machines=self.cluster.num_machines,
        )
        try:
            self.check_memory(dataset)
        except OutOfMemoryError as err:
            result.oom = str(err)
            return result

        rng = ensure_rng(self.seed)
        cm = ComputeCostModel(
            self.cluster.gpu, model, in_dim=dataset.graph.feature_dim
        )
        # Measure per-batch shapes with the real sampler (scaled),
        # then rescale byte/edge counts back to paper magnitude.
        ratio = dataset.batch_ratio
        sample_rate = self.sample_edges_per_s_per_machine
        steps_scaled = max(
            1,
            int(
                np.ceil(
                    dataset.train_ids.size
                    / (dataset.batch_size * self.cluster.num_machines)
                )
            ),
        )
        steps = max(
            1, int(round(steps_scaled * dataset.scale / dataset.batch_ratio))
        )
        t_sample = t_net = t_comp = 0.0
        n_sim = min(sample_batches, steps)
        for _ in range(n_sim):
            seeds = rng.choice(
                dataset.train_ids, size=dataset.batch_size, replace=False
            )
            s = sample_batch(dataset.graph, seeds, fanouts, seed=rng)
            paper_edges = s.num_edges * ratio
            paper_nodes = s.num_unique * ratio
            # CPU sampling with remote-vertex RPC overhead
            t_sample += paper_edges / sample_rate
            remote_bytes = (
                paper_nodes
                * dataset.feature_bytes
                * self.remote_feature_fraction
            )
            t_net += remote_bytes / self.cluster.nic_bw
            t_comp += cm.batch_seconds(
                BatchShape(int(paper_nodes), int(paper_edges))
            )
        t_sample /= n_sim
        t_net /= n_sim
        t_comp /= n_sim
        sync = allreduce_seconds(
            4e6, self.cluster.num_machines, self.cluster.nic_bw, latency=20e-6
        )
        # pipeline: sampling/shipping overlap compute; DDP sync barriers
        step_time = max(t_sample, t_net, t_comp) + sync
        result.sample_seconds = t_sample
        result.network_seconds = t_net
        result.compute_seconds = t_comp
        result.epoch_seconds = step_time * steps
        paper_train = dataset.spec.num_vertices * dataset.spec.train_fraction
        result.seeds_per_s = paper_train / result.epoch_seconds
        return result
