"""M-Hyperion: the paper's multi-GPU extension of Hyperion (Section 2.3).

Hyperion is a single-GPU out-of-core trainer with a GPU-initiated SSD
stack; the paper extends it to multiple GPUs for the motivation study
(Figures 1–5).  Relative to Moment it lacks:

* hardware-placement optimization (it runs whatever layout it is given),
* DDAK — data is hash-striped across each GPU's drives, with the
  hottest vertices cached in GPU HBM / CPU DRAM,
* shared drive access — each GPU is statically bound to
  ``num_ssds / num_gpus`` drives (locality-first, see
  :mod:`repro.simulator.binding`).
"""

from __future__ import annotations

from repro.core.ddak import hash_place, make_bins
from repro.hardware.machines import classic_layouts
from repro.runtime.system import GnnSystem


class MHyperionSystem(GnnSystem):
    """Multi-GPU Hyperion: hash placement + static drive binding."""

    name = "m-hyperion"
    shares_ssds = False

    def default_placement(self, dataset, num_gpus, num_ssds):
        # Hyperion runs whatever layout it is given; unprompted, it gets
        # the best classic layout (c) — SSDs split next to the GPUs.
        return classic_layouts(self.machine, num_gpus, num_ssds)["c"]

    def place_data(self, topo, dataset, hotness, plan, traffic=None):
        bins = make_bins(
            topo,
            gpu_cache_bytes=plan.gpu_cache_bytes,
            cpu_cache_bytes=plan.cpu_cache_bytes,
            ssd_capacity_bytes=plan.ssd_capacity_bytes,
        )
        return hash_place(bins, hotness, dataset.feature_bytes)
