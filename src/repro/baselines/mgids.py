"""M-GIDS: the paper's multi-GPU extension of GIDS (Section 4.1).

GIDS rides the BaM GPU-initiated storage stack: every page of the
backing store has resident metadata in GPU memory (the BaM page cache).
The paper's M-GIDS therefore:

* binds a fixed set of drives to each GPU (no shared SSD access),
* hash-places features with a 1%-of-vertices CPU hot cache,
* reserves BaM page-cache metadata proportional to the **whole feature
  store** in each GPU's HBM — which is why it "runs out of GPU memory
  on UK and CL" (Section 4.2); whatever HBM remains backs its page
  cache (modelled as a hot-vertex cache, which is what an LRU page
  cache converges to under skewed access).
"""

from __future__ import annotations

from typing import Dict

from repro.core.ddak import hash_place, make_bins
from repro.graphs.datasets import ScaledDataset
from repro.hardware.machines import classic_layouts
from repro.runtime.system import GnnSystem
from repro.simulator.memory import bam_page_cache_metadata_bytes


class MGidsSystem(GnnSystem):
    """Multi-GPU GIDS: BaM page cache + hash placement + drive binding."""

    name = "m-gids"
    shares_ssds = False
    #: GIDS issues page reads per sampled hop without global cross-hop
    #: deduplication, over-fetching relative to the unique working set.
    io_amplification = 1.5
    #: BaM's page cache is a dynamic, line-granular structure; under
    #: massively parallel misses its resident hot coverage is well below
    #: an optimal (pre-sampled) hot set of the same byte budget.
    gpu_cache_efficiency = 0.4

    def default_placement(self, dataset, num_gpus, num_ssds):
        # GIDS also has no placement optimizer; default to the best
        # classic layout (c) so comparisons share the same hardware.
        return classic_layouts(self.machine, num_gpus, num_ssds)["c"]

    def extra_gpu_reservations(
        self, dataset: ScaledDataset, num_gpus: int
    ) -> Dict[str, float]:
        # BaM keeps per-page state for every page the GPU can address —
        # the full feature store (each GPU's drives hold a complete
        # stripe set of the features it may read).
        return {
            "bam_page_cache_metadata": bam_page_cache_metadata_bytes(
                dataset.spec.feature_storage_bytes
            )
        }

    def place_data(self, topo, dataset, hotness, plan, traffic=None):
        bins = make_bins(
            topo,
            gpu_cache_bytes=plan.gpu_cache_bytes,
            cpu_cache_bytes=plan.cpu_cache_bytes,
            ssd_capacity_bytes=plan.ssd_capacity_bytes,
        )
        return hash_place(bins, hotness, dataset.feature_bytes)
