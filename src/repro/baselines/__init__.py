"""Baseline systems: M-GIDS, M-Hyperion, DistDGL."""

from repro.baselines.mgids import MGidsSystem
from repro.baselines.mhyperion import MHyperionSystem
from repro.baselines.distdgl import DistDglResult, DistDglSystem

__all__ = ["MGidsSystem", "MHyperionSystem", "DistDglResult", "DistDglSystem"]
