"""Multicommodity concurrent-flow predictor (LP formulation).

The single-source max-flow model (paper Section 3.2) is fast but — as a
single-commodity relaxation — cannot pin a transfer to its
(source bin, destination GPU) pair: peer-cache demand can be "absorbed"
at the owner GPU and shared-SSD demand rerouted to whichever GPU is
nearest.  For scoring placements where those pairings *are* the
bottleneck (cascaded switches, peer-heavy demand), we solve the exact
maximum concurrent flow problem as a linear program:

    maximize    lambda
    subject to  sum_b x[b, e]          <= cap(e)        for every edge e
                flow conservation of commodity b with
                net supply  lambda * D[b, g]  at GPU g

with one commodity per *source storage bin*.  Solved with
``scipy.optimize.linprog`` (HiGHS).  ``1/lambda`` for a unit demand is
the minimum completion time; routing is optimal, so this is still an
optimistic model relative to the fixed-path fair-share simulator — by
design (prediction vs. measurement, Fig. 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import lil_matrix

from repro.core.flowmodel import TrafficDemand
from repro.core.topology import LinkKind, NodeKind, Topology


@dataclass
class McfPrediction:
    """Outcome of the multicommodity concurrent-flow LP."""

    #: Max concurrent-flow multiplier for the given demand.
    scale: float
    #: Minimum completion time for the demand as given (seconds).
    time: float
    #: Aggregate demand bytes / time (bytes/s).
    throughput: float
    #: Edge utilisation at the optimum, (src, dst) -> fraction in [0,1].
    utilisation: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def bottlenecks(self, threshold: float = 0.999) -> List[Tuple[str, str]]:
        """Saturated edges at the optimum."""
        return [e for e, u in self.utilisation.items() if u >= threshold]


#: edge restrictions: None = any commodity; "device" = only SSD /
#: GPU-cache commodities; "mem" = only CPU-memory commodities.
_ANY, _DEVICE, _MEM = None, "device", "mem"


def _build_edges(topo: Topology):
    """Directed edge list ``(u, v, capacity, restriction)``.

    Storage nodes are split (``name/in -> name/out``) to carry their
    device egress ceiling; GPU caches are capped at the owner's fabric
    egress (peer service physically leaves through the GPU's ports).
    QPI links become *two parallel edges*: the full-rate one reserved
    for CPU-memory commodities and a reduced one for device-to-device
    DMA (the cross-socket P2P forwarding penalty the simulator also
    charges).
    """
    storage = {n.name for n in topo.storage_nodes}
    edges: List[Tuple[str, str, float, Optional[str]]] = []

    gpu_fabric_egress: Dict[str, float] = {}
    for gpu in topo.gpus():
        total = 0.0
        for succ in topo.successors(gpu):
            if topo.node(succ).kind is not NodeKind.GPU_MEM:
                total += topo.link(gpu, succ).capacity
        gpu_fabric_egress[gpu] = total

    for node in topo.storage_nodes:
        egress = node.egress_bw if node.egress_bw is not None else np.inf
        if node.kind is NodeKind.GPU_MEM:
            owner = node.name[: -len(":mem")]
            egress = min(egress, gpu_fabric_egress.get(owner, egress))
        edges.append((f"{node.name}/in", f"{node.name}/out", float(egress), _ANY))
    from repro.hardware.specs import QPI_P2P_BW

    for link in topo.links:
        src = f"{link.src}/out" if link.src in storage else link.src
        dst = f"{link.dst}/in" if link.dst in storage else link.dst
        cap = float(link.capacity)
        if link.kind is LinkKind.QPI:
            edges.append((src, dst, cap, _MEM))
            edges.append((src, dst, min(cap, QPI_P2P_BW), _DEVICE))
        else:
            edges.append((src, dst, cap, _ANY))
    return edges


def _commodity_kind(topo: Topology, bin_name: str) -> str:
    return (
        _MEM
        if topo.node(bin_name).kind is NodeKind.CPU_MEM
        else _DEVICE
    )


def multicommodity_min_time(
    topo: Topology,
    demand: TrafficDemand,
) -> McfPrediction:
    """Minimum completion time of a demand under optimal routing.

    Demands must reference concrete bins (no class keys); local
    (own-GPU-cache) entries should be excluded by the caller.
    """
    if demand.total <= 0:
        return McfPrediction(scale=np.inf, time=0.0, throughput=0.0)

    # HiGHS misbehaves on byte-magnitude coefficients; work in GB.
    # lambda is invariant when demands and capacities scale together.
    unit = 1e-9

    # demand matrix: commodity = source bin
    per_bin: Dict[str, Dict[str, float]] = {}
    for (bin_name, gpu), nbytes in demand.entries.items():
        if bin_name.startswith("__"):
            raise ValueError(
                "multicommodity predictor needs concrete bins, got "
                f"{bin_name!r}"
            )
        if bin_name not in topo or gpu not in topo:
            raise KeyError(f"unknown node in demand: {bin_name!r}/{gpu!r}")
        per_bin.setdefault(bin_name, {})[gpu] = (
            per_bin.get(bin_name, {}).get(gpu, 0.0) + nbytes * unit
        )
    commodities = sorted(per_bin)

    edges = [
        (u, v, cap * unit, restr) for u, v, cap, restr in _build_edges(topo)
    ]
    nodes = sorted({u for u, _, _, _ in edges} | {v for _, v, _, _ in edges})
    node_id = {n: i for i, n in enumerate(nodes)}
    n_edges, n_nodes, n_comm = len(edges), len(nodes), len(commodities)

    # variables: x[b * n_edges + e] >= 0, then lambda (last)
    n_vars = n_comm * n_edges + 1
    lam = n_vars - 1

    # equality: conservation per (commodity, node)
    a_eq = lil_matrix((n_comm * n_nodes, n_vars))
    b_eq = np.zeros(n_comm * n_nodes)
    for b, bin_name in enumerate(commodities):
        src_node = node_id[f"{bin_name}/in"]
        for e, (u, v, _, _) in enumerate(edges):
            col = b * n_edges + e
            a_eq[b * n_nodes + node_id[u], col] += 1.0  # outflow
            a_eq[b * n_nodes + node_id[v], col] -= 1.0  # inflow
        total_supply = sum(per_bin[bin_name].values())
        # source supplies lambda * total; sinks absorb lambda * D[b, g]
        a_eq[b * n_nodes + src_node, lam] -= total_supply
        for gpu, nbytes in per_bin[bin_name].items():
            a_eq[b * n_nodes + node_id[gpu], lam] += nbytes

    # inequality: sum over commodities of x on edge e <= cap(e)
    finite = [e for e, (_, _, cap, _) in enumerate(edges) if np.isfinite(cap)]
    a_ub = lil_matrix((len(finite), n_vars))
    b_ub = np.zeros(len(finite))
    for row, e in enumerate(finite):
        for b in range(n_comm):
            a_ub[row, b * n_edges + e] = 1.0
        b_ub[row] = edges[e][2]

    # restricted edges: zero out forbidden (commodity, edge) variables
    bounds = [(0, None)] * n_vars
    kinds = [_commodity_kind(topo, bin_name) for bin_name in commodities]
    for e, (_, _, _, restr) in enumerate(edges):
        if restr is None:
            continue
        for b in range(n_comm):
            if kinds[b] != restr:
                bounds[b * n_edges + e] = (0, 0)

    cost = np.zeros(n_vars)
    cost[lam] = -1.0
    res = linprog(
        cost,
        A_ub=a_ub.tocsr(),
        b_ub=b_ub,
        A_eq=a_eq.tocsr(),
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not res.success:
        raise RuntimeError(f"multicommodity LP failed: {res.message}")
    scale = float(res.x[lam])
    if scale <= 0:
        raise RuntimeError("demand is not routable at any positive rate")

    utilisation: Dict[Tuple[str, str], float] = {}
    for e, (u, v, cap, _) in enumerate(edges):
        if not np.isfinite(cap):
            continue
        flow = float(sum(res.x[b * n_edges + e] for b in range(n_comm)))
        u_name = u[:-4] if u.endswith("/out") else u
        v_name = v[:-3] if v.endswith("/in") else v
        utilisation[(u_name, v_name)] = min(1.0, flow / cap) if cap else 0.0

    time_s = 1.0 / scale
    return McfPrediction(
        scale=scale,
        time=time_s,
        throughput=demand.total * scale,
        utilisation=utilisation,
    )
