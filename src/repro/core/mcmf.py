"""Multicommodity concurrent-flow predictor (LP formulation).

The single-source max-flow model (paper Section 3.2) is fast but — as a
single-commodity relaxation — cannot pin a transfer to its
(source bin, destination GPU) pair: peer-cache demand can be "absorbed"
at the owner GPU and shared-SSD demand rerouted to whichever GPU is
nearest.  For scoring placements where those pairings *are* the
bottleneck (cascaded switches, peer-heavy demand), we solve the exact
maximum concurrent flow problem as a linear program:

    maximize    lambda
    subject to  sum_b x[b, e]          <= cap(e)        for every edge e
                flow conservation of commodity b with
                net supply  lambda * D[b, g]  at GPU g

with one commodity per *source storage bin*.  Solved with
``scipy.optimize.linprog`` (HiGHS).  ``1/lambda`` for a unit demand is
the minimum completion time; routing is optimal, so this is still an
optimistic model relative to the fixed-path fair-share simulator — by
design (prediction vs. measurement, Fig. 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import coo_matrix

from repro.core.flowmodel import TrafficDemand
from repro.core.topology import LinkKind, NodeKind, Topology


@dataclass
class McfPrediction:
    """Outcome of the multicommodity concurrent-flow LP."""

    #: Max concurrent-flow multiplier for the given demand.
    scale: float
    #: Minimum completion time for the demand as given (seconds).
    time: float
    #: Aggregate demand bytes / time (bytes/s).
    throughput: float
    #: Edge utilisation at the optimum, (src, dst) -> fraction in [0,1].
    utilisation: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def bottlenecks(self, threshold: float = 0.999) -> List[Tuple[str, str]]:
        """Saturated edges at the optimum."""
        return [e for e, u in self.utilisation.items() if u >= threshold]


#: edge restrictions: None = any commodity; "device" = only SSD /
#: GPU-cache commodities; "mem" = only CPU-memory commodities.
_ANY, _DEVICE, _MEM = None, "device", "mem"


def _build_edges(topo: Topology):
    """Directed edge list ``(u, v, capacity, restriction)``.

    Storage nodes are split (``name/in -> name/out``) to carry their
    device egress ceiling; GPU caches are capped at the owner's fabric
    egress (peer service physically leaves through the GPU's ports).
    QPI links become *two parallel edges*: the full-rate one reserved
    for CPU-memory commodities and a reduced one for device-to-device
    DMA (the cross-socket P2P forwarding penalty the simulator also
    charges).
    """
    storage = {n.name for n in topo.storage_nodes}
    edges: List[Tuple[str, str, float, Optional[str]]] = []

    gpu_fabric_egress: Dict[str, float] = {}
    for gpu in topo.gpus():
        total = 0.0
        for succ in topo.successors(gpu):
            if topo.node(succ).kind is not NodeKind.GPU_MEM:
                total += topo.link(gpu, succ).capacity
        gpu_fabric_egress[gpu] = total

    for node in topo.storage_nodes:
        egress = node.egress_bw if node.egress_bw is not None else np.inf
        if node.kind is NodeKind.GPU_MEM:
            owner = node.name[: -len(":mem")]
            egress = min(egress, gpu_fabric_egress.get(owner, egress))
        edges.append((f"{node.name}/in", f"{node.name}/out", float(egress), _ANY))
    from repro.hardware.specs import QPI_P2P_BW

    for link in topo.links:
        src = f"{link.src}/out" if link.src in storage else link.src
        dst = f"{link.dst}/in" if link.dst in storage else link.dst
        cap = float(link.capacity)
        if link.kind is LinkKind.QPI:
            edges.append((src, dst, cap, _MEM))
            edges.append((src, dst, min(cap, QPI_P2P_BW), _DEVICE))
        else:
            edges.append((src, dst, cap, _ANY))
    return edges


def _commodity_kind(topo: Topology, bin_name: str) -> str:
    return (
        _MEM
        if topo.node(bin_name).kind is NodeKind.CPU_MEM
        else _DEVICE
    )


def multicommodity_min_time(
    topo: Topology,
    demand: TrafficDemand,
) -> McfPrediction:
    """Minimum completion time of a demand under optimal routing.

    Demands must reference concrete bins (no class keys); local
    (own-GPU-cache) entries should be excluded by the caller.
    """
    if demand.total <= 0:
        return McfPrediction(scale=np.inf, time=0.0, throughput=0.0)

    # HiGHS misbehaves on byte-magnitude coefficients; work in GB.
    # lambda is invariant when demands and capacities scale together.
    unit = 1e-9

    # HiGHS zeroes matrix coefficients below ~1e-9 of the scaled
    # problem, so a commodity carrying a vanishing share of the demand
    # (a degenerate tier split like fractions=(0, 1e-9, ...)) loses its
    # lambda-column entries and makes the whole LP read as unroutable.
    # Such a commodity cannot move the concurrent-flow scale by more
    # than solver noise, so drop sub-tolerance entries up front.
    negligible = 1e-7 * demand.total

    # demand matrix: commodity = source bin
    per_bin: Dict[str, Dict[str, float]] = {}
    for (bin_name, gpu), nbytes in demand.entries.items():
        if bin_name.startswith("__"):
            raise ValueError(
                "multicommodity predictor needs concrete bins, got "
                f"{bin_name!r}"
            )
        if bin_name not in topo or gpu not in topo:
            raise KeyError(f"unknown node in demand: {bin_name!r}/{gpu!r}")
        if nbytes <= negligible:
            continue
        per_bin.setdefault(bin_name, {})[gpu] = (
            per_bin.get(bin_name, {}).get(gpu, 0.0) + nbytes * unit
        )
    commodities = sorted(per_bin)

    edges = [
        (u, v, cap * unit, restr) for u, v, cap, restr in _build_edges(topo)
    ]
    nodes = sorted({u for u, _, _, _ in edges} | {v for _, v, _, _ in edges})
    node_id = {n: i for i, n in enumerate(nodes)}
    n_edges, n_nodes, n_comm = len(edges), len(nodes), len(commodities)

    # variables: x[b * n_edges + e] >= 0, then lambda (last)
    n_vars = n_comm * n_edges + 1
    lam = n_vars - 1

    # equality: conservation per (commodity, node), assembled as one
    # COO batch (duplicate (row, col) entries sum on conversion —
    # exactly the incremental += the per-element loop used to do)
    u_ids = np.array([node_id[u] for u, _, _, _ in edges], dtype=np.int64)
    v_ids = np.array([node_id[v] for _, v, _, _ in edges], dtype=np.int64)
    b_off_nodes = np.arange(n_comm, dtype=np.int64)[:, None] * n_nodes
    cols_be = (
        np.arange(n_comm, dtype=np.int64)[:, None] * n_edges
        + np.arange(n_edges, dtype=np.int64)[None, :]
    ).ravel()
    rows = [
        (b_off_nodes + u_ids[None, :]).ravel(),  # outflow +1
        (b_off_nodes + v_ids[None, :]).ravel(),  # inflow  -1
    ]
    cols = [cols_be, cols_be]
    data = [
        np.ones(n_comm * n_edges),
        -np.ones(n_comm * n_edges),
    ]
    # lambda column: source supplies lambda * total; sinks absorb
    # lambda * D[b, g] (a handful of entries per commodity)
    lam_rows: List[int] = []
    lam_data: List[float] = []
    for b, bin_name in enumerate(commodities):
        lam_rows.append(b * n_nodes + node_id[f"{bin_name}/in"])
        lam_data.append(-sum(per_bin[bin_name].values()))
        for gpu, nbytes in per_bin[bin_name].items():
            lam_rows.append(b * n_nodes + node_id[gpu])
            lam_data.append(nbytes)
    rows.append(np.asarray(lam_rows, dtype=np.int64))
    cols.append(np.full(len(lam_rows), lam, dtype=np.int64))
    data.append(np.asarray(lam_data))
    a_eq = coo_matrix(
        (np.concatenate(data), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n_comm * n_nodes, n_vars),
    )
    b_eq = np.zeros(n_comm * n_nodes)

    # inequality: sum over commodities of x on edge e <= cap(e)
    caps = np.array([cap for _, _, cap, _ in edges])
    finite = np.flatnonzero(np.isfinite(caps))
    ub_rows = np.tile(
        np.arange(len(finite), dtype=np.int64), n_comm
    )
    ub_cols = (
        np.arange(n_comm, dtype=np.int64)[:, None] * n_edges
        + finite[None, :]
    ).ravel()
    a_ub = coo_matrix(
        (np.ones(len(finite) * n_comm), (ub_rows, ub_cols)),
        shape=(len(finite), n_vars),
    )
    b_ub = caps[finite]

    # restricted edges: zero out forbidden (commodity, edge) variables
    bounds = [(0, None)] * n_vars
    kinds = [_commodity_kind(topo, bin_name) for bin_name in commodities]
    for e, (_, _, _, restr) in enumerate(edges):
        if restr is None:
            continue
        for b in range(n_comm):
            if kinds[b] != restr:
                bounds[b * n_edges + e] = (0, 0)

    cost = np.zeros(n_vars)
    cost[lam] = -1.0
    res = linprog(
        cost,
        A_ub=a_ub.tocsr(),
        b_ub=b_ub,
        A_eq=a_eq.tocsr(),
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not res.success:
        raise RuntimeError(f"multicommodity LP failed: {res.message}")
    scale = float(res.x[lam])
    if scale <= 0:
        raise RuntimeError("demand is not routable at any positive rate")

    # per-edge totals across commodities in one reshape+sum
    flows = res.x[: n_comm * n_edges].reshape(n_comm, n_edges).sum(axis=0)
    utilisation: Dict[Tuple[str, str], float] = {}
    for e in finite:
        u, v, cap, _ = edges[e]
        flow = float(flows[e])
        u_name = u[:-4] if u.endswith("/out") else u
        v_name = v[:-3] if v.endswith("/in") else v
        utilisation[(u_name, v_name)] = min(1.0, flow / cap) if cap else 0.0

    time_s = 1.0 / scale
    return McfPrediction(
        scale=scale,
        time=time_s,
        throughput=demand.total * scale,
        utilisation=utilisation,
    )
