"""Vectorized pass-1 kernel: cut-parametric min-time search over
template networks (the fast path behind ``FlexibleMaxFlowScorer``).

The legacy kernel (:func:`repro.core.flowmodel.min_completion_time`)
rebuilds the augmented network for every time probe and bisects ~20
times per candidate.  This module keeps the exact same network — same
nodes, same edges, same insertion order as
:func:`~repro.core.flowmodel.build_time_network` — but splits every
edge budget into ``base + rate * t`` (constant bytes + bytes/s scaled
by the probed time), so

* the network is built **once** per candidate (a :class:`FlowTemplate`)
  and each probe only refreshes a capacity vector with NumPy;
* a batch of candidates stacks its ``rate``/``base`` vectors into
  ``(B, E)`` matrices and refreshes every active candidate's
  capacities in one vectorized operation per round
  (:func:`fast_score_batch`);
* the time search is **cut-parametric** instead of bisection:
  ``maxflow(t)`` is a concave piecewise-linear function — the minimum
  over cuts C of ``base(C) + rate(C) * t`` — so from any infeasible
  probe the min cut's root ``(total - base(C)) / rate(C)`` is the next
  candidate time.  Iterating terminates at the **exact** breakpoint
  where the demand first fits (typically 3–5 max-flow solves instead
  of ~20), and the final min cut doubles as an optimality certificate:
  its source-side node set is returned as
  :attr:`~repro.core.flowmodel.FlowPrediction.cut_partition`.

Warm starts: any node partition with the source inside and the sink
outside is a valid cut in *any* network over the same node labels, so a
parent's binding partition (a scored neighbor placement, or the healthy
fabric before a :class:`~repro.core.topology.TopologyMask` degraded it)
gives a sound lower-bound line — the search starts at that line's root
instead of zero and usually converges in one or two solves.  The final
answer is the root of the binding cut either way, so warm and cold
solves agree exactly (see the warm-start regression tests).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.flowmodel import (
    _SINK,
    _SOURCE,
    CPU_CLASS,
    SSD_CLASS,
    FlowPrediction,
    TrafficDemand,
    _storage_members,
)
from repro.core.maxflow import _EPS, _MIN_DEMAND
from repro.core.topology import LinkKind, NodeKind, Topology

#: Feasibility slack.  Much stricter than the legacy kernel's 1e-6:
#: bisection probes land anywhere in a segment, but cut-root probes
#: land exactly on breakpoints, where the max flow matches the binding
#: cut's value to float accumulation error (~1e-14 relative).  A loose
#: slack would let a probe *below* the true breakpoint pass, making the
#: answer depend on the probe path (warm vs cold) — with 1e-12 both
#: paths terminate at the binding cut's root.
_FEAS_TOL = 1e-12
#: Ceiling on the completion time, matching ``bisect_min_time``'s
#: ``t_hi`` — a root beyond this means the demand is disconnected.
_T_HI = 1e6
#: Cut-root iterations before giving up (each one strictly advances the
#: probe to a later breakpoint of a piecewise-linear function whose
#: breakpoint count is bounded by the number of distinct cuts met —
#: in practice 3–5; 64 is a float-safety backstop).
_MAX_ITERS = 64


class FlowTemplate:
    """One candidate's time-parametric augmented network.

    Mirrors :func:`~repro.core.flowmodel.build_time_network` exactly —
    node splitting, GPU-cache fabric-egress caps, the QPI P2P ceiling,
    class super-nodes, virtual source/sink edges — but stores each edge
    as ``(base_bytes, rate_bytes_per_s)`` so the capacity vector at any
    probed time is ``base + rate * t``.
    """

    def __init__(self, topo: Topology, demand: TrafficDemand) -> None:
        from repro.hardware.specs import QPI_P2P_BW

        self._index: Dict[str, int] = {}
        self.labels: List[str] = []
        self.adj: List[List[int]] = []
        self._to: List[int] = []
        base: List[float] = []
        rate: List[float] = []

        def node_id(label: str) -> int:
            nid = self._index.get(label)
            if nid is None:
                nid = len(self.labels)
                self._index[label] = nid
                self.labels.append(label)
                self.adj.append([])
            return nid

        def add_edge(u: str, v: str, b: float, r: float) -> None:
            ui, vi = node_id(u), node_id(v)
            eid = len(self._to)
            self._to.append(vi)
            self.adj[ui].append(eid)
            self._to.append(ui)
            self.adj[vi].append(eid + 1)
            base.append(b)
            rate.append(r)

        storage_names = {n.name for n in topo.storage_nodes}

        def out_name(node: str) -> str:
            return f"{node}/out" if node in storage_names else node

        gpu_fabric_egress: Dict[str, float] = {}
        for gpu in topo.gpus():
            total = 0.0
            for succ in topo.successors(gpu):
                if topo.node(succ).kind is not NodeKind.GPU_MEM:
                    total += topo.link(gpu, succ).capacity
            gpu_fabric_egress[gpu] = total

        # storage egress ceilings (node splitting); an unbounded egress
        # is a constant-infinity edge, never a scaled one (inf * t is
        # undefined at t = 0)
        self.storage_edge: Dict[str, int] = {}
        for node in topo.storage_nodes:
            egress = (
                node.egress_bw if node.egress_bw is not None else float("inf")
            )
            if node.kind is NodeKind.GPU_MEM:
                owner = node.name[: -len(":mem")]
                egress = min(egress, gpu_fabric_egress.get(owner, egress))
            self.storage_edge[node.name] = len(base)
            if np.isfinite(egress):
                add_edge(f"{node.name}/in", f"{node.name}/out", 0.0, egress)
            else:
                add_edge(
                    f"{node.name}/in", f"{node.name}/out", float("inf"), 0.0
                )

        for link in topo.links:
            src = out_name(link.src)
            dst = f"{link.dst}/in" if link.dst in storage_names else link.dst
            cap = link.capacity
            if link.kind is LinkKind.QPI:
                cap = min(cap, QPI_P2P_BW)
            add_edge(src, dst, 0.0, cap)

        per_bin = demand.per_bin()
        for bin_name, nbytes in sorted(per_bin.items()):
            if bin_name in (SSD_CLASS, CPU_CLASS):
                class_node = f"{bin_name}/class"
                add_edge(_SOURCE, class_node, nbytes, 0.0)
                for member in _storage_members(topo, bin_name):
                    add_edge(class_node, f"{member}/in", float("inf"), 0.0)
            else:
                if bin_name not in topo:
                    raise KeyError(
                        f"demand references unknown bin {bin_name!r}"
                    )
                add_edge(_SOURCE, f"{bin_name}/in", nbytes, 0.0)

        self.demands_by_sink = demand.per_gpu()
        for gpu, nbytes in sorted(self.demands_by_sink.items()):
            if gpu not in topo:
                raise KeyError(f"demand references unknown GPU {gpu!r}")
            add_edge(gpu, _SINK, nbytes, 0.0)

        self.base = np.asarray(base)
        self.rate = np.asarray(rate)
        self.total = demand.total
        self.source = self._index.get(_SOURCE, -1)
        self.sink = self._index.get(_SINK, -1)

    @property
    def num_edges(self) -> int:
        return len(self.base)

    # -- per-probe machinery -------------------------------------------
    def residual_caps(self, t: float) -> List[float]:
        """Fresh residual capacities at probe time ``t`` (forward edges
        interleaved with zeroed reverse edges, FlowNetwork layout)."""
        caps = np.zeros(2 * len(self.base))
        caps[0::2] = self.base + self.rate * t
        return caps.tolist()

    def max_flow(self, caps: List[float]) -> float:
        """Dinic on the template adjacency; mutates ``caps`` residuals."""
        adj, to = self.adj, self._to
        s, t = self.source, self.sink
        n = len(adj)
        inf = float("inf")
        total = 0.0
        while True:
            level = [-1] * n
            level[s] = 0
            q = deque([s])
            while q:
                u = q.popleft()
                lu = level[u] + 1
                for eid in adj[u]:
                    v = to[eid]
                    if level[v] < 0 and caps[eid] > _EPS:
                        level[v] = lu
                        q.append(v)
            if level[t] < 0:
                return total
            it = [0] * n

            def dfs(u: int, pushed: float) -> float:
                if u == t:
                    return pushed
                adj_u = adj[u]
                while it[u] < len(adj_u):
                    eid = adj_u[it[u]]
                    v = to[eid]
                    if caps[eid] > _EPS and level[v] == level[u] + 1:
                        got = dfs(v, min(pushed, caps[eid]))
                        if got > _EPS:
                            caps[eid] -= got
                            caps[eid ^ 1] += got
                            return got
                    it[u] += 1
                return 0.0

            while True:
                pushed = dfs(s, inf)
                if pushed <= _EPS:
                    break
                total += pushed

    def reachable(self, caps: List[float]) -> bytearray:
        """Source-reachable node mask in the residual graph."""
        adj, to = self.adj, self._to
        reach = bytearray(len(adj))
        reach[self.source] = 1
        stack = [self.source]
        while stack:
            u = stack.pop()
            for eid in adj[u]:
                v = to[eid]
                if not reach[v] and caps[eid] > _EPS:
                    reach[v] = 1
                    stack.append(v)
        return reach

    def cut_line(self, reach: Sequence[int]) -> Tuple[float, float]:
        """``(base_bytes, rate)`` of the cut induced by a node mask.

        Edge terms are accumulated in edge-id order, so the same cut
        always sums to bit-identical coefficients — warm and cold
        searches ending on the same binding cut return the same float.
        """
        to = self._to
        b = r = 0.0
        for e in range(len(self.base)):
            if reach[to[2 * e + 1]] and not reach[to[2 * e]]:
                b += self.base[e]
                r += self.rate[e]
        return b, r

    def partition_mask(
        self, partition: Iterable[str]
    ) -> Optional[bytearray]:
        """A warm-start label set as a node mask, or ``None`` if it is
        not a valid s-t partition here (labels from a different fabric
        are simply ignored; dropped nodes vanish from the mask)."""
        reach = bytearray(len(self.labels))
        for label in partition:
            nid = self._index.get(label)
            if nid is not None:
                reach[nid] = 1
        if not reach[self.source] or reach[self.sink]:
            return None
        return reach

    def warm_root(self, partition: Optional[Iterable[str]]) -> float:
        """The hint cut's root: a sound lower bound on the completion
        time (``0.0`` when the hint does not transfer)."""
        if not partition:
            return 0.0
        reach = self.partition_mask(partition)
        if reach is None:
            return 0.0
        b, r = self.cut_line(reach)
        if not np.isfinite(b) or r <= _EPS or b >= self.total:
            return 0.0
        return max(0.0, (self.total - b) / r)

    # -- result assembly ------------------------------------------------
    def prediction(
        self,
        t_star: float,
        caps: List[float],
        cut_mask: Optional[Sequence[int]],
    ) -> FlowPrediction:
        """Build the :class:`FlowPrediction` from the final feasible
        solve's residuals and the binding cut's node mask."""
        storage_rate: Dict[str, float] = {}
        for node, eid in self.storage_edge.items():
            flow = caps[2 * eid + 1]
            if flow > 0:
                storage_rate[node] = flow / t_star
        bottlenecks: List[str] = []
        partition: Tuple[str, ...] = ()
        if cut_mask is not None:
            to = self._to
            for e in range(len(self.base)):
                ui, vi = to[2 * e + 1], to[2 * e]
                if not (cut_mask[ui] and not cut_mask[vi]):
                    continue
                if ui == self.source or vi == self.sink:
                    continue  # demand-limited, not a physical bottleneck
                u_s, v_s = self.labels[ui], self.labels[vi]
                if u_s.endswith("/out"):
                    u_s = u_s[: -len("/out")]
                if v_s.endswith("/in"):
                    v_s = v_s[: -len("/in")]
                bottlenecks.append(
                    f"{u_s}->{v_s} ({self.rate[e] / 1e9:.1f} GB/s)"
                )
            partition = tuple(
                sorted(
                    self.labels[i]
                    for i in range(len(self.labels))
                    if cut_mask[i]
                )
            )
        per_gpu_rate = {
            g: d / t_star for g, d in self.demands_by_sink.items()
        }
        return FlowPrediction(
            time=t_star,
            throughput=self.total / t_star,
            per_gpu_rate=per_gpu_rate,
            storage_rate=storage_rate,
            bottlenecks=bottlenecks,
            cut_partition=partition,
        )


def _solve_template(
    tpl: FlowTemplate, t0: float, hint_mask: Optional[bytearray]
) -> FlowPrediction:
    """Cut-parametric search from probe ``t0`` (with ``hint_mask`` as
    the provisional binding cut when ``t0`` came from a warm hint)."""
    total = tpl.total
    threshold = total * (1.0 - _FEAS_TOL)
    t = t0
    cut_mask: Optional[bytearray] = hint_mask
    for _ in range(_MAX_ITERS):
        caps = tpl.residual_caps(t)
        got = tpl.max_flow(caps)
        if got >= threshold:
            return tpl.prediction(t, caps, cut_mask)
        reach = tpl.reachable(caps)
        b, r = tpl.cut_line(reach)
        if r <= _EPS:
            raise RuntimeError(
                f"demands infeasible even in {_T_HI} s — "
                "disconnected topology?"
            )
        t_next = (total - b) / r
        if t_next > _T_HI:
            raise RuntimeError(
                f"demands infeasible even in {_T_HI} s — "
                "disconnected topology?"
            )
        if t_next <= t:  # float backstop: the root must strictly advance
            t_next = np.nextafter(t, np.inf)
        t = t_next
        cut_mask = reach
    raise RuntimeError(
        f"cut-parametric time search did not converge in {_MAX_ITERS} "
        "iterations"
    )


def fast_min_completion_time(
    topo: Topology,
    demand: TrafficDemand,
    warm_partition: Optional[Iterable[str]] = None,
) -> FlowPrediction:
    """Drop-in fast replacement for
    :func:`repro.core.flowmodel.min_completion_time`.

    Returns the exact minimum completion time (no bisection slack); a
    ``warm_partition`` from a previously scored neighbor/healthy fabric
    only changes how fast the search converges, not its answer.
    """
    if demand.total <= _MIN_DEMAND:
        return FlowPrediction(0.0, 0.0, {}, {})
    tpl = FlowTemplate(topo, demand)
    t0 = tpl.warm_root(warm_partition)
    hint = tpl.partition_mask(warm_partition) if t0 > 0.0 else None
    return _solve_template(tpl, t0, hint)


def fast_score_batch(
    jobs: Sequence[Tuple[Topology, TrafficDemand]],
    warm_partition: Optional[Iterable[str]] = None,
    chain: bool = True,
) -> Tuple[List[Optional[FlowPrediction]], int]:
    """Score a batch of (topology, demand) candidates in lockstep.

    The first candidate is solved alone (seeded by ``warm_partition``
    when given); with ``chain`` on, its binding cut becomes the warm
    hint for every other candidate in the batch — enumeration-adjacent
    placements share most of their fabric, so the hint's root usually
    lands in the binding segment and the rest of the batch converges in
    one or two rounds.  Each lockstep round refreshes every still-active
    candidate's capacity vector from the stacked ``(B, E)`` rate/base
    matrices in a single NumPy operation, then advances each active
    candidate's max flow one probe.

    Returns ``(predictions, warm_starts)`` where ``warm_starts`` counts
    candidates whose search actually started from a warm (non-zero)
    root.  Zero-demand jobs yield the empty prediction.
    """
    predictions: List[Optional[FlowPrediction]] = [None] * len(jobs)
    warm_starts = 0
    templates: List[Optional[FlowTemplate]] = []
    for i, (topo, demand) in enumerate(jobs):
        if demand.total <= _MIN_DEMAND:
            predictions[i] = FlowPrediction(0.0, 0.0, {}, {})
            templates.append(None)
        else:
            templates.append(FlowTemplate(topo, demand))

    live = [i for i, tpl in enumerate(templates) if tpl is not None]
    if not live:
        return predictions, warm_starts

    # head of the batch: solo solve, seeded by the caller's hint
    head = live[0]
    tpl = templates[head]
    t0 = tpl.warm_root(warm_partition)
    hint = tpl.partition_mask(warm_partition) if t0 > 0.0 else None
    if t0 > 0.0:
        warm_starts += 1
    predictions[head] = _solve_template(tpl, t0, hint)

    rest = live[1:]
    if not rest:
        return predictions, warm_starts
    hint_partition = (
        predictions[head].cut_partition if chain else warm_partition
    ) or warm_partition

    # stacked capacity matrices for the rest of the batch (ragged edge
    # counts are padded; padding columns never enter a solve)
    width = max(templates[i].num_edges for i in rest)
    base_mat = np.zeros((len(rest), width))
    rate_mat = np.zeros((len(rest), width))
    for row, i in enumerate(rest):
        tpl_i = templates[i]
        base_mat[row, : tpl_i.num_edges] = tpl_i.base
        rate_mat[row, : tpl_i.num_edges] = tpl_i.rate

    t_vec = np.zeros(len(rest))
    masks: List[Optional[bytearray]] = [None] * len(rest)
    for row, i in enumerate(rest):
        tpl_i = templates[i]
        root = tpl_i.warm_root(hint_partition)
        if root > 0.0:
            t_vec[row] = root
            masks[row] = tpl_i.partition_mask(hint_partition)
            warm_starts += 1

    active = list(range(len(rest)))
    for _ in range(_MAX_ITERS):
        if not active:
            break
        # one vectorized capacity refresh for every active candidate
        caps_mat = base_mat[active] + rate_mat[active] * t_vec[active, None]
        still_active: List[int] = []
        for k, row in enumerate(active):
            i = rest[row]
            tpl_i = templates[i]
            ne = tpl_i.num_edges
            caps = np.zeros(2 * ne)
            caps[0::2] = caps_mat[k, :ne]
            caps_list = caps.tolist()
            got = tpl_i.max_flow(caps_list)
            if got >= tpl_i.total * (1.0 - _FEAS_TOL):
                predictions[i] = tpl_i.prediction(
                    float(t_vec[row]), caps_list, masks[row]
                )
                continue
            reach = tpl_i.reachable(caps_list)
            b, r = tpl_i.cut_line(reach)
            if r <= _EPS:
                raise RuntimeError(
                    f"demands infeasible even in {_T_HI} s — "
                    "disconnected topology?"
                )
            t_next = (tpl_i.total - b) / r
            if t_next > _T_HI:
                raise RuntimeError(
                    f"demands infeasible even in {_T_HI} s — "
                    "disconnected topology?"
                )
            if t_next <= t_vec[row]:
                t_next = float(np.nextafter(t_vec[row], np.inf))
            t_vec[row] = t_next
            masks[row] = reach
            still_active.append(row)
        active = still_active
    if active:
        raise RuntimeError(
            f"cut-parametric time search did not converge in {_MAX_ITERS} "
            "iterations"
        )
    return predictions, warm_starts
