"""Moment's core contribution: topology modeling, max-flow scheduling,
placement search with symmetry pruning, and DDAK data placement."""

from repro.core.topology import LinkKind, Node, NodeKind, Link, Topology
from repro.core.maxflow import (
    FlowNetwork,
    bisect_min_time,
    dinic,
    edmonds_karp,
    max_flow,
    min_cut,
)
from repro.core.placement import (
    Chassis,
    Placement,
    SlotGroup,
    build_topology,
    enumerate_placements,
)
from repro.core.symmetry import (
    chassis_automorphisms,
    dedupe_placements,
    slot_group_symmetries,
)
from repro.core.flowmodel import (
    CPU_CLASS,
    SSD_CLASS,
    FlowPrediction,
    TrafficDemand,
    min_completion_time,
    plain_max_flow,
    predict_throughput,
)

__all__ = [
    "LinkKind",
    "Node",
    "NodeKind",
    "Link",
    "Topology",
    "FlowNetwork",
    "bisect_min_time",
    "dinic",
    "edmonds_karp",
    "max_flow",
    "min_cut",
    "Chassis",
    "Placement",
    "SlotGroup",
    "build_topology",
    "enumerate_placements",
    "chassis_automorphisms",
    "dedupe_placements",
    "slot_group_symmetries",
    "CPU_CLASS",
    "SSD_CLASS",
    "FlowPrediction",
    "TrafficDemand",
    "min_completion_time",
    "plain_max_flow",
    "predict_throughput",
]
