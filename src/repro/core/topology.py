"""Communication-topology graph model (paper Section 3.2).

A :class:`Topology` is a directed graph over hardware *nodes* (storage,
computation, interconnect) joined by capacity-constrained *links*.  It is
the common substrate for

* the max-flow throughput predictor (:mod:`repro.core.flowmodel`),
* the discrete-time epoch simulator (:mod:`repro.simulator`), and
* hardware-placement search (:mod:`repro.core.placement`).

Node taxonomy follows the paper:

* **storage nodes** (``V_s``) hold vertex embeddings: GPU HBM caches,
  CPU DRAM caches, and NVMe SSDs;
* **computation nodes** (``V_c``) consume embeddings: the GPUs;
* **interconnect nodes** (``V_i``) forward data: PCIe switches and CPU
  root complexes.

Physical links are full duplex: adding one with
:meth:`Topology.add_link` creates two independent directed edges, one
per direction, each with its own capacity (bytes/second).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.utils.validation import check_positive


class NodeKind(enum.Enum):
    """Role of a node in the communication graph."""

    ROOT_COMPLEX = "root_complex"
    SWITCH = "switch"
    GPU = "gpu"
    GPU_MEM = "gpu_mem"
    CPU_MEM = "cpu_mem"
    SSD = "ssd"
    NIC = "nic"

    @property
    def is_storage(self) -> bool:
        """Whether nodes of this kind hold vertex embeddings."""
        return self in (NodeKind.GPU_MEM, NodeKind.CPU_MEM, NodeKind.SSD)

    @property
    def is_compute(self) -> bool:
        """Whether nodes of this kind consume embeddings (GPUs)."""
        return self is NodeKind.GPU

    @property
    def is_interconnect(self) -> bool:
        """Whether nodes of this kind only forward traffic.

        NICs count: a NIC-attached storage shelf (NVMe-oF style) is a
        forwarding stage between its drives and the PCIe fabric.
        """
        return self in (NodeKind.ROOT_COMPLEX, NodeKind.SWITCH, NodeKind.NIC)


class LinkKind(enum.Enum):
    """Physical technology of a link; used for reporting and profiling."""

    PCIE = "pcie"
    QPI = "qpi"
    NVLINK = "nvlink"
    MEMORY = "memory"
    INTERNAL = "internal"
    NETWORK = "network"


@dataclass(frozen=True)
class Node:
    """A vertex of the communication graph.

    Attributes
    ----------
    name:
        Unique identifier, e.g. ``"gpu0"`` or ``"rc0"``.
    kind:
        Role taxonomy entry.
    egress_bw:
        Device-imposed ceiling on data the node can *serve* (bytes/s);
        e.g. an SSD's sustained read bandwidth.  ``None`` means no
        device-level ceiling beyond its links.
    """

    name: str
    kind: NodeKind
    egress_bw: Optional[float] = None

    def __post_init__(self) -> None:
        if self.egress_bw is not None:
            check_positive("egress_bw", self.egress_bw)


@dataclass(frozen=True)
class Link:
    """A directed, capacity-constrained edge.

    ``capacity`` is the maximum sustained transfer rate in bytes/second
    for data flowing ``src -> dst``.  ``label`` carries the bus name used
    in the paper's figures (e.g. ``"bus9"``) for readable reports.
    """

    src: str
    dst: str
    capacity: float
    kind: LinkKind = LinkKind.PCIE
    label: str = ""

    def __post_init__(self) -> None:
        check_positive("capacity", self.capacity)

    @property
    def key(self) -> Tuple[str, str]:
        """The (src, dst) identity of this directed edge."""
        return (self.src, self.dst)


class Topology:
    """Mutable directed communication graph with capacity annotations."""

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._succ: Dict[str, List[str]] = {}
        self._pred: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Register a node; duplicate names are an error."""
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name: {node.name!r}")
        self._nodes[node.name] = node
        self._succ[node.name] = []
        self._pred[node.name] = []
        return node

    def add(
        self,
        name: str,
        kind: NodeKind,
        egress_bw: Optional[float] = None,
    ) -> Node:
        """Convenience wrapper around :meth:`add_node`."""
        return self.add_node(Node(name, kind, egress_bw))

    def add_directed_link(self, link: Link) -> Link:
        """Add a single directed edge."""
        for endpoint in (link.src, link.dst):
            if endpoint not in self._nodes:
                raise KeyError(f"unknown node {endpoint!r} in link {link}")
        if link.key in self._links:
            raise ValueError(f"duplicate link {link.src}->{link.dst}")
        self._links[link.key] = link
        self._succ[link.src].append(link.dst)
        self._pred[link.dst].append(link.src)
        return link

    def add_link(
        self,
        a: str,
        b: str,
        capacity: float,
        kind: LinkKind = LinkKind.PCIE,
        label: str = "",
        capacity_ba: Optional[float] = None,
    ) -> Tuple[Link, Link]:
        """Add a full-duplex physical link as two directed edges.

        ``capacity_ba`` lets asymmetric links (e.g. memory channels)
        specify a different reverse-direction capacity.
        """
        fwd = self.add_directed_link(Link(a, b, capacity, kind, label))
        bwd = self.add_directed_link(
            Link(b, a, capacity if capacity_ba is None else capacity_ba, kind, label)
        )
        return fwd, bwd

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        """Look up a node by name (raises ``KeyError``)."""
        return self._nodes[name]

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    @property
    def nodes(self) -> List[Node]:
        """All nodes, in insertion order."""
        return list(self._nodes.values())

    @property
    def links(self) -> List[Link]:
        """All directed links, in insertion order."""
        return list(self._links.values())

    def link(self, src: str, dst: str) -> Link:
        """The directed link ``src -> dst`` (raises ``KeyError``)."""
        return self._links[(src, dst)]

    def has_link(self, src: str, dst: str) -> bool:
        """Whether the directed link ``src -> dst`` exists."""
        return (src, dst) in self._links

    def successors(self, name: str) -> List[str]:
        """Names of nodes reachable over one outgoing link."""
        return list(self._succ[name])

    def predecessors(self, name: str) -> List[str]:
        """Names of nodes with a link into ``name``."""
        return list(self._pred[name])

    def nodes_of_kind(self, *kinds: NodeKind) -> List[Node]:
        """All nodes whose kind is one of ``kinds``."""
        wanted = set(kinds)
        return [n for n in self._nodes.values() if n.kind in wanted]

    @property
    def storage_nodes(self) -> List[Node]:
        """Nodes that hold embeddings (GPU/CPU memory, SSDs)."""
        return [n for n in self._nodes.values() if n.kind.is_storage]

    @property
    def compute_nodes(self) -> List[Node]:
        """The GPU nodes."""
        return [n for n in self._nodes.values() if n.kind.is_compute]

    @property
    def interconnect_nodes(self) -> List[Node]:
        """Root complexes and switches."""
        return [n for n in self._nodes.values() if n.kind.is_interconnect]

    def gpus(self) -> List[str]:
        """GPU node names in deterministic (sorted) order."""
        return sorted(n.name for n in self.compute_nodes)

    def ssds(self) -> List[str]:
        return sorted(n.name for n in self._nodes.values() if n.kind is NodeKind.SSD)

    # ------------------------------------------------------------------
    # algorithms
    # ------------------------------------------------------------------
    def shortest_path(
        self,
        src: str,
        dst: str,
        qpi_penalty: float = 2.0,
    ) -> Optional[List[str]]:
        """Deterministic least-cost path from ``src`` to ``dst``.

        Hop cost is 1 per link, with QPI links weighted ``qpi_penalty``
        so routing prefers staying on one socket when an equal-length
        local path exists — matching how GPU-initiated DMA actually
        routes (no dynamic multipathing on PCIe fabrics).  Ties break on
        lexicographic node order for determinism.
        """
        if src not in self._nodes or dst not in self._nodes:
            raise KeyError(f"unknown endpoint {src!r} or {dst!r}")
        if src == dst:
            return [src]
        import heapq

        dist: Dict[str, float] = {src: 0.0}
        parent: Dict[str, str] = {}
        heap: List[Tuple[float, str]] = [(0.0, src)]
        visited = set()
        while heap:
            d, u = heapq.heappop(heap)
            if u in visited:
                continue
            visited.add(u)
            if u == dst:
                break
            for v in sorted(self._succ[u]):
                link = self._links[(u, v)]
                w = qpi_penalty if link.kind is LinkKind.QPI else 1.0
                nd = d + w
                if nd < dist.get(v, float("inf")):
                    dist[v] = nd
                    parent[v] = u
                    heapq.heappush(heap, (nd, v))
        if dst not in dist:
            return None
        path = [dst]
        while path[-1] != src:
            path.append(parent[path[-1]])
        path.reverse()
        return path

    def path_links(self, path: List[str]) -> List[Link]:
        """Links traversed by a node path."""
        return [self._links[(a, b)] for a, b in zip(path, path[1:])]

    def copy(self, name: Optional[str] = None) -> "Topology":
        """Deep-enough copy (nodes/links are frozen dataclasses)."""
        out = Topology(name or self.name)
        for node in self._nodes.values():
            out.add_node(node)
        for link in self._links.values():
            out.add_directed_link(link)
        return out

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable summary of nodes and links."""
        from repro.utils.units import fmt_rate

        lines = [f"Topology {self.name!r}:"]
        for node in sorted(self._nodes.values(), key=lambda n: n.name):
            extra = (
                f" egress={fmt_rate(node.egress_bw)}" if node.egress_bw else ""
            )
            lines.append(f"  node {node.name} [{node.kind.value}]{extra}")
        seen = set()
        for link in sorted(self._links.values(), key=lambda l: l.key):
            if (link.dst, link.src) in seen:
                continue
            seen.add(link.key)
            tag = f" ({link.label})" if link.label else ""
            lines.append(
                f"  link {link.src} <-> {link.dst} "
                f"{fmt_rate(link.capacity)} [{link.kind.value}]{tag}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Topology({self.name!r}, nodes={len(self._nodes)}, "
            f"links={len(self._links)})"
        )

    def validate(self) -> None:
        """Sanity-check structural invariants; raises ``ValueError``.

        * every SSD/CPU-mem/GPU-mem node must reach at least one GPU;
        * every GPU must be reachable from at least one storage node.
        """
        gpu_names = self.gpus()
        if not gpu_names:
            raise ValueError("topology has no GPU (computation) nodes")
        for store in self.storage_nodes:
            if not any(
                self.shortest_path(store.name, g) is not None for g in gpu_names
            ):
                raise ValueError(
                    f"storage node {store.name!r} cannot reach any GPU"
                )
        for g in gpu_names:
            if not any(
                self.shortest_path(s.name, g) is not None
                for s in self.storage_nodes
            ):
                raise ValueError(f"GPU {g!r} is unreachable from all storage")


@dataclass(frozen=True)
class TopologyMask:
    """A declarative degradation of a topology: nodes that disappeared
    and capacity scale factors for the survivors.

    Used by the replanning path (:mod:`repro.runtime.replan`): the
    placement search re-runs against ``mask.apply(healthy_topo)`` so a
    new data placement is computed for the *surviving* fabric without
    mutating the healthy machine model.  All fields are tuples so a
    mask pickles cleanly into search worker processes.

    Unknown node names are skipped leniently — strict validation
    against a concrete topology belongs to
    :class:`repro.faults.injector.FaultInjector`.
    """

    #: Node names removed entirely (their links disappear with them).
    drop_nodes: Tuple[str, ...] = ()
    #: (node name, factor in (0, 1]) scaling the node's egress ceiling.
    egress_factors: Tuple[Tuple[str, float], ...] = ()
    #: (src, dst, factor in (0, 1]) scaling one directed link.
    link_factors: Tuple[Tuple[str, str, float], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "drop_nodes", tuple(self.drop_nodes))
        object.__setattr__(
            self, "egress_factors", tuple(tuple(e) for e in self.egress_factors)
        )
        object.__setattr__(
            self, "link_factors", tuple(tuple(l) for l in self.link_factors)
        )
        for _, factor in self.egress_factors:
            if not (0.0 < factor <= 1.0):
                raise ValueError(f"egress factor must be in (0, 1], got {factor}")
        for _, _, factor in self.link_factors:
            if not (0.0 < factor <= 1.0):
                raise ValueError(f"link factor must be in (0, 1], got {factor}")

    def __bool__(self) -> bool:
        return bool(self.drop_nodes or self.egress_factors or self.link_factors)

    def apply(self, topo: Topology) -> Topology:
        """A new topology with the mask's degradations applied."""
        import dataclasses as _dc

        dropped = set(self.drop_nodes)
        egress = {name: factor for name, factor in self.egress_factors}
        links = {(src, dst): factor for src, dst, factor in self.link_factors}
        out = Topology(f"{topo.name}|masked")
        for node in topo.nodes:
            if node.name in dropped:
                continue
            factor = egress.get(node.name)
            if factor is not None and node.egress_bw is not None:
                node = _dc.replace(node, egress_bw=node.egress_bw * factor)
            out.add_node(node)
        for link in topo.links:
            if link.src in dropped or link.dst in dropped:
                continue
            factor = links.get(link.key)
            if factor is not None:
                link = _dc.replace(link, capacity=link.capacity * factor)
            out.add_directed_link(link)
        return out


def iter_physical_links(topo: Topology) -> Iterator[Link]:
    """Yield each full-duplex link once (the lexicographically first
    direction), useful for reports that treat a link as one wire."""
    seen = set()
    for link in topo.links:
        if (link.dst, link.src) in seen:
            continue
        seen.add(link.key)
        yield link
