"""Throughput prediction via max flow (paper Section 3.2).

Builds the paper's augmented single-source single-sink network from a
runtime :class:`~repro.core.topology.Topology` plus a *traffic demand*
(bytes each GPU must receive from each storage bin), and answers:

* :func:`min_completion_time` — the paper's "time-bisection
  Ford–Fulkerson procedure": the minimum time T in which every demand
  can be routed when each physical edge carries ``capacity * T`` bytes;
* :func:`predict_throughput` — aggregate GPU inlet bytes/s at that T;
* per-storage-node optimal flows — the ``Bin_traffic`` input of the
  DDAK data-placement algorithm (Section 3.3).

Demands may name a concrete storage node (``"ssd3"``) or the flexible
class ``SSD_CLASS`` ("any SSD"), which the flow solver splits across
drives optimally — this is how hardware placements are scored *before*
a per-vertex data placement exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.maxflow import FlowNetwork, bisect_min_time, dinic, min_cut
from repro.core.topology import NodeKind, Topology

#: Flexible demand keys: "serve this from whichever member is best".
SSD_CLASS = "__ssd_class__"
CPU_CLASS = "__cpu_class__"

_SOURCE = "__source__"
_SINK = "__sink__"


@dataclass
class TrafficDemand:
    """Bytes each GPU must pull from each storage bin.

    ``entries[(bin, gpu)] = bytes`` where ``bin`` is a storage node name
    or one of the class keys.  Local GPU-cache hits should be *excluded*
    by the caller (HBM reads are effectively free); peer-GPU cache
    reads are included with the owner's ``gpuN:mem`` node as the bin.
    """

    entries: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def add(self, bin_name: str, gpu: str, nbytes: float) -> None:
        """Accumulate ``nbytes`` of demand for ``(bin, gpu)``."""
        if nbytes < 0:
            raise ValueError("demand bytes must be >= 0")
        if nbytes == 0:
            return
        key = (bin_name, gpu)
        self.entries[key] = self.entries.get(key, 0.0) + nbytes

    @property
    def total(self) -> float:
        """Sum of all demanded bytes."""
        return sum(self.entries.values())

    def per_gpu(self) -> Dict[str, float]:
        """Demanded bytes aggregated per GPU."""
        out: Dict[str, float] = {}
        for (_, gpu), v in self.entries.items():
            out[gpu] = out.get(gpu, 0.0) + v
        return out

    def per_bin(self) -> Dict[str, float]:
        """Demanded bytes aggregated per storage bin."""
        out: Dict[str, float] = {}
        for (bin_name, _), v in self.entries.items():
            out[bin_name] = out.get(bin_name, 0.0) + v
        return out

    def scaled(self, factor: float) -> "TrafficDemand":
        """A copy with every entry multiplied by ``factor``."""
        return TrafficDemand(
            {k: v * factor for k, v in self.entries.items()}
        )


@dataclass
class FlowPrediction:
    """Result of the time-bisection procedure."""

    #: Minimum completion time for the demand (seconds).
    time: float
    #: Aggregate GPU inlet rate at that time (bytes/s).
    throughput: float
    #: Per-GPU inlet rate (bytes/s), demand/time per GPU.
    per_gpu_rate: Dict[str, float]
    #: Optimal bytes served by each concrete storage node (the DDAK
    #: ``Bin_traffic`` targets), normalised to bytes/s.
    storage_rate: Dict[str, float]
    #: Human-readable saturated links at the optimum (bottlenecks).
    bottlenecks: List[str] = field(default_factory=list)
    #: Source-side node labels of the binding min cut (the certificate
    #: that ``time`` is optimal).  Filled by the vectorized kernel
    #: (:mod:`repro.core.flowbatch`); reusable as a warm-start hint when
    #: re-scoring a similar placement or a degraded fabric.
    cut_partition: Tuple[str, ...] = ()


def _storage_members(topo: Topology, class_key: str) -> List[str]:
    if class_key == SSD_CLASS:
        return topo.ssds()
    if class_key == CPU_CLASS:
        return sorted(
            n.name for n in topo.nodes_of_kind(NodeKind.CPU_MEM)
        )
    raise KeyError(class_key)


def build_time_network(
    topo: Topology,
    demand: TrafficDemand,
    time: float,
) -> FlowNetwork:
    """The augmented network of Figure 9 with edge budgets ``cap * time``.

    Physical edges keep their direction structure; each storage node is
    split (``name/in -> name/out``) to enforce its device egress ceiling.
    Virtual edges: source -> bins (capacity = demanded bytes), GPUs ->
    sink (capacity = per-GPU demanded bytes).  Class demands route
    through a class super-node feeding every member.
    """
    net = FlowNetwork()
    storage_names = {n.name for n in topo.storage_nodes}

    def out_name(node: str) -> str:
        return f"{node}/out" if node in storage_names else node

    # A GPU cache serving a *peer* physically leaves through the owner
    # GPU's fabric ports, not at HBM speed.  The single-commodity
    # relaxation would otherwise let peer-cache demand be absorbed by
    # the owner's own sink at 1.2 TB/s; capping the HBM edge at the
    # owner's aggregate fabric egress restores the binding constraint
    # (local cache hits are excluded from demands by convention).
    gpu_fabric_egress: Dict[str, float] = {}
    for gpu in topo.gpus():
        total = 0.0
        for succ in topo.successors(gpu):
            if topo.node(succ).kind is not NodeKind.GPU_MEM:
                total += topo.link(gpu, succ).capacity
        gpu_fabric_egress[gpu] = total

    # node splitting for storage egress ceilings
    for node in topo.storage_nodes:
        egress = node.egress_bw if node.egress_bw is not None else float("inf")
        if node.kind is NodeKind.GPU_MEM:
            owner = node.name[: -len(":mem")]
            egress = min(egress, gpu_fabric_egress.get(owner, egress))
        net.add_edge(f"{node.name}/in", f"{node.name}/out", egress * time)

    # physical links (QPI carries device-to-device DMA at the reduced
    # cross-socket P2P forwarding rate; CPU-memory flows are a small
    # minority of what the predictor routes, so the cap applies globally)
    from repro.core.topology import LinkKind
    from repro.hardware.specs import QPI_P2P_BW

    for link in topo.links:
        src = out_name(link.src)
        dst = f"{link.dst}/in" if link.dst in storage_names else link.dst
        cap = link.capacity
        if link.kind is LinkKind.QPI:
            cap = min(cap, QPI_P2P_BW)
        net.add_edge(src, dst, cap * time)

    # virtual source edges per demanded bin
    per_bin = demand.per_bin()
    for bin_name, nbytes in sorted(per_bin.items()):
        if bin_name in (SSD_CLASS, CPU_CLASS):
            class_node = f"{bin_name}/class"
            net.add_edge(_SOURCE, class_node, nbytes)
            for member in _storage_members(topo, bin_name):
                net.add_edge(class_node, f"{member}/in", float("inf"))
        else:
            if bin_name not in topo:
                raise KeyError(f"demand references unknown bin {bin_name!r}")
            net.add_edge(_SOURCE, f"{bin_name}/in", nbytes)

    # virtual sink edges per GPU
    for gpu, nbytes in sorted(demand.per_gpu().items()):
        if gpu not in topo:
            raise KeyError(f"demand references unknown GPU {gpu!r}")
        net.add_edge(gpu, _SINK, nbytes)
    return net


def min_completion_time(
    topo: Topology,
    demand: TrafficDemand,
    rel_tol: float = 1e-4,
) -> FlowPrediction:
    """Minimum time to route all demands; the paper's placement score.

    Also extracts per-storage-node flows at the optimum (DDAK traffic
    targets) and the saturated links (bottleneck report).
    """
    from repro.core.maxflow import _MIN_DEMAND

    if demand.total <= _MIN_DEMAND:
        return FlowPrediction(0.0, 0.0, {}, {})

    demands_by_sink = demand.per_gpu()

    def build(t: float) -> FlowNetwork:
        return build_time_network(topo, demand, t)

    t_star = bisect_min_time(
        build, demands_by_sink, source=_SOURCE, sink=_SINK, rel_tol=rel_tol
    )

    # Re-solve at the optimum to read off per-storage flows.
    net = build(t_star)
    dinic(net, _SOURCE, _SINK)
    storage_rate: Dict[str, float] = {}
    for eid in range(0, net.num_edges * 2, 2):
        u, v = net.edge_endpoints(eid)
        flow = net.flow_on(eid)
        if isinstance(u, str) and u.endswith("/in") and isinstance(v, str):
            node = u[: -len("/in")]
            if v == f"{node}/out" and flow > 0:
                storage_rate[node] = flow / t_star

    # Bottlenecks: the min cut *just below* the feasible time is made of
    # the physical links that prevent finishing any faster.
    bottlenecks: List[str] = []
    t_tight = t_star * (1.0 - 16.0 * rel_tol)
    if t_tight > 0:
        tight = build(t_tight)
        dinic(tight, _SOURCE, _SINK)
        for eid in min_cut(tight, _SOURCE):
            u, v = tight.edge_endpoints(eid)
            cap = tight.capacity_of(eid)
            if u == _SOURCE or v == _SINK:
                continue  # demand-limited, not a physical bottleneck
            u_s, v_s = str(u), str(v)
            if u_s.endswith("/out"):
                u_s = u_s[: -len("/out")]
            if v_s.endswith("/in"):
                v_s = v_s[: -len("/in")]
            bottlenecks.append(f"{u_s}->{v_s} ({cap / t_tight / 1e9:.1f} GB/s)")

    per_gpu_rate = {g: d / t_star for g, d in demands_by_sink.items()}
    return FlowPrediction(
        time=t_star,
        throughput=demand.total / t_star,
        per_gpu_rate=per_gpu_rate,
        storage_rate=storage_rate,
        bottlenecks=bottlenecks,
    )


def predict_throughput(topo: Topology, demand: TrafficDemand) -> float:
    """Aggregate GPU inlet bytes/s for the demand (convenience)."""
    return min_completion_time(topo, demand).throughput


def plain_max_flow(topo: Topology) -> float:
    """The unconstrained max flow of the augmented graph (bytes/s):
    source feeds every *external* storage node (CPU memory, SSDs) at its
    egress ceiling, every GPU drains to the sink unboundedly.  GPU HBM
    caches are excluded from the supply side — a GPU reading its own
    cache is not communication.  Matches the paper's base formulation;
    mostly useful for sanity checks and reports, since it ignores what
    data each tier actually holds."""
    net = FlowNetwork()
    storage_names = {n.name for n in topo.storage_nodes}

    for node in topo.storage_nodes:
        egress = node.egress_bw if node.egress_bw is not None else float("inf")
        net.add_edge(f"{node.name}/in", f"{node.name}/out", egress)
        if node.kind is not NodeKind.GPU_MEM:
            net.add_edge(_SOURCE, f"{node.name}/in", egress)
    for link in topo.links:
        src = f"{link.src}/out" if link.src in storage_names else link.src
        dst = f"{link.dst}/in" if link.dst in storage_names else link.dst
        net.add_edge(src, dst, link.capacity)
    for gpu in topo.gpus():
        net.add_edge(gpu, _SINK, float("inf"))
    return dinic(net, _SOURCE, _SINK)
