"""Data-distribution-aware knapsack (DDAK) placement — paper Section 3.3.

DDAK maps vertex embeddings onto storage *bins* (each GPU's HBM cache,
each socket's DRAM cache, each SSD) so that the realised access traffic
matches the per-bin traffic targets the max-flow model derived, while
respecting capacities and the GPU > CPU > SSD hierarchy.

Vertices are processed hottest-first in *pools* of ``n`` (paper default
100).  The paper's storage hierarchy GPU > CPU > SSD is enforced
tier-by-tier ("once a vertex embedding is placed into a bin according
to this hierarchy"): a pool goes to the highest tier with room.  Within
the tier, the pool goes to the bin minimising the filling priority

    priority(bin) = (bin_access / bin_traffic) * (bin_used / bin_capacity)

evaluated *prospectively* (as if the pool were already in the bin) —
the bin furthest below its traffic target and fill level wins.  SSDs
with more usable path bandwidth (per max flow) therefore absorb hotter
data than throttled ones, which is exactly how DDAK beats hash
placement on skewed graphs.

Ties break by traffic descending then bin index, making the algorithm
fully deterministic.

Note the interaction between pooling and capacities: a pool is placed
whole, so a tier whose bins hold fewer than ``n`` vertices is skipped
entirely (the vertex-granular tail fill only engages once *no* tier
fits a whole pool).  With the paper's n=100 and real cache sizes
(thousands to millions of slots) this never triggers; pick
``pool_size`` below the smallest cache-bin capacity when working with
miniature configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.topology import NodeKind, Topology
from repro.utils.validation import check_nonnegative, check_positive

#: Tier ranks implementing the paper's GPU > CPU > SSD hierarchy.
TIER_GPU, TIER_CPU, TIER_SSD = 0, 1, 2

_TIER_OF_KIND = {
    NodeKind.GPU_MEM: TIER_GPU,
    NodeKind.CPU_MEM: TIER_CPU,
    NodeKind.SSD: TIER_SSD,
}


@dataclass
class Bin:
    """One storage bin: a topology storage node with capacity + target.

    ``traffic`` is the expected service rate (bytes/s) from the max-flow
    model ("Bin_traffic"); ``capacity_bytes`` the embedding budget
    ("Bin_Capacity").
    """

    name: str
    tier: int
    capacity_bytes: float
    traffic: float

    def __post_init__(self) -> None:
        if self.tier not in (TIER_GPU, TIER_CPU, TIER_SSD):
            raise ValueError(f"invalid tier {self.tier}")
        check_nonnegative("capacity_bytes", self.capacity_bytes)
        check_nonnegative("traffic", self.traffic)


@dataclass(frozen=True)
class DataPlacement:
    """A complete vertex-to-bin assignment."""

    bins: List[Bin]
    #: ``int32[num_vertices]`` index into ``bins`` (-1 = unplaced only
    #: when construction failed; never returned by the placers).
    bin_of: np.ndarray
    method: str = ""

    def bin_index(self, name: str) -> int:
        """Index of the bin named ``name`` (raises ``KeyError``)."""
        for i, b in enumerate(self.bins):
            if b.name == name:
                return i
        raise KeyError(name)

    def vertices_in(self, name: str) -> np.ndarray:
        """Vertex ids placed in the named bin."""
        return np.flatnonzero(self.bin_of == self.bin_index(name))

    def bytes_in(self, name: str, feature_bytes: int) -> float:
        """Embedding bytes resident in the named bin."""
        return float(self.vertices_in(name).size * feature_bytes)

    def occupancy(self, feature_bytes: int) -> Dict[str, float]:
        """Fill fraction per bin (0 for unbounded/empty capacities)."""
        counts = np.bincount(self.bin_of, minlength=len(self.bins))
        out = {}
        for i, b in enumerate(self.bins):
            used = counts[i] * feature_bytes
            out[b.name] = used / b.capacity_bytes if b.capacity_bytes else 0.0
        return out

    def validate(self, feature_bytes: int) -> None:
        """Assert every vertex placed and no bin over capacity."""
        if np.any(self.bin_of < 0) or np.any(self.bin_of >= len(self.bins)):
            raise ValueError("placement contains unplaced vertices")
        counts = np.bincount(self.bin_of, minlength=len(self.bins))
        for i, b in enumerate(self.bins):
            used = counts[i] * feature_bytes
            if used > b.capacity_bytes * (1 + 1e-9):
                raise ValueError(
                    f"bin {b.name} over capacity: {used} > {b.capacity_bytes}"
                )


#: Name of the logical bin representing a cache replicated in every
#: GPU's HBM — hits are local on all GPUs (the default cache policy;
#: PCIe P2P cache sharing is not worth it without NVLink).
GPU_REPLICATED = "gpu:all"


def make_bins(
    topo: Topology,
    gpu_cache_bytes: float,
    cpu_cache_bytes: float,
    ssd_capacity_bytes: float,
    traffic: Optional[Mapping[str, float]] = None,
    gpu_traffic: float = 1.2e12,
    gpu_cache_policy: str = "replicated",
) -> List[Bin]:
    """Build the bin list for a topology.

    ``gpu_cache_bytes`` applies per GPU, ``cpu_cache_bytes`` per DRAM
    bank, ``ssd_capacity_bytes`` per drive (all at the dataset's scale).
    ``traffic`` supplies max-flow targets by node name; GPU caches
    default to HBM bandwidth (local hits dominate their service rate)
    and anything else missing gets a tiny epsilon so it fills last.

    ``gpu_cache_policy``:

    * ``"replicated"`` (default) — every GPU holds the same hot set; one
      logical :data:`GPU_REPLICATED` bin with a single GPU's capacity,
      local to all GPUs;
    * ``"partitioned"`` — one bin per GPU (distinct content, peer reads
      cross the fabric); the ablation/NVLink-pairing variant.
    """
    check_nonnegative("gpu_cache_bytes", gpu_cache_bytes)
    check_nonnegative("cpu_cache_bytes", cpu_cache_bytes)
    check_nonnegative("ssd_capacity_bytes", ssd_capacity_bytes)
    if gpu_cache_policy not in ("replicated", "partitioned"):
        raise ValueError(f"unknown gpu_cache_policy {gpu_cache_policy!r}")
    traffic = dict(traffic or {})
    bins: List[Bin] = []
    if gpu_cache_policy == "replicated" and topo.gpus() and gpu_cache_bytes > 0:
        bins.append(
            Bin(
                name=GPU_REPLICATED,
                tier=TIER_GPU,
                capacity_bytes=gpu_cache_bytes,
                traffic=traffic.get(GPU_REPLICATED, gpu_traffic),
            )
        )
    for node in sorted(topo.storage_nodes, key=lambda n: n.name):
        tier = _TIER_OF_KIND[node.kind]
        if tier == TIER_GPU:
            if gpu_cache_policy == "replicated":
                continue
            cap, default_traffic = gpu_cache_bytes, gpu_traffic
        elif tier == TIER_CPU:
            cap, default_traffic = cpu_cache_bytes, 1e6
        else:
            cap, default_traffic = ssd_capacity_bytes, 1e6
        bins.append(
            Bin(
                name=node.name,
                tier=tier,
                capacity_bytes=cap,
                traffic=traffic.get(node.name, default_traffic),
            )
        )
    if not bins:
        raise ValueError("topology has no storage nodes")
    return bins


def ddak_place(
    bins: Sequence[Bin],
    hotness: np.ndarray,
    feature_bytes: int,
    pool_size: int = 100,
) -> DataPlacement:
    """The DDAK allocator (paper Algorithm, Section 3.3).

    ``hotness`` is per-vertex expected access counts; ``pool_size`` is
    the pooling factor n (paper fixes 100 as the balanced default).
    Raises ``ValueError`` if total bin capacity cannot hold the dataset.
    """
    check_positive("feature_bytes", feature_bytes)
    if pool_size < 1:
        raise ValueError("pool_size must be >= 1")
    hotness = np.asarray(hotness, dtype=np.float64)
    num_vertices = hotness.size
    total_needed = num_vertices * feature_bytes
    total_cap = sum(b.capacity_bytes for b in bins)
    if total_cap < total_needed:
        raise ValueError(
            f"bins hold {total_cap:.3g} B but dataset needs {total_needed:.3g} B"
        )

    order = np.argsort(-hotness, kind="stable")
    bin_of = np.full(num_vertices, -1, dtype=np.int32)

    n_bins = len(bins)
    access = np.zeros(n_bins)
    used = np.zeros(n_bins)
    cap = np.array([b.capacity_bytes for b in bins])
    traffic = np.array([max(b.traffic, 1e-12) for b in bins])
    tiers = np.array([b.tier for b in bins])
    tier_levels = sorted(set(int(t) for t in tiers))
    # deterministic tie-break within a tier: traffic desc, then index
    tie_rank = np.lexsort((np.arange(n_bins), -traffic))
    tie_order = np.empty(n_bins, dtype=np.int64)
    tie_order[tie_rank] = np.arange(n_bins)

    def pick(candidates: np.ndarray, add_hot: float, add_bytes: float) -> int:
        """Prospective-priority argmin within one tier."""
        pr = (
            (access[candidates] + add_hot)
            / traffic[candidates]
            * (used[candidates] + add_bytes)
            / np.maximum(cap[candidates], 1e-12)
        )
        j = min(
            range(len(candidates)),
            key=lambda k: (pr[k], tie_order[candidates[k]]),
        )
        return int(candidates[j])

    vertex_bytes = float(feature_bytes)
    for start in range(0, num_vertices, pool_size):
        pool = order[start : start + pool_size]
        pool_bytes = pool.size * vertex_bytes
        pool_hotness = float(hotness[pool].sum())
        best = -1
        for level in tier_levels:
            candidates = np.flatnonzero(
                (tiers == level) & (used + pool_bytes <= cap)
            )
            if candidates.size:
                best = pick(candidates, pool_hotness, pool_bytes)
                break
        if best < 0:
            # no tier fits the whole pool: vertex-granular tail fill
            for v in pool:
                vb = -1
                for level in tier_levels:
                    candidates = np.flatnonzero(
                        (tiers == level) & (used + vertex_bytes <= cap)
                    )
                    if candidates.size:
                        vb = pick(candidates, float(hotness[v]), vertex_bytes)
                        break
                if vb < 0:
                    raise ValueError("all bins full during DDAK placement")
                bin_of[v] = vb
                access[vb] += float(hotness[v])
                used[vb] += vertex_bytes
            continue
        bin_of[pool] = best
        access[best] += pool_hotness
        used[best] += pool_bytes
    placement = DataPlacement(list(bins), bin_of, method=f"ddak(n={pool_size})")
    placement.validate(feature_bytes)
    return placement


def hash_place(
    bins: Sequence[Bin],
    hotness: np.ndarray,
    feature_bytes: int,
    cache_hot: bool = True,
) -> DataPlacement:
    """The hash baseline the paper compares DDAK against (Section 4.5).

    GPU/CPU caches are filled with the hottest vertices (split evenly
    across same-tier bins — what M-GIDS/M-Hyperion do), and everything
    else is hashed uniformly across SSDs regardless of each drive's
    usable path bandwidth.  ``cache_hot=False`` hashes *everything* (no
    cache tiers), for ablations.
    """
    check_positive("feature_bytes", feature_bytes)
    hotness = np.asarray(hotness, dtype=np.float64)
    num_vertices = hotness.size
    bin_of = np.full(num_vertices, -1, dtype=np.int32)
    order = np.argsort(-hotness, kind="stable")

    ssd_ids = [i for i, b in enumerate(bins) if b.tier == TIER_SSD]
    if not ssd_ids:
        raise ValueError("hash placement needs at least one SSD bin")
    cursor = 0
    if cache_hot:
        for tier in (TIER_GPU, TIER_CPU):
            tier_ids = [i for i, b in enumerate(bins) if b.tier == tier]
            if not tier_ids:
                continue
            slots = sum(
                int(bins[i].capacity_bytes // feature_bytes) for i in tier_ids
            )
            take = min(slots, num_vertices - cursor)
            if take <= 0:
                continue
            chosen = order[cursor : cursor + take]
            # round-robin across the tier's bins, respecting capacities
            per_bin = [int(bins[i].capacity_bytes // feature_bytes) for i in tier_ids]
            idx = 0
            offsets = np.zeros(len(tier_ids), dtype=np.int64)
            assign = np.empty(take, dtype=np.int32)
            j = 0
            for v in range(take):
                # advance to a bin with room
                for _ in range(len(tier_ids)):
                    if offsets[j] < per_bin[j]:
                        break
                    j = (j + 1) % len(tier_ids)
                assign[v] = tier_ids[j]
                offsets[j] += 1
                j = (j + 1) % len(tier_ids)
            bin_of[chosen] = assign
            cursor += take
    rest = order[cursor:]
    bin_of[rest] = np.array(ssd_ids, dtype=np.int32)[rest % len(ssd_ids)]
    placement = DataPlacement(list(bins), bin_of, method="hash")
    placement.validate(feature_bytes)
    return placement
