"""Maximum-flow solvers (paper Section 3.2, "Problem Solving").

Implements the classic algorithms from scratch on a compact adjacency
representation:

* :class:`FlowNetwork` — residual-graph container with parallel-edge
  support and float capacities;
* :func:`edmonds_karp` — BFS Ford–Fulkerson, the method the paper names;
* :func:`dinic` — the default solver (same answers, faster);
* :func:`min_cut` — saturated-edge cut extraction for bottleneck reports;
* :func:`feasible_time` / :func:`bisect_min_time` — the paper's
  "time-bisection Ford–Fulkerson procedure": find the minimum time T such
  that all per-sink demands can be routed when every edge can carry
  ``capacity * T`` bytes.

Capacities are floats (bytes or bytes/second); a relative tolerance is
used when checking saturation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

INF = float("inf")
_EPS = 1e-9
#: Demands below this many bytes are treated as zero: sub-microbyte
#: quantities are residues of float arithmetic, and the residual-graph
#: epsilon would otherwise misclassify them as unroutable.
_MIN_DEMAND = 1e-6


class FlowNetwork:
    """Directed flow network with residual bookkeeping.

    Nodes are arbitrary hashable labels, added implicitly by
    :meth:`add_edge`.  Parallel edges are kept distinct so per-edge flow
    can be reported (needed to read off per-storage-node traffic for
    DDAK).
    """

    def __init__(self) -> None:
        self._index: Dict[object, int] = {}
        self._labels: List[object] = []
        # Edge arrays: to[i], cap[i] (residual), paired edge i^1 is the
        # reverse.  adj[u] lists edge ids leaving u.
        self._to: List[int] = []
        self._cap: List[float] = []
        self._init_cap: List[float] = []
        self.adj: List[List[int]] = []

    # -- construction ---------------------------------------------------
    def node_id(self, label: object) -> int:
        """Intern a node label, creating it on first use."""
        if label not in self._index:
            self._index[label] = len(self._labels)
            self._labels.append(label)
            self.adj.append([])
        return self._index[label]

    def label(self, node_id: int) -> object:
        """The label of an interned node id."""
        return self._labels[node_id]

    @property
    def num_nodes(self) -> int:
        """Number of interned nodes."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of forward (capacity-bearing) edges."""
        return len(self._to) // 2

    def add_edge(self, u: object, v: object, capacity: float) -> int:
        """Add directed edge ``u -> v``; returns its edge id.

        ``capacity`` may be ``float('inf')`` for virtual edges.
        """
        if capacity < 0:
            raise ValueError(f"negative capacity {capacity!r}")
        ui, vi = self.node_id(u), self.node_id(v)
        eid = len(self._to)
        self._to.append(vi)
        self._cap.append(capacity)
        self._init_cap.append(capacity)
        self.adj[ui].append(eid)
        # reverse (residual) edge
        self._to.append(ui)
        self._cap.append(0.0)
        self._init_cap.append(0.0)
        self.adj[vi].append(eid + 1)
        return eid

    def set_capacity(self, eid: int, capacity: float) -> None:
        """Reset one edge's capacity (clears any routed flow on it)."""
        if capacity < 0:
            raise ValueError(f"negative capacity {capacity!r}")
        self._cap[eid] = capacity
        self._init_cap[eid] = capacity
        self._cap[eid ^ 1] = 0.0
        self._init_cap[eid ^ 1] = 0.0

    def reset(self) -> None:
        """Erase all routed flow, restoring initial capacities."""
        self._cap = list(self._init_cap)

    # -- inspection -----------------------------------------------------
    def flow_on(self, eid: int) -> float:
        """Flow currently routed on forward edge ``eid``."""
        return self._cap[eid ^ 1]

    def residual(self, eid: int) -> float:
        """Remaining capacity on edge ``eid``."""
        return self._cap[eid]

    def capacity_of(self, eid: int) -> float:
        """Original capacity of edge ``eid``."""
        return self._init_cap[eid]

    def edge_endpoints(self, eid: int) -> Tuple[object, object]:
        return self._labels[self._to[eid ^ 1]], self._labels[self._to[eid]]


# ----------------------------------------------------------------------
# Edmonds–Karp (BFS Ford–Fulkerson)
# ----------------------------------------------------------------------
def edmonds_karp(net: FlowNetwork, source: object, sink: object) -> float:
    """Max flow via shortest augmenting paths.  O(V E^2)."""
    s, t = net.node_id(source), net.node_id(sink)
    total = 0.0
    while True:
        parent_edge = [-1] * net.num_nodes
        parent_edge[s] = -2
        q = deque([s])
        while q and parent_edge[t] == -1:
            u = q.popleft()
            for eid in net.adj[u]:
                v = net._to[eid]
                if parent_edge[v] == -1 and net._cap[eid] > _EPS:
                    parent_edge[v] = eid
                    q.append(v)
        if parent_edge[t] == -1:
            return total
        # find bottleneck
        push = INF
        v = t
        while v != s:
            eid = parent_edge[v]
            push = min(push, net._cap[eid])
            v = net._to[eid ^ 1]
        # apply
        v = t
        while v != s:
            eid = parent_edge[v]
            net._cap[eid] -= push
            net._cap[eid ^ 1] += push
            v = net._to[eid ^ 1]
        total += push


# ----------------------------------------------------------------------
# Dinic
# ----------------------------------------------------------------------
def dinic(net: FlowNetwork, source: object, sink: object) -> float:
    """Max flow via blocking flows on level graphs.  O(V^2 E)."""
    s, t = net.node_id(source), net.node_id(sink)
    total = 0.0
    n = net.num_nodes
    while True:
        # BFS level graph
        level = [-1] * n
        level[s] = 0
        q = deque([s])
        while q:
            u = q.popleft()
            for eid in net.adj[u]:
                v = net._to[eid]
                if level[v] < 0 and net._cap[eid] > _EPS:
                    level[v] = level[u] + 1
                    q.append(v)
        if level[t] < 0:
            return total
        # DFS blocking flow with iteration pointers
        it = [0] * n

        def dfs(u: int, pushed: float) -> float:
            if u == t:
                return pushed
            while it[u] < len(net.adj[u]):
                eid = net.adj[u][it[u]]
                v = net._to[eid]
                if net._cap[eid] > _EPS and level[v] == level[u] + 1:
                    got = dfs(v, min(pushed, net._cap[eid]))
                    if got > _EPS:
                        net._cap[eid] -= got
                        net._cap[eid ^ 1] += got
                        return got
                it[u] += 1
            return 0.0

        while True:
            pushed = dfs(s, INF)
            if pushed <= _EPS:
                break
            total += pushed


def max_flow(
    net: FlowNetwork,
    source: object,
    sink: object,
    method: str = "dinic",
) -> float:
    """Dispatch to a solver by name (``"dinic"`` or ``"edmonds_karp"``)."""
    if method == "dinic":
        return dinic(net, source, sink)
    if method == "edmonds_karp":
        return edmonds_karp(net, source, sink)
    raise ValueError(f"unknown max-flow method {method!r}")


def min_cut(net: FlowNetwork, source: object) -> List[int]:
    """Edge ids of a minimum s-t cut.

    Must be called after a max-flow run; returns the forward edges from
    the source-reachable side (in the residual graph) to the rest —
    i.e. the saturated bottleneck links.
    """
    s = net.node_id(source)
    reach: Set[int] = {s}
    q = deque([s])
    while q:
        u = q.popleft()
        for eid in net.adj[u]:
            v = net._to[eid]
            if v not in reach and net._cap[eid] > _EPS:
                reach.add(v)
                q.append(v)
    cut = []
    for eid in range(0, len(net._to), 2):
        u = net._to[eid ^ 1]
        v = net._to[eid]
        if u in reach and v not in reach and net._init_cap[eid] > _EPS:
            cut.append(eid)
    return cut


# ----------------------------------------------------------------------
# Time-bisection Ford–Fulkerson (paper's demand-feasibility procedure)
# ----------------------------------------------------------------------
def feasible_time(
    build_network,
    demands: Dict[object, float],
    time: float,
    source: object = "__source__",
    sink: object = "__sink__",
    rel_tol: float = 1e-6,
) -> bool:
    """Can all ``demands`` (bytes per sink node) complete within ``time``?

    ``build_network(time)`` must return a fresh :class:`FlowNetwork`
    where every physical edge carries ``capacity_bytes_per_s * time``
    and every demand node has an edge to ``sink`` with capacity equal to
    its demand in bytes.  Feasible iff max flow saturates total demand.
    """
    total = sum(demands.values())
    if total <= _MIN_DEMAND:
        return True
    net = build_network(time)
    got = dinic(net, source, sink)
    return got >= total * (1.0 - rel_tol)


def bisect_min_time(
    build_network,
    demands: Dict[object, float],
    t_hi: float = 1e6,
    source: object = "__source__",
    sink: object = "__sink__",
    rel_tol: float = 1e-4,
    max_iter: int = 80,
) -> float:
    """Minimum time T such that all demands are routable (bisection).

    Raises ``RuntimeError`` if even ``t_hi`` seconds is infeasible
    (disconnected demand).  Because feasibility is monotone in T the
    bisection converges geometrically; ``rel_tol`` is relative to the
    final T.
    """
    total = sum(demands.values())
    if total <= _MIN_DEMAND:
        return 0.0
    if not feasible_time(build_network, demands, t_hi, source, sink):
        raise RuntimeError(
            f"demands infeasible even in {t_hi} s — disconnected topology?"
        )
    lo, hi = 0.0, t_hi
    # exponential shrink of the initial bracket for speed
    probe = t_hi
    while probe > 1e-9:
        probe /= 16.0
        if feasible_time(build_network, demands, probe, source, sink):
            hi = probe
        else:
            lo = probe
            break
    for _ in range(max_iter):
        if hi - lo <= rel_tol * hi:
            break
        mid = 0.5 * (lo + hi)
        if feasible_time(build_network, demands, mid, source, sink):
            hi = mid
        else:
            lo = mid
    return hi
