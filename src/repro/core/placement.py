"""Hardware placement: slots, chassis, placements, and enumeration.

The paper searches over *where to physically install* GPUs and SSDs in a
server's PCIe slots.  We model the server as a :class:`Chassis` — the
immutable interconnect skeleton (root complexes, switches, trunk links,
CPU memory) plus :class:`SlotGroup` s of interchangeable slots — and a
:class:`Placement` that says how many devices of each kind go in each
group.  Slots within a group are electrically identical, so only counts
matter ("PCIe switch symmetry" in the paper falls out for free);
cross-group symmetry is handled by :mod:`repro.core.symmetry`.

Slot arithmetic follows the paper's physical constraints: an A100
consumes two slot units (dual-width card), an NVMe SSD one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from repro.core.topology import LinkKind, Node, NodeKind, Topology
from repro.utils.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - type hints only, avoids import cycle
    from repro.hardware.specs import GpuSpec, SsdSpec

#: Device kinds a slot can host.
GPU = "gpu"
SSD = "ssd"
DEVICE_KINDS = (GPU, SSD)

#: Slot units consumed per device kind (paper: dual slots for A100-class
#: GPUs, single slots for NVMe SSDs).
SLOT_UNITS = {GPU: 2, SSD: 1}


@dataclass(frozen=True)
class SlotGroup:
    """A set of interchangeable slots hanging off one interconnect node.

    Attributes
    ----------
    name:
        Unique group id, e.g. ``"plx0.slots"`` or ``"rc0.bays"``.
    attach:
        Interconnect node the slots are wired to.
    units:
        Total slot units available (a dual-width GPU uses 2).
    link_bw:
        Per-device link bandwidth for devices in this group (bytes/s) —
        determined by the slot's lane width.
    allowed:
        Device kinds that physically fit (``{"gpu", "ssd"}``).
    bus_label:
        Optional bus name from the paper's figures for reports.
    tag:
        Free-form electrical identity marker.  Groups whose slots host
        different device *parts* (e.g. mixed GPU generations on a
        heterogeneous fabric) carry distinct tags so the symmetry
        engine never treats them as swappable.  Empty for homogeneous
        machines (the historical behaviour).
    """

    name: str
    attach: str
    units: int
    link_bw: float
    allowed: FrozenSet[str] = frozenset(DEVICE_KINDS)
    bus_label: str = ""
    tag: str = ""

    def __post_init__(self) -> None:
        if self.units <= 0:
            raise ValueError(f"slot group {self.name!r} must have units > 0")
        check_positive("link_bw", self.link_bw)
        bad = set(self.allowed) - set(DEVICE_KINDS)
        if bad:
            raise ValueError(f"unknown device kinds {bad} in group {self.name!r}")

    def capacity_for(self, kind: str) -> int:
        """Max devices of ``kind`` if the group held only that kind."""
        if kind not in self.allowed:
            return 0
        return self.units // SLOT_UNITS[kind]


@dataclass(frozen=True)
class TrunkLink:
    """A fixed (non-slot) link of the chassis skeleton."""

    a: str
    b: str
    capacity: float
    kind: LinkKind = LinkKind.PCIE
    label: str = ""


@dataclass(frozen=True)
class MemoryBank:
    """A CPU DRAM bank attached to one root complex."""

    name: str
    attach: str
    capacity_bytes: float
    bandwidth: float


@dataclass
class Chassis:
    """The immutable part of a server: interconnects, trunks, memory, slots."""

    name: str
    interconnects: Dict[str, NodeKind] = field(default_factory=dict)
    trunks: List[TrunkLink] = field(default_factory=list)
    memories: List[MemoryBank] = field(default_factory=list)
    slot_groups: List[SlotGroup] = field(default_factory=list)

    def add_interconnect(self, name: str, kind: NodeKind) -> None:
        """Register a root complex or switch on the skeleton."""
        if not kind.is_interconnect:
            raise ValueError(f"{kind} is not an interconnect kind")
        if name in self.interconnects:
            raise ValueError(f"duplicate interconnect {name!r}")
        self.interconnects[name] = kind

    def add_trunk(
        self,
        a: str,
        b: str,
        capacity: float,
        kind: LinkKind = LinkKind.PCIE,
        label: str = "",
    ) -> None:
        """Add a fixed (non-slot) link between interconnects."""
        self.trunks.append(TrunkLink(a, b, capacity, kind, label))

    def add_memory(
        self, name: str, attach: str, capacity_bytes: float, bandwidth: float
    ) -> None:
        """Attach a DRAM bank to a root complex."""
        self.memories.append(MemoryBank(name, attach, capacity_bytes, bandwidth))

    def add_slot_group(self, group: SlotGroup) -> None:
        """Register a slot group (validates its attach point)."""
        if any(g.name == group.name for g in self.slot_groups):
            raise ValueError(f"duplicate slot group {group.name!r}")
        if group.attach not in self.interconnects:
            raise ValueError(
                f"slot group {group.name!r} attaches to unknown node "
                f"{group.attach!r}"
            )
        self.slot_groups.append(group)

    def group(self, name: str) -> SlotGroup:
        """Look up a slot group by name (raises ``KeyError``)."""
        for g in self.slot_groups:
            if g.name == name:
                return g
        raise KeyError(name)

    @property
    def group_names(self) -> List[str]:
        """Slot-group names in declaration order."""
        return [g.name for g in self.slot_groups]

    def validate(self) -> None:
        """Check skeleton references; raises ``ValueError``."""
        names = set(self.interconnects)
        for t in self.trunks:
            if t.a not in names or t.b not in names:
                raise ValueError(f"trunk {t} references unknown interconnect")
        for m in self.memories:
            if m.attach not in names:
                raise ValueError(f"memory {m.name!r} attaches to unknown node")


class Placement:
    """An assignment of device counts to slot groups.

    Immutable and hashable; ``counts[group][kind]`` is the number of
    devices of ``kind`` installed in ``group``.
    """

    def __init__(
        self,
        chassis: Chassis,
        counts: Mapping[str, Mapping[str, int]],
        name: str = "",
    ) -> None:
        self.chassis = chassis
        self.name = name
        norm: Dict[str, Dict[str, int]] = {}
        for gname, per_kind in counts.items():
            group = chassis.group(gname)  # raises KeyError on unknown group
            used = 0
            row: Dict[str, int] = {}
            for kind, n in per_kind.items():
                if kind not in DEVICE_KINDS:
                    raise ValueError(f"unknown device kind {kind!r}")
                if n < 0:
                    raise ValueError(f"negative count for {kind} in {gname}")
                if n > 0 and kind not in group.allowed:
                    raise ValueError(
                        f"group {gname!r} does not accept {kind!r} devices"
                    )
                used += n * SLOT_UNITS[kind]
                if n:
                    row[kind] = int(n)
            if used > group.units:
                raise ValueError(
                    f"group {gname!r} overflows: {used} units used, "
                    f"{group.units} available"
                )
            if row:
                norm[gname] = row
        self._counts = norm

    def count(self, group: str, kind: str) -> int:
        """Devices of ``kind`` installed in ``group``."""
        return self._counts.get(group, {}).get(kind, 0)

    def rebind(self, chassis: Chassis, name: Optional[str] = None) -> "Placement":
        """The same counts bound to a structurally equivalent chassis.

        Useful when two construction paths produce equal chassis (e.g.
        a legacy constructor and a compiled fabric spec): placements
        compare and build against ``placement.chassis``, so a layout
        made for one instance must be rebound before use on the other.
        Raises if ``chassis`` lacks any group this placement populates.
        """
        return Placement(
            chassis, self._counts, name if name is not None else self.name
        )

    def total(self, kind: str) -> int:
        """Total devices of ``kind`` across all groups."""
        return sum(row.get(kind, 0) for row in self._counts.values())

    @property
    def num_gpus(self) -> int:
        """Total GPUs in this placement."""
        return self.total(GPU)

    @property
    def num_ssds(self) -> int:
        """Total SSDs in this placement."""
        return self.total(SSD)

    def as_tuple(self) -> Tuple[Tuple[str, int, int], ...]:
        """Canonical-ish tuple: (group, n_gpu, n_ssd) for every group."""
        return tuple(
            (g.name, self.count(g.name, GPU), self.count(g.name, SSD))
            for g in self.chassis.slot_groups
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Placement)
            and self.chassis is other.chassis
            and self.as_tuple() == other.as_tuple()
        )

    def __hash__(self) -> int:
        return hash(self.as_tuple())

    def __repr__(self) -> str:
        parts = []
        for gname, gpu_n, ssd_n in self.as_tuple():
            if gpu_n or ssd_n:
                bits = []
                if gpu_n:
                    bits.append(f"{gpu_n}gpu")
                if ssd_n:
                    bits.append(f"{ssd_n}ssd")
                parts.append(f"{gname}:{'+'.join(bits)}")
        label = f"{self.name}: " if self.name else ""
        return f"Placement({label}{', '.join(parts) or 'empty'})"


# ----------------------------------------------------------------------
# Topology instantiation
# ----------------------------------------------------------------------
def build_topology(
    placement: Placement,
    gpu_spec: "GpuSpec",
    ssd_spec: "SsdSpec",
    nvlink_pairs: Optional[Sequence[Tuple[int, int]]] = None,
    nvlink_bw: Optional[float] = None,
    name: Optional[str] = None,
    gpu_specs: Optional[Mapping[str, "GpuSpec"]] = None,
    ssd_specs: Optional[Mapping[str, "SsdSpec"]] = None,
    validate: bool = True,
) -> Topology:
    """Instantiate the runtime :class:`Topology` for a placement.

    Devices are numbered deterministically in slot-group declaration
    order (``gpu0..``, ``ssd0..``).  Each GPU gets a co-located
    ``gpuN:mem`` storage node joined by an HBM-bandwidth link, so GPU
    caches participate in the flow model like any other storage tier.

    ``nvlink_pairs`` adds GPU<->GPU NVLink edges by GPU index (Fig. 18).

    ``gpu_specs``/``ssd_specs`` map slot-group name -> device part for
    heterogeneous fabrics (mixed GPU generations, slower drive models
    in some bays); groups not listed fall back to ``gpu_spec``/
    ``ssd_spec``.
    """
    from repro.hardware.specs import GPU_HBM_BW

    chassis = placement.chassis
    if validate:
        chassis.validate()
    topo = Topology(name or f"{chassis.name}/{placement.name or 'custom'}")

    for iname, ikind in chassis.interconnects.items():
        topo.add(iname, ikind)
    for trunk in chassis.trunks:
        topo.add_link(trunk.a, trunk.b, trunk.capacity, trunk.kind, trunk.label)
    for mem in chassis.memories:
        topo.add(mem.name, NodeKind.CPU_MEM, egress_bw=mem.bandwidth)
        topo.add_link(
            mem.name, mem.attach, mem.bandwidth, LinkKind.MEMORY, f"{mem.name}-bus"
        )

    gpu_i = 0
    ssd_i = 0
    for group in chassis.slot_groups:
        g_spec = (gpu_specs or {}).get(group.name, gpu_spec)
        s_spec = (ssd_specs or {}).get(group.name, ssd_spec)
        for _ in range(placement.count(group.name, GPU)):
            gname = f"gpu{gpu_i}"
            topo.add(gname, NodeKind.GPU)
            bw = min(group.link_bw, g_spec.link_bw)
            topo.add_link(gname, group.attach, bw, LinkKind.PCIE, group.bus_label)
            mem_name = f"{gname}:mem"
            topo.add(mem_name, NodeKind.GPU_MEM, egress_bw=GPU_HBM_BW)
            topo.add_link(mem_name, gname, GPU_HBM_BW, LinkKind.INTERNAL, "hbm")
            gpu_i += 1
        for _ in range(placement.count(group.name, SSD)):
            sname = f"ssd{ssd_i}"
            topo.add(sname, NodeKind.SSD, egress_bw=s_spec.read_bw)
            bw = min(group.link_bw, s_spec.link_bw)
            topo.add_link(sname, group.attach, bw, LinkKind.PCIE, group.bus_label)
            ssd_i += 1

    if nvlink_pairs:
        bw = nvlink_bw
        if bw is None:
            from repro.hardware.specs import NVLINK_BW

            bw = NVLINK_BW
        for a, b in nvlink_pairs:
            ga, gb = f"gpu{a}", f"gpu{b}"
            if ga not in topo or gb not in topo:
                raise ValueError(f"NVLink pair ({a},{b}) references missing GPU")
            topo.add_link(ga, gb, bw, LinkKind.NVLINK, f"nvlink{a}-{b}")

    if validate:
        topo.validate()
    return topo


# ----------------------------------------------------------------------
# Enumeration
# ----------------------------------------------------------------------
def _compositions(total: int, caps: Sequence[int]) -> Iterator[Tuple[int, ...]]:
    """All ways to write ``total`` as an ordered sum bounded by ``caps``."""
    if not caps:
        if total == 0:
            yield ()
        return
    first_cap = min(caps[0], total)
    for first in range(first_cap + 1):
        for rest in _compositions(total - first, caps[1:]):
            yield (first,) + rest


def iter_placements(
    chassis: Chassis,
    num_gpus: int,
    num_ssds: int,
) -> Iterator[Placement]:
    """Stream all feasible placements of the device pool, one at a time.

    Respects per-group slot units, dual-width GPU slots, and device-kind
    restrictions ("Considering Physical Slot Constraints" in the paper).
    Candidates are yielded in a deterministic order (GPU compositions
    outer, SSD compositions inner, both in slot-group declaration
    order), so downstream consumers can use the enumeration index as a
    stable tie-breaker.  The search engine consumes this generator
    directly and prunes symmetric duplicates as they are produced.
    """
    groups = chassis.slot_groups
    gpu_caps = [g.capacity_for(GPU) for g in groups]
    for gpu_counts in _compositions(num_gpus, gpu_caps):
        # Remaining units per group after GPUs are seated.
        ssd_caps = []
        for g, ng in zip(groups, gpu_counts):
            free_units = g.units - ng * SLOT_UNITS[GPU]
            ssd_caps.append(free_units if SSD in g.allowed else 0)
        for ssd_counts in _compositions(num_ssds, ssd_caps):
            counts = {
                g.name: {GPU: ng, SSD: ns}
                for g, ng, ns in zip(groups, gpu_counts, ssd_counts)
            }
            yield Placement(chassis, counts)


def enumerate_placements(
    chassis: Chassis,
    num_gpus: int,
    num_ssds: int,
) -> List[Placement]:
    """All feasible placements, materialised (see :func:`iter_placements`)."""
    return list(iter_placements(chassis, num_gpus, num_ssds))


def count_placements(chassis: Chassis, num_gpus: int, num_ssds: int) -> int:
    """``len(enumerate_placements(...))`` without enumerating.

    Dynamic program over slot groups with state (GPUs seated, SSDs
    seated), mirroring the bounded compositions of
    :func:`iter_placements` exactly — this is how the search engine
    keeps reporting the raw (pre-symmetry) space size now that the
    direct canonical enumerator never materialises duplicates.
    """
    states: Dict[Tuple[int, int], int] = {(0, 0): 1}
    for group in chassis.slot_groups:
        gpu_cap = group.capacity_for(GPU)
        ssd_ok = SSD in group.allowed
        new: Dict[Tuple[int, int], int] = {}
        for (ng_used, ns_used), ways in states.items():
            for ng in range(min(gpu_cap, num_gpus - ng_used) + 1):
                free_units = group.units - ng * SLOT_UNITS[GPU]
                ssd_cap = free_units if ssd_ok else 0
                for ns in range(min(ssd_cap, num_ssds - ns_used) + 1):
                    key = (ng_used + ng, ns_used + ns)
                    new[key] = new.get(key, 0) + ways
        states = new
    return states.get((num_gpus, num_ssds), 0)
