"""Symmetry pruning of the placement search space (paper Section 3.2).

The paper removes "symmetrical-, rotation-invariant, or physically
equivalent structures" before scoring placements with max flow.  Two
mechanisms:

* **switch symmetry** — slots on the same switch are interchangeable.
  This is structural in our model: a :class:`~repro.core.placement.Placement`
  stores only per-group *counts*, so intra-group permutations never
  appear.
* **topological symmetry** — whole subtrees of the chassis can be
  swapped (e.g. the two mirrored sides of Machine A).  We compute the
  automorphism group of the chassis skeleton from scratch —
  Weisfeiler–Lehman colour refinement for an initial partition, then
  backtracking over colour classes — and keep one canonical placement
  per orbit.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.placement import (
    GPU,
    SLOT_UNITS,
    SSD,
    Chassis,
    Placement,
    _compositions,
    iter_placements,
)


# ----------------------------------------------------------------------
# Chassis skeleton as a coloured graph
# ----------------------------------------------------------------------
def _skeleton(chassis: Chassis):
    """Return (names, colours, adjacency) for the chassis skeleton.

    Nodes are interconnects, memory banks, and slot groups.  Colours
    encode everything a swap must preserve: node role, slot units,
    per-slot bandwidth, allowed device kinds, memory size/bandwidth.
    Adjacency is a dict ``node -> {neighbor: edge_colour}`` where edge
    colour encodes link capacity and kind.
    """
    names: List[str] = []
    colours: Dict[str, Tuple] = {}
    adj: Dict[str, Dict[str, Tuple]] = {}

    def add(name: str, colour: Tuple) -> None:
        names.append(name)
        colours[name] = colour
        adj[name] = {}

    for iname, ikind in chassis.interconnects.items():
        add(iname, ("interconnect", ikind.value))
    for mem in chassis.memories:
        add(mem.name, ("memory", round(mem.capacity_bytes), round(mem.bandwidth)))
    for g in chassis.slot_groups:
        add(
            g.name,
            (
                "slots",
                g.units,
                round(g.link_bw),
                tuple(sorted(g.allowed)),
                # electrical-identity tag: groups hosting different
                # device parts (mixed GPU generations) must never be
                # treated as swappable even when units/bw/kinds match
                g.tag,
            ),
        )

    def connect(a: str, b: str, colour: Tuple) -> None:
        adj[a][b] = colour
        adj[b][a] = colour

    for t in chassis.trunks:
        connect(t.a, t.b, ("trunk", round(t.capacity), t.kind.value))
    for mem in chassis.memories:
        connect(mem.name, mem.attach, ("membus",))
    for g in chassis.slot_groups:
        connect(g.name, g.attach, ("slotbus",))
    return names, colours, adj


def _wl_refine(
    names: Sequence[str],
    colours: Dict[str, Tuple],
    adj: Dict[str, Dict[str, Tuple]],
    rounds: int = None,
) -> Dict[str, int]:
    """Weisfeiler–Lehman colour refinement to a stable partition."""
    # Intern initial colours as integers.
    palette: Dict[Tuple, int] = {}
    colour_of: Dict[str, int] = {}
    for n in names:
        colour_of[n] = palette.setdefault(colours[n], len(palette))
    rounds = rounds if rounds is not None else len(names)
    for _ in range(rounds):
        sigs = {}
        for n in names:
            neigh = tuple(
                sorted((edge_colour, colour_of[m]) for m, edge_colour in adj[n].items())
            )
            sigs[n] = (colour_of[n], neigh)
        palette2: Dict[Tuple, int] = {}
        new = {n: palette2.setdefault(sigs[n], len(palette2)) for n in names}
        if len(set(new.values())) == len(set(colour_of.values())):
            colour_of = new
            break
        colour_of = new
    return colour_of


def chassis_automorphisms(chassis: Chassis) -> List[Dict[str, str]]:
    """All automorphisms of the chassis skeleton, as node-name maps.

    Exhaustive backtracking restricted to WL colour classes; chassis
    graphs have at most a dozen nodes so this is instant.  The identity
    is always included.
    """
    names, colours, adj = _skeleton(chassis)
    wl = _wl_refine(names, colours, adj)

    # Group nodes by WL colour; permutations may only map within classes.
    classes: Dict[int, List[str]] = {}
    for n in names:
        classes.setdefault(wl[n], []).append(n)

    order = sorted(names, key=lambda n: (wl[n], n))
    autos: List[Dict[str, str]] = []

    def consistent(mapping: Dict[str, str], a: str, b: str) -> bool:
        # edge structure (with colours) must be preserved among mapped nodes
        for u, eu in adj[a].items():
            if u in mapping:
                v = mapping[u]
                if adj[b].get(v) != eu:
                    return False
        # also reverse: neighbors of b already used as images
        inv = {v: u for u, v in mapping.items()}
        for v, ev in adj[b].items():
            if v in inv:
                u = inv[v]
                if adj[a].get(u) != ev:
                    return False
        return True

    def backtrack(i: int, mapping: Dict[str, str], used: set) -> None:
        if i == len(order):
            autos.append(dict(mapping))
            return
        a = order[i]
        for b in classes[wl[a]]:
            if b in used or not consistent(mapping, a, b):
                continue
            mapping[a] = b
            used.add(b)
            backtrack(i + 1, mapping, used)
            used.discard(b)
            del mapping[a]

    backtrack(0, {}, set())
    return autos


def slot_group_symmetries(chassis: Chassis) -> List[Dict[str, str]]:
    """Automorphisms restricted to slot-group names (deduplicated)."""
    group_names = set(chassis.group_names)
    seen = set()
    out: List[Dict[str, str]] = []
    for auto in chassis_automorphisms(chassis):
        restricted = {g: auto[g] for g in group_names}
        key = tuple(sorted(restricted.items()))
        if key not in seen:
            seen.add(key)
            out.append(restricted)
    return out


# ----------------------------------------------------------------------
# Canonicalisation of placements
# ----------------------------------------------------------------------
def canonical_key(
    placement: Placement, symmetries: Sequence[Dict[str, str]]
) -> Tuple:
    """Orbit-canonical key: the lexicographically smallest count tuple
    over all chassis symmetries."""
    order = placement.chassis.group_names
    best = None
    for sym in symmetries:
        permuted = tuple(
            (
                placement.count(_preimage(sym, g), "gpu"),
                placement.count(_preimage(sym, g), "ssd"),
            )
            for g in order
        )
        if best is None or permuted < best:
            best = permuted
    return best


def _preimage(sym: Dict[str, str], target: str) -> str:
    for src, dst in sym.items():
        if dst == target:
            return src
    raise KeyError(target)


class CanonicalFilter:
    """Incremental symmetry dedupe: admit one placement per orbit.

    Computes the chassis automorphisms once, then filters a *stream* of
    placements — :meth:`admit` returns the orbit-canonical key the first
    time an orbit is seen and ``None`` for every later member, so the
    search engine can prune candidates as they are produced instead of
    materialising the full enumeration first.
    """

    def __init__(self, chassis: Chassis) -> None:
        self.chassis = chassis
        self.symmetries = slot_group_symmetries(chassis)
        self._seen: set = set()

    @property
    def num_admitted(self) -> int:
        """Distinct orbits admitted so far."""
        return len(self._seen)

    def key(self, placement: Placement) -> Tuple:
        """Orbit-canonical key of ``placement`` (no admission)."""
        return canonical_key(placement, self.symmetries)

    def admit(self, placement: Placement) -> "Tuple | None":
        """The canonical key if this orbit is new, else ``None``."""
        key = self.key(placement)
        if key in self._seen:
            return None
        self._seen.add(key)
        return key


def iter_canonical_placements(
    chassis: Chassis,
    num_gpus: int,
    num_ssds: int,
    symmetries: Optional[Sequence[Dict[str, str]]] = None,
) -> Iterator[Placement]:
    """Yield only canonical placements, without generating duplicates.

    Produces exactly the placements (in exactly the order) that
    streaming :func:`~repro.core.placement.iter_placements` through
    :class:`CanonicalFilter` admits, but never constructs the rejected
    orbit members: the enumeration ascends lexicographically on the
    concatenated ``(gpu counts, ssd counts)`` vector, so the first-seen
    orbit member is the orbit's concat-order minimum — a placement is
    canonical iff its concat vector is ``<=`` every symmetric
    relabeling of itself.  That test is run vectorized over the whole
    count matrix with NumPy (one column permutation + lexicographic
    compare per non-trivial symmetry).

    Note the concat order differs from :func:`canonical_key`'s
    *interleaved* order — an orbit's interleaved-lex minimum can be a
    different member than its concat-lex minimum — so the admission
    test deliberately uses concat order to reproduce the filter's
    representatives bit-for-bit.
    """
    if symmetries is None:
        symmetries = slot_group_symmetries(chassis)
    nontrivial = [s for s in symmetries if any(k != v for k, v in s.items())]
    if not nontrivial:
        yield from iter_placements(chassis, num_gpus, num_ssds)
        return

    groups = chassis.slot_groups
    n_groups = len(groups)
    index = {g.name: i for i, g in enumerate(groups)}
    # column map per symmetry: relabeled[:, j] = rows[:, pre[j]] where
    # pre[j] indexes the preimage group; GPU and SSD halves permute
    # identically
    col_maps = []
    for sym in nontrivial:
        pre = [index[_preimage(sym, g.name)] for g in groups]
        col_maps.append(pre + [n_groups + p for p in pre])

    rows: List[Tuple[int, ...]] = []
    gpu_caps = [g.capacity_for(GPU) for g in groups]
    for gpu_counts in _compositions(num_gpus, gpu_caps):
        ssd_caps = []
        for g, ng in zip(groups, gpu_counts):
            free_units = g.units - ng * SLOT_UNITS[GPU]
            ssd_caps.append(free_units if SSD in g.allowed else 0)
        for ssd_counts in _compositions(num_ssds, ssd_caps):
            rows.append(gpu_counts + ssd_counts)
    if not rows:
        return
    mat = np.asarray(rows, dtype=np.int64)
    keep = np.ones(len(rows), dtype=bool)
    arange = np.arange(len(rows))
    for cols in col_maps:
        diff = mat[:, cols] - mat
        nz = diff != 0
        any_nz = nz.any(axis=1)
        first_val = diff[arange, np.argmax(nz, axis=1)]
        # row <= relabeled row  ⇔  equal, or first differing entry grows
        keep &= ~any_nz | (first_val > 0)
    group_names = [g.name for g in groups]
    for row in mat[keep]:
        counts = {
            name: {GPU: int(row[i]), SSD: int(row[n_groups + i])}
            for i, name in enumerate(group_names)
        }
        yield Placement(chassis, counts)


def dedupe_placements(
    placements: Sequence[Placement],
    chassis: Chassis = None,
) -> List[Placement]:
    """Keep one representative per symmetry orbit, preserving input order.

    This is the paper's "isomorphic graph reduction" step; on Machine A
    it roughly halves the candidate count (the two sides are mirrors).
    """
    if not placements:
        return []
    chassis = chassis or placements[0].chassis
    filt = CanonicalFilter(chassis)
    return [p for p in placements if filt.admit(p) is not None]
