"""Symmetry pruning of the placement search space (paper Section 3.2).

The paper removes "symmetrical-, rotation-invariant, or physically
equivalent structures" before scoring placements with max flow.  Two
mechanisms:

* **switch symmetry** — slots on the same switch are interchangeable.
  This is structural in our model: a :class:`~repro.core.placement.Placement`
  stores only per-group *counts*, so intra-group permutations never
  appear.
* **topological symmetry** — whole subtrees of the chassis can be
  swapped (e.g. the two mirrored sides of Machine A).  We compute the
  automorphism group of the chassis skeleton from scratch —
  Weisfeiler–Lehman colour refinement for an initial partition, then
  backtracking over colour classes — and keep one canonical placement
  per orbit.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, List, Sequence, Tuple

from repro.core.placement import Chassis, Placement


# ----------------------------------------------------------------------
# Chassis skeleton as a coloured graph
# ----------------------------------------------------------------------
def _skeleton(chassis: Chassis):
    """Return (names, colours, adjacency) for the chassis skeleton.

    Nodes are interconnects, memory banks, and slot groups.  Colours
    encode everything a swap must preserve: node role, slot units,
    per-slot bandwidth, allowed device kinds, memory size/bandwidth.
    Adjacency is a dict ``node -> {neighbor: edge_colour}`` where edge
    colour encodes link capacity and kind.
    """
    names: List[str] = []
    colours: Dict[str, Tuple] = {}
    adj: Dict[str, Dict[str, Tuple]] = {}

    def add(name: str, colour: Tuple) -> None:
        names.append(name)
        colours[name] = colour
        adj[name] = {}

    for iname, ikind in chassis.interconnects.items():
        add(iname, ("interconnect", ikind.value))
    for mem in chassis.memories:
        add(mem.name, ("memory", round(mem.capacity_bytes), round(mem.bandwidth)))
    for g in chassis.slot_groups:
        add(
            g.name,
            (
                "slots",
                g.units,
                round(g.link_bw),
                tuple(sorted(g.allowed)),
                # electrical-identity tag: groups hosting different
                # device parts (mixed GPU generations) must never be
                # treated as swappable even when units/bw/kinds match
                g.tag,
            ),
        )

    def connect(a: str, b: str, colour: Tuple) -> None:
        adj[a][b] = colour
        adj[b][a] = colour

    for t in chassis.trunks:
        connect(t.a, t.b, ("trunk", round(t.capacity), t.kind.value))
    for mem in chassis.memories:
        connect(mem.name, mem.attach, ("membus",))
    for g in chassis.slot_groups:
        connect(g.name, g.attach, ("slotbus",))
    return names, colours, adj


def _wl_refine(
    names: Sequence[str],
    colours: Dict[str, Tuple],
    adj: Dict[str, Dict[str, Tuple]],
    rounds: int = None,
) -> Dict[str, int]:
    """Weisfeiler–Lehman colour refinement to a stable partition."""
    # Intern initial colours as integers.
    palette: Dict[Tuple, int] = {}
    colour_of: Dict[str, int] = {}
    for n in names:
        colour_of[n] = palette.setdefault(colours[n], len(palette))
    rounds = rounds if rounds is not None else len(names)
    for _ in range(rounds):
        sigs = {}
        for n in names:
            neigh = tuple(
                sorted((edge_colour, colour_of[m]) for m, edge_colour in adj[n].items())
            )
            sigs[n] = (colour_of[n], neigh)
        palette2: Dict[Tuple, int] = {}
        new = {n: palette2.setdefault(sigs[n], len(palette2)) for n in names}
        if len(set(new.values())) == len(set(colour_of.values())):
            colour_of = new
            break
        colour_of = new
    return colour_of


def chassis_automorphisms(chassis: Chassis) -> List[Dict[str, str]]:
    """All automorphisms of the chassis skeleton, as node-name maps.

    Exhaustive backtracking restricted to WL colour classes; chassis
    graphs have at most a dozen nodes so this is instant.  The identity
    is always included.
    """
    names, colours, adj = _skeleton(chassis)
    wl = _wl_refine(names, colours, adj)

    # Group nodes by WL colour; permutations may only map within classes.
    classes: Dict[int, List[str]] = {}
    for n in names:
        classes.setdefault(wl[n], []).append(n)

    order = sorted(names, key=lambda n: (wl[n], n))
    autos: List[Dict[str, str]] = []

    def consistent(mapping: Dict[str, str], a: str, b: str) -> bool:
        # edge structure (with colours) must be preserved among mapped nodes
        for u, eu in adj[a].items():
            if u in mapping:
                v = mapping[u]
                if adj[b].get(v) != eu:
                    return False
        # also reverse: neighbors of b already used as images
        inv = {v: u for u, v in mapping.items()}
        for v, ev in adj[b].items():
            if v in inv:
                u = inv[v]
                if adj[a].get(u) != ev:
                    return False
        return True

    def backtrack(i: int, mapping: Dict[str, str], used: set) -> None:
        if i == len(order):
            autos.append(dict(mapping))
            return
        a = order[i]
        for b in classes[wl[a]]:
            if b in used or not consistent(mapping, a, b):
                continue
            mapping[a] = b
            used.add(b)
            backtrack(i + 1, mapping, used)
            used.discard(b)
            del mapping[a]

    backtrack(0, {}, set())
    return autos


def slot_group_symmetries(chassis: Chassis) -> List[Dict[str, str]]:
    """Automorphisms restricted to slot-group names (deduplicated)."""
    group_names = set(chassis.group_names)
    seen = set()
    out: List[Dict[str, str]] = []
    for auto in chassis_automorphisms(chassis):
        restricted = {g: auto[g] for g in group_names}
        key = tuple(sorted(restricted.items()))
        if key not in seen:
            seen.add(key)
            out.append(restricted)
    return out


# ----------------------------------------------------------------------
# Canonicalisation of placements
# ----------------------------------------------------------------------
def canonical_key(
    placement: Placement, symmetries: Sequence[Dict[str, str]]
) -> Tuple:
    """Orbit-canonical key: the lexicographically smallest count tuple
    over all chassis symmetries."""
    order = placement.chassis.group_names
    best = None
    for sym in symmetries:
        permuted = tuple(
            (
                placement.count(_preimage(sym, g), "gpu"),
                placement.count(_preimage(sym, g), "ssd"),
            )
            for g in order
        )
        if best is None or permuted < best:
            best = permuted
    return best


def _preimage(sym: Dict[str, str], target: str) -> str:
    for src, dst in sym.items():
        if dst == target:
            return src
    raise KeyError(target)


class CanonicalFilter:
    """Incremental symmetry dedupe: admit one placement per orbit.

    Computes the chassis automorphisms once, then filters a *stream* of
    placements — :meth:`admit` returns the orbit-canonical key the first
    time an orbit is seen and ``None`` for every later member, so the
    search engine can prune candidates as they are produced instead of
    materialising the full enumeration first.
    """

    def __init__(self, chassis: Chassis) -> None:
        self.chassis = chassis
        self.symmetries = slot_group_symmetries(chassis)
        self._seen: set = set()

    @property
    def num_admitted(self) -> int:
        """Distinct orbits admitted so far."""
        return len(self._seen)

    def key(self, placement: Placement) -> Tuple:
        """Orbit-canonical key of ``placement`` (no admission)."""
        return canonical_key(placement, self.symmetries)

    def admit(self, placement: Placement) -> "Tuple | None":
        """The canonical key if this orbit is new, else ``None``."""
        key = self.key(placement)
        if key in self._seen:
            return None
        self._seen.add(key)
        return key


def dedupe_placements(
    placements: Sequence[Placement],
    chassis: Chassis = None,
) -> List[Placement]:
    """Keep one representative per symmetry orbit, preserving input order.

    This is the paper's "isomorphic graph reduction" step; on Machine A
    it roughly halves the candidate count (the two sides are mirrors).
    """
    if not placements:
        return []
    chassis = chassis or placements[0].chassis
    filt = CanonicalFilter(chassis)
    return [p for p in placements if filt.admit(p) is not None]
