"""Moment's automatic module (paper Figure 8, Sections 3.1–3.3).

Pipeline, run once per (machine, device pool, dataset):

1. **Hotness** — pre-sample the training workload (or accept a vector);
2. **Tier fractions** — greedy hottest-first fill of GPU/CPU/SSD
   capacity gives the fraction of feature traffic each tier serves;
3. **Enumerate** — all slot-feasible hardware placements, pruned by
   chassis-symmetry canonicalisation;
4. **Score** — each candidate topology gets the time-bisection max-flow
   treatment on a demand built from the tier fractions (per-GPU demand
   is even: data-parallel training); highest predicted throughput wins;
5. **DDAK** — the winner's per-storage-node optimal flows become the
   ``Bin_traffic`` targets for the data-distribution-aware knapsack.

The result is a :class:`MomentPlan`: hardware placement + topology +
data placement + prediction, ready for the epoch simulator or reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.ddak import DataPlacement, ddak_place, make_bins
from repro.core.flowmodel import FlowPrediction
from repro.core.mcmf import McfPrediction
from repro.core.placement import Placement
from repro.core.search import (
    ScoredPlacement,
    SearchRequest,
    SearchResult,
    concrete_demand,
    run_search,
    scoring_demand,
)
from repro.core.topology import Topology
from repro.graphs.datasets import ScaledDataset
from repro.hardware.machines import MachineSpec
from repro.sampling.hotness import presample_hotness
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_fraction

__all__ = [
    "CapacityPlan",
    "MomentOptimizer",
    "MomentPlan",
    "OptimizerConfig",
    "ScoredPlacement",
    "capacity_plan",
    "concrete_demand",
    "scoring_demand",
    "tier_fractions",
]


@dataclass(frozen=True)
class CapacityPlan:
    """Per-device embedding-cache budgets at the dataset's scale."""

    gpu_cache_bytes: float
    cpu_cache_bytes: float
    ssd_capacity_bytes: float


def capacity_plan(
    machine: MachineSpec,
    dataset: ScaledDataset,
    gpu_cache_fraction: float = 0.6,
    cpu_cache_vertex_fraction: float = 0.01,
) -> CapacityPlan:
    """Budget each tier's embedding cache.

    GPUs reserve HBM for model/activations/I-O buffers and give
    ``gpu_cache_fraction`` to embeddings.  The CPU cache follows the
    paper's experimental setting — "leveraging CPU memory as a cache for
    1% of the vertices from each dataset" (Section 4.1) — capped by
    what fits after each bank's half of the graph topology (Moment
    keeps adjacency in DRAM).  All budgets are divided by the dataset
    scale (DESIGN.md §6).
    """
    check_fraction("gpu_cache_fraction", gpu_cache_fraction)
    check_fraction("cpu_cache_vertex_fraction", cpu_cache_vertex_fraction)
    spec = dataset.spec
    num_banks = max(1, len(machine.chassis.memories))
    gpu_cache = machine.gpu.hbm_bytes * gpu_cache_fraction
    per_bank_free = max(0.0, machine.cpu.mem_bytes - spec.topology_bytes / num_banks)
    cpu_cache_target = (
        cpu_cache_vertex_fraction * spec.num_vertices * spec.feature_bytes
    ) / num_banks
    cpu_cache = min(per_bank_free, cpu_cache_target)
    return CapacityPlan(
        gpu_cache_bytes=dataset.scaled_capacity(gpu_cache),
        cpu_cache_bytes=dataset.scaled_capacity(cpu_cache),
        ssd_capacity_bytes=dataset.scaled_capacity(machine.ssd.capacity_bytes),
    )


def tier_fractions(
    hotness: np.ndarray,
    feature_bytes: int,
    plan: CapacityPlan,
    num_gpus: int,
    num_banks: int = 2,
    gpu_cache_policy: str = "replicated",
) -> Tuple[float, float, float]:
    """Fractions of feature traffic served by (GPU, CPU, SSD) tiers.

    Assumes caches hold the hottest vertices (what both DDAK and the
    hash baseline's hot caches do) and every access is equally likely
    to originate at any GPU.  Under the default *replicated* GPU-cache
    policy every GPU holds the same hot set, so the distinct GPU-cached
    slots are one GPU's worth; the *partitioned* ablation multiplies by
    the GPU count (distinct content, peer reads cross the fabric).
    """
    if feature_bytes <= 0:
        raise ValueError(
            f"tier_fractions: feature_bytes must be positive, got "
            f"{feature_bytes!r} — cannot size cache slots"
        )
    hotness = np.asarray(hotness, dtype=np.float64)
    if hotness.size == 0:
        raise ValueError(
            "tier_fractions: hotness vector is empty — the dataset has no "
            "vertices to place"
        )
    h = np.sort(hotness)[::-1]
    total = h.sum()
    if total <= 0:
        return (0.0, 0.0, 1.0)
    copies = 1 if gpu_cache_policy == "replicated" else num_gpus
    gpu_slots = int(plan.gpu_cache_bytes // feature_bytes) * copies
    cpu_slots = int(plan.cpu_cache_bytes // feature_bytes) * num_banks
    gpu_slots = min(gpu_slots, h.size)
    cpu_slots = min(cpu_slots, h.size - gpu_slots)
    f_gpu = float(h[:gpu_slots].sum() / total)
    f_cpu = float(h[gpu_slots : gpu_slots + cpu_slots].sum() / total)
    return (f_gpu, f_cpu, 1.0 - f_gpu - f_cpu)


# ``scoring_demand``, ``concrete_demand`` and ``ScoredPlacement`` moved
# to :mod:`repro.core.search` (re-exported above for compatibility).


@dataclass
class MomentPlan:
    """Everything the automatic module decides."""

    placement: Placement
    topology: Topology
    data_placement: DataPlacement
    prediction: FlowPrediction
    fractions: Tuple[float, float, float]
    hotness: np.ndarray
    #: All candidates scored, best first.
    scored: List[ScoredPlacement] = field(default_factory=list)
    #: Search-space statistics (before/after symmetry pruning).
    num_candidates: int = 0
    num_unique: int = 0
    optimize_seconds: float = 0.0

    #: Pass-2 multicommodity prediction for the winner.
    mcf: Optional["McfPrediction"] = None

    #: Full engine result (stage counts, pruning/cache statistics).
    search: Optional[SearchResult] = None

    @property
    def predicted_throughput(self) -> float:
        """The ranking (pass-2 multicommodity) throughput of the winner."""
        if self.mcf is not None:
            return self.mcf.throughput
        return self.prediction.throughput

    def summary(self) -> str:
        """Multi-line human-readable plan description."""
        from repro.utils.units import fmt_rate

        pass_label = (
            "pass-2 multicommodity LP"
            if self.mcf is not None
            else "pass-1 max-flow"
        )
        lines = [
            f"MomentPlan on {self.topology.name}",
            f"  placement: {self.placement!r}",
            f"  predicted throughput: "
            f"{fmt_rate(self.predicted_throughput)} ({pass_label})",
            f"  tier fractions (gpu/cpu/ssd): "
            f"{self.fractions[0]:.2f}/{self.fractions[1]:.2f}/{self.fractions[2]:.2f}",
            f"  search space: {self.num_candidates} candidates, "
            f"{self.num_unique} after symmetry pruning",
            f"  bottlenecks: {', '.join(self.prediction.bottlenecks) or 'none'}",
        ]
        if self.search is not None:
            lines.append(
                f"  search engine: workers={self.search.workers}, "
                f"{self.search.num_lp_scored} LP-scored, "
                f"{self.search.pruned_by_bound} pruned by bound, "
                f"topology cache {self.search.cache_hits} hits"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class OptimizerConfig:
    """Knobs of the automatic module."""

    gpu_cache_fraction: float = 0.6
    cpu_cache_vertex_fraction: float = 0.01
    ddak_pool_size: int = 100
    #: Batches of pre-sampling; None = one full epoch (most faithful).
    presample_batches: Optional[int] = None
    #: GPU embedding-cache policy: "replicated" (default) or
    #: "partitioned" (per-GPU content, peer reads over the fabric).
    gpu_cache_policy: str = "replicated"
    fanouts: Tuple[int, ...] = (25, 10)
    score_rel_tol: float = 1e-3
    #: Keep at most this many top candidates in the report.
    report_top_k: int = 10
    #: Run the exact multicommodity LP only on this many of the best
    #: pass-1 candidates (pass 1 is optimistic, so a generous margin).
    lp_top_k: int = 48
    nvlink_pairs: Optional[Tuple[Tuple[int, int], ...]] = None
    seed: SeedLike = 0
    #: Placement-scoring processes; None = the engine default
    #: (``REPRO_SEARCH_WORKERS`` env / ``--search-workers`` CLI, else 1).
    search_workers: Optional[int] = None
    #: Skip LPs that provably cannot beat the current top-k floor;
    #: None = the engine default (``REPRO_SEARCH_PRUNE`` env, else on).
    prune_bounds: Optional[bool] = None


class MomentOptimizer:
    """The automatic hardware + data placement co-optimizer."""

    def __init__(
        self,
        machine: MachineSpec,
        num_gpus: int = 4,
        num_ssds: int = 8,
        config: Optional[OptimizerConfig] = None,
    ) -> None:
        if num_gpus < 1 or num_ssds < 1:
            raise ValueError("need at least one GPU and one SSD")
        self.machine = machine
        self.num_gpus = num_gpus
        self.num_ssds = num_ssds
        self.config = config or OptimizerConfig()

    # ------------------------------------------------------------------
    def estimate_hotness(self, dataset: ScaledDataset) -> np.ndarray:
        """Pre-sampling hotness pass (paper Section 3.3).

        Counts are smoothed with a small degree-proxy term so vertices
        the pre-sampling epoch happened to miss still rank sensibly
        (hubs before leaves) instead of tying at zero.
        """
        from repro.sampling.hotness import degree_proxy_hotness

        counts = presample_hotness(
            dataset.graph,
            dataset.train_ids,
            dataset.batch_size,
            self.config.fanouts,
            max_batches=self.config.presample_batches,
            seed=ensure_rng(self.config.seed),
        )
        proxy = degree_proxy_hotness(dataset.graph)
        nonzero = counts[counts > 0]
        level = float(nonzero.min()) if nonzero.size else 1.0
        return counts + 0.01 * level * proxy / proxy.mean()

    def score_placement(
        self,
        placement: Placement,
        fractions: Tuple[float, float, float],
    ) -> ScoredPlacement:
        """Two-pass time-bisection max-flow score of one candidate.

        Pass 1 uses flexible class demands: the solver decides how much
        traffic each drive/bank should ideally serve (these weights are
        what DDAK will realise via data placement).  Pass 2 re-scores
        with each bin's share fanned out *evenly across GPUs* — the
        dataset is shared, so every GPU reads from every bin; a
        placement only scores well if that all-to-all pattern fits its
        fabric.  Pass 2's throughput ranks candidates.
        """
        from repro.core.search import FlexibleMaxFlowScorer, MulticommodityScorer

        cfg = self.config
        coarse = FlexibleMaxFlowScorer(
            fractions=fractions,
            gpu_cache_policy=cfg.gpu_cache_policy,
            rel_tol=cfg.score_rel_tol,
        )
        exact = MulticommodityScorer(
            fractions=fractions, gpu_cache_policy=cfg.gpu_cache_policy
        )
        topo = self.machine.build(placement, nvlink_pairs=cfg.nvlink_pairs)
        pass1 = coarse.score(topo, placement)
        pass2 = exact.score(topo, placement, pass1)
        return ScoredPlacement(placement, pass2.throughput, pass1, pass2)

    def plan_fractions(
        self, dataset: ScaledDataset, hotness: np.ndarray
    ) -> Tuple[Tuple[float, float, float], CapacityPlan]:
        """Tier fractions + capacity budgets for one dataset/hotness."""
        cfg = self.config
        plan = capacity_plan(
            self.machine,
            dataset,
            gpu_cache_fraction=cfg.gpu_cache_fraction,
            cpu_cache_vertex_fraction=cfg.cpu_cache_vertex_fraction,
        )
        fractions = tier_fractions(
            hotness,
            dataset.feature_bytes,
            plan,
            self.num_gpus,
            num_banks=len(self.machine.chassis.memories),
            gpu_cache_policy=cfg.gpu_cache_policy,
        )
        return fractions, plan

    def search_request(
        self,
        fractions: Tuple[float, float, float],
        candidates: Optional[Sequence[Placement]] = None,
    ) -> SearchRequest:
        """The :class:`repro.core.search.SearchRequest` this optimizer's
        configuration corresponds to (the engine does the actual work)."""
        cfg = self.config
        return SearchRequest(
            machine=self.machine,
            num_gpus=self.num_gpus,
            num_ssds=self.num_ssds,
            fractions=fractions,
            gpu_cache_policy=cfg.gpu_cache_policy,
            nvlink_pairs=cfg.nvlink_pairs,
            score_rel_tol=cfg.score_rel_tol,
            lp_top_k=max(1, cfg.lp_top_k),
            top_k=max(1, cfg.report_top_k),
            workers=cfg.search_workers,
            prune_bounds=cfg.prune_bounds,
            candidates=tuple(candidates) if candidates is not None else None,
        )

    def search(
        self,
        dataset: ScaledDataset,
        hotness: np.ndarray,
        candidates: Optional[Sequence[Placement]] = None,
    ) -> SearchResult:
        """Run only the hardware-placement search (no DDAK).

        Multi-node and experiment drivers use this when they place data
        globally themselves; :meth:`optimize` builds on the same path.
        """
        fractions, _ = self.plan_fractions(dataset, hotness)
        return run_search(self.search_request(fractions, candidates))

    def optimize(
        self,
        dataset: ScaledDataset,
        hotness: Optional[np.ndarray] = None,
        candidates: Optional[Sequence[Placement]] = None,
    ) -> MomentPlan:
        """Run the full automatic module and return the chosen plan.

        ``candidates`` restricts the hardware search (e.g. to a fixed
        placement, for data-placement-only runs à la Section 4.5).

        The placement search itself is delegated to
        :mod:`repro.core.search` — this method only prepares the request
        (hotness, capacities, tier fractions) and post-processes the
        winner (DDAK data placement).

        Search time comes from the ``optimizer.optimize`` obs span —
        :attr:`MomentPlan.optimize_seconds` is its duration (spans
        measure even with telemetry disabled).
        """
        cfg = self.config
        with obs.span(
            "optimizer.optimize",
            machine=self.machine.name,
            gpus=self.num_gpus,
            ssds=self.num_ssds,
            dataset=dataset.spec.key,
        ) as root:
            if hotness is None:
                with obs.span("optimizer.hotness"):
                    hotness = self.estimate_hotness(dataset)
            fractions, plan = self.plan_fractions(dataset, hotness)
            result = run_search(self.search_request(fractions, candidates))
            obs.add("optimizer.candidates", result.num_candidates)
            obs.add("optimizer.unique", result.num_unique)
            best = result.best

            topo = self.machine.build(
                best.placement, nvlink_pairs=cfg.nvlink_pairs
            )
            with obs.span("optimizer.ddak", pool_size=cfg.ddak_pool_size):
                bins = make_bins(
                    topo,
                    gpu_cache_bytes=plan.gpu_cache_bytes,
                    cpu_cache_bytes=plan.cpu_cache_bytes,
                    ssd_capacity_bytes=plan.ssd_capacity_bytes,
                    traffic=best.prediction.storage_rate,
                    gpu_cache_policy=cfg.gpu_cache_policy,
                )
                data_placement = ddak_place(
                    bins,
                    hotness,
                    dataset.feature_bytes,
                    pool_size=cfg.ddak_pool_size,
                )
            root.set(throughput=best.throughput)
        obs.observe("optimizer.optimize_seconds", root.duration)
        return MomentPlan(
            placement=best.placement,
            topology=topo,
            data_placement=data_placement,
            prediction=best.prediction,
            fractions=fractions,
            hotness=hotness,
            scored=result.scored,
            num_candidates=result.num_candidates,
            num_unique=result.num_unique,
            optimize_seconds=root.duration,
            mcf=best.mcf,
            search=result,
        )
