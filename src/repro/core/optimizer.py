"""Moment's automatic module (paper Figure 8, Sections 3.1–3.3).

Pipeline, run once per (machine, device pool, dataset):

1. **Hotness** — pre-sample the training workload (or accept a vector);
2. **Tier fractions** — greedy hottest-first fill of GPU/CPU/SSD
   capacity gives the fraction of feature traffic each tier serves;
3. **Enumerate** — all slot-feasible hardware placements, pruned by
   chassis-symmetry canonicalisation;
4. **Score** — each candidate topology gets the time-bisection max-flow
   treatment on a demand built from the tier fractions (per-GPU demand
   is even: data-parallel training); highest predicted throughput wins;
5. **DDAK** — the winner's per-storage-node optimal flows become the
   ``Bin_traffic`` targets for the data-distribution-aware knapsack.

The result is a :class:`MomentPlan`: hardware placement + topology +
data placement + prediction, ready for the epoch simulator or reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.ddak import DataPlacement, ddak_place, make_bins
from repro.core.flowmodel import (
    CPU_CLASS,
    SSD_CLASS,
    FlowPrediction,
    TrafficDemand,
    min_completion_time,
)
from repro.core.mcmf import McfPrediction, multicommodity_min_time
from repro.core.placement import Placement, enumerate_placements
from repro.core.symmetry import dedupe_placements
from repro.core.topology import NodeKind, Topology
from repro.graphs.datasets import ScaledDataset
from repro.hardware.machines import MachineSpec
from repro.sampling.hotness import presample_hotness
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_fraction


@dataclass(frozen=True)
class CapacityPlan:
    """Per-device embedding-cache budgets at the dataset's scale."""

    gpu_cache_bytes: float
    cpu_cache_bytes: float
    ssd_capacity_bytes: float


def capacity_plan(
    machine: MachineSpec,
    dataset: ScaledDataset,
    gpu_cache_fraction: float = 0.6,
    cpu_cache_vertex_fraction: float = 0.01,
) -> CapacityPlan:
    """Budget each tier's embedding cache.

    GPUs reserve HBM for model/activations/I-O buffers and give
    ``gpu_cache_fraction`` to embeddings.  The CPU cache follows the
    paper's experimental setting — "leveraging CPU memory as a cache for
    1% of the vertices from each dataset" (Section 4.1) — capped by
    what fits after each bank's half of the graph topology (Moment
    keeps adjacency in DRAM).  All budgets are divided by the dataset
    scale (DESIGN.md §6).
    """
    check_fraction("gpu_cache_fraction", gpu_cache_fraction)
    check_fraction("cpu_cache_vertex_fraction", cpu_cache_vertex_fraction)
    spec = dataset.spec
    num_banks = max(1, len(machine.chassis.memories))
    gpu_cache = machine.gpu.hbm_bytes * gpu_cache_fraction
    per_bank_free = max(0.0, machine.cpu.mem_bytes - spec.topology_bytes / num_banks)
    cpu_cache_target = (
        cpu_cache_vertex_fraction * spec.num_vertices * spec.feature_bytes
    ) / num_banks
    cpu_cache = min(per_bank_free, cpu_cache_target)
    return CapacityPlan(
        gpu_cache_bytes=dataset.scaled_capacity(gpu_cache),
        cpu_cache_bytes=dataset.scaled_capacity(cpu_cache),
        ssd_capacity_bytes=dataset.scaled_capacity(machine.ssd.capacity_bytes),
    )


def tier_fractions(
    hotness: np.ndarray,
    feature_bytes: int,
    plan: CapacityPlan,
    num_gpus: int,
    num_banks: int = 2,
    gpu_cache_policy: str = "replicated",
) -> Tuple[float, float, float]:
    """Fractions of feature traffic served by (GPU, CPU, SSD) tiers.

    Assumes caches hold the hottest vertices (what both DDAK and the
    hash baseline's hot caches do) and every access is equally likely
    to originate at any GPU.  Under the default *replicated* GPU-cache
    policy every GPU holds the same hot set, so the distinct GPU-cached
    slots are one GPU's worth; the *partitioned* ablation multiplies by
    the GPU count (distinct content, peer reads cross the fabric).
    """
    h = np.sort(np.asarray(hotness, dtype=np.float64))[::-1]
    total = h.sum()
    if total <= 0:
        return (0.0, 0.0, 1.0)
    copies = 1 if gpu_cache_policy == "replicated" else num_gpus
    gpu_slots = int(plan.gpu_cache_bytes // feature_bytes) * copies
    cpu_slots = int(plan.cpu_cache_bytes // feature_bytes) * num_banks
    gpu_slots = min(gpu_slots, h.size)
    cpu_slots = min(cpu_slots, h.size - gpu_slots)
    f_gpu = float(h[:gpu_slots].sum() / total)
    f_cpu = float(h[gpu_slots : gpu_slots + cpu_slots].sum() / total)
    return (f_gpu, f_cpu, 1.0 - f_gpu - f_cpu)


def scoring_demand(
    topo: Topology,
    fractions: Tuple[float, float, float],
    bytes_per_gpu: float = 1e9,
    gpu_cache_policy: str = "replicated",
) -> TrafficDemand:
    """Unit traffic demand used to score a candidate topology.

    Every GPU demands ``bytes_per_gpu`` split across tiers per the
    fractions.  Replicated GPU caches serve their share locally (free);
    the partitioned ablation turns the non-own share into peer reads.
    CPU and SSD shares use the flexible class demands so the max-flow
    solver distributes them optimally across banks/drives.
    """
    f_gpu, f_cpu, f_ssd = fractions
    gpus = topo.gpus()
    n = len(gpus)
    demand = TrafficDemand()
    for gpu in gpus:
        if gpu_cache_policy == "partitioned" and f_gpu > 0 and n > 1:
            peers = [g for g in gpus if g != gpu]
            peer_share = bytes_per_gpu * f_gpu * (len(peers) / n) / len(peers)
            for peer in peers:
                demand.add(f"{peer}:mem", gpu, peer_share)
        if f_cpu > 0:
            demand.add(CPU_CLASS, gpu, bytes_per_gpu * f_cpu)
        if f_ssd > 0:
            demand.add(SSD_CLASS, gpu, bytes_per_gpu * f_ssd)
    return demand


def concrete_demand(
    topo: Topology,
    fractions: Tuple[float, float, float],
    storage_rate: Dict[str, float],
    bytes_per_gpu: float = 1e9,
    gpu_cache_policy: str = "replicated",
) -> TrafficDemand:
    """Concretise a scoring demand: each tier's share is split across
    that tier's bins by the pass-1 max-flow weights, and every bin's
    share fans out evenly over all GPUs (shared dataset)."""
    f_gpu, f_cpu, f_ssd = fractions
    gpus = topo.gpus()
    n = len(gpus)
    demand = TrafficDemand()

    def spread(names, tier_fraction):
        if not names or tier_fraction <= 0:
            return
        weights = np.array([max(storage_rate.get(b, 0.0), 0.0) for b in names])
        if weights.sum() <= 0:
            weights = np.ones(len(names))
        weights = weights / weights.sum()
        for name, w in zip(names, weights):
            share = bytes_per_gpu * tier_fraction * w
            for gpu in gpus:
                demand.add(name, gpu, share)

    spread(topo.ssds(), f_ssd)
    spread(
        sorted(m.name for m in topo.nodes_of_kind(NodeKind.CPU_MEM)), f_cpu
    )
    # partitioned-cache ablation: peer reads, even caches, even origins
    if gpu_cache_policy == "partitioned":
        for gpu in gpus:
            peers = [g for g in gpus if g != gpu]
            if peers and f_gpu > 0:
                peer_share = (
                    bytes_per_gpu * f_gpu * (len(peers) / n) / len(peers)
                )
                for peer in peers:
                    demand.add(f"{peer}:mem", gpu, peer_share)
    return demand


@dataclass
class ScoredPlacement:
    """One scored hardware-placement candidate."""

    placement: Placement
    #: Pass-2 multicommodity throughput (bytes/s) — the ranking score.
    throughput: float
    #: Pass-1 flexible max-flow prediction (per-bin traffic targets).
    prediction: FlowPrediction
    #: Pass-2 multicommodity LP prediction (utilisation, bottlenecks).
    mcf: "McfPrediction" = None


@dataclass
class MomentPlan:
    """Everything the automatic module decides."""

    placement: Placement
    topology: Topology
    data_placement: DataPlacement
    prediction: FlowPrediction
    fractions: Tuple[float, float, float]
    hotness: np.ndarray
    #: All candidates scored, best first.
    scored: List[ScoredPlacement] = field(default_factory=list)
    #: Search-space statistics (before/after symmetry pruning).
    num_candidates: int = 0
    num_unique: int = 0
    optimize_seconds: float = 0.0

    #: Pass-2 multicommodity prediction for the winner.
    mcf: Optional["McfPrediction"] = None

    @property
    def predicted_throughput(self) -> float:
        """The ranking (pass-2 multicommodity) throughput of the winner."""
        if self.mcf is not None:
            return self.mcf.throughput
        return self.prediction.throughput

    def summary(self) -> str:
        """Multi-line human-readable plan description."""
        from repro.utils.units import fmt_rate

        lines = [
            f"MomentPlan on {self.topology.name}",
            f"  placement: {self.placement!r}",
            f"  predicted throughput: {fmt_rate(self.prediction.throughput)}",
            f"  tier fractions (gpu/cpu/ssd): "
            f"{self.fractions[0]:.2f}/{self.fractions[1]:.2f}/{self.fractions[2]:.2f}",
            f"  search space: {self.num_candidates} candidates, "
            f"{self.num_unique} after symmetry pruning",
            f"  bottlenecks: {', '.join(self.prediction.bottlenecks) or 'none'}",
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class OptimizerConfig:
    """Knobs of the automatic module."""

    gpu_cache_fraction: float = 0.6
    cpu_cache_vertex_fraction: float = 0.01
    ddak_pool_size: int = 100
    #: Batches of pre-sampling; None = one full epoch (most faithful).
    presample_batches: Optional[int] = None
    #: GPU embedding-cache policy: "replicated" (default) or
    #: "partitioned" (per-GPU content, peer reads over the fabric).
    gpu_cache_policy: str = "replicated"
    fanouts: Tuple[int, ...] = (25, 10)
    score_rel_tol: float = 1e-3
    #: Keep at most this many top candidates in the report.
    report_top_k: int = 10
    #: Run the exact multicommodity LP only on this many of the best
    #: pass-1 candidates (pass 1 is optimistic, so a generous margin).
    lp_top_k: int = 48
    nvlink_pairs: Optional[Tuple[Tuple[int, int], ...]] = None
    seed: SeedLike = 0


class MomentOptimizer:
    """The automatic hardware + data placement co-optimizer."""

    def __init__(
        self,
        machine: MachineSpec,
        num_gpus: int = 4,
        num_ssds: int = 8,
        config: Optional[OptimizerConfig] = None,
    ) -> None:
        if num_gpus < 1 or num_ssds < 1:
            raise ValueError("need at least one GPU and one SSD")
        self.machine = machine
        self.num_gpus = num_gpus
        self.num_ssds = num_ssds
        self.config = config or OptimizerConfig()

    # ------------------------------------------------------------------
    def estimate_hotness(self, dataset: ScaledDataset) -> np.ndarray:
        """Pre-sampling hotness pass (paper Section 3.3).

        Counts are smoothed with a small degree-proxy term so vertices
        the pre-sampling epoch happened to miss still rank sensibly
        (hubs before leaves) instead of tying at zero.
        """
        from repro.sampling.hotness import degree_proxy_hotness

        counts = presample_hotness(
            dataset.graph,
            dataset.train_ids,
            dataset.batch_size,
            self.config.fanouts,
            max_batches=self.config.presample_batches,
            seed=ensure_rng(self.config.seed),
        )
        proxy = degree_proxy_hotness(dataset.graph)
        nonzero = counts[counts > 0]
        level = float(nonzero.min()) if nonzero.size else 1.0
        return counts + 0.01 * level * proxy / proxy.mean()

    def score_placement(
        self,
        placement: Placement,
        fractions: Tuple[float, float, float],
    ) -> ScoredPlacement:
        """Two-pass time-bisection max-flow score of one candidate.

        Pass 1 uses flexible class demands: the solver decides how much
        traffic each drive/bank should ideally serve (these weights are
        what DDAK will realise via data placement).  Pass 2 re-scores
        with each bin's share fanned out *evenly across GPUs* — the
        dataset is shared, so every GPU reads from every bin; a
        placement only scores well if that all-to-all pattern fits its
        fabric.  Pass 2's throughput ranks candidates.
        """
        policy = self.config.gpu_cache_policy
        topo = self.machine.build(
            placement, nvlink_pairs=self.config.nvlink_pairs
        )
        flexible = scoring_demand(topo, fractions, gpu_cache_policy=policy)
        pass1 = min_completion_time(
            topo, flexible, rel_tol=self.config.score_rel_tol
        )
        concrete = concrete_demand(
            topo, fractions, pass1.storage_rate, gpu_cache_policy=policy
        )
        pass2 = multicommodity_min_time(topo, concrete)
        return ScoredPlacement(placement, pass2.throughput, pass1, pass2)

    def optimize(
        self,
        dataset: ScaledDataset,
        hotness: Optional[np.ndarray] = None,
        candidates: Optional[Sequence[Placement]] = None,
    ) -> MomentPlan:
        """Run the full automatic module and return the chosen plan.

        ``candidates`` restricts the hardware search (e.g. to a fixed
        placement, for data-placement-only runs à la Section 4.5).

        Search time comes from the ``optimizer.optimize`` obs span —
        :attr:`MomentPlan.optimize_seconds` is its duration (spans
        measure even with telemetry disabled).
        """
        cfg = self.config
        with obs.span(
            "optimizer.optimize",
            machine=self.machine.name,
            gpus=self.num_gpus,
            ssds=self.num_ssds,
            dataset=dataset.spec.key,
        ) as root:
            if hotness is None:
                with obs.span("optimizer.hotness"):
                    hotness = self.estimate_hotness(dataset)
            plan = capacity_plan(
                self.machine,
                dataset,
                gpu_cache_fraction=cfg.gpu_cache_fraction,
                cpu_cache_vertex_fraction=cfg.cpu_cache_vertex_fraction,
            )
            num_banks = len(self.machine.chassis.memories)
            fractions = tier_fractions(
                hotness,
                dataset.feature_bytes,
                plan,
                self.num_gpus,
                num_banks=num_banks,
                gpu_cache_policy=cfg.gpu_cache_policy,
            )

            if candidates is None:
                with obs.span("optimizer.enumerate") as sp:
                    all_candidates = enumerate_placements(
                        self.machine.chassis, self.num_gpus, self.num_ssds
                    )
                    sp.set(candidates=len(all_candidates))
                with obs.span("optimizer.dedupe") as sp:
                    unique = dedupe_placements(
                        all_candidates, self.machine.chassis
                    )
                    sp.set(unique=len(unique))
            else:
                all_candidates = list(candidates)
                unique = all_candidates
            if not unique:
                raise ValueError(
                    f"no feasible placement of {self.num_gpus} GPUs / "
                    f"{self.num_ssds} SSDs on {self.machine.name}"
                )
            obs.add("optimizer.candidates", len(all_candidates))
            obs.add("optimizer.unique", len(unique))

            # Stage 1: cheap flexible max-flow score for every candidate;
            # Stage 2: exact multicommodity LP on the most promising ones.
            prelim = []
            with obs.span("optimizer.score.pass1", candidates=len(unique)):
                for p in unique:
                    topo_p = self.machine.build(
                        p, nvlink_pairs=cfg.nvlink_pairs
                    )
                    flexible = scoring_demand(
                        topo_p, fractions, gpu_cache_policy=cfg.gpu_cache_policy
                    )
                    pass1 = min_completion_time(
                        topo_p, flexible, rel_tol=cfg.score_rel_tol
                    )
                    prelim.append((pass1.throughput, p, pass1))
            prelim.sort(key=lambda t: -t[0])
            finalists = prelim[: max(1, cfg.lp_top_k)]
            scored = []
            with obs.span("optimizer.score.pass2", finalists=len(finalists)):
                for _, p, pass1 in finalists:
                    topo_p = self.machine.build(
                        p, nvlink_pairs=cfg.nvlink_pairs
                    )
                    concrete = concrete_demand(
                        topo_p,
                        fractions,
                        pass1.storage_rate,
                        gpu_cache_policy=cfg.gpu_cache_policy,
                    )
                    pass2 = multicommodity_min_time(topo_p, concrete)
                    scored.append(
                        ScoredPlacement(p, pass2.throughput, pass1, pass2)
                    )
            scored.sort(key=lambda s: -s.throughput)
            best = scored[0]

            topo = self.machine.build(
                best.placement, nvlink_pairs=cfg.nvlink_pairs
            )
            with obs.span("optimizer.ddak", pool_size=cfg.ddak_pool_size):
                bins = make_bins(
                    topo,
                    gpu_cache_bytes=plan.gpu_cache_bytes,
                    cpu_cache_bytes=plan.cpu_cache_bytes,
                    ssd_capacity_bytes=plan.ssd_capacity_bytes,
                    traffic=best.prediction.storage_rate,
                    gpu_cache_policy=cfg.gpu_cache_policy,
                )
                data_placement = ddak_place(
                    bins,
                    hotness,
                    dataset.feature_bytes,
                    pool_size=cfg.ddak_pool_size,
                )
            root.set(throughput=best.throughput)
        obs.observe("optimizer.optimize_seconds", root.duration)
        return MomentPlan(
            placement=best.placement,
            topology=topo,
            data_placement=data_placement,
            prediction=best.prediction,
            fractions=fractions,
            hotness=hotness,
            scored=scored[: cfg.report_top_k],
            num_candidates=len(all_candidates),
            num_unique=len(unique),
            optimize_seconds=root.duration,
            mcf=best.mcf,
        )
