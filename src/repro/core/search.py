"""repro.core.search — the staged placement-search engine.

Moment's automatic module scores every feasible hardware placement and
keeps the best.  This module extracts that search into a small, stable,
pluggable pipeline so callers (the single-machine optimizer, the
multi-node driver, baselines and experiments) all speak the same
:class:`SearchRequest`/:class:`SearchResult` types:

1. **Direct canonical enumeration** — a :class:`CandidateSource` yields
   ``(placement, canonical_key)`` pairs.  :class:`EnumeratedSource`
   streams :func:`repro.core.symmetry.iter_canonical_placements`, which
   produces exactly one representative per symmetry orbit *directly*
   (no rejected duplicates are ever constructed); the raw pre-dedupe
   candidate count is computed analytically by
   :func:`repro.core.placement.count_placements`.
2. **Coarse scoring (pass 1)** — :class:`FlexibleMaxFlowScorer`, the
   paper's time-search max flow on *flexible* class demands, solved by
   the vectorized cut-parametric kernel (:mod:`repro.core.flowbatch`):
   candidates are scored in batches whose capacity matrices are stacked
   into NumPy arrays, and each batch's first solution warm-starts the
   rest (``search.warm_starts``).  Its throughput is an upper bound on
   the exact score (the class demand is a relaxation of any concrete
   bin split), which makes it both the top-k funnel key and the pruning
   bound.
3. **Exact scoring (pass 2)** — :class:`MulticommodityScorer`, the
   multicommodity concurrent-flow LP on the concretised demand.  Only
   the ``lp_top_k`` best pass-1 candidates reach this stage, and with
   ``prune_bounds`` on, a candidate whose pass-1 upper bound cannot
   beat the current best-``top_k`` floor by more than
   :data:`PRUNE_REL_SLACK` skips the LP — the winner's throughput is
   preserved to within :data:`PRUNE_EQUIV_TOL` (LP-solver noise).

Scoring runs on a :class:`ParallelExecutor`: ``workers=1`` executes
inline (bit-identical to the pre-engine serial code path), ``workers>1``
fans chunks out to a ``concurrent.futures`` process pool.  Results are
reassembled by enumeration index and the final ranking breaks
throughput ties on funnel order (pass-1 score descending, enumeration
index ascending — the pre-engine stable sort), so serial and parallel
runs pick the same winner.

Topology construction is cached per ``Placement.as_tuple()`` (each
candidate's topology is built once and reused across stages).  Every
stage reports through :mod:`repro.obs`: ``search.candidates``,
``search.unique``, ``search.pass1_scored``, ``search.lp_scored``,
``search.pruned_by_bound`` and ``search.topo_cache.{hits,misses}``.
"""

from __future__ import annotations

import heapq
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

import numpy as np

from repro import obs
from repro.core.flowbatch import fast_min_completion_time, fast_score_batch
from repro.core.flowmodel import (
    CPU_CLASS,
    SSD_CLASS,
    FlowPrediction,
    TrafficDemand,
)
from repro.core.mcmf import McfPrediction, multicommodity_min_time
from repro.core.placement import Chassis, Placement, count_placements
from repro.core.symmetry import iter_canonical_placements
from repro.core.topology import NodeKind, Topology, TopologyMask

if TYPE_CHECKING:  # pragma: no cover - type hints only, avoids import cycle
    from repro.hardware.machines import MachineSpec


#: Relative slack for bound pruning.  Pass-1 bisection and the pass-2 LP
#: can land within float/solver noise of each other when both clamp on
#: the same analytic bottleneck (e.g. the SSD aggregate), so an exact
#: ``bound < floor`` test never fires on tied searches.  Pruning instead
#: drops candidates whose bound cannot beat the floor by more than one
#: part in 10⁹, which deliberately includes exact ties.
PRUNE_REL_SLACK = 1e-9

#: How closely bound pruning preserves the unpruned winner's
#: throughput.  The pass-1 max-flow relaxation is an upper bound on the
#: exact multicommodity score only *up to LP-solver tolerance*: a
#: pruned tie's exact score can exceed its bound (violations up to a
#: few parts in 10⁵ observed), so the equivalence contract is solver
#: noise, not float epsilon.
PRUNE_EQUIV_TOL = 1e-3


# ----------------------------------------------------------------------
# Process-wide knob defaults (env-overridable, CLI-settable)
# ----------------------------------------------------------------------
_DEFAULT_WORKERS: Optional[int] = None
_DEFAULT_PRUNE: Optional[bool] = None
_DEFAULT_BATCH: Optional[int] = None
_DEFAULT_WARM: Optional[bool] = None


def default_workers() -> int:
    """Default scoring parallelism: ``REPRO_SEARCH_WORKERS`` or 1."""
    if _DEFAULT_WORKERS is not None:
        return _DEFAULT_WORKERS
    try:
        return max(1, int(os.environ.get("REPRO_SEARCH_WORKERS", "1")))
    except ValueError:
        return 1


def set_default_workers(workers: Optional[int]) -> None:
    """Override the process-wide worker default (None = env/1)."""
    global _DEFAULT_WORKERS
    _DEFAULT_WORKERS = None if workers is None else max(1, int(workers))


def default_prune_bounds() -> bool:
    """Default bound-pruning switch: ``REPRO_SEARCH_PRUNE`` == 1.

    Off by default: pruning preserves the winner's *throughput* to
    within :data:`PRUNE_REL_SLACK` but may pick a different member of a
    solver-noise tie, while the default path must reproduce the serial
    reference bit-for-bit.
    """
    if _DEFAULT_PRUNE is not None:
        return _DEFAULT_PRUNE
    return os.environ.get("REPRO_SEARCH_PRUNE", "0") not in ("0", "")


def set_default_prune_bounds(prune: Optional[bool]) -> None:
    """Override the process-wide pruning default (None = env/off)."""
    global _DEFAULT_PRUNE
    _DEFAULT_PRUNE = None if prune is None else bool(prune)


def default_batch_size() -> int:
    """Default pass-1 scoring batch size: ``REPRO_SEARCH_BATCH`` or 32.

    Serial and parallel runs use the *same* batch size, so warm-start
    chaining (which operates within a batch) partitions the candidate
    stream identically for every worker count — a determinism
    requirement, not just a tuning default.
    """
    if _DEFAULT_BATCH is not None:
        return _DEFAULT_BATCH
    try:
        return max(1, int(os.environ.get("REPRO_SEARCH_BATCH", "32")))
    except ValueError:
        return 32


def set_default_batch_size(batch: Optional[int]) -> None:
    """Override the process-wide batch-size default (None = env/32)."""
    global _DEFAULT_BATCH
    _DEFAULT_BATCH = None if batch is None else max(1, int(batch))


def default_warm_starts() -> bool:
    """Default warm-start switch: ``REPRO_SEARCH_WARM`` != 0 (on).

    On by default: a warm cut only seeds the cut-parametric time search
    with a valid lower bound, so warm and cold solves converge to the
    *same* exact breakpoint — the knob exists for diagnosis (forcing
    every candidate down the cold path), not because results differ.
    """
    if _DEFAULT_WARM is not None:
        return _DEFAULT_WARM
    return os.environ.get("REPRO_SEARCH_WARM", "1") not in ("0", "")


def set_default_warm_starts(warm: Optional[bool]) -> None:
    """Override the process-wide warm-start default (None = env/on)."""
    global _DEFAULT_WARM
    _DEFAULT_WARM = None if warm is None else bool(warm)


# ----------------------------------------------------------------------
# Demand construction (shared by both scoring stages)
# ----------------------------------------------------------------------
def scoring_demand(
    topo: Topology,
    fractions: Tuple[float, float, float],
    bytes_per_gpu: float = 1e9,
    gpu_cache_policy: str = "replicated",
) -> TrafficDemand:
    """Unit traffic demand used to score a candidate topology.

    Every GPU demands ``bytes_per_gpu`` split across tiers per the
    fractions.  Replicated GPU caches serve their share locally (free);
    the partitioned ablation turns the non-own share into peer reads.
    CPU and SSD shares use the flexible class demands so the max-flow
    solver distributes them optimally across banks/drives.
    """
    f_gpu, f_cpu, f_ssd = fractions
    gpus = topo.gpus()
    n = len(gpus)
    demand = TrafficDemand()
    for gpu in gpus:
        if gpu_cache_policy == "partitioned" and f_gpu > 0 and n > 1:
            peers = [g for g in gpus if g != gpu]
            peer_share = bytes_per_gpu * f_gpu * (len(peers) / n) / len(peers)
            for peer in peers:
                demand.add(f"{peer}:mem", gpu, peer_share)
        if f_cpu > 0:
            demand.add(CPU_CLASS, gpu, bytes_per_gpu * f_cpu)
        if f_ssd > 0:
            demand.add(SSD_CLASS, gpu, bytes_per_gpu * f_ssd)
    return demand


def concrete_demand(
    topo: Topology,
    fractions: Tuple[float, float, float],
    storage_rate: Dict[str, float],
    bytes_per_gpu: float = 1e9,
    gpu_cache_policy: str = "replicated",
) -> TrafficDemand:
    """Concretise a scoring demand: each tier's share is split across
    that tier's bins by the pass-1 max-flow weights, and every bin's
    share fans out evenly over all GPUs (shared dataset)."""
    f_gpu, f_cpu, f_ssd = fractions
    gpus = topo.gpus()
    n = len(gpus)
    demand = TrafficDemand()

    def spread(names, tier_fraction):
        if not names or tier_fraction <= 0:
            return
        weights = np.array([max(storage_rate.get(b, 0.0), 0.0) for b in names])
        if weights.sum() <= 0:
            weights = np.ones(len(names))
        weights = weights / weights.sum()
        for name, w in zip(names, weights):
            share = bytes_per_gpu * tier_fraction * w
            for gpu in gpus:
                demand.add(name, gpu, share)

    spread(topo.ssds(), f_ssd)
    spread(
        sorted(m.name for m in topo.nodes_of_kind(NodeKind.CPU_MEM)), f_cpu
    )
    # partitioned-cache ablation: peer reads, even caches, even origins
    if gpu_cache_policy == "partitioned":
        for gpu in gpus:
            peers = [g for g in gpus if g != gpu]
            if peers and f_gpu > 0:
                peer_share = (
                    bytes_per_gpu * f_gpu * (len(peers) / n) / len(peers)
                )
                for peer in peers:
                    demand.add(f"{peer}:mem", gpu, peer_share)
    return demand


# ----------------------------------------------------------------------
# Result rows
# ----------------------------------------------------------------------
@dataclass
class ScoredPlacement:
    """One scored hardware-placement candidate."""

    placement: Placement
    #: Pass-2 multicommodity throughput (bytes/s) — the ranking score.
    throughput: float
    #: Pass-1 flexible max-flow prediction (per-bin traffic targets).
    prediction: FlowPrediction
    #: Pass-2 multicommodity LP prediction (utilisation, bottlenecks).
    mcf: Optional[McfPrediction] = None


# ----------------------------------------------------------------------
# Candidate sources
# ----------------------------------------------------------------------
class CandidateSource(Protocol):
    """Streams ``(placement, canonical_key)`` pairs into the engine.

    ``num_seen`` reports the raw (pre-dedupe) candidate count.  It is
    valid at any time — before, during, or after :meth:`stream` — and
    does not require the stream to run: sources that never construct
    the raw enumeration compute it analytically.
    """

    @property
    def num_seen(self) -> int: ...  # noqa: E704 - protocol stub

    def stream(self) -> Iterator[Tuple[Placement, Tuple]]: ...  # noqa: E704


class EnumeratedSource:
    """Direct canonical enumeration of the slot-feasible space.

    Streams :func:`repro.core.symmetry.iter_canonical_placements`: one
    representative per symmetry orbit, produced directly (the rejected
    orbit members are never constructed, unlike the historical
    enumerate-then-:class:`~repro.core.symmetry.CanonicalFilter`
    pipeline this replaces).  The yielded key is the representative's
    own count tuple — under the direct scheme the representative *is*
    the orbit's enumeration-order minimum, so its tuple is already a
    unique orbit id.

    ``num_seen`` is the raw pre-dedupe count, computed analytically by
    :func:`repro.core.placement.count_placements` (and cached); the
    historical semantics — "0 until the stream is exhausted, then the
    number of raw candidates iterated" — are gone.  ``num_direct``
    counts the canonical placements actually yielded so far.
    """

    def __init__(self, chassis: Chassis, num_gpus: int, num_ssds: int) -> None:
        self.chassis = chassis
        self.num_gpus = num_gpus
        self.num_ssds = num_ssds
        self._raw_count: Optional[int] = None
        self.num_direct = 0

    @property
    def num_seen(self) -> int:
        if self._raw_count is None:
            self._raw_count = count_placements(
                self.chassis, self.num_gpus, self.num_ssds
            )
        return self._raw_count

    def stream(self) -> Iterator[Tuple[Placement, Tuple]]:
        self.num_direct = 0
        for placement in iter_canonical_placements(
            self.chassis, self.num_gpus, self.num_ssds
        ):
            self.num_direct += 1
            yield placement, placement.as_tuple()


class ExplicitSource:
    """A fixed candidate list (e.g. data-placement-only runs, §4.5).

    Matches the historical restricted-search semantics: the list is
    taken as-is, without symmetry dedupe, and keys are the placements'
    own count tuples.
    """

    def __init__(self, placements: Sequence[Placement]) -> None:
        self.placements = list(placements)

    @property
    def num_seen(self) -> int:
        return len(self.placements)

    def stream(self) -> Iterator[Tuple[Placement, Tuple]]:
        for placement in self.placements:
            yield placement, placement.as_tuple()


def sample_placements(
    chassis: Chassis,
    num_gpus: int,
    num_ssds: int,
    cap: int = 16,
) -> List[Placement]:
    """A deterministic, symmetry-deduped sample of the search space.

    Arbitrary compiled fabrics (generated heterogeneous chassis) can
    enumerate thousands of canonical placements; sweeps that only need
    a representative candidate set stride-sample ``cap`` of them so a
    restricted search stays bounded on any fabric.  ``cap <= 0``, or a
    space no larger than ``cap``, returns every canonical placement.
    """
    canon = list(iter_canonical_placements(chassis, num_gpus, num_ssds))
    if cap <= 0 or len(canon) <= cap:
        return canon
    stride = len(canon) / cap
    return [canon[int(i * stride)] for i in range(cap)]


# ----------------------------------------------------------------------
# Scorers (pipeline stages)
# ----------------------------------------------------------------------
class Scorer(Protocol):
    """One scoring stage: topology + placement (+ prior stage result)
    to a prediction object exposing ``.throughput``."""

    name: str

    def score(
        self, topo: Topology, placement: Placement, prior: object = None
    ) -> object: ...  # noqa: E704 - protocol stub


@dataclass(frozen=True)
class FlexibleMaxFlowScorer:
    """Pass 1: time-search max flow on flexible class demands.

    The solver decides how much traffic each drive/bank should ideally
    serve — these weights are what DDAK will realise via data placement,
    and the resulting throughput is an optimistic *upper bound* on the
    exact pass-2 score.

    Solved by the vectorized cut-parametric kernel
    (:mod:`repro.core.flowbatch`), which returns the *exact* breakpoint
    time — no bisection, no tolerance.  ``rel_tol`` is kept for API
    compatibility with the legacy bisection path
    (:func:`repro.core.flowmodel.min_completion_time`, retained as the
    differential-test reference) but is unused here.
    """

    fractions: Tuple[float, float, float]
    gpu_cache_policy: str = "replicated"
    rel_tol: float = 1e-3

    name = "pass1.maxflow"

    def _demand(self, topo: Topology) -> TrafficDemand:
        return scoring_demand(
            topo, self.fractions, gpu_cache_policy=self.gpu_cache_policy
        )

    def score(
        self, topo: Topology, placement: Placement, prior: object = None
    ) -> FlowPrediction:
        """Score one candidate.  ``prior``, when given, is a warm-start
        cut partition (node labels) from a related solve."""
        warm = prior if prior else None
        return fast_min_completion_time(
            topo, self._demand(topo), warm_partition=warm
        )

    def score_batch(
        self,
        topos: Sequence[Topology],
        warm_partition: Optional[Tuple[str, ...]] = None,
        chain: bool = True,
    ) -> Tuple[List[Optional[FlowPrediction]], int]:
        """Score a batch of candidate topologies in NumPy lockstep.

        Returns ``(predictions, warm_starts)``; see
        :func:`repro.core.flowbatch.fast_score_batch`.
        """
        jobs = [(topo, self._demand(topo)) for topo in topos]
        return fast_score_batch(
            jobs, warm_partition=warm_partition, chain=chain
        )


@dataclass(frozen=True)
class MulticommodityScorer:
    """Pass 2: exact multicommodity LP on the concretised demand.

    Each bin's pass-1 share is fanned out *evenly across GPUs* — the
    dataset is shared, so every GPU reads from every bin; a placement
    only scores well if that all-to-all pattern fits its fabric.
    """

    fractions: Tuple[float, float, float]
    gpu_cache_policy: str = "replicated"

    name = "pass2.mcf"

    def score(
        self, topo: Topology, placement: Placement, prior: FlowPrediction = None
    ) -> McfPrediction:
        demand = concrete_demand(
            topo,
            self.fractions,
            prior.storage_rate if prior is not None else {},
            gpu_cache_policy=self.gpu_cache_policy,
        )
        return multicommodity_min_time(topo, demand)


# ----------------------------------------------------------------------
# Scoring runtime: topology cache + stage dispatch (shared by the
# inline path and every pool worker)
# ----------------------------------------------------------------------
class _ScoreRuntime:
    """Builds (and caches) topologies and applies scorers to chunks.

    A chunk handed to a batch-capable scorer (one exposing
    ``score_batch``) is solved as one NumPy-lockstep batch: the chunk's
    first candidate is solved alone (seeded by ``warm_cut`` when warm
    starts are enabled) and its binding cut warm-starts the rest.
    Chaining never crosses a chunk boundary, so identical chunking
    (guaranteed by the shared :func:`default_batch_size`) makes serial
    and parallel runs solve identical batches.
    """

    def __init__(
        self,
        machine: "MachineSpec",
        nvlink_pairs: Optional[Tuple[Tuple[int, int], ...]],
        scorers: Dict[str, Scorer],
        mask: Optional[TopologyMask] = None,
        warm: bool = True,
        warm_cut: Optional[Tuple[str, ...]] = None,
    ) -> None:
        self.machine = machine
        self.nvlink_pairs = nvlink_pairs
        self.scorers = scorers
        self.mask = mask
        self.warm = warm
        self.warm_cut = warm_cut if warm else None
        self._topologies: Dict[Tuple, Topology] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.warm_starts = 0
        self.batch_sizes: List[int] = []

    def topology(self, placement: Placement) -> Topology:
        key = placement.as_tuple()
        topo = self._topologies.get(key)
        if topo is not None:
            self.cache_hits += 1
            return topo
        self.cache_misses += 1
        # candidates come from the validated enumeration, so the chassis
        # and topology invariant sweeps are skipped in the hot path
        topo = self.machine.build(
            placement, nvlink_pairs=self.nvlink_pairs, validate=False
        )
        if self.mask:
            # degraded-fabric search (replanning): every candidate is
            # scored on the surviving topology
            topo = self.mask.apply(topo)
        self._topologies[key] = topo
        return topo

    def run_chunk(
        self, stage: str, items: Sequence[Tuple[int, Placement, object]]
    ) -> List[Tuple[int, object]]:
        scorer = self.scorers[stage]
        batcher = getattr(scorer, "score_batch", None)
        if batcher is not None:
            topos = [self.topology(placement) for _, placement, _ in items]
            predictions, warm_starts = batcher(
                topos, warm_partition=self.warm_cut, chain=self.warm
            )
            self.warm_starts += warm_starts
            self.batch_sizes.append(len(items))
            return [
                (idx, prediction)
                for (idx, _, _), prediction in zip(items, predictions)
            ]
        return [
            (idx, scorer.score(self.topology(placement), placement, prior))
            for idx, placement, prior in items
        ]

    def take_stats(self) -> Tuple[int, int, int, Tuple[int, ...]]:
        """Drain (cache_hits, cache_misses, warm_starts, batch_sizes)."""
        stats = (
            self.cache_hits,
            self.cache_misses,
            self.warm_starts,
            tuple(self.batch_sizes),
        )
        self.cache_hits = self.cache_misses = self.warm_starts = 0
        self.batch_sizes = []
        return stats


_WORKER_RUNTIME: Optional[_ScoreRuntime] = None


def _pool_init(
    machine, nvlink_pairs, scorers, mask=None, warm=True, warm_cut=None
) -> None:
    global _WORKER_RUNTIME
    _WORKER_RUNTIME = _ScoreRuntime(
        machine, nvlink_pairs, scorers, mask, warm=warm, warm_cut=warm_cut
    )


def _pool_chunk(stage, items):
    results = _WORKER_RUNTIME.run_chunk(stage, items)
    return results, _WORKER_RUNTIME.take_stats()


class ParallelExecutor:
    """Chunked stage execution, inline or over a process pool.

    ``workers=1`` runs every chunk in-process through the exact same
    :class:`_ScoreRuntime` code path the pool workers use, so the serial
    engine is bit-identical to the parallel one; results are always
    reassembled in submission (enumeration-index) order.
    """

    def __init__(
        self,
        machine: "MachineSpec",
        nvlink_pairs: Optional[Tuple[Tuple[int, int], ...]],
        scorers: Dict[str, Scorer],
        workers: int = 1,
        mask: Optional[TopologyMask] = None,
        warm: bool = True,
        warm_cut: Optional[Tuple[str, ...]] = None,
    ) -> None:
        self.workers = max(1, int(workers))
        self._init_args = (
            machine, nvlink_pairs, dict(scorers), mask, warm, warm_cut,
        )
        self._local = _ScoreRuntime(
            machine, nvlink_pairs, dict(scorers), mask,
            warm=warm, warm_cut=warm_cut,
        )
        self._pool: Optional[ProcessPoolExecutor] = None
        self.cache_hits = 0
        self.cache_misses = 0
        self.warm_starts = 0
        self.batch_sizes: List[int] = []

    # -- lifecycle -------------------------------------------------------
    def __enter__(self) -> "ParallelExecutor":
        if self.workers > 1:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_pool_init,
                initargs=self._init_args,
            )
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- execution -------------------------------------------------------
    def _absorb(
        self,
        hits: int,
        misses: int,
        warm_starts: int = 0,
        batch_sizes: Tuple[int, ...] = (),
    ) -> None:
        self.cache_hits += hits
        self.cache_misses += misses
        self.warm_starts += warm_starts
        self.batch_sizes.extend(batch_sizes)

    def run_stage(
        self,
        stage: str,
        items: Sequence[Tuple[int, Placement, object]],
        chunk_size: Optional[int] = None,
    ) -> List[Tuple[int, object]]:
        """Score ``items`` with the named stage, in index order."""
        items = list(items)
        if not items:
            return []
        if self._pool is None:
            out = self._local.run_chunk(stage, items)
            self._absorb(*self._local.take_stats())
            return out
        if chunk_size is None:
            chunk_size = max(1, -(-len(items) // (self.workers * 4)))
        chunks = [
            items[i : i + chunk_size]
            for i in range(0, len(items), chunk_size)
        ]
        futures = [
            self._pool.submit(_pool_chunk, stage, chunk) for chunk in chunks
        ]
        results: List[Tuple[int, object]] = []
        for future in futures:
            chunk_results, stats = future.result()
            results.extend(chunk_results)
            self._absorb(*stats)
        results.sort(key=lambda pair: pair[0])
        return results

    def topology(self, placement: Placement) -> Topology:
        """Build (or fetch from the local cache) one topology."""
        topo = self._local.topology(placement)
        self._absorb(*self._local.take_stats())
        return topo


# ----------------------------------------------------------------------
# Request / result types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SearchRequest:
    """One placement-search problem, fully specified."""

    machine: "MachineSpec"
    num_gpus: int
    num_ssds: int
    #: (GPU, CPU, SSD) traffic fractions the demand is built from.
    fractions: Tuple[float, float, float]
    gpu_cache_policy: str = "replicated"
    nvlink_pairs: Optional[Tuple[Tuple[int, int], ...]] = None
    score_rel_tol: float = 1e-3
    #: Pass-1 → pass-2 funnel width (pass 1 is optimistic, so generous).
    lp_top_k: int = 48
    #: Candidates kept in the ranked result (also the pruning floor k).
    top_k: int = 10
    #: Scoring processes; None = :func:`default_workers` (env/CLI).
    workers: Optional[int] = None
    #: Skip the LP for candidates whose pass-1 upper bound cannot beat
    #: the current best-``top_k`` floor; None = :func:`default_prune_bounds`.
    prune_bounds: Optional[bool] = None
    #: Restrict the search to these placements (skips enumeration and
    #: symmetry dedupe, e.g. data-placement-only runs à la §4.5).
    candidates: Optional[Tuple[Placement, ...]] = None
    #: Score every candidate on the degraded (surviving) topology —
    #: used by fault replanning.  ``None`` searches the healthy fabric.
    mask: Optional[TopologyMask] = None
    #: Warm-start hint: the binding-cut node labels
    #: (``FlowPrediction.cut_partition``) of a previous, related solve —
    #: e.g. the healthy-fabric prediction when re-searching under a
    #: ``mask``, or the current placement when scoring a single-slot
    #: swap.  Seeds the first candidate of every pass-1 batch; warm and
    #: cold solves reach the same exact answer.
    warm_cut: Optional[Tuple[str, ...]] = None
    #: Enable warm-started pass-1 scoring (batch chaining + ``warm_cut``
    #: seeding); None = :func:`default_warm_starts` (env/on).
    warm_starts: Optional[bool] = None
    #: Pass-1 scoring batch size; None = :func:`default_batch_size`.
    batch_size: Optional[int] = None

    def resolved_workers(self) -> int:
        """The effective worker count for this request."""
        if self.workers is None:
            return default_workers()
        return max(1, int(self.workers))

    def resolved_prune_bounds(self) -> bool:
        """The effective bound-pruning switch for this request."""
        if self.prune_bounds is None:
            return default_prune_bounds()
        return bool(self.prune_bounds)

    def resolved_warm_starts(self) -> bool:
        """The effective warm-start switch for this request."""
        if self.warm_starts is None:
            return default_warm_starts()
        return bool(self.warm_starts)

    def resolved_batch_size(self) -> int:
        """The effective pass-1 batch size for this request."""
        if self.batch_size is None:
            return default_batch_size()
        return max(1, int(self.batch_size))


@dataclass
class SearchResult:
    """Outcome of one placement search, best candidate first."""

    #: The winner (highest pass-2 throughput).
    best: ScoredPlacement
    #: Top-``top_k`` candidates, ranked by throughput (ties keep funnel
    #: order, matching the pre-engine stable sort).
    scored: List[ScoredPlacement] = field(default_factory=list)
    #: Raw enumeration size (before symmetry pruning).
    num_candidates: int = 0
    #: Candidates scored by pass 1 (after symmetry pruning).
    num_unique: int = 0
    #: Candidates that entered the pass-2 funnel.
    num_finalists: int = 0
    #: Finalists the LP actually evaluated.
    num_lp_scored: int = 0
    #: Finalists skipped because their pass-1 bound could not win.
    pruned_by_bound: int = 0
    #: Topology-build cache hits/misses across all stages and workers.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Effective parallelism the search ran with.
    workers: int = 1
    #: Wall-clock duration of the engine run (``search.run`` span).
    seconds: float = 0.0
    #: Pass-1 solves that started from a warm (non-zero) cut root.
    warm_starts: int = 0
    #: Pass-1 scoring batches dispatched (serial and parallel alike).
    num_batches: int = 0
    #: Canonical placements yielded directly by the source (equals
    #: ``num_unique`` for :class:`EnumeratedSource`; 0 for sources
    #: without direct canonical enumeration).
    canonical_direct: int = 0


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class SearchEngine:
    """Streaming enumeration → incremental pruning → staged scoring.

    Pluggable: any :class:`CandidateSource` and any pair of
    :class:`Scorer` stages (a coarse stage whose value upper-bounds the
    exact stage) compose into the same funnel.  Determinism contract:
    for a fixed source and scorers, the winner and the ranked top-k are
    identical for every ``workers`` count; throughput ties break on
    funnel order (pass-1 score descending, enumeration index ascending),
    matching the pre-engine serial path bit-for-bit.  ``prune_bounds``
    preserves the winner's throughput to within :data:`PRUNE_REL_SLACK`
    relative (identical in practice unless scores tie at solver noise).
    """

    def __init__(
        self,
        source: CandidateSource,
        coarse: Scorer,
        exact: Scorer,
        executor: ParallelExecutor,
        lp_top_k: int = 48,
        top_k: int = 10,
        prune_bounds: bool = False,
        batch_size: Optional[int] = None,
    ) -> None:
        self.source = source
        self.coarse = coarse
        self.exact = exact
        self.executor = executor
        self.lp_top_k = max(1, lp_top_k)
        self.top_k = max(1, top_k)
        self.prune_bounds = prune_bounds
        self.batch_size = max(
            1, batch_size if batch_size is not None else default_batch_size()
        )

    # -- stage 1: stream candidates through the coarse scorer ------------
    def _stream_pass1(self):
        """Enumerate, dedupe and coarse-score, overlapped.

        Admitted candidates are chunked into fixed ``batch_size`` scoring
        batches and dispatched to the executor *while enumeration is
        still running*, so the process pool starts scoring before the
        stream is exhausted.  Serial and parallel runs use the same
        batch size (warm-start chaining operates within a batch, so
        identical chunking keeps every worker count solving identical
        batches).  Returns ``entries`` with ``entries[i] = (index,
        placement, pass1_prediction)`` in enumeration order.
        """
        chunk: List[Tuple[int, Placement, object]] = []
        chunk_size = self.batch_size
        placements: List[Placement] = []
        results: List[Tuple[int, object]] = []
        for placement, _key in self.source.stream():
            placements.append(placement)
            chunk.append((len(placements) - 1, placement, None))
            if len(chunk) >= chunk_size:
                results.extend(
                    self.executor.run_stage(
                        "coarse", chunk, chunk_size=chunk_size
                    )
                )
                chunk = []
        if chunk:
            results.extend(
                self.executor.run_stage("coarse", chunk, chunk_size=len(chunk))
            )
        results.sort(key=lambda pair: pair[0])
        return [
            (idx, placements[idx], prediction) for idx, prediction in results
        ]

    # -- stage 2: top-k funnel + bound-pruned exact scoring ---------------
    def _select_finalists(self, entries):
        """The ``lp_top_k`` best pass-1 candidates, best first.

        Selection matches a stable descending sort on pass-1 throughput
        (ties keep enumeration order), maintained incrementally with a
        bounded heap — the funnel never holds more than ``lp_top_k``
        candidates.
        """
        heap: List[Tuple[float, int]] = []  # (throughput, -index) min-heap
        by_index: Dict[int, Tuple[Placement, object]] = {}
        for idx, placement, prediction in entries:
            item = (prediction.throughput, -idx)
            if len(heap) < self.lp_top_k:
                heapq.heappush(heap, item)
                by_index[idx] = (placement, prediction)
            elif item > heap[0]:
                evicted = heapq.heappushpop(heap, item)
                del by_index[-evicted[1]]
                by_index[idx] = (placement, prediction)
        order = sorted(heap, key=lambda item: (-item[0], -item[1]))
        return [
            (-neg_idx, by_index[-neg_idx][0], by_index[-neg_idx][1])
            for _, neg_idx in order
        ]

    def _score_exact(self, finalists):
        """LP-score the finalists, skipping candidates that cannot win.

        Finalists arrive sorted by descending pass-1 bound.  A min-heap
        of the ``top_k`` best exact scores so far gives the floor; a
        candidate whose bound cannot beat the floor by more than
        :data:`PRUNE_REL_SLACK` (ties included) skips the LP.  Exact
        scores can exceed the pass-1 "upper" bound by LP-solver noise,
        so the winner is preserved to :data:`PRUNE_EQUIV_TOL`, not to
        float epsilon.

        Scoring proceeds in fixed waves of ``top_k`` candidates and the
        floor only tightens *between* waves, so prune decisions depend
        solely on wave boundaries — never on the worker count — and any
        ``workers`` setting reproduces the serial result exactly.
        """
        scored: List[Tuple[int, ScoredPlacement]] = []
        floor_heap: List[float] = []
        pruned = 0
        wave_size = max(1, self.top_k)
        position = 0
        while position < len(finalists):
            batch = []
            while position < len(finalists) and len(batch) < wave_size:
                entry = finalists[position]
                position += 1
                if (
                    self.prune_bounds
                    and len(floor_heap) >= self.top_k
                    and entry[4] <= floor_heap[0] * (1.0 + PRUNE_REL_SLACK)
                ):
                    pruned += 1
                    continue
                batch.append(entry)
            if not batch:
                continue
            results = self.executor.run_stage(
                "exact",
                [(pos, placement, p1) for pos, _, placement, p1, _ in batch],
                chunk_size=max(
                    1, -(-len(batch) // max(1, self.executor.workers))
                ),
            )
            prior = {pos: (placement, p1) for pos, _, placement, p1, _ in batch}
            for pos, mcf in results:
                placement, p1 = prior[pos]
                scored.append(
                    (pos, ScoredPlacement(placement, mcf.throughput, p1, mcf))
                )
                if len(floor_heap) < self.top_k:
                    heapq.heappush(floor_heap, mcf.throughput)
                elif mcf.throughput > floor_heap[0]:
                    heapq.heappushpop(floor_heap, mcf.throughput)
        # funnel position is the pre-engine stable order: pass-1 score
        # descending, enumeration index ascending — sorting on it keeps
        # throughput ties ranked exactly as the serial reference path.
        ranked = sorted(scored, key=lambda pair: (-pair[1].throughput, pair[0]))
        return [row for _, row in ranked], pruned

    # -- entry point ------------------------------------------------------
    def run(self) -> SearchResult:
        """Execute the full pipeline and return the ranked result."""
        with obs.span(
            "search.run",
            workers=self.executor.workers,
            lp_top_k=self.lp_top_k,
            prune_bounds=self.prune_bounds,
        ) as root:
            with self.executor:
                with obs.span("search.pass1") as sp:
                    entries = self._stream_pass1()
                    sp.set(
                        candidates=self.source.num_seen, unique=len(entries)
                    )
                if not entries:
                    raise ValueError("candidate source produced no placements")
                # bound = pass-1 throughput; funnel position = stable rank
                finalists = [
                    (pos, idx, placement, p1, p1.throughput)
                    for pos, (idx, placement, p1) in enumerate(
                        self._select_finalists(entries)
                    )
                ]
                with obs.span("search.pass2", finalists=len(finalists)) as sp:
                    ranked, pruned = self._score_exact(finalists)
                    sp.set(pruned=pruned, lp_scored=len(ranked))
            num_lp = len(ranked)
            result = SearchResult(
                best=ranked[0],
                scored=ranked[: self.top_k],
                num_candidates=self.source.num_seen,
                num_unique=len(entries),
                num_finalists=len(finalists),
                num_lp_scored=num_lp,
                pruned_by_bound=pruned,
                cache_hits=self.executor.cache_hits,
                cache_misses=self.executor.cache_misses,
                workers=self.executor.workers,
                warm_starts=self.executor.warm_starts,
                num_batches=len(self.executor.batch_sizes),
                canonical_direct=getattr(self.source, "num_direct", 0),
            )
            root.set(
                unique=result.num_unique,
                pruned=result.pruned_by_bound,
                throughput=result.best.throughput,
            )
        result.seconds = root.duration
        obs.add("search.candidates", result.num_candidates)
        obs.add("search.unique", result.num_unique)
        obs.add("search.canonical_direct", result.canonical_direct)
        obs.add("search.pass1_scored", result.num_unique)
        obs.add("search.lp_scored", result.num_lp_scored)
        obs.add("search.pruned_by_bound", result.pruned_by_bound)
        obs.add("search.warm_starts", result.warm_starts)
        for size in self.executor.batch_sizes:
            obs.observe("search.batch_size", size)
        obs.add("search.topo_cache.hits", result.cache_hits)
        obs.add("search.topo_cache.misses", result.cache_misses)
        return result


def run_search(request: SearchRequest) -> SearchResult:
    """Solve one :class:`SearchRequest` with the default pipeline.

    Raises ``ValueError`` when no placement fits the requested pool.
    """
    machine = request.machine
    if request.candidates is not None:
        source: CandidateSource = ExplicitSource(request.candidates)
    else:
        source = EnumeratedSource(
            machine.chassis, request.num_gpus, request.num_ssds
        )
    coarse = FlexibleMaxFlowScorer(
        fractions=request.fractions,
        gpu_cache_policy=request.gpu_cache_policy,
        rel_tol=request.score_rel_tol,
    )
    exact = MulticommodityScorer(
        fractions=request.fractions,
        gpu_cache_policy=request.gpu_cache_policy,
    )
    executor = ParallelExecutor(
        machine,
        request.nvlink_pairs,
        {"coarse": coarse, "exact": exact},
        workers=request.resolved_workers(),
        mask=request.mask,
        warm=request.resolved_warm_starts(),
        warm_cut=request.warm_cut,
    )
    engine = SearchEngine(
        source,
        coarse,
        exact,
        executor,
        lp_top_k=request.lp_top_k,
        top_k=request.top_k,
        prune_bounds=request.resolved_prune_bounds(),
        batch_size=request.resolved_batch_size(),
    )
    try:
        return engine.run()
    except ValueError as err:
        if "no placements" in str(err):
            raise ValueError(
                f"no feasible placement of {request.num_gpus} GPUs / "
                f"{request.num_ssds} SSDs on {machine.name}"
            ) from None
        raise
