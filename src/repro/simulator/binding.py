"""Static GPU-to-SSD binding (the M-GIDS/M-Hyperion convention).

The paper's baselines do not support multiple GPUs sharing one drive:
"since GIDS does not support shared access to a single SSD by multiple
GPUs, we allocated a fixed number of SSDs to each GPU" (Section 4.1) —
with 8 SSDs, 4 SSDs per GPU at 2 GPUs and 2 per GPU at 4 GPUs.  Each
GPU's working set is striped across its bound drives only.

Drive assignment follows locality, mirroring how such systems are
actually deployed (and the paper's Section 4.6 explanation of placement
(d)'s negative scaling — "slot limits on PCIe Switch 0 restrict each
GPU to one SSD"):

1. drives on the GPU's own switch/root port are split disjointly among
   the GPUs there — and if any exist, the GPU binds *only* those;
2. otherwise, drives reachable without crossing QPI;
3. otherwise, any remaining drives.

Bindings are disjoint (no drive serves two GPUs) and each GPU gets at
most ``num_ssds // num_gpus`` drives.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.topology import LinkKind, NodeKind, Topology


def _attach_node(topo: Topology, device: str) -> str:
    """The interconnect node a device hangs off."""
    for succ in topo.successors(device):
        if topo.node(succ).kind.is_interconnect:
            return succ
    raise ValueError(f"device {device!r} has no interconnect attachment")


def _crosses_qpi(topo: Topology, ssd: str, gpu: str) -> bool:
    path = topo.shortest_path(ssd, gpu)
    if path is None:
        return True
    for link in topo.path_links(path):
        if link.kind is LinkKind.QPI:
            return True
    return False


def static_ssd_binding(
    topo: Topology,
    drives_per_gpu: Optional[int] = None,
) -> Dict[str, List[str]]:
    """Compute a disjoint, locality-first GPU->SSD binding.

    ``drives_per_gpu`` defaults to ``num_ssds // num_gpus`` (the paper's
    M-GIDS rule).  Raises if any GPU would end up with zero drives.
    """
    gpus = topo.gpus()
    ssds = topo.ssds()
    if not gpus or not ssds:
        raise ValueError("binding needs at least one GPU and one SSD")
    k = drives_per_gpu if drives_per_gpu is not None else max(
        1, len(ssds) // len(gpus)
    )
    if k < 1:
        raise ValueError("drives_per_gpu must be >= 1")

    free = set(ssds)
    binding: Dict[str, List[str]] = {g: [] for g in gpus}

    def allocate(pool_of_gpu, gpus_subset) -> None:
        """Deal each GPU's candidate pool round-robin, disjointly."""
        # GPUs sharing identical pools split them evenly: iterate in
        # rounds so no GPU grabs a whole shared pool first.
        progress = True
        while progress:
            progress = False
            for gpu in gpus_subset:
                if len(binding[gpu]) >= k:
                    continue
                for drive in pool_of_gpu[gpu]:
                    if drive in free:
                        binding[gpu].append(drive)
                        free.discard(drive)
                        progress = True
                        break

    # Tier 1: same-attach drives; GPUs with any local drive stop here.
    local_pool = {
        g: [s for s in ssds if _attach_node(topo, s) == _attach_node(topo, g)]
        for g in gpus
    }
    tier1_gpus = [g for g in gpus if local_pool[g]]
    allocate(local_pool, tier1_gpus)
    satisfied = {g for g in tier1_gpus if binding[g]}

    # Tier 2: no-QPI drives for the rest.
    rest = [g for g in gpus if g not in satisfied]
    noqpi_pool = {
        g: [s for s in ssds if s in free and not _crosses_qpi(topo, s, g)]
        for g in rest
    }
    allocate(noqpi_pool, rest)
    satisfied |= {g for g in rest if binding[g]}

    # Tier 3: anything left for still-empty GPUs.
    rest = [g for g in gpus if g not in satisfied]
    any_pool = {g: [s for s in ssds if s in free] for g in rest}
    allocate(any_pool, rest)

    empty = [g for g, drives in binding.items() if not drives]
    if empty:
        raise ValueError(f"no drives available for GPUs {empty}")
    return binding
