"""Multi-GPU GPU-initiated NVMe I/O stack model (paper Section 3.1).

Moment extends Hyperion's single-GPU stack: each GPU owns NVMe
submission/completion queue pairs and issues page-granular reads
directly to SSDs, with the drive DMA-ing data into GPU application
buffers.  For the epoch simulator the relevant behaviour is the
*attainable read bandwidth per drive* as a function of request size and
aggregate queue depth — a small-page random-read workload is IOPS-bound
before it is bandwidth-bound — plus the (tiny) GPU-side cost of driving
the queues (the paper reports ~1% of GPU cores).

:class:`GpuIoQueues` also provides an explicit queue-occupancy model
used by tests and the I/O micro-benchmarks: submissions beyond the
queue capacity must wait for completions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.hardware.specs import SsdSpec
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class IoStackConfig:
    """Per-GPU I/O stack parameters (BaM-style defaults)."""

    num_queue_pairs: int = 128
    queue_depth: int = 1024
    page_bytes: int = 4096
    #: Per-request GPU-side bookkeeping (doorbell write, poll slot).
    submit_overhead_s: float = 150e-9
    #: Fraction of one GPU's SMs consumed by the I/O threads.
    gpu_core_fraction: float = 0.01

    def __post_init__(self) -> None:
        check_positive("num_queue_pairs", self.num_queue_pairs)
        check_positive("queue_depth", self.queue_depth)
        check_positive("page_bytes", self.page_bytes)

    @property
    def max_outstanding(self) -> int:
        """Ring capacity: queue pairs times queue depth."""
        return self.num_queue_pairs * self.queue_depth


@dataclass(frozen=True)
class RetryPolicy:
    """Failed-read retry/timeout model (fault injection).

    When a drive drops off the bus, in-flight reads time out; the stack
    retries each ``max_retries`` times with exponential backoff before
    declaring the drive dead and re-routing the page to the surviving
    replica tier.  The one-time detection cost per failure event is
    :attr:`detection_stall_s`; afterwards the re-routed reads run at the
    recovery tier's bandwidth (see
    :class:`repro.faults.injector.FaultInjector`).
    """

    max_retries: int = 3
    timeout_s: float = 2e-3
    backoff: float = 2.0

    def __post_init__(self) -> None:
        check_positive("max_retries", self.max_retries)
        check_positive("timeout_s", self.timeout_s)
        check_positive("backoff", self.backoff)

    @property
    def detection_stall_s(self) -> float:
        """Wall-clock lost detecting one dead drive: the full retry
        ladder (timeout, then backoff-scaled timeouts)."""
        return sum(
            self.timeout_s * self.backoff**i for i in range(self.max_retries)
        )

    def retries_for_bytes(self, nbytes: float, page_bytes: int) -> int:
        """Retry submissions burned before giving up on ``nbytes`` worth
        of page reads against a dead drive."""
        return pages_for_bytes(nbytes, page_bytes) * self.max_retries


def effective_read_bw(
    ssd: SsdSpec, page_bytes: int, queue_depth: int = 1024
) -> float:
    """Attainable sequential-equivalent read bandwidth of one drive.

    ``min(bandwidth, IOPS * page)`` with a saturation factor for shallow
    queues (NVMe drives need concurrency to reach rated IOPS; we model
    the standard closed-queue knee ``qd / (qd + qd_half)``).
    """
    check_positive("page_bytes", page_bytes)
    check_positive("queue_depth", queue_depth)
    qd_half = 64.0  # queue depth at which half of rated IOPS is reached
    saturation = queue_depth / (queue_depth + qd_half)
    iops_bound = ssd.read_iops * page_bytes * saturation
    return min(ssd.read_bw, iops_bound)


class GpuIoQueues:
    """Explicit SQ/CQ occupancy bookkeeping for one GPU.

    Tracks outstanding requests; :meth:`submit` returns the queueing
    delay incurred when the rings are full (completions must drain
    first, at the drive's command rate).
    """

    def __init__(self, config: IoStackConfig, drives: List[SsdSpec]) -> None:
        if not drives:
            raise ValueError("need at least one drive")
        self.config = config
        self.drives = list(drives)
        self.outstanding = 0
        self.total_submitted = 0
        self.total_stall_s = 0.0

    @property
    def aggregate_iops(self) -> float:
        """Summed rated IOPS of the GPU's drives."""
        return sum(d.read_iops for d in self.drives)

    def submit(self, num_requests: int) -> float:
        """Submit a burst; returns stall seconds spent waiting for room."""
        if num_requests < 0:
            raise ValueError("num_requests must be >= 0")
        self.total_submitted += num_requests
        room = self.config.max_outstanding - self.outstanding
        overflow = max(0, num_requests - room)
        stall = overflow / self.aggregate_iops if overflow else 0.0
        self.total_stall_s += stall
        self.outstanding = min(
            self.config.max_outstanding, self.outstanding + num_requests
        )
        return stall

    def complete(self, num_requests: int) -> None:
        """Retire finished requests from the rings."""
        if num_requests < 0:
            raise ValueError("num_requests must be >= 0")
        self.outstanding = max(0, self.outstanding - num_requests)

    def drain(self) -> None:
        """Clear all outstanding requests (epoch boundary)."""
        self.outstanding = 0

    def submit_cost_s(self, num_requests: int) -> float:
        """GPU-side cost of issuing a burst (doorbells + polling)."""
        return num_requests * self.config.submit_overhead_s / max(
            1, self.config.num_queue_pairs
        )

    def export_metrics(self, gpu: str = "gpu0") -> None:
        """Publish queue totals to the active obs session (no-op when
        telemetry is disabled): submitted requests, stall seconds, and
        the current ring occupancy as a fraction of capacity.
        """
        from repro import obs

        if obs.active() is None:
            return
        obs.add("io.requests_submitted", self.total_submitted, gpu=gpu)
        obs.add("io.stall_seconds", self.total_stall_s, gpu=gpu)
        obs.set_gauge(
            "io.queue_occupancy",
            self.outstanding / self.config.max_outstanding,
            gpu=gpu,
        )


def pages_for_bytes(nbytes: float, page_bytes: int) -> int:
    """Number of page requests needed for a transfer."""
    check_positive("page_bytes", page_bytes)
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    return int(-(-nbytes // page_bytes))  # ceil-div
