"""Max-min fair bandwidth sharing with progressive filling.

The epoch simulator models concurrent DMA transfers (SSD->GPU,
CPU-mem->GPU, peer-GPU) as *flows* over shared *resources* (PCIe links,
QPI, device egress ports).  PCIe fabrics arbitrate roughly fairly among
requestors, so we allocate rates by the classic water-filling max-min
algorithm, then advance time to the next flow completion and re-fill —
"progressive filling".  This is intentionally a *different* model from
the max-flow predictor (flows here follow fixed routes and share
fairly; the predictor routes optimally), which is what makes the
paper's prediction-accuracy experiment (Fig. 13) non-circular.

Resources are arbitrary hashable keys with capacities in bytes/second;
flows are (resource-key list, demand bytes) pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.utils.validation import check_nonnegative, check_positive

ResourceKey = Hashable


@dataclass
class Flow:
    """One transfer: ``demand`` bytes over the resources in ``path``.

    ``path`` may be empty (a purely local transfer, e.g. an HBM cache
    hit) — such flows complete instantly.  ``tag`` identifies the flow
    in results (e.g. ``("ssd3", "gpu1")``).
    """

    path: Tuple[ResourceKey, ...]
    demand: float
    tag: Hashable = None

    def __post_init__(self) -> None:
        check_nonnegative("demand", self.demand)
        self.path = tuple(self.path)


@dataclass
class FairShareResult:
    """Outcome of a progressive-filling run."""

    #: Time at which the last flow finished (seconds).
    makespan: float
    #: Per-flow completion time, in input order.
    finish_times: List[float]
    #: Total bytes carried by each resource.
    resource_bytes: Dict[ResourceKey, float]
    #: Peak concurrent utilisation (bytes/s) seen on each resource.
    peak_rates: Dict[ResourceKey, float]

    def finish_by_tag(self) -> Dict[Hashable, float]:
        """Max finish time per flow tag (None tags are skipped)."""
        out: Dict[Hashable, float] = {}
        for t, flow_tag in self._tags:
            if flow_tag is None:
                continue
            out[flow_tag] = max(out.get(flow_tag, 0.0), t)
        return out

    _tags: List[Tuple[float, Hashable]] = field(default_factory=list, repr=False)


def max_min_rates(
    flows: Sequence[Flow],
    capacities: Dict[ResourceKey, float],
    active: Optional[Sequence[int]] = None,
) -> List[float]:
    """Water-filling max-min fair rates for the active flows.

    Returns one rate per input flow; inactive flows get 0.  Flows whose
    path is empty get ``inf``.  Raises ``KeyError`` if a flow references
    an unknown resource and ``ValueError`` on non-positive capacities.
    """
    for key, cap in capacities.items():
        check_positive(f"capacity[{key!r}]", cap)
    n = len(flows)
    idx_active = list(range(n)) if active is None else list(active)
    rates = [0.0] * n
    # resource -> list of active flow indices using it
    users: Dict[ResourceKey, List[int]] = {}
    for i in idx_active:
        if flows[i].path == ():
            rates[i] = float("inf")
            continue
        for key in set(flows[i].path):
            if key not in capacities:
                raise KeyError(f"flow {i} uses unknown resource {key!r}")
            users.setdefault(key, []).append(i)

    cap_left = {key: capacities[key] for key in users}
    unfixed = {i for i in idx_active if flows[i].path != ()}
    while unfixed:
        # fair share offered by each resource to its unfixed users
        best_key, best_share = None, float("inf")
        for key, flow_ids in users.items():
            live = [i for i in flow_ids if i in unfixed]
            if not live:
                continue
            share = cap_left[key] / len(live)
            if share < best_share:
                best_share, best_key = share, key
        if best_key is None:
            # remaining flows are on resources with no contention left
            for i in unfixed:
                rates[i] = float("inf")
            break
        # fix every unfixed flow through the bottleneck at the share
        newly_fixed = [i for i in users[best_key] if i in unfixed]
        for i in newly_fixed:
            rates[i] = best_share
            unfixed.discard(i)
            for key in set(flows[i].path):
                cap_left[key] = max(0.0, cap_left[key] - best_share)
        cap_left[best_key] = 0.0
    return rates


def degrade_capacities(
    capacities: Dict[ResourceKey, float],
    scale: Optional[Dict[ResourceKey, float]] = None,
    drop: Sequence[ResourceKey] = (),
    add: Optional[Dict[ResourceKey, float]] = None,
) -> Dict[ResourceKey, float]:
    """A degraded copy of a capacity dict for fault injection.

    ``drop`` removes resources entirely — :func:`max_min_rates` requires
    strictly positive capacities, so a dead resource must disappear from
    the dict, never be zeroed.  ``scale`` multiplies surviving
    capacities (factors must land positive); ``add`` introduces new
    resources (e.g. a failed drive's bounded recovery path).
    """
    dropped = set(drop)
    out = {k: v for k, v in capacities.items() if k not in dropped}
    for key, factor in (scale or {}).items():
        if key in out:
            check_positive(f"scaled capacity[{key!r}]", out[key] * factor)
            out[key] *= factor
    for key, cap in (add or {}).items():
        check_positive(f"added capacity[{key!r}]", cap)
        out[key] = cap
    return out


def progressive_fill(
    flows: Sequence[Flow],
    capacities: Dict[ResourceKey, float],
    max_rounds: Optional[int] = None,
) -> FairShareResult:
    """Simulate all flows to completion under max-min fair sharing.

    Each round: compute fair rates, advance to the earliest completion,
    retire finished flows, release their bandwidth, repeat.  Runs at
    most ``len(flows)`` rounds (one flow finishes per round, minimum).
    """
    n = len(flows)
    finish = [0.0] * n
    remaining = [f.demand for f in flows]
    resource_bytes: Dict[ResourceKey, float] = {}
    peak_rates: Dict[ResourceKey, float] = {}
    active = [i for i in range(n) if remaining[i] > 0]
    # zero-demand and local flows are instantaneous
    now = 0.0
    rounds = 0
    cap_rounds = max_rounds if max_rounds is not None else n + 1
    while active:
        rounds += 1
        if rounds > cap_rounds:
            raise RuntimeError("progressive filling failed to converge")
        rates = max_min_rates(flows, capacities, active)
        # local (inf-rate) flows finish now
        next_active = []
        dt = float("inf")
        for i in active:
            if rates[i] == float("inf"):
                finish[i] = now
                remaining[i] = 0.0
            else:
                if rates[i] <= 0:
                    raise RuntimeError(
                        f"flow {i} starved (zero rate) — capacity exhausted"
                    )
                dt = min(dt, remaining[i] / rates[i])
                next_active.append(i)
        active = next_active
        if not active:
            break
        # advance to the first completion
        rate_on: Dict[ResourceKey, float] = {}
        for i in active:
            for key in set(flows[i].path):
                rate_on[key] = rate_on.get(key, 0.0) + rates[i]
        for key, r in rate_on.items():
            peak_rates[key] = max(peak_rates.get(key, 0.0), r)
            resource_bytes[key] = resource_bytes.get(key, 0.0) + r * dt
        now += dt
        still = []
        for i in active:
            remaining[i] -= rates[i] * dt
            if remaining[i] <= 1e-6:
                finish[i] = now
                remaining[i] = 0.0
            else:
                still.append(i)
        active = still

    result = FairShareResult(
        makespan=now,
        finish_times=finish,
        resource_bytes=resource_bytes,
        peak_rates=peak_rates,
    )
    result._tags = [(finish[i], flows[i].tag) for i in range(n)]
    return result
