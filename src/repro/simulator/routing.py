"""Deterministic flow routing over a runtime topology.

GPU-initiated DMA on PCIe does not multipath: a transfer from an SSD to
a GPU follows the fabric's fixed route.  :class:`Router` precomputes,
for every (storage node, GPU) pair, the resource-key path used by the
fair-share simulator: the storage device's *egress port* (so a 6 GB/s
SSD serving four GPUs is still a 6 GB/s device) followed by each
directed link on the shortest path (QPI-penalised, so transfers stay on
one socket when possible).

Resource keys are ``("egress", node)`` and ``("link", src, dst)``;
:func:`capacities_for` collects their bytes/s ceilings from the
topology.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.topology import LinkKind, NodeKind, Topology
from repro.hardware.specs import QPI_P2P_BW

ResourceKey = Hashable


def egress_key(node: str) -> Tuple[str, str]:
    """Resource key of a storage device's egress port."""
    return ("egress", node)


def link_key(src: str, dst: str) -> Tuple[str, str, str]:
    """Resource key of one directed physical link."""
    return ("link", src, dst)


def p2p_key(src: str, dst: str) -> Tuple[str, str, str]:
    """Cross-socket P2P forwarding pool for one QPI direction."""
    return ("qpi_p2p", src, dst)


class Router:
    """Route cache from storage bins to GPUs for one topology."""

    def __init__(self, topo: Topology, qpi_penalty: float = 2.0) -> None:
        self.topo = topo
        self.qpi_penalty = qpi_penalty
        self._paths: Dict[Tuple[str, str], Tuple[ResourceKey, ...]] = {}
        self._capacities: Dict[ResourceKey, float] = {}
        self._build()

    def _build(self) -> None:
        for link in self.topo.links:
            self._capacities[link_key(link.src, link.dst)] = link.capacity
            if link.kind is LinkKind.QPI:
                # device-to-device DMA crossing sockets is limited by
                # root-complex P2P forwarding, well below QPI line rate
                self._capacities[p2p_key(link.src, link.dst)] = QPI_P2P_BW
        for node in self.topo.storage_nodes:
            if node.egress_bw is not None:
                self._capacities[egress_key(node.name)] = node.egress_bw
        gpus = self.topo.gpus()
        for store in self.topo.storage_nodes:
            for gpu in gpus:
                self._paths[(store.name, gpu)] = self._route(store.name, gpu)

    def _route(self, store: str, gpu: str) -> Tuple[ResourceKey, ...]:
        owner = self._owner_gpu(store)
        if owner == gpu:
            return ()  # local HBM hit: free
        path = self.topo.shortest_path(store, gpu, qpi_penalty=self.qpi_penalty)
        if path is None:
            raise ValueError(f"no route from {store!r} to {gpu!r}")
        keys: List[ResourceKey] = []
        node = self.topo.node(store)
        if node.egress_bw is not None:
            keys.append(egress_key(store))
        is_device_dma = node.kind in (NodeKind.SSD, NodeKind.GPU_MEM)
        for link in self.topo.path_links(path):
            keys.append(link_key(link.src, link.dst))
            if is_device_dma and link.kind is LinkKind.QPI:
                keys.append(p2p_key(link.src, link.dst))
        return tuple(keys)

    @staticmethod
    def _owner_gpu(store: str) -> Optional[str]:
        """The GPU owning a ``gpuN:mem`` cache bin, else None."""
        if store.endswith(":mem"):
            return store[: -len(":mem")]
        return None

    # ------------------------------------------------------------------
    def path(self, store: str, gpu: str) -> Tuple[ResourceKey, ...]:
        """Resource keys for a (storage bin, GPU) transfer.

        An empty tuple means the transfer is local (GPU's own cache).
        """
        try:
            return self._paths[(store, gpu)]
        except KeyError:
            raise KeyError(f"no cached route for ({store!r}, {gpu!r})") from None

    @property
    def capacities(self) -> Dict[ResourceKey, float]:
        """Copy of every resource's bytes/s ceiling."""
        return dict(self._capacities)

    def crosses_qpi(self, store: str, gpu: str) -> bool:
        """Does the route traverse a QPI link? (Fig. 17's metric.)"""
        for key in self.path(store, gpu):
            if key[0] == "link":
                link = self.topo.link(key[1], key[2])
                if link.kind is LinkKind.QPI:
                    return True
        return False

    def qpi_link_keys(self) -> List[ResourceKey]:
        """Resource keys of all QPI link directions."""
        return [
            link_key(l.src, l.dst)
            for l in self.topo.links
            if l.kind is LinkKind.QPI
        ]


#: Storage-node kinds whose rates :func:`fair_storage_rates` reports.
_STORAGE_KINDS: Tuple[NodeKind, ...] = (NodeKind.SSD, NodeKind.CPU_MEM)


def fair_storage_rates(
    topo: Topology, kinds: Tuple[NodeKind, ...] = _STORAGE_KINDS
) -> Dict[str, float]:
    """Sustainable per-bin service rates under balanced demand.

    One unit flow per (storage node, GPU) pair shares the fabric
    max-min fairly — the same arbitration the epoch simulator enforces
    — and each node's rate is the sum over its flows.  This is the
    service skew the runtime can actually sustain, which is what DDAK
    should weigh storage bins by; genuine asymmetry (a drive behind a
    cascaded switch or a QPI hop) still shows up as a lower rate.
    """
    from repro.simulator.bandwidth import Flow, max_min_rates

    gpus = topo.gpus()
    stores = [n.name for n in topo.storage_nodes if n.kind in kinds]
    if not gpus or not stores:
        return {}
    router = Router(topo)
    flows = [
        Flow(router.path(s, g), 1.0, (s, g)) for s in stores for g in gpus
    ]
    rates = max_min_rates(flows, router.capacities, list(range(len(flows))))
    out = {s: 0.0 for s in stores}
    for f, r in zip(flows, rates):
        if r != float("inf"):
            out[f.tag[0]] += r
    return out


#: A bin's predicted rate below this fraction of its fair-share rate
#: counts as "parked at zero" for :func:`reconcile_storage_rates`.
DEGENERATE_RATE_FRAC = 0.05


def reconcile_storage_rates(
    topo: Topology,
    rates: Dict[str, float],
    frac: float = DEGENERATE_RATE_FRAC,
) -> Dict[str, float]:
    """Reconcile an LP storage-rate prediction with fair-share reality.

    DDAK weighs storage bins by the optimizer's predicted service
    rates, but the multicommodity LP's optimum can disagree with the
    runtime's max-min arbitration in two ways, both repaired here
    against :func:`fair_storage_rates` (computed per node kind, so
    SSDs are compared among SSDs and memory banks among memory banks):

    * **Degenerate zeros** — many rate splits achieve the same
      bottleneck time, and the solver may park one of several
      *symmetric* bins at rate zero, starving a perfectly good device
      of data.  A zero is only repaired when it cannot be explained by
      position: a bin whose fair rate ties its kind's *best* class has
      no positional disadvantage, so a near-zero prediction there is
      pure degeneracy and is lifted to the fair rate.  Bins in worse
      fairness classes — e.g. behind a cascaded switch whose shared
      uplink caps the class total — keep their zeros: there the LP is
      deliberately concentrating the class's budget on fewer devices,
      and spreading it back out demonstrably loses in the simulator.
    * **Overestimates** — the LP can grant a bin its full egress
      bandwidth even when GPU-side ingress contention caps what the
      fair-share runtime will actually serve; weighting by the
      optimistic rate piles hot data onto a device the arbitration
      then throttles.  Rates are capped at the fair-share rate.
    """
    fair = fair_storage_rates(topo)
    if not fair:
        return rates
    kind_of = {n.name: n.kind for n in topo.storage_nodes}
    out = dict(rates)
    for kind in _STORAGE_KINDS:
        group = {s: r for s, r in fair.items() if kind_of[s] is kind}
        if not group:
            continue
        top = max(group.values())
        for store, fair_rate in group.items():
            predicted = out.get(store, 0.0)
            if predicted < frac * fair_rate:
                if fair_rate >= top * (1 - 1e-3):
                    out[store] = fair_rate
            elif predicted > fair_rate:
                out[store] = fair_rate
    return out
