"""Per-link traffic accounting (Figure 17's QPI-traffic comparison).

The fair-share simulator reports bytes per resource key; this module
aggregates them into human-meaningful counters: per physical link
(summing both directions), per link kind, and specifically across QPI —
the metric the paper uses to show DDAK relieves socket-interconnect
pressure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Mapping, Optional, Tuple

from repro.core.topology import LinkKind, Topology


@dataclass
class TrafficAccount:
    """Accumulated bytes per resource key over a simulation."""

    topo: Topology
    by_resource: Dict[Hashable, float] = field(default_factory=dict)

    def add(self, resource_bytes: Mapping[Hashable, float]) -> None:
        """Accumulate per-resource byte counters from one step."""
        for key, nbytes in resource_bytes.items():
            self.by_resource[key] = self.by_resource.get(key, 0.0) + nbytes

    def scaled(self, factor: float) -> "TrafficAccount":
        """A copy with every counter multiplied by ``factor``."""
        out = TrafficAccount(self.topo)
        out.by_resource = {k: v * factor for k, v in self.by_resource.items()}
        return out

    # ------------------------------------------------------------------
    def link_bytes(self, src: str, dst: str, both_directions: bool = True) -> float:
        """Bytes over a physical link (default: both directions summed)."""
        total = self.by_resource.get(("link", src, dst), 0.0)
        if both_directions:
            total += self.by_resource.get(("link", dst, src), 0.0)
        return total

    def bytes_by_kind(self) -> Dict[str, float]:
        """Total bytes per link technology (pcie/qpi/nvlink/memory)."""
        out: Dict[str, float] = {}
        for key, nbytes in self.by_resource.items():
            if not (isinstance(key, tuple) and key and key[0] == "link"):
                continue
            link = self.topo.link(key[1], key[2])
            out[link.kind.value] = out.get(link.kind.value, 0.0) + nbytes
        return out

    @property
    def qpi_bytes(self) -> float:
        """Total bytes crossing the socket interconnect (both ways)."""
        return self.bytes_by_kind().get(LinkKind.QPI.value, 0.0)

    @property
    def nvlink_bytes(self) -> float:
        """Total bytes carried over NVLink bridges."""
        return self.bytes_by_kind().get(LinkKind.NVLINK.value, 0.0)

    def busiest_links(self, k: int = 5):
        """Top-k (src, dst, bytes) directed link counters."""
        links = [
            (key[1], key[2], nbytes)
            for key, nbytes in self.by_resource.items()
            if isinstance(key, tuple) and key and key[0] == "link"
        ]
        links.sort(key=lambda t: -t[2])
        return links[:k]

    def egress_bytes(self, node: str) -> float:
        """Bytes served from one storage device's egress port."""
        return self.by_resource.get(("egress", node), 0.0)

    def recovery_bytes(self, node: Optional[str] = None) -> float:
        """Bytes served over failed drives' replica-recovery paths
        (one drive, or all when ``node`` is None)."""
        if node is not None:
            return self.by_resource.get(("recovery", node), 0.0)
        return sum(
            nbytes
            for key, nbytes in self.by_resource.items()
            if isinstance(key, tuple) and key and key[0] == "recovery"
        )

    def link_utilization(
        self, seconds: float, capacities: Optional[Mapping[Hashable, float]] = None
    ) -> Dict[Tuple[str, str], float]:
        """Mean utilization per directed link over a ``seconds`` window.

        Capacities default to each link's rated bandwidth; pass the
        simulator's effective capacities (IOPS-capped SSD egress) to
        match what the fair-share allocator actually enforced.
        """
        if seconds <= 0:
            raise ValueError("seconds must be > 0")
        out: Dict[Tuple[str, str], float] = {}
        for key, nbytes in self.by_resource.items():
            if not (isinstance(key, tuple) and key and key[0] == "link"):
                continue
            cap = None
            if capacities is not None:
                cap = capacities.get(key)
            if cap is None:
                cap = self.topo.link(key[1], key[2]).capacity
            if cap > 0:
                out[(key[1], key[2])] = nbytes / (cap * seconds)
        return out

    def export_metrics(
        self,
        seconds: float = 0.0,
        capacities: Optional[Mapping[Hashable, float]] = None,
    ) -> None:
        """Publish the account to the active obs session (no-op when
        telemetry is disabled): per-link and per-egress byte counters,
        per-kind totals, and — when ``seconds`` is given — per-link
        utilization gauges.
        """
        from repro import obs

        if obs.active() is None:
            return
        for key, nbytes in self.by_resource.items():
            if not (isinstance(key, tuple) and key):
                continue
            if key[0] == "link":
                obs.add("traffic.link_bytes", nbytes, src=key[1], dst=key[2])
            elif key[0] == "egress":
                obs.add("traffic.egress_bytes", nbytes, node=key[1])
            elif key[0] == "qpi_p2p":
                obs.add("traffic.qpi_p2p_bytes", nbytes, src=key[1], dst=key[2])
            elif key[0] == "recovery":
                obs.add("faults.recovery_bytes", nbytes, ssd=key[1])
        for kind, nbytes in self.bytes_by_kind().items():
            obs.add("traffic.kind_bytes", nbytes, kind=kind)
        if seconds > 0:
            for (src, dst), util in self.link_utilization(
                seconds, capacities
            ).items():
                obs.set_gauge(
                    "traffic.link_utilization", util, src=src, dst=dst
                )
