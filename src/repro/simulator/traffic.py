"""Per-link traffic accounting (Figure 17's QPI-traffic comparison).

The fair-share simulator reports bytes per resource key; this module
aggregates them into human-meaningful counters: per physical link
(summing both directions), per link kind, and specifically across QPI —
the metric the paper uses to show DDAK relieves socket-interconnect
pressure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Mapping

from repro.core.topology import LinkKind, Topology


@dataclass
class TrafficAccount:
    """Accumulated bytes per resource key over a simulation."""

    topo: Topology
    by_resource: Dict[Hashable, float] = field(default_factory=dict)

    def add(self, resource_bytes: Mapping[Hashable, float]) -> None:
        """Accumulate per-resource byte counters from one step."""
        for key, nbytes in resource_bytes.items():
            self.by_resource[key] = self.by_resource.get(key, 0.0) + nbytes

    def scaled(self, factor: float) -> "TrafficAccount":
        """A copy with every counter multiplied by ``factor``."""
        out = TrafficAccount(self.topo)
        out.by_resource = {k: v * factor for k, v in self.by_resource.items()}
        return out

    # ------------------------------------------------------------------
    def link_bytes(self, src: str, dst: str, both_directions: bool = True) -> float:
        """Bytes over a physical link (default: both directions summed)."""
        total = self.by_resource.get(("link", src, dst), 0.0)
        if both_directions:
            total += self.by_resource.get(("link", dst, src), 0.0)
        return total

    def bytes_by_kind(self) -> Dict[str, float]:
        """Total bytes per link technology (pcie/qpi/nvlink/memory)."""
        out: Dict[str, float] = {}
        for key, nbytes in self.by_resource.items():
            if not (isinstance(key, tuple) and key and key[0] == "link"):
                continue
            link = self.topo.link(key[1], key[2])
            out[link.kind.value] = out.get(link.kind.value, 0.0) + nbytes
        return out

    @property
    def qpi_bytes(self) -> float:
        """Total bytes crossing the socket interconnect (both ways)."""
        return self.bytes_by_kind().get(LinkKind.QPI.value, 0.0)

    @property
    def nvlink_bytes(self) -> float:
        """Total bytes carried over NVLink bridges."""
        return self.bytes_by_kind().get(LinkKind.NVLINK.value, 0.0)

    def busiest_links(self, k: int = 5):
        """Top-k (src, dst, bytes) directed link counters."""
        links = [
            (key[1], key[2], nbytes)
            for key, nbytes in self.by_resource.items()
            if isinstance(key, tuple) and key and key[0] == "link"
        ]
        links.sort(key=lambda t: -t[2])
        return links[:k]
