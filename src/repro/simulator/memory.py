"""Memory-footprint accounting and out-of-memory detection.

The paper's baselines fail in specific, reported ways:

* **M-GIDS** "runs out of GPU memory on UK and CL due to the
  requirement of its page cache (based on BaM) metadata" — BaM keeps
  per-page state for the whole backing store, so metadata grows with
  *dataset* size, not cache size;
* **DistDGL** "runs out of CPU memory on IGB, UK and CL, as it
  allocates about 5x memory of the original dataset size".

:class:`MemoryLedger` records named reservations against a budget and
raises :class:`OutOfMemoryError` on overflow, so those failures are
mechanical outcomes rather than hard-coded verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.utils.units import fmt_bytes
from repro.utils.validation import check_nonnegative, check_positive


class OutOfMemoryError(RuntimeError):
    """A reservation exceeded the device's memory budget."""


@dataclass
class MemoryLedger:
    """Named byte reservations against a fixed budget."""

    name: str
    budget_bytes: float
    entries: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive("budget_bytes", self.budget_bytes)

    @property
    def used_bytes(self) -> float:
        """Sum of all reservations."""
        return sum(self.entries.values())

    @property
    def free_bytes(self) -> float:
        """Budget remaining after all reservations."""
        return self.budget_bytes - self.used_bytes

    def reserve(self, label: str, nbytes: float) -> None:
        """Add a reservation; raises :class:`OutOfMemoryError` on overflow."""
        check_nonnegative(f"reservation {label!r}", nbytes)
        if label in self.entries:
            raise ValueError(f"duplicate reservation {label!r} on {self.name}")
        if self.used_bytes + nbytes > self.budget_bytes:
            raise OutOfMemoryError(
                f"{self.name}: reserving {fmt_bytes(nbytes)} for {label!r} "
                f"exceeds budget ({fmt_bytes(self.used_bytes)} used of "
                f"{fmt_bytes(self.budget_bytes)})"
            )
        self.entries[label] = nbytes

    def try_reserve(self, label: str, nbytes: float) -> bool:
        """Reserve if possible; returns False instead of raising."""
        try:
            self.reserve(label, nbytes)
            return True
        except OutOfMemoryError:
            return False

    def release(self, label: str) -> None:
        """Drop a reservation by label (raises ``KeyError``)."""
        del self.entries[label]

    def report(self) -> str:
        """Human-readable reservation breakdown."""
        lines = [f"{self.name}: {fmt_bytes(self.used_bytes)} / "
                 f"{fmt_bytes(self.budget_bytes)}"]
        for label, nbytes in sorted(self.entries.items()):
            lines.append(f"  {label}: {fmt_bytes(nbytes)}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Footprint formulas used by the systems
# ----------------------------------------------------------------------
def activation_bytes(
    num_nodes: int, hidden_dim: int, num_layers: int, fp_bytes: int = 4
) -> float:
    """Forward+backward activation storage for one sampled batch."""
    check_nonnegative("num_nodes", num_nodes)
    # activations kept for backward on every layer, x2 for gradients
    return 2.0 * num_nodes * hidden_dim * num_layers * fp_bytes


def io_buffer_bytes(queue_pairs: int, queue_depth: int, page_bytes: int) -> float:
    """Pinned application buffers backing in-flight NVMe requests."""
    return float(queue_pairs) * queue_depth * page_bytes


def bam_page_cache_metadata_bytes(
    backing_store_bytes: float, page_bytes: int = 4096, per_page_state: int = 64
) -> float:
    """BaM-style page-cache metadata: per-page state (state word, lock,
    reverse mapping, hash-table slots) for the *entire* backing store
    must sit in GPU memory — the mechanism behind M-GIDS's OOM on UK
    and CL (3.2/4.1 TB of features -> >40 GB of metadata)."""
    check_nonnegative("backing_store_bytes", backing_store_bytes)
    num_pages = backing_store_bytes / page_bytes
    return num_pages * per_page_state


def distdgl_partition_bytes(dataset_bytes: float, num_machines: int,
                            expansion: float = 5.0) -> float:
    """Per-machine CPU footprint of a DistDGL partition (paper: ~5x the
    raw partition size, from halo vertices, ID maps, and kvstore)."""
    check_positive("num_machines", num_machines)
    return dataset_bytes / num_machines * expansion
